# Empty compiler generated dependencies file for massf_net.
# This may be replaced when dependencies are built.
