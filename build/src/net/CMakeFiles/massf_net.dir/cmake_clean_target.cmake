file(REMOVE_RECURSE
  "libmassf_net.a"
)
