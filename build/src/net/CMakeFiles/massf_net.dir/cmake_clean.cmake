file(REMOVE_RECURSE
  "CMakeFiles/massf_net.dir/netsim.cpp.o"
  "CMakeFiles/massf_net.dir/netsim.cpp.o.d"
  "CMakeFiles/massf_net.dir/tcp.cpp.o"
  "CMakeFiles/massf_net.dir/tcp.cpp.o.d"
  "libmassf_net.a"
  "libmassf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
