file(REMOVE_RECURSE
  "libmassf_partition.a"
)
