file(REMOVE_RECURSE
  "CMakeFiles/massf_partition.dir/bisect.cpp.o"
  "CMakeFiles/massf_partition.dir/bisect.cpp.o.d"
  "CMakeFiles/massf_partition.dir/fm.cpp.o"
  "CMakeFiles/massf_partition.dir/fm.cpp.o.d"
  "CMakeFiles/massf_partition.dir/greedy_kcluster.cpp.o"
  "CMakeFiles/massf_partition.dir/greedy_kcluster.cpp.o.d"
  "CMakeFiles/massf_partition.dir/kway.cpp.o"
  "CMakeFiles/massf_partition.dir/kway.cpp.o.d"
  "CMakeFiles/massf_partition.dir/matching.cpp.o"
  "CMakeFiles/massf_partition.dir/matching.cpp.o.d"
  "CMakeFiles/massf_partition.dir/partition.cpp.o"
  "CMakeFiles/massf_partition.dir/partition.cpp.o.d"
  "libmassf_partition.a"
  "libmassf_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
