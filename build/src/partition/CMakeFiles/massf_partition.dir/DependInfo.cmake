
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/bisect.cpp" "src/partition/CMakeFiles/massf_partition.dir/bisect.cpp.o" "gcc" "src/partition/CMakeFiles/massf_partition.dir/bisect.cpp.o.d"
  "/root/repo/src/partition/fm.cpp" "src/partition/CMakeFiles/massf_partition.dir/fm.cpp.o" "gcc" "src/partition/CMakeFiles/massf_partition.dir/fm.cpp.o.d"
  "/root/repo/src/partition/greedy_kcluster.cpp" "src/partition/CMakeFiles/massf_partition.dir/greedy_kcluster.cpp.o" "gcc" "src/partition/CMakeFiles/massf_partition.dir/greedy_kcluster.cpp.o.d"
  "/root/repo/src/partition/kway.cpp" "src/partition/CMakeFiles/massf_partition.dir/kway.cpp.o" "gcc" "src/partition/CMakeFiles/massf_partition.dir/kway.cpp.o.d"
  "/root/repo/src/partition/matching.cpp" "src/partition/CMakeFiles/massf_partition.dir/matching.cpp.o" "gcc" "src/partition/CMakeFiles/massf_partition.dir/matching.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/partition/CMakeFiles/massf_partition.dir/partition.cpp.o" "gcc" "src/partition/CMakeFiles/massf_partition.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/massf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/massf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
