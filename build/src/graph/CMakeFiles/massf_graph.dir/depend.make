# Empty dependencies file for massf_graph.
# This may be replaced when dependencies are built.
