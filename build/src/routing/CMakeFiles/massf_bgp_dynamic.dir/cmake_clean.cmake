file(REMOVE_RECURSE
  "CMakeFiles/massf_bgp_dynamic.dir/bgp_dynamic.cpp.o"
  "CMakeFiles/massf_bgp_dynamic.dir/bgp_dynamic.cpp.o.d"
  "libmassf_bgp_dynamic.a"
  "libmassf_bgp_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_bgp_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
