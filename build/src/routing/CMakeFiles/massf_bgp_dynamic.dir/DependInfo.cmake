
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bgp_dynamic.cpp" "src/routing/CMakeFiles/massf_bgp_dynamic.dir/bgp_dynamic.cpp.o" "gcc" "src/routing/CMakeFiles/massf_bgp_dynamic.dir/bgp_dynamic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/massf_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/massf_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/massf_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/massf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/massf_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/massf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pdes/CMakeFiles/massf_pdes.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/massf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
