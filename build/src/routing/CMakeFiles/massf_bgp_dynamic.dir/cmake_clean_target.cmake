file(REMOVE_RECURSE
  "libmassf_bgp_dynamic.a"
)
