# Empty dependencies file for massf_bgp_dynamic.
# This may be replaced when dependencies are built.
