file(REMOVE_RECURSE
  "libmassf_routing.a"
)
