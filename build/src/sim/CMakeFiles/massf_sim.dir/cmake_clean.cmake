file(REMOVE_RECURSE
  "CMakeFiles/massf_sim.dir/failover.cpp.o"
  "CMakeFiles/massf_sim.dir/failover.cpp.o.d"
  "CMakeFiles/massf_sim.dir/report.cpp.o"
  "CMakeFiles/massf_sim.dir/report.cpp.o.d"
  "CMakeFiles/massf_sim.dir/scenario.cpp.o"
  "CMakeFiles/massf_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/massf_sim.dir/scenario_config.cpp.o"
  "CMakeFiles/massf_sim.dir/scenario_config.cpp.o.d"
  "libmassf_sim.a"
  "libmassf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
