file(REMOVE_RECURSE
  "libmassf_sim.a"
)
