# Empty dependencies file for massf_sim.
# This may be replaced when dependencies are built.
