# Empty dependencies file for massf_pdes.
# This may be replaced when dependencies are built.
