
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdes/engine.cpp" "src/pdes/CMakeFiles/massf_pdes.dir/engine.cpp.o" "gcc" "src/pdes/CMakeFiles/massf_pdes.dir/engine.cpp.o.d"
  "/root/repo/src/pdes/threaded.cpp" "src/pdes/CMakeFiles/massf_pdes.dir/threaded.cpp.o" "gcc" "src/pdes/CMakeFiles/massf_pdes.dir/threaded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/massf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/massf_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
