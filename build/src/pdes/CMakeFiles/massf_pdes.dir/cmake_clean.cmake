file(REMOVE_RECURSE
  "CMakeFiles/massf_pdes.dir/engine.cpp.o"
  "CMakeFiles/massf_pdes.dir/engine.cpp.o.d"
  "CMakeFiles/massf_pdes.dir/threaded.cpp.o"
  "CMakeFiles/massf_pdes.dir/threaded.cpp.o.d"
  "libmassf_pdes.a"
  "libmassf_pdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_pdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
