file(REMOVE_RECURSE
  "libmassf_pdes.a"
)
