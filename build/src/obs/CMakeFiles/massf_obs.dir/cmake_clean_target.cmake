file(REMOVE_RECURSE
  "libmassf_obs.a"
)
