file(REMOVE_RECURSE
  "CMakeFiles/massf_obs.dir/export.cpp.o"
  "CMakeFiles/massf_obs.dir/export.cpp.o.d"
  "CMakeFiles/massf_obs.dir/metrics.cpp.o"
  "CMakeFiles/massf_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/massf_obs.dir/probe.cpp.o"
  "CMakeFiles/massf_obs.dir/probe.cpp.o.d"
  "libmassf_obs.a"
  "libmassf_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
