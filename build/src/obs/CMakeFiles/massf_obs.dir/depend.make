# Empty dependencies file for massf_obs.
# This may be replaced when dependencies are built.
