file(REMOVE_RECURSE
  "CMakeFiles/massf_topology.dir/brite.cpp.o"
  "CMakeFiles/massf_topology.dir/brite.cpp.o.d"
  "CMakeFiles/massf_topology.dir/mabrite.cpp.o"
  "CMakeFiles/massf_topology.dir/mabrite.cpp.o.d"
  "CMakeFiles/massf_topology.dir/network.cpp.o"
  "CMakeFiles/massf_topology.dir/network.cpp.o.d"
  "libmassf_topology.a"
  "libmassf_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
