
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/graph_prep.cpp" "src/lb/CMakeFiles/massf_lb.dir/graph_prep.cpp.o" "gcc" "src/lb/CMakeFiles/massf_lb.dir/graph_prep.cpp.o.d"
  "/root/repo/src/lb/hierarchical.cpp" "src/lb/CMakeFiles/massf_lb.dir/hierarchical.cpp.o" "gcc" "src/lb/CMakeFiles/massf_lb.dir/hierarchical.cpp.o.d"
  "/root/repo/src/lb/mapping.cpp" "src/lb/CMakeFiles/massf_lb.dir/mapping.cpp.o" "gcc" "src/lb/CMakeFiles/massf_lb.dir/mapping.cpp.o.d"
  "/root/repo/src/lb/profile.cpp" "src/lb/CMakeFiles/massf_lb.dir/profile.cpp.o" "gcc" "src/lb/CMakeFiles/massf_lb.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/massf_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/massf_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/massf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/massf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/massf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pdes/CMakeFiles/massf_pdes.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/massf_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
