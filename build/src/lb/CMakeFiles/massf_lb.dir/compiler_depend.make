# Empty compiler generated dependencies file for massf_lb.
# This may be replaced when dependencies are built.
