file(REMOVE_RECURSE
  "CMakeFiles/massf_lb.dir/graph_prep.cpp.o"
  "CMakeFiles/massf_lb.dir/graph_prep.cpp.o.d"
  "CMakeFiles/massf_lb.dir/hierarchical.cpp.o"
  "CMakeFiles/massf_lb.dir/hierarchical.cpp.o.d"
  "CMakeFiles/massf_lb.dir/mapping.cpp.o"
  "CMakeFiles/massf_lb.dir/mapping.cpp.o.d"
  "CMakeFiles/massf_lb.dir/profile.cpp.o"
  "CMakeFiles/massf_lb.dir/profile.cpp.o.d"
  "libmassf_lb.a"
  "libmassf_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
