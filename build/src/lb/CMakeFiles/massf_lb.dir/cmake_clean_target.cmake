file(REMOVE_RECURSE
  "libmassf_lb.a"
)
