
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/apps.cpp" "src/traffic/CMakeFiles/massf_traffic.dir/apps.cpp.o" "gcc" "src/traffic/CMakeFiles/massf_traffic.dir/apps.cpp.o.d"
  "/root/repo/src/traffic/cbr.cpp" "src/traffic/CMakeFiles/massf_traffic.dir/cbr.cpp.o" "gcc" "src/traffic/CMakeFiles/massf_traffic.dir/cbr.cpp.o.d"
  "/root/repo/src/traffic/dataflow.cpp" "src/traffic/CMakeFiles/massf_traffic.dir/dataflow.cpp.o" "gcc" "src/traffic/CMakeFiles/massf_traffic.dir/dataflow.cpp.o.d"
  "/root/repo/src/traffic/http.cpp" "src/traffic/CMakeFiles/massf_traffic.dir/http.cpp.o" "gcc" "src/traffic/CMakeFiles/massf_traffic.dir/http.cpp.o.d"
  "/root/repo/src/traffic/manager.cpp" "src/traffic/CMakeFiles/massf_traffic.dir/manager.cpp.o" "gcc" "src/traffic/CMakeFiles/massf_traffic.dir/manager.cpp.o.d"
  "/root/repo/src/traffic/ping.cpp" "src/traffic/CMakeFiles/massf_traffic.dir/ping.cpp.o" "gcc" "src/traffic/CMakeFiles/massf_traffic.dir/ping.cpp.o.d"
  "/root/repo/src/traffic/vm.cpp" "src/traffic/CMakeFiles/massf_traffic.dir/vm.cpp.o" "gcc" "src/traffic/CMakeFiles/massf_traffic.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/massf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/massf_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/massf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pdes/CMakeFiles/massf_pdes.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/massf_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/massf_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/massf_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
