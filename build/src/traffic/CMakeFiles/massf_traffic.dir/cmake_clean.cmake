file(REMOVE_RECURSE
  "CMakeFiles/massf_traffic.dir/apps.cpp.o"
  "CMakeFiles/massf_traffic.dir/apps.cpp.o.d"
  "CMakeFiles/massf_traffic.dir/cbr.cpp.o"
  "CMakeFiles/massf_traffic.dir/cbr.cpp.o.d"
  "CMakeFiles/massf_traffic.dir/dataflow.cpp.o"
  "CMakeFiles/massf_traffic.dir/dataflow.cpp.o.d"
  "CMakeFiles/massf_traffic.dir/http.cpp.o"
  "CMakeFiles/massf_traffic.dir/http.cpp.o.d"
  "CMakeFiles/massf_traffic.dir/manager.cpp.o"
  "CMakeFiles/massf_traffic.dir/manager.cpp.o.d"
  "CMakeFiles/massf_traffic.dir/ping.cpp.o"
  "CMakeFiles/massf_traffic.dir/ping.cpp.o.d"
  "CMakeFiles/massf_traffic.dir/vm.cpp.o"
  "CMakeFiles/massf_traffic.dir/vm.cpp.o.d"
  "libmassf_traffic.a"
  "libmassf_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
