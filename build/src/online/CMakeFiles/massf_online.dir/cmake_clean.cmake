file(REMOVE_RECURSE
  "CMakeFiles/massf_online.dir/agent.cpp.o"
  "CMakeFiles/massf_online.dir/agent.cpp.o.d"
  "CMakeFiles/massf_online.dir/vsocket.cpp.o"
  "CMakeFiles/massf_online.dir/vsocket.cpp.o.d"
  "libmassf_online.a"
  "libmassf_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
