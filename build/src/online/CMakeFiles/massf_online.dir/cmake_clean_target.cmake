file(REMOVE_RECURSE
  "libmassf_online.a"
)
