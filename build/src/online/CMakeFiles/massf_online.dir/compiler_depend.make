# Empty compiler generated dependencies file for massf_online.
# This may be replaced when dependencies are built.
