# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("graph")
subdirs("partition")
subdirs("topology")
subdirs("routing")
subdirs("pdes")
subdirs("cluster")
subdirs("net")
subdirs("traffic")
subdirs("lb")
subdirs("online")
subdirs("dml")
subdirs("sim")
