file(REMOVE_RECURSE
  "CMakeFiles/massf_dml.dir/dml.cpp.o"
  "CMakeFiles/massf_dml.dir/dml.cpp.o.d"
  "CMakeFiles/massf_dml.dir/network_dml.cpp.o"
  "CMakeFiles/massf_dml.dir/network_dml.cpp.o.d"
  "libmassf_dml.a"
  "libmassf_dml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_dml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
