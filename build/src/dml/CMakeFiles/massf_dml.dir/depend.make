# Empty dependencies file for massf_dml.
# This may be replaced when dependencies are built.
