file(REMOVE_RECURSE
  "libmassf_dml.a"
)
