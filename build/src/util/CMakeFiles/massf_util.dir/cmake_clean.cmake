file(REMOVE_RECURSE
  "CMakeFiles/massf_util.dir/flags.cpp.o"
  "CMakeFiles/massf_util.dir/flags.cpp.o.d"
  "CMakeFiles/massf_util.dir/log.cpp.o"
  "CMakeFiles/massf_util.dir/log.cpp.o.d"
  "CMakeFiles/massf_util.dir/rng.cpp.o"
  "CMakeFiles/massf_util.dir/rng.cpp.o.d"
  "CMakeFiles/massf_util.dir/stats.cpp.o"
  "CMakeFiles/massf_util.dir/stats.cpp.o.d"
  "libmassf_util.a"
  "libmassf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
