file(REMOVE_RECURSE
  "libmassf_util.a"
)
