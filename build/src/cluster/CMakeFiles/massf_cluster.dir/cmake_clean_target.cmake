file(REMOVE_RECURSE
  "libmassf_cluster.a"
)
