# Empty dependencies file for massf_cluster.
# This may be replaced when dependencies are built.
