
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cost_model.cpp" "src/cluster/CMakeFiles/massf_cluster.dir/cost_model.cpp.o" "gcc" "src/cluster/CMakeFiles/massf_cluster.dir/cost_model.cpp.o.d"
  "/root/repo/src/cluster/metrics.cpp" "src/cluster/CMakeFiles/massf_cluster.dir/metrics.cpp.o" "gcc" "src/cluster/CMakeFiles/massf_cluster.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdes/CMakeFiles/massf_pdes.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/massf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/massf_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
