file(REMOVE_RECURSE
  "CMakeFiles/massf_cluster.dir/cost_model.cpp.o"
  "CMakeFiles/massf_cluster.dir/cost_model.cpp.o.d"
  "CMakeFiles/massf_cluster.dir/metrics.cpp.o"
  "CMakeFiles/massf_cluster.dir/metrics.cpp.o.d"
  "libmassf_cluster.a"
  "libmassf_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
