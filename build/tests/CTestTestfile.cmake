# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/pdes_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/lb_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/online_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bgp_dynamic_test[1]_include.cmake")
include("/root/repo/build/tests/dml_test[1]_include.cmake")
include("/root/repo/build/tests/validation_test[1]_include.cmake")
