file(REMOVE_RECURSE
  "CMakeFiles/dml_test.dir/dml_test.cpp.o"
  "CMakeFiles/dml_test.dir/dml_test.cpp.o.d"
  "dml_test"
  "dml_test.pdb"
  "dml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
