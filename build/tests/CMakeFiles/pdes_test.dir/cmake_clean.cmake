file(REMOVE_RECURSE
  "CMakeFiles/pdes_test.dir/pdes_test.cpp.o"
  "CMakeFiles/pdes_test.dir/pdes_test.cpp.o.d"
  "pdes_test"
  "pdes_test.pdb"
  "pdes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
