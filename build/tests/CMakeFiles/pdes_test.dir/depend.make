# Empty dependencies file for pdes_test.
# This may be replaced when dependencies are built.
