file(REMOVE_RECURSE
  "CMakeFiles/bgp_dynamic_test.dir/bgp_dynamic_test.cpp.o"
  "CMakeFiles/bgp_dynamic_test.dir/bgp_dynamic_test.cpp.o.d"
  "bgp_dynamic_test"
  "bgp_dynamic_test.pdb"
  "bgp_dynamic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
