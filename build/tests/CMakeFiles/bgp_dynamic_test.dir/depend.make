# Empty dependencies file for bgp_dynamic_test.
# This may be replaced when dependencies are built.
