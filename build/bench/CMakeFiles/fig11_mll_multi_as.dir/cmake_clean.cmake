file(REMOVE_RECURSE
  "CMakeFiles/fig11_mll_multi_as.dir/fig11_mll_multi_as.cpp.o"
  "CMakeFiles/fig11_mll_multi_as.dir/fig11_mll_multi_as.cpp.o.d"
  "fig11_mll_multi_as"
  "fig11_mll_multi_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mll_multi_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
