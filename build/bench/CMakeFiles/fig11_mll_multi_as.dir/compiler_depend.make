# Empty compiler generated dependencies file for fig11_mll_multi_as.
# This may be replaced when dependencies are built.
