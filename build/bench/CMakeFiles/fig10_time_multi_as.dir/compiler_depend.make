# Empty compiler generated dependencies file for fig10_time_multi_as.
# This may be replaced when dependencies are built.
