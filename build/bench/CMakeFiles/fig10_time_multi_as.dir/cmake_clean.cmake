file(REMOVE_RECURSE
  "CMakeFiles/fig10_time_multi_as.dir/fig10_time_multi_as.cpp.o"
  "CMakeFiles/fig10_time_multi_as.dir/fig10_time_multi_as.cpp.o.d"
  "fig10_time_multi_as"
  "fig10_time_multi_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_time_multi_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
