file(REMOVE_RECURSE
  "CMakeFiles/bench_pdes.dir/bench_pdes.cpp.o"
  "CMakeFiles/bench_pdes.dir/bench_pdes.cpp.o.d"
  "bench_pdes"
  "bench_pdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
