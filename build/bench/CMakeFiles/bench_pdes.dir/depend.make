# Empty dependencies file for bench_pdes.
# This may be replaced when dependencies are built.
