# Empty compiler generated dependencies file for fig08_imbalance_single_as.
# This may be replaced when dependencies are built.
