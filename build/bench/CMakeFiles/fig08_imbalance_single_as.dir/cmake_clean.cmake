file(REMOVE_RECURSE
  "CMakeFiles/fig08_imbalance_single_as.dir/fig08_imbalance_single_as.cpp.o"
  "CMakeFiles/fig08_imbalance_single_as.dir/fig08_imbalance_single_as.cpp.o.d"
  "fig08_imbalance_single_as"
  "fig08_imbalance_single_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_imbalance_single_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
