file(REMOVE_RECURSE
  "CMakeFiles/fig03_load_variation.dir/fig03_load_variation.cpp.o"
  "CMakeFiles/fig03_load_variation.dir/fig03_load_variation.cpp.o.d"
  "fig03_load_variation"
  "fig03_load_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_load_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
