# Empty dependencies file for fig03_load_variation.
# This may be replaced when dependencies are built.
