file(REMOVE_RECURSE
  "CMakeFiles/micro_pdes.dir/micro_pdes.cpp.o"
  "CMakeFiles/micro_pdes.dir/micro_pdes.cpp.o.d"
  "micro_pdes"
  "micro_pdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
