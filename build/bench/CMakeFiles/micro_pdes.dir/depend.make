# Empty dependencies file for micro_pdes.
# This may be replaced when dependencies are built.
