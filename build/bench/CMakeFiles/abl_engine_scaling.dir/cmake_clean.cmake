file(REMOVE_RECURSE
  "CMakeFiles/abl_engine_scaling.dir/abl_engine_scaling.cpp.o"
  "CMakeFiles/abl_engine_scaling.dir/abl_engine_scaling.cpp.o.d"
  "abl_engine_scaling"
  "abl_engine_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_engine_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
