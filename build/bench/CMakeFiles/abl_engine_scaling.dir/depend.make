# Empty dependencies file for abl_engine_scaling.
# This may be replaced when dependencies are built.
