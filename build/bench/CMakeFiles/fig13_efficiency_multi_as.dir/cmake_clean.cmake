file(REMOVE_RECURSE
  "CMakeFiles/fig13_efficiency_multi_as.dir/fig13_efficiency_multi_as.cpp.o"
  "CMakeFiles/fig13_efficiency_multi_as.dir/fig13_efficiency_multi_as.cpp.o.d"
  "fig13_efficiency_multi_as"
  "fig13_efficiency_multi_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_efficiency_multi_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
