# Empty dependencies file for fig13_efficiency_multi_as.
# This may be replaced when dependencies are built.
