file(REMOVE_RECURSE
  "CMakeFiles/massf_bench_common.dir/common.cpp.o"
  "CMakeFiles/massf_bench_common.dir/common.cpp.o.d"
  "libmassf_bench_common.a"
  "libmassf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
