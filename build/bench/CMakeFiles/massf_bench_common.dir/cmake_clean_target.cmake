file(REMOVE_RECURSE
  "libmassf_bench_common.a"
)
