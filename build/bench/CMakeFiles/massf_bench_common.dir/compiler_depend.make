# Empty compiler generated dependencies file for massf_bench_common.
# This may be replaced when dependencies are built.
