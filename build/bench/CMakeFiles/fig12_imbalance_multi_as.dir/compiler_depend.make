# Empty compiler generated dependencies file for fig12_imbalance_multi_as.
# This may be replaced when dependencies are built.
