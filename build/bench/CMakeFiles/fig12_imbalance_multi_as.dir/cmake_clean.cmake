file(REMOVE_RECURSE
  "CMakeFiles/fig12_imbalance_multi_as.dir/fig12_imbalance_multi_as.cpp.o"
  "CMakeFiles/fig12_imbalance_multi_as.dir/fig12_imbalance_multi_as.cpp.o.d"
  "fig12_imbalance_multi_as"
  "fig12_imbalance_multi_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_imbalance_multi_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
