# Empty compiler generated dependencies file for abl_tmll_sweep.
# This may be replaced when dependencies are built.
