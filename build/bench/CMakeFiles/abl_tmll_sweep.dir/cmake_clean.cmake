file(REMOVE_RECURSE
  "CMakeFiles/abl_tmll_sweep.dir/abl_tmll_sweep.cpp.o"
  "CMakeFiles/abl_tmll_sweep.dir/abl_tmll_sweep.cpp.o.d"
  "abl_tmll_sweep"
  "abl_tmll_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tmll_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
