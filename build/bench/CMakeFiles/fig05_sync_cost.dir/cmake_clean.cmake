file(REMOVE_RECURSE
  "CMakeFiles/fig05_sync_cost.dir/fig05_sync_cost.cpp.o"
  "CMakeFiles/fig05_sync_cost.dir/fig05_sync_cost.cpp.o.d"
  "fig05_sync_cost"
  "fig05_sync_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sync_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
