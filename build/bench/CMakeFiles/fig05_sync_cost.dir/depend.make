# Empty dependencies file for fig05_sync_cost.
# This may be replaced when dependencies are built.
