# Empty dependencies file for fig06_time_single_as.
# This may be replaced when dependencies are built.
