file(REMOVE_RECURSE
  "CMakeFiles/fig06_time_single_as.dir/fig06_time_single_as.cpp.o"
  "CMakeFiles/fig06_time_single_as.dir/fig06_time_single_as.cpp.o.d"
  "fig06_time_single_as"
  "fig06_time_single_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_time_single_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
