# Empty dependencies file for abl_tuned_exponent.
# This may be replaced when dependencies are built.
