file(REMOVE_RECURSE
  "CMakeFiles/abl_tuned_exponent.dir/abl_tuned_exponent.cpp.o"
  "CMakeFiles/abl_tuned_exponent.dir/abl_tuned_exponent.cpp.o.d"
  "abl_tuned_exponent"
  "abl_tuned_exponent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tuned_exponent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
