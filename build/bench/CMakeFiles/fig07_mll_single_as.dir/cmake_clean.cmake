file(REMOVE_RECURSE
  "CMakeFiles/fig07_mll_single_as.dir/fig07_mll_single_as.cpp.o"
  "CMakeFiles/fig07_mll_single_as.dir/fig07_mll_single_as.cpp.o.d"
  "fig07_mll_single_as"
  "fig07_mll_single_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_mll_single_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
