# Empty dependencies file for fig07_mll_single_as.
# This may be replaced when dependencies are built.
