# Empty dependencies file for fig09_efficiency_single_as.
# This may be replaced when dependencies are built.
