file(REMOVE_RECURSE
  "CMakeFiles/fig09_efficiency_single_as.dir/fig09_efficiency_single_as.cpp.o"
  "CMakeFiles/fig09_efficiency_single_as.dir/fig09_efficiency_single_as.cpp.o.d"
  "fig09_efficiency_single_as"
  "fig09_efficiency_single_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_efficiency_single_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
