# Empty dependencies file for online_app.
# This may be replaced when dependencies are built.
