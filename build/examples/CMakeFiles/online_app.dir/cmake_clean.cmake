file(REMOVE_RECURSE
  "CMakeFiles/online_app.dir/online_app.cpp.o"
  "CMakeFiles/online_app.dir/online_app.cpp.o.d"
  "online_app"
  "online_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
