file(REMOVE_RECURSE
  "CMakeFiles/single_as_study.dir/single_as_study.cpp.o"
  "CMakeFiles/single_as_study.dir/single_as_study.cpp.o.d"
  "single_as_study"
  "single_as_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_as_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
