# Empty dependencies file for single_as_study.
# This may be replaced when dependencies are built.
