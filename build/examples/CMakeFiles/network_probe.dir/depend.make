# Empty dependencies file for network_probe.
# This may be replaced when dependencies are built.
