file(REMOVE_RECURSE
  "CMakeFiles/network_probe.dir/network_probe.cpp.o"
  "CMakeFiles/network_probe.dir/network_probe.cpp.o.d"
  "network_probe"
  "network_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
