file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_partition_demo.dir/hierarchical_partition_demo.cpp.o"
  "CMakeFiles/hierarchical_partition_demo.dir/hierarchical_partition_demo.cpp.o.d"
  "hierarchical_partition_demo"
  "hierarchical_partition_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_partition_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
