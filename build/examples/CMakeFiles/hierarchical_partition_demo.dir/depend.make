# Empty dependencies file for hierarchical_partition_demo.
# This may be replaced when dependencies are built.
