file(REMOVE_RECURSE
  "CMakeFiles/bgp_beacon.dir/bgp_beacon.cpp.o"
  "CMakeFiles/bgp_beacon.dir/bgp_beacon.cpp.o.d"
  "bgp_beacon"
  "bgp_beacon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_beacon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
