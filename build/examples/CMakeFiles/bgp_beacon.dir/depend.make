# Empty dependencies file for bgp_beacon.
# This may be replaced when dependencies are built.
