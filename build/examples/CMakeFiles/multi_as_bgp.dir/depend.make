# Empty dependencies file for multi_as_bgp.
# This may be replaced when dependencies are built.
