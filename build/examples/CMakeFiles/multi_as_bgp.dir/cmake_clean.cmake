file(REMOVE_RECURSE
  "CMakeFiles/multi_as_bgp.dir/multi_as_bgp.cpp.o"
  "CMakeFiles/multi_as_bgp.dir/multi_as_bgp.cpp.o.d"
  "multi_as_bgp"
  "multi_as_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_as_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
