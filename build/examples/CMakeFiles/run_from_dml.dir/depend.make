# Empty dependencies file for run_from_dml.
# This may be replaced when dependencies are built.
