file(REMOVE_RECURSE
  "CMakeFiles/run_from_dml.dir/run_from_dml.cpp.o"
  "CMakeFiles/run_from_dml.dir/run_from_dml.cpp.o.d"
  "run_from_dml"
  "run_from_dml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_from_dml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
