# Empty dependencies file for massf_cli.
# This may be replaced when dependencies are built.
