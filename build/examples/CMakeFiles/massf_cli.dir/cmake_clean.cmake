file(REMOVE_RECURSE
  "CMakeFiles/massf_cli.dir/massf_cli.cpp.o"
  "CMakeFiles/massf_cli.dir/massf_cli.cpp.o.d"
  "massf_cli"
  "massf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
