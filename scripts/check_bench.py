#!/usr/bin/env python3
"""Regression gate: compare a fresh `bench_pdes --json` run to BENCH_pdes.json.

Two classes of check:
  * Determinism (exact): every executor entry must report the pinned golden
    checksum plus the exact event and window counts. Any drift means the
    event-ordering contract changed — see tests/regen_golden.sh before
    re-pinning.
  * Throughput (tolerant): events/s may regress by at most --tolerance
    (fractional, default 0.5 — CI runners are noisy and slower than the
    machine that produced the baseline; the gate exists to catch order-of-
    magnitude cliffs, not single-digit noise).

Usage:
  bench_pdes --out current.json   # NOT the default --out, which would
                                  # overwrite the committed baseline
  scripts/check_bench.py [--baseline BENCH_pdes.json] [--current current.json]
                         [--tolerance 0.5]

Exit status: 0 on pass, 1 on any failed check, 2 on malformed input.
"""

import argparse
import json
import sys


def entries(doc):
    """Yield (label, entry) for every executor measurement in a report."""
    yield "sequential", doc["sequential"]
    yield "threaded", doc["threaded"]
    for sweep in doc.get("sweep", []):
        yield f"sweep[threads={sweep['threads']}]", sweep


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_pdes.json")
    parser.add_argument("--current", default="current.json")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="max fractional events/s regression (default 0.5)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot load input: {e}", file=sys.stderr)
        return 2

    for doc, name in ((baseline, args.baseline), (current, args.current)):
        if doc.get("schema") != "massf.bench_pdes.v2":
            print(f"check_bench: {name}: unexpected schema "
                  f"{doc.get('schema')!r}", file=sys.stderr)
            return 2

    golden = baseline["sequential"]["checksum"]
    golden_events = baseline["sequential"]["events"]
    golden_windows = baseline["sequential"]["windows"]
    failures = []

    # Determinism: exact, for every entry in the current report.
    for label, entry in entries(current):
        for field, want in (("checksum", golden), ("events", golden_events),
                            ("windows", golden_windows)):
            if entry[field] != want:
                failures.append(
                    f"{label}: {field} {entry[field]} != golden {want}")

    # Throughput: compare matching thread counts (runner core counts differ,
    # so sweep entries absent from either report are skipped, not failed).
    base_by_threads = {e["threads"]: (label, e)
                       for label, e in entries(baseline)}
    for label, entry in entries(current):
        match = base_by_threads.get(entry["threads"])
        if match is None:
            print(f"check_bench: note: no baseline for {label}, "
                  f"skipping throughput check", file=sys.stderr)
            continue
        floor = match[1]["events_per_sec"] * (1.0 - args.tolerance)
        if entry["events_per_sec"] < floor:
            failures.append(
                f"{label}: {entry['events_per_sec']:.0f} events/s is below "
                f"{floor:.0f} (baseline {match[1]['events_per_sec']:.0f} "
                f"minus {args.tolerance:.0%} tolerance)")

    if failures:
        for failure in failures:
            print(f"check_bench: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check_bench: OK — checksum {golden}, "
          f"{sum(1 for _ in entries(current))} entries within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
