#!/usr/bin/env python3
"""Regression gate for bench JSON reports.

Schemas understood (dispatched on the current report's "schema" field):

  massf.bench_pdes.v2 — compare a fresh `bench_pdes --json` run against the
  committed BENCH_pdes.json baseline. Checks:
    * Determinism (exact): every executor entry must report the pinned
      golden checksum plus the exact event and window counts. Any drift
      means the event-ordering contract changed — see tests/regen_golden.sh
      before re-pinning.
    * Throughput (tolerant): events/s may regress by at most --tolerance
      (fractional, default 0.5 — CI runners are noisy and slower than the
      machine that produced the baseline; the gate exists to catch
      order-of-magnitude cliffs, not single-digit noise). Entries are
      matched by (sync, threads) so barrier and channel rows are gated
      against their own baselines, never each other.
    * Wait accounting (exact-ish): barrier_wait_s is a summed thread-
      seconds quantity; barrier_wait_mean_s must equal it divided by the
      thread count, so the two fields cannot drift apart and a reader
      comparing waits against wall_s compares like with like.
    * Channel-wait reduction (self-contained): when the current report
      carries both a "threaded" (barrier) and "threaded_channel" entry at
      the same thread count, the channel protocol's summed wait must be at
      least --min-wait-reduction (default 0.5) below the barrier's — same
      machine, same run, identical event counts by the determinism check.
      Applied only when config.host_cpus >= threads: on an oversubscribed
      host the summed wait is pinned near (threads - 1) * wall_s by the OS
      scheduler for *any* protocol, so the comparison would measure core
      starvation, not synchronization. (Channel sync still shows up there
      as lower wall_s / higher events/s, which the throughput check gates.)
    * Supervision overhead (self-contained): when the current report
      carries a "sequential_guard" entry (armed liveness watchdog, DESIGN.md
      section 5h), its events/s must stay within --max-guard-overhead
      (default 0.10) of the unguarded sequential row from the same run.
      Guarded entries carry "guard": true and are matched against their own
      baselines in the throughput check, never against unguarded rows.
    * Sharded transport (self-contained): when the current report carries a
      "sharded" entry (multi-process executor, DESIGN.md section 5j), its
      checksum/events/windows ride the determinism check like every other
      row, its events/s is gated against the baseline entry with the same
      "shards" count (the key carries shards, default 0, so process rows
      never gate against thread rows), and its ring_wait_share — the share
      of total worker-seconds spent blocked on the cross-shard rings and
      control page — must stay under --max-ring-wait-share (default 0.5).
      Like the channel-wait check, the share gate is skipped when
      config.host_cpus < shards: an oversubscribed host pins workers in
      transport waits by scheduling, not by protocol cost.

  massf.bench_rebalance.v1 — self-contained gate on a
  `bench_rebalance --json` run (no baseline file needed):
    * sequential/threaded full-signature equality must hold with
      rebalancing enabled;
    * the rebalanced run must beat the static mapping by at least
      --min-improvement modeled time (default 0.15);
    * the controller must actually have migrated something.

  massf.bench_hybrid.v1 — self-contained gate on a `bench_hybrid --out`
  run (no baseline file needed):
    * host_scale (largest swept source multiplier the hybrid link model
      carries within the packet reference's event budget) must reach
      --min-host-scale (default 10);
    * event_ratio (packet events / hybrid events at equal sources) must
      reach --min-event-ratio (default 10);
    * the hybrid run's aggregate fidelity drift vs the packet reference at
      equal sources must stay inside --max-duration-err (default 0.5,
      mean flow duration), --max-goodput-err (default 0.2, mean per-flow
      goodput), and --max-completed-err (default 0.4, completed-flow
      count). Bounds carry ~2x headroom over measured values (duration
      0.27, goodput 0.05, completed 0.17 at the full scale) — the gate
      catches model regressions, not seed noise;
    * every run must have completed at least one background flow.

  massf.campaign.v1 — gate on a `massf_campaign` roll-up, selected with
  --campaign PATH (no baseline file needed):
    * no failed runs (the "failed" list must be empty and every run ok);
    * every golden calibration row must report --golden-checksum (default:
      the pinned PDES-ring value), wiring the engine-determinism contract
      into campaign artifacts;
    * with --compare OTHER.json, the two roll-ups must be identical once
      their "timing" sections are dropped — the 1-vs-N-workers
      reproducibility check the nightly job runs.

Usage:
  bench_pdes --out current.json   # NOT the default --out, which would
                                  # overwrite the committed baseline
  scripts/check_bench.py [--baseline BENCH_pdes.json] [--current current.json]
                         [--tolerance 0.5] [--allow-missing-baseline]
                         [--min-improvement 0.15] [--min-wait-reduction 0.5]

Exit status: 0 on pass, 1 on any failed check, 2 on missing/malformed input
(one-line actionable message on stderr, no traceback).
"""

import argparse
import json
import os
import sys


def die(message):
    """Exit 2 with a one-line actionable message (never a traceback)."""
    print(f"check_bench: error: {message}", file=sys.stderr)
    sys.exit(2)


def load_json(path, hint):
    if not os.path.exists(path):
        die(f"{path} not found — {hint}")
    try:
        with open(path) as f:
            return json.load(f)
    except json.JSONDecodeError as e:
        die(f"{path} is not valid JSON ({e}) — regenerate it")
    except OSError as e:
        die(f"cannot read {path}: {e}")


def get(doc, path, filename):
    """Fetch doc["a"]["b"] for path "a.b"; missing key = actionable exit 2."""
    node = doc
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            die(f"{filename}: missing key '{path}' — the report schema "
                f"changed or the bench was interrupted; regenerate it")
        node = node[key]
    return node


def entries(doc, filename):
    """Yield (label, entry) for every executor measurement in a report."""
    yield "sequential", get(doc, "sequential", filename)
    if "sequential_guard" in doc:
        yield "sequential_guard", doc["sequential_guard"]
    named = [name for name in ("threaded", "threaded_channel") if name in doc]
    if not named:
        die(f"{filename}: no threaded entry ('threaded' or "
            f"'threaded_channel') — the report schema changed or the bench "
            f"was interrupted; regenerate it")
    for name in named:
        yield name, doc[name]
    if "sharded" in doc:
        yield "sharded", doc["sharded"]
    for sweep in doc.get("sweep", []):
        label = (f"sweep[sync={sweep.get('sync', 'barrier')},"
                 f"threads={sweep.get('threads', '?')}]")
        yield label, sweep


def sync_of(entry):
    """Sync-protocol tag of an entry; reports predating the channel-clock
    executor carry no "sync" field and were barrier-threaded (or
    sequential, tagged "none")."""
    if "sync" in entry:
        return entry["sync"]
    return "none" if entry.get("threads", 0) == 0 else "barrier"


def field(entry, label, name, filename):
    if name not in entry:
        die(f"{filename}: entry '{label}' is missing '{name}' — "
            f"regenerate the report")
    return entry[name]


def check_pdes(baseline, current, args):
    for doc, name in ((baseline, args.baseline), (current, args.current)):
        if doc.get("schema") != "massf.bench_pdes.v2":
            die(f"{name}: unexpected schema {doc.get('schema')!r} "
                f"(want massf.bench_pdes.v2)")

    golden = get(baseline, "sequential.checksum", args.baseline)
    golden_events = get(baseline, "sequential.events", args.baseline)
    golden_windows = get(baseline, "sequential.windows", args.baseline)
    failures = []

    # Determinism: exact, for every entry in the current report.
    for label, entry in entries(current, args.current):
        for name, want in (("checksum", golden), ("events", golden_events),
                           ("windows", golden_windows)):
            got = field(entry, label, name, args.current)
            if got != want:
                failures.append(f"{label}: {name} {got} != golden {want}")

    # Throughput: compare matching (sync, threads, guard, shards) keys —
    # like with like; runner core counts differ, so entries absent from
    # either report are skipped, not failed. The guard flag is part of the
    # key so the supervised row never gates (or hides behind) the unguarded
    # one; shards (0 for every in-process row) keeps the multi-process row
    # in its own lane — it has no "threads" field at all.
    def entry_key(label, e, filename):
        shards = e.get("shards", 0)
        if shards:
            return ("sharded", 0, False, shards)
        return (sync_of(e), field(e, label, "threads", filename),
                bool(e.get("guard", False)), 0)

    base_by_key = {
        entry_key(label, e, args.baseline): (label, e)
        for label, e in entries(baseline, args.baseline)}
    for label, entry in entries(current, args.current):
        match = base_by_key.get(entry_key(label, entry, args.current))
        if match is None:
            print(f"check_bench: note: no baseline for {label}, "
                  f"skipping throughput check", file=sys.stderr)
            continue
        base_eps = field(match[1], match[0], "events_per_sec", args.baseline)
        cur_eps = field(entry, label, "events_per_sec", args.current)
        floor = base_eps * (1.0 - args.tolerance)
        if cur_eps < floor:
            failures.append(
                f"{label}: {cur_eps:.0f} events/s is below {floor:.0f} "
                f"(baseline {base_eps:.0f} minus "
                f"{args.tolerance:.0%} tolerance)")

    # Wait accounting: the summed and per-thread-mean wait fields must
    # agree (mean * threads == sum, within float-formatting slack).
    for label, entry in entries(current, args.current):
        if "barrier_wait_mean_s" not in entry:
            continue
        threads = field(entry, label, "threads", args.current)
        wait_sum = field(entry, label, "barrier_wait_s", args.current)
        mean = entry["barrier_wait_mean_s"]
        want = wait_sum / threads if threads > 0 else wait_sum
        if abs(mean - want) > 1e-9 + 1e-6 * abs(wait_sum):
            failures.append(
                f"{label}: barrier_wait_mean_s {mean} inconsistent with "
                f"barrier_wait_s {wait_sum} over {threads} threads")

    # Channel-wait reduction, within the current report only (same machine,
    # same run): channel sync must cut the summed wait vs the barrier run
    # at the same thread count. Skipped when the barrier wait is too small
    # to measure a reduction against, and on oversubscribed hosts (see the
    # module docstring: there the summed wait measures core starvation).
    cur = {label: e for label, e in entries(current, args.current)}
    barrier_top, channel_top = cur.get("threaded"), cur.get("threaded_channel")
    if (barrier_top is not None and channel_top is not None
            and barrier_top.get("threads") == channel_top.get("threads")
            and barrier_top.get("barrier_wait_s", 0) > 1e-3):
        host_cpus = current.get("config", {}).get("host_cpus", 0)
        threads = barrier_top.get("threads", 0)
        if host_cpus < threads:
            print(f"check_bench: note: host has {host_cpus} cpus for "
                  f"{threads} threads — summed wait is scheduler-bound, "
                  f"skipping channel-wait-reduction check", file=sys.stderr)
        else:
            barrier_wait = barrier_top["barrier_wait_s"]
            channel_wait = field(channel_top, "threaded_channel",
                                 "barrier_wait_s", args.current)
            ceiling = barrier_wait * (1.0 - args.min_wait_reduction)
            if channel_wait > ceiling:
                failures.append(
                    f"threaded_channel: summed sync wait {channel_wait:.4f}s "
                    f"exceeds {ceiling:.4f}s ({args.min_wait_reduction:.0%} "
                    f"reduction gate vs barrier {barrier_wait:.4f}s)")

    # Sharded transport share, within the current report only: the fraction
    # of total worker-seconds the multi-process executor spent blocked on
    # its rings + control page. Skipped on oversubscribed hosts for the
    # same reason as the channel-wait check — there the waits measure core
    # starvation, not transport cost.
    sharded_top = cur.get("sharded")
    if sharded_top is not None:
        host_cpus = current.get("config", {}).get("host_cpus", 0)
        shards = field(sharded_top, "sharded", "shards", args.current)
        share = field(sharded_top, "sharded", "ring_wait_share", args.current)
        if host_cpus < shards:
            print(f"check_bench: note: host has {host_cpus} cpus for "
                  f"{shards} shard workers — transport waits are scheduler-"
                  f"bound, skipping ring-wait-share check", file=sys.stderr)
        elif share > args.max_ring_wait_share:
            failures.append(
                f"sharded: ring_wait_share {share:.3f} exceeds the "
                f"{args.max_ring_wait_share:.2f} gate — workers spend too "
                f"much of the run blocked on the cross-shard transport")

    # Supervision overhead, within the current report only (same machine,
    # same run): the armed-watchdog sequential row must stay within
    # --max-guard-overhead of the unguarded sequential row. The watchdog
    # only reads atomics on a sleepy cadence, so the true cost is ~0; the
    # gate's slack absorbs run-to-run noise, not a real cost.
    guard_top = cur.get("sequential_guard")
    if guard_top is not None:
        seq_eps = field(cur["sequential"], "sequential", "events_per_sec",
                        args.current)
        guard_eps = field(guard_top, "sequential_guard", "events_per_sec",
                          args.current)
        floor = seq_eps * (1.0 - args.max_guard_overhead)
        if guard_eps < floor:
            failures.append(
                f"sequential_guard: {guard_eps:.0f} events/s is below "
                f"{floor:.0f} (unguarded {seq_eps:.0f} minus "
                f"{args.max_guard_overhead:.0%} supervision-overhead gate)")

    if failures:
        for failure in failures:
            print(f"check_bench: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check_bench: OK — checksum {golden}, "
          f"{sum(1 for _ in entries(current, args.current))} entries "
          f"within tolerance")
    return 0


def check_rebalance(current, args):
    failures = []
    if not get(current, "rebalanced.signature_equal", args.current):
        failures.append("rebalanced run: sequential vs threaded event "
                        "signatures differ (determinism broken)")
    improvement = get(current, "improvement", args.current)
    if improvement < args.min_improvement:
        failures.append(
            f"modeled-time improvement {improvement:.1%} is below the "
            f"{args.min_improvement:.0%} gate")
    if get(current, "rebalanced.moves", args.current) <= 0:
        failures.append("rebalanced run migrated nothing — the controller "
                        "never triggered")

    if failures:
        for failure in failures:
            print(f"check_bench: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check_bench: OK — rebalance improvement {improvement:.1%}, "
          f"{get(current, 'rebalanced.moves', args.current)} moves, "
          f"signatures equal")
    return 0


def check_hybrid(current, args):
    failures = []
    host_scale = get(current, "host_scale", args.current)
    if host_scale < args.min_host_scale:
        failures.append(
            f"host_scale {host_scale}x is below the {args.min_host_scale}x "
            f"gate — the hybrid model no longer carries 10x the sources "
            f"within the packet event budget")
    event_ratio = get(current, "event_ratio", args.current)
    if event_ratio < args.min_event_ratio:
        failures.append(
            f"event_ratio {event_ratio:.1f}x is below the "
            f"{args.min_event_ratio}x gate")
    for name, bound in (("duration_err", args.max_duration_err),
                        ("goodput_err", args.max_goodput_err),
                        ("completed_err", args.max_completed_err)):
        err = get(current, name, args.current)
        if err > bound:
            failures.append(
                f"{name} {err:.3f} exceeds the {bound} fidelity gate — the "
                f"fluid model drifted from the packet reference")
    for run in get(current, "runs", args.current):
        if run.get("completed", 0) <= 0:
            failures.append(
                f"{run.get('fidelity')}@{run.get('sources')} sources "
                f"completed no background flows — the workload stalled")

    if failures:
        for failure in failures:
            print(f"check_bench: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check_bench: OK — hybrid host_scale {host_scale}x at "
          f"{event_ratio:.1f}x fewer events; fidelity err "
          f"duration {get(current, 'duration_err', args.current):.3f} "
          f"goodput {get(current, 'goodput_err', args.current):.3f} "
          f"completed {get(current, 'completed_err', args.current):.3f}")
    return 0


def check_campaign(args):
    doc = load_json(args.campaign,
                    "run massf_campaign --campaign=... --out=... first")
    if doc.get("schema") != "massf.campaign.v1":
        die(f"{args.campaign}: unexpected schema {doc.get('schema')!r} "
            f"(want massf.campaign.v1)")
    failures = []

    failed = get(doc, "failed", args.campaign)
    for run_id in failed:
        failures.append(f"run '{run_id}' failed")
    runs = get(doc, "runs", args.campaign)
    if not runs:
        failures.append("roll-up contains no runs")
    for run in runs:
        if not run.get("ok", False) and run.get("id") not in failed:
            failures.append(f"run '{run.get('id')}' not ok but absent from "
                            f"the failed list — roll-up is inconsistent")

    golden = get(doc, "golden", args.campaign)
    for run_id, checksum in golden.items():
        if checksum != args.golden_checksum:
            failures.append(f"{run_id}: checksum {checksum} != pinned "
                            f"{args.golden_checksum}")

    if args.compare:
        other = load_json(args.compare,
                          "run the same campaign at a second worker count")
        a, b = dict(doc), dict(other)
        a.pop("timing", None)
        b.pop("timing", None)
        if a != b:
            diff_keys = [k for k in (set(a) | set(b)) if a.get(k) != b.get(k)]
            failures.append(
                f"{args.campaign} and {args.compare} differ outside "
                f"'timing' (keys: {', '.join(sorted(diff_keys))}) — "
                f"campaign results are not worker-count independent")

    if failures:
        for failure in failures:
            print(f"check_bench: FAIL: {failure}", file=sys.stderr)
        return 1
    compared = f", matches {args.compare} modulo timing" if args.compare \
        else ""
    print(f"check_bench: OK — campaign '{doc.get('name', '')}': "
          f"{len(runs)} runs ok, {len(golden)} golden row(s) at the pinned "
          f"checksum{compared}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_pdes.json")
    parser.add_argument("--current", default="current.json")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="max fractional events/s regression (default 0.5)")
    parser.add_argument("--allow-missing-baseline", action="store_true",
                        help="exit 0 with a note when the baseline file does "
                             "not exist (first run of a new bench)")
    parser.add_argument("--min-improvement", type=float, default=0.15,
                        help="massf.bench_rebalance.v1: minimum modeled-time "
                             "improvement fraction (default 0.15)")
    parser.add_argument("--min-wait-reduction", type=float, default=0.5,
                        help="massf.bench_pdes.v2: minimum fractional summed-"
                             "wait reduction of channel sync vs the barrier "
                             "run at the same thread count (default 0.5; "
                             "skipped on oversubscribed hosts)")
    parser.add_argument("--max-guard-overhead", type=float, default=0.10,
                        help="massf.bench_pdes.v2: max fractional events/s "
                             "cost of the armed-watchdog sequential_guard "
                             "row vs the unguarded sequential row in the "
                             "same report (default 0.10)")
    parser.add_argument("--max-ring-wait-share", type=float, default=0.5,
                        help="massf.bench_pdes.v2: max share of sharded "
                             "worker-seconds spent blocked on the cross-"
                             "shard rings/control page (default 0.5; "
                             "skipped on oversubscribed hosts)")
    parser.add_argument("--min-host-scale", type=float, default=10,
                        help="massf.bench_hybrid.v1: minimum source "
                             "multiplier the hybrid model must carry within "
                             "the packet event budget (default 10)")
    parser.add_argument("--min-event-ratio", type=float, default=10,
                        help="massf.bench_hybrid.v1: minimum packet/hybrid "
                             "event ratio at equal sources (default 10)")
    parser.add_argument("--max-duration-err", type=float, default=0.5,
                        help="massf.bench_hybrid.v1: max relative mean-flow-"
                             "duration error vs the packet reference "
                             "(default 0.5)")
    parser.add_argument("--max-goodput-err", type=float, default=0.2,
                        help="massf.bench_hybrid.v1: max relative mean-"
                             "goodput error vs the packet reference "
                             "(default 0.2)")
    parser.add_argument("--max-completed-err", type=float, default=0.4,
                        help="massf.bench_hybrid.v1: max relative completed-"
                             "flow-count error vs the packet reference "
                             "(default 0.4)")
    parser.add_argument("--campaign", metavar="ROLLUP",
                        help="massf.campaign.v1: gate this campaign roll-up "
                             "instead of a bench report")
    parser.add_argument("--compare", metavar="ROLLUP",
                        help="with --campaign: a second roll-up that must "
                             "be identical modulo its 'timing' section")
    parser.add_argument("--golden-checksum", default="807988445054369792",
                        help="with --campaign: the pinned golden-row "
                             "checksum (string, as serialized)")
    args = parser.parse_args()

    if args.campaign:
        return check_campaign(args)

    current = load_json(
        args.current,
        "run the bench with --out/--json first (see the module docstring)")
    schema = current.get("schema")

    if schema == "massf.bench_rebalance.v1":
        # Self-contained: the report carries both the static baseline run
        # and the rebalanced run.
        return check_rebalance(current, args)

    if schema == "massf.bench_hybrid.v1":
        # Self-contained: the report carries the packet reference and the
        # hybrid sweep from the same binary.
        return check_hybrid(current, args)

    if not os.path.exists(args.baseline):
        if args.allow_missing_baseline:
            print(f"check_bench: note: baseline {args.baseline} missing, "
                  f"nothing to compare against (--allow-missing-baseline)")
            return 0
        die(f"baseline {args.baseline} not found — commit one from a "
            f"trusted run, or pass --allow-missing-baseline for a first run")
    baseline = load_json(args.baseline, "the committed baseline is corrupt")
    return check_pdes(baseline, current, args)


if __name__ == "__main__":
    sys.exit(main())
