#!/usr/bin/env python3
"""Regression gate for bench JSON reports.

Schemas understood (dispatched on the current report's "schema" field):

  massf.bench_pdes.v2 — compare a fresh `bench_pdes --json` run against the
  committed BENCH_pdes.json baseline. Two classes of check:
    * Determinism (exact): every executor entry must report the pinned
      golden checksum plus the exact event and window counts. Any drift
      means the event-ordering contract changed — see tests/regen_golden.sh
      before re-pinning.
    * Throughput (tolerant): events/s may regress by at most --tolerance
      (fractional, default 0.5 — CI runners are noisy and slower than the
      machine that produced the baseline; the gate exists to catch
      order-of-magnitude cliffs, not single-digit noise).

  massf.bench_rebalance.v1 — self-contained gate on a
  `bench_rebalance --json` run (no baseline file needed):
    * sequential/threaded full-signature equality must hold with
      rebalancing enabled;
    * the rebalanced run must beat the static mapping by at least
      --min-improvement modeled time (default 0.15);
    * the controller must actually have migrated something.

Usage:
  bench_pdes --out current.json   # NOT the default --out, which would
                                  # overwrite the committed baseline
  scripts/check_bench.py [--baseline BENCH_pdes.json] [--current current.json]
                         [--tolerance 0.5] [--allow-missing-baseline]
                         [--min-improvement 0.15]

Exit status: 0 on pass, 1 on any failed check, 2 on missing/malformed input
(one-line actionable message on stderr, no traceback).
"""

import argparse
import json
import os
import sys


def die(message):
    """Exit 2 with a one-line actionable message (never a traceback)."""
    print(f"check_bench: error: {message}", file=sys.stderr)
    sys.exit(2)


def load_json(path, hint):
    if not os.path.exists(path):
        die(f"{path} not found — {hint}")
    try:
        with open(path) as f:
            return json.load(f)
    except json.JSONDecodeError as e:
        die(f"{path} is not valid JSON ({e}) — regenerate it")
    except OSError as e:
        die(f"cannot read {path}: {e}")


def get(doc, path, filename):
    """Fetch doc["a"]["b"] for path "a.b"; missing key = actionable exit 2."""
    node = doc
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            die(f"{filename}: missing key '{path}' — the report schema "
                f"changed or the bench was interrupted; regenerate it")
        node = node[key]
    return node


def entries(doc, filename):
    """Yield (label, entry) for every executor measurement in a report."""
    yield "sequential", get(doc, "sequential", filename)
    yield "threaded", get(doc, "threaded", filename)
    for sweep in doc.get("sweep", []):
        yield f"sweep[threads={sweep.get('threads', '?')}]", sweep


def field(entry, label, name, filename):
    if name not in entry:
        die(f"{filename}: entry '{label}' is missing '{name}' — "
            f"regenerate the report")
    return entry[name]


def check_pdes(baseline, current, args):
    for doc, name in ((baseline, args.baseline), (current, args.current)):
        if doc.get("schema") != "massf.bench_pdes.v2":
            die(f"{name}: unexpected schema {doc.get('schema')!r} "
                f"(want massf.bench_pdes.v2)")

    golden = get(baseline, "sequential.checksum", args.baseline)
    golden_events = get(baseline, "sequential.events", args.baseline)
    golden_windows = get(baseline, "sequential.windows", args.baseline)
    failures = []

    # Determinism: exact, for every entry in the current report.
    for label, entry in entries(current, args.current):
        for name, want in (("checksum", golden), ("events", golden_events),
                           ("windows", golden_windows)):
            got = field(entry, label, name, args.current)
            if got != want:
                failures.append(f"{label}: {name} {got} != golden {want}")

    # Throughput: compare matching thread counts (runner core counts differ,
    # so sweep entries absent from either report are skipped, not failed).
    base_by_threads = {field(e, label, "threads", args.baseline): (label, e)
                       for label, e in entries(baseline, args.baseline)}
    for label, entry in entries(current, args.current):
        match = base_by_threads.get(field(entry, label, "threads",
                                          args.current))
        if match is None:
            print(f"check_bench: note: no baseline for {label}, "
                  f"skipping throughput check", file=sys.stderr)
            continue
        base_eps = field(match[1], match[0], "events_per_sec", args.baseline)
        cur_eps = field(entry, label, "events_per_sec", args.current)
        floor = base_eps * (1.0 - args.tolerance)
        if cur_eps < floor:
            failures.append(
                f"{label}: {cur_eps:.0f} events/s is below {floor:.0f} "
                f"(baseline {base_eps:.0f} minus "
                f"{args.tolerance:.0%} tolerance)")

    if failures:
        for failure in failures:
            print(f"check_bench: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check_bench: OK — checksum {golden}, "
          f"{sum(1 for _ in entries(current, args.current))} entries "
          f"within tolerance")
    return 0


def check_rebalance(current, args):
    failures = []
    if not get(current, "rebalanced.signature_equal", args.current):
        failures.append("rebalanced run: sequential vs threaded event "
                        "signatures differ (determinism broken)")
    improvement = get(current, "improvement", args.current)
    if improvement < args.min_improvement:
        failures.append(
            f"modeled-time improvement {improvement:.1%} is below the "
            f"{args.min_improvement:.0%} gate")
    if get(current, "rebalanced.moves", args.current) <= 0:
        failures.append("rebalanced run migrated nothing — the controller "
                        "never triggered")

    if failures:
        for failure in failures:
            print(f"check_bench: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check_bench: OK — rebalance improvement {improvement:.1%}, "
          f"{get(current, 'rebalanced.moves', args.current)} moves, "
          f"signatures equal")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_pdes.json")
    parser.add_argument("--current", default="current.json")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="max fractional events/s regression (default 0.5)")
    parser.add_argument("--allow-missing-baseline", action="store_true",
                        help="exit 0 with a note when the baseline file does "
                             "not exist (first run of a new bench)")
    parser.add_argument("--min-improvement", type=float, default=0.15,
                        help="massf.bench_rebalance.v1: minimum modeled-time "
                             "improvement fraction (default 0.15)")
    args = parser.parse_args()

    current = load_json(
        args.current,
        "run the bench with --out/--json first (see the module docstring)")
    schema = current.get("schema")

    if schema == "massf.bench_rebalance.v1":
        # Self-contained: the report carries both the static baseline run
        # and the rebalanced run.
        return check_rebalance(current, args)

    if not os.path.exists(args.baseline):
        if args.allow_missing_baseline:
            print(f"check_bench: note: baseline {args.baseline} missing, "
                  f"nothing to compare against (--allow-missing-baseline)")
            return 0
        die(f"baseline {args.baseline} not found — commit one from a "
            f"trusted run, or pass --allow-missing-baseline for a first run")
    baseline = load_json(args.baseline, "the committed baseline is corrupt")
    return check_pdes(baseline, current, args)


if __name__ == "__main__":
    sys.exit(main())
