// The simulated network description: routers, hosts, links, and (for
// multi-AS networks) AS membership and inter-AS relationships. This is the
// common input to the routing, load-balance, and simulation layers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/sim_time.hpp"

namespace massf {

using NodeId = std::int32_t;
using LinkId = std::int32_t;
using AsId = std::int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr LinkId kInvalidLink = -1;

enum class NodeKind : std::uint8_t { kRouter, kHost };

/// Role of an AS in the Internet hierarchy (paper Section 5.1.2 step 2).
enum class AsClass : std::uint8_t { kCore, kRegional, kStub };

/// Relationship of an AS pair from the first AS's point of view.
enum class AsRel : std::uint8_t {
  kProvider,  ///< the other AS is our provider (we are its customer)
  kCustomer,  ///< the other AS is our customer
  kPeer,      ///< settlement-free peer
};

struct NetNode {
  NodeKind kind = NodeKind::kRouter;
  AsId as_id = 0;
  double x = 0, y = 0;  ///< position in miles on the simulated plane
  /// For hosts: the router they attach to; kInvalidNode for routers.
  NodeId attach_router = kInvalidNode;
};

struct NetLink {
  NodeId a = kInvalidNode, b = kInvalidNode;
  SimTime latency = 0;        ///< one-way propagation delay
  double bandwidth_bps = 0;   ///< per-direction capacity
  bool inter_as = false;      ///< crosses an AS boundary
};

/// One inter-AS adjacency (there may be several physical links per pair).
struct AsAdjacency {
  AsId as_a = 0, as_b = 0;
  /// Relationship from as_a's point of view (kCustomer means as_b is as_a's
  /// customer).
  AsRel rel_ab = AsRel::kPeer;
  LinkId link = kInvalidLink;  ///< the physical border link
};

struct AsInfo {
  AsClass cls = AsClass::kStub;
  NodeId first_router = 0;  ///< routers of an AS are contiguous
  std::int32_t num_routers = 0;
  double center_x = 0, center_y = 0;
};

class Network {
 public:
  std::vector<NetNode> nodes;  ///< routers first (ids [0, num_routers)), then hosts
  std::vector<NetLink> links;
  std::int32_t num_routers = 0;
  std::vector<AsInfo> as_info;          ///< empty for single-AS networks built flat
  std::vector<AsAdjacency> as_adjacency;

  std::int32_t num_hosts() const {
    return static_cast<std::int32_t>(nodes.size()) - num_routers;
  }
  std::int32_t num_as() const {
    return as_info.empty() ? 1 : static_cast<std::int32_t>(as_info.size());
  }
  bool is_router(NodeId n) const { return n < num_routers; }
  bool is_host(NodeId n) const { return n >= num_routers; }

  /// Incident links per node: (link id, peer node). Built lazily by
  /// build_adjacency(); the generators call it before returning.
  struct Incidence {
    LinkId link;
    NodeId peer;
  };
  std::span<const Incidence> incident(NodeId n) const {
    return {adj_.data() + adj_offset_[static_cast<std::size_t>(n)],
            static_cast<std::size_t>(
                adj_offset_[static_cast<std::size_t>(n) + 1] -
                adj_offset_[static_cast<std::size_t>(n)])};
  }

  void build_adjacency();

  /// Minimum link latency over all links (the theoretical best MLL).
  SimTime min_link_latency() const;

  /// The router-level graph used by the load balancer: one vertex per
  /// router, one edge per router-router link. Vertex weights default to 1
  /// (the mapping approaches overwrite them); edge weights default to 1.
  /// `latency_out`, if non-null, receives per-edge link latency (ns) aligned
  /// with the returned graph's edge ids, and `link_out` the originating
  /// NetLink id.
  Graph router_graph(std::vector<std::int64_t>* latency_out = nullptr,
                     std::vector<LinkId>* link_out = nullptr) const;

  /// Sanity checks: endpoint validity, connectivity of the router graph,
  /// hosts attached, AS ranges consistent. Returns an empty string when
  /// valid, else a description of the first problem found.
  std::string validate() const;

 private:
  std::vector<std::int32_t> adj_offset_;
  std::vector<Incidence> adj_;
};

/// Geometry helpers shared by the generators.
double distance_miles(double x1, double y1, double x2, double y2);

/// Propagation delay for a span of `miles` at ~2/3 the speed of light in
/// fiber, floored at 10 microseconds (equipment latency).
SimTime latency_for_distance(double miles);

}  // namespace massf
