// BRITE-style router-level topology generation: degree-based preferential
// attachment (Barabási–Albert) following the power law, with an optional
// locality bias so geographically close routers are more likely to be
// linked (BRITE places nodes on a plane and derives link latency from
// distance; without locality a power-law graph has almost no short links
// and the MLL structure the paper studies would not exist).
#pragma once

#include <cstdint>

#include "topology/network.hpp"
#include "util/rng.hpp"

namespace massf {

/// Router-level wiring models (both are BRITE modes).
enum class TopologyModel {
  /// Barabasi-Albert preferential attachment with a locality bias — the
  /// degree-based power-law family the paper's experiments use.
  kBarabasiAlbert,
  /// Waxman: every new node links to existing ones with probability
  /// alpha * exp(-d / (beta * L)) — geometric, no heavy-tailed degrees.
  kWaxman,
};

struct BriteOptions {
  std::int32_t num_routers = 2000;
  std::int32_t num_hosts = 1000;
  /// Side of the square plane in miles (paper: 5000 x 5000, roughly the
  /// North American continent).
  double plane_miles = 5000;
  TopologyModel model = TopologyModel::kBarabasiAlbert;
  /// Edges added per new node (BA "m"; also the expected degree target for
  /// Waxman).
  std::int32_t links_per_node = 2;
  /// BA only — locality scale in miles: candidate targets are weighted by
  /// exp(-distance / locality_miles) on top of degree. <= 0 disables.
  double locality_miles = 250;
  /// Waxman parameters (classic defaults).
  double waxman_alpha = 0.2;
  double waxman_beta = 0.15;
  double router_bandwidth_bps = 2.5e9;  ///< backbone links (OC-48 class)
  double access_bandwidth_bps = 1e8;    ///< host access links
  std::uint64_t seed = 1;
};

/// Generates a flat (single-AS) network: routers + hosts, adjacency built.
Network generate_flat(const BriteOptions& opts);

/// Appends `count` routers belonging to `as_id`, placed uniformly within
/// `radius` miles of (cx, cy) and wired by locality-aware preferential
/// attachment among themselves. Used both by generate_flat (whole plane)
/// and by the multi-AS generator (per-AS pocket). Links are appended to
/// net.links; adjacency is NOT rebuilt. Returns the id of the first new
/// router.
NodeId append_router_topology(Network& net, std::int32_t count, AsId as_id,
                              double cx, double cy, double radius,
                              std::int32_t links_per_node,
                              double locality_miles, double bandwidth_bps,
                              Rng& rng);

/// Waxman variant of append_router_topology: connectivity is repaired by
/// attaching any node the probabilistic pass left isolated to its nearest
/// already-connected neighbor.
NodeId append_waxman_topology(Network& net, std::int32_t count, AsId as_id,
                              double cx, double cy, double radius,
                              double alpha, double beta,
                              std::int32_t links_per_node,
                              double bandwidth_bps, Rng& rng);

/// Appends `count` hosts, each attached by a short access link to a router
/// drawn uniformly from [router_begin, router_end). Returns the id of the
/// first new host.
NodeId attach_hosts(Network& net, std::int32_t count, NodeId router_begin,
                    NodeId router_end, double bandwidth_bps, Rng& rng);

}  // namespace massf
