// maBrite: Internet-like multi-AS topology generation with automatic BGP
// routing-policy configuration, implementing the 6-step procedure of the
// paper's Section 5.1.2:
//   1) power-law AS-level topology,
//   2) degree-based AS classification (Core / Regional ISP / Stub),
//   3) AS relationships (provider-customer across levels, peer-peer within
//      a level), with Core-clique enforcement and the guarantee that every
//      non-Core AS reaches a Core AS through provider links,
//   4) import policies (prefer customer > peer > provider routes),
//   5) export policies (Gao-Rexford rules),
//   6) per-Stub-AS internal topology with OSPF inside and default routes
//      out.
// Steps 4-5 are encoded in the AsRel annotations on Network::as_adjacency;
// the BGP solver in src/routing derives local preference and export filters
// from them exactly per the rules.
#pragma once

#include <cstdint>

#include "topology/network.hpp"
#include "util/rng.hpp"

namespace massf {

struct MaBriteOptions {
  std::int32_t num_as = 100;
  std::int32_t routers_per_as = 200;
  std::int32_t num_hosts = 10000;
  double plane_miles = 5000;
  /// AS-level preferential-attachment edges per new AS.
  std::int32_t as_links_per_node = 2;
  /// Intra-AS preferential-attachment edges per new router.
  std::int32_t links_per_node = 2;
  double intra_locality_miles = 50;
  double intra_bandwidth_bps = 2.5e9;
  double inter_bandwidth_bps = 1e10;
  double access_bandwidth_bps = 1e8;
  /// Fraction of ASes classified Core (paper: Dense Cores are ~2% of the
  /// Internet); at least 3 ASes regardless.
  double core_fraction = 0.03;
  std::uint64_t seed = 1;
};

/// Generates the multi-AS network; as_info/as_adjacency are populated and
/// adjacency is built. The result passes Network::validate() and the BGP
/// relationship invariants checked by routing/bgp tests (every non-Core AS
/// has an all-provider path to a Core; the Core set forms a clique).
Network generate_multi_as(const MaBriteOptions& opts);

}  // namespace massf
