#include "topology/brite.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace massf {
namespace {

// Number of degree-proportional candidates examined per attachment when the
// locality bias is active. Candidates are drawn by the classic
// endpoint-of-a-random-arc trick, which is exactly degree-proportional;
// picking among them by locality weight preserves the power law while
// favoring short links.
constexpr std::size_t kLocalityCandidates = 24;

}  // namespace

NodeId append_router_topology(Network& net, std::int32_t count, AsId as_id,
                              double cx, double cy, double radius,
                              std::int32_t links_per_node,
                              double locality_miles, double bandwidth_bps,
                              Rng& rng) {
  MASSF_CHECK(count >= 1);
  MASSF_CHECK(links_per_node >= 1);
  const auto first = static_cast<NodeId>(net.nodes.size());
  MASSF_CHECK(first == net.num_routers);  // routers must precede hosts

  // Place all routers first.
  for (std::int32_t i = 0; i < count; ++i) {
    NetNode node;
    node.kind = NodeKind::kRouter;
    node.as_id = as_id;
    node.x = cx + rng.uniform_real(-radius, radius);
    node.y = cy + rng.uniform_real(-radius, radius);
    net.nodes.push_back(node);
  }
  net.num_routers += count;

  const auto add_link = [&](NodeId a, NodeId b) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = latency_for_distance(
        distance_miles(net.nodes[static_cast<std::size_t>(a)].x,
                       net.nodes[static_cast<std::size_t>(a)].y,
                       net.nodes[static_cast<std::size_t>(b)].x,
                       net.nodes[static_cast<std::size_t>(b)].y));
    l.bandwidth_bps = bandwidth_bps;
    net.links.push_back(l);
  };

  // `arcs` holds every link endpoint (local index); sampling a uniform
  // element is degree-proportional sampling.
  std::vector<std::int32_t> arcs;
  arcs.reserve(static_cast<std::size_t>(count) *
               static_cast<std::size_t>(links_per_node) * 2);

  // Seed clique of min(m+1, count) routers so every attachment has targets.
  const std::int32_t seed_n =
      std::min<std::int32_t>(links_per_node + 1, count);
  for (std::int32_t i = 0; i < seed_n; ++i) {
    for (std::int32_t j = i + 1; j < seed_n; ++j) {
      add_link(first + i, first + j);
      arcs.push_back(i);
      arcs.push_back(j);
    }
  }

  std::vector<std::int32_t> chosen;
  for (std::int32_t i = seed_n; i < count; ++i) {
    const double xi = net.nodes[static_cast<std::size_t>(first + i)].x;
    const double yi = net.nodes[static_cast<std::size_t>(first + i)].y;
    chosen.clear();
    const std::int32_t want = std::min<std::int32_t>(links_per_node, i);
    for (std::int32_t e = 0; e < want; ++e) {
      std::int32_t target = -1;
      if (locality_miles > 0) {
        double best_w = -1;
        for (std::size_t c = 0; c < kLocalityCandidates; ++c) {
          const std::int32_t cand = arcs[rng.uniform(arcs.size())];
          if (cand == i ||
              std::find(chosen.begin(), chosen.end(), cand) != chosen.end()) {
            continue;
          }
          const auto& n = net.nodes[static_cast<std::size_t>(first + cand)];
          const double d = distance_miles(xi, yi, n.x, n.y);
          // Jittered locality weight: deterministic given the RNG stream.
          const double w =
              std::exp(-d / locality_miles) * (0.5 + rng.uniform01());
          if (w > best_w) {
            best_w = w;
            target = cand;
          }
        }
      }
      if (target < 0) {
        // Pure degree-proportional fallback (also used when all candidates
        // collided with already-chosen targets).
        for (int attempt = 0; attempt < 64 && target < 0; ++attempt) {
          const std::int32_t cand = arcs[rng.uniform(arcs.size())];
          if (cand != i &&
              std::find(chosen.begin(), chosen.end(), cand) == chosen.end()) {
            target = cand;
          }
        }
        if (target < 0) {
          // Degenerate small graphs: pick the first admissible node.
          for (std::int32_t cand = 0; cand < i; ++cand) {
            if (std::find(chosen.begin(), chosen.end(), cand) ==
                chosen.end()) {
              target = cand;
              break;
            }
          }
        }
      }
      MASSF_CHECK(target >= 0);
      chosen.push_back(target);
      add_link(first + i, first + target);
      arcs.push_back(i);
      arcs.push_back(target);
    }
  }
  return first;
}

NodeId append_waxman_topology(Network& net, std::int32_t count, AsId as_id,
                              double cx, double cy, double radius,
                              double alpha, double beta,
                              std::int32_t links_per_node,
                              double bandwidth_bps, Rng& rng) {
  MASSF_CHECK(count >= 1);
  MASSF_CHECK(alpha > 0 && beta > 0);
  const auto first = static_cast<NodeId>(net.nodes.size());
  MASSF_CHECK(first == net.num_routers);

  for (std::int32_t i = 0; i < count; ++i) {
    NetNode node;
    node.kind = NodeKind::kRouter;
    node.as_id = as_id;
    node.x = cx + rng.uniform_real(-radius, radius);
    node.y = cy + rng.uniform_real(-radius, radius);
    net.nodes.push_back(node);
  }
  net.num_routers += count;

  const auto add_link = [&](NodeId a, NodeId b) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = latency_for_distance(
        distance_miles(net.nodes[static_cast<std::size_t>(a)].x,
                       net.nodes[static_cast<std::size_t>(a)].y,
                       net.nodes[static_cast<std::size_t>(b)].x,
                       net.nodes[static_cast<std::size_t>(b)].y));
    l.bandwidth_bps = bandwidth_bps;
    net.links.push_back(l);
  };

  // L: the maximum possible distance in the region.
  const double max_dist = 2 * radius * std::sqrt(2.0);
  const std::int32_t degree_cap = 3 * links_per_node;

  for (std::int32_t i = 1; i < count; ++i) {
    const auto& ni = net.nodes[static_cast<std::size_t>(first + i)];
    std::int32_t added = 0;
    std::int32_t nearest = 0;
    double nearest_d = 1e18;
    for (std::int32_t j = 0; j < i && added < degree_cap; ++j) {
      const auto& nj = net.nodes[static_cast<std::size_t>(first + j)];
      const double d = distance_miles(ni.x, ni.y, nj.x, nj.y);
      if (d < nearest_d) {
        nearest_d = d;
        nearest = j;
      }
      const double p = alpha * std::exp(-d / (beta * max_dist));
      if (rng.bernoulli(p)) {
        add_link(first + i, first + j);
        ++added;
      }
    }
    // Waxman leaves isolated nodes with nonzero probability; repair by
    // linking to the nearest earlier node (keeps the graph connected).
    if (added == 0) add_link(first + i, first + nearest);
  }
  return first;
}

NodeId attach_hosts(Network& net, std::int32_t count, NodeId router_begin,
                    NodeId router_end, double bandwidth_bps, Rng& rng) {
  MASSF_CHECK(router_begin >= 0 && router_end <= net.num_routers &&
              router_begin < router_end);
  const auto first = static_cast<NodeId>(net.nodes.size());
  for (std::int32_t i = 0; i < count; ++i) {
    const auto r = static_cast<NodeId>(
        router_begin +
        static_cast<NodeId>(rng.uniform(
            static_cast<std::uint64_t>(router_end - router_begin))));
    // Copy, not reference: the push_back below may reallocate net.nodes.
    const NetNode rn = net.nodes[static_cast<std::size_t>(r)];
    NetNode h;
    h.kind = NodeKind::kHost;
    h.as_id = rn.as_id;
    h.x = rn.x + rng.uniform_real(-5, 5);
    h.y = rn.y + rng.uniform_real(-5, 5);
    h.attach_router = r;
    const auto hid = static_cast<NodeId>(net.nodes.size());
    net.nodes.push_back(h);

    NetLink l;
    l.a = r;
    l.b = hid;
    l.latency = latency_for_distance(
        distance_miles(rn.x, rn.y, h.x, h.y));  // floors at 10 us
    l.bandwidth_bps = bandwidth_bps;
    net.links.push_back(l);
  }
  return first;
}

Network generate_flat(const BriteOptions& opts) {
  Rng rng(opts.seed);
  Network net;
  Rng router_rng = rng.fork("routers");
  if (opts.model == TopologyModel::kWaxman) {
    append_waxman_topology(net, opts.num_routers, /*as_id=*/0,
                           opts.plane_miles / 2, opts.plane_miles / 2,
                           opts.plane_miles / 2, opts.waxman_alpha,
                           opts.waxman_beta, opts.links_per_node,
                           opts.router_bandwidth_bps, router_rng);
  } else {
    append_router_topology(net, opts.num_routers, /*as_id=*/0,
                           opts.plane_miles / 2, opts.plane_miles / 2,
                           opts.plane_miles / 2, opts.links_per_node,
                           opts.locality_miles, opts.router_bandwidth_bps,
                           router_rng);
  }
  Rng host_rng = rng.fork("hosts");
  attach_hosts(net, opts.num_hosts, 0, net.num_routers,
               opts.access_bandwidth_bps, host_rng);
  net.build_adjacency();
  return net;
}

}  // namespace massf
