#include "topology/network.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace massf {

void Network::build_adjacency() {
  const auto n = nodes.size();
  adj_offset_.assign(n + 1, 0);
  for (const NetLink& l : links) {
    ++adj_offset_[static_cast<std::size_t>(l.a) + 1];
    ++adj_offset_[static_cast<std::size_t>(l.b) + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) adj_offset_[i] += adj_offset_[i - 1];
  adj_.resize(links.size() * 2);
  std::vector<std::int32_t> cursor(adj_offset_.begin(), adj_offset_.end() - 1);
  for (LinkId e = 0; e < static_cast<LinkId>(links.size()); ++e) {
    const NetLink& l = links[static_cast<std::size_t>(e)];
    adj_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(l.a)]++)] = {e, l.b};
    adj_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(l.b)]++)] = {e, l.a};
  }
}

SimTime Network::min_link_latency() const {
  SimTime best = kSimTimeMax;
  for (const NetLink& l : links) best = std::min(best, l.latency);
  return best;
}

Graph Network::router_graph(std::vector<std::int64_t>* latency_out,
                            std::vector<LinkId>* link_out) const {
  GraphBuilder builder(num_routers);
  // add_edge merges duplicates, which would desynchronize a per-edge
  // latency array built in input order; collect unique router pairs first,
  // keeping the minimum latency (the partitioner cares about the worst
  // case) and a representative link.
  struct PairEdge {
    NodeId u, v;
    SimTime latency;
    LinkId link;
  };
  std::vector<PairEdge> pairs;
  pairs.reserve(links.size());
  for (LinkId e = 0; e < static_cast<LinkId>(links.size()); ++e) {
    const NetLink& l = links[static_cast<std::size_t>(e)];
    if (!is_router(l.a) || !is_router(l.b)) continue;
    NodeId u = l.a, v = l.b;
    if (u > v) std::swap(u, v);
    pairs.push_back({u, v, l.latency, e});
  }
  std::sort(pairs.begin(), pairs.end(), [](const PairEdge& a, const PairEdge& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.latency < b.latency;
  });
  std::vector<PairEdge> unique;
  unique.reserve(pairs.size());
  for (const PairEdge& p : pairs) {
    if (!unique.empty() && unique.back().u == p.u && unique.back().v == p.v) {
      continue;  // keep first = min latency
    }
    unique.push_back(p);
  }
  for (const PairEdge& p : unique) builder.add_edge(p.u, p.v, 1);
  Graph g = builder.build();

  // builder.build() sorts edges by (u, v), the same order as `unique`.
  MASSF_CHECK(static_cast<std::size_t>(g.num_edges()) == unique.size());
  if (latency_out != nullptr) {
    latency_out->resize(unique.size());
    for (std::size_t i = 0; i < unique.size(); ++i) {
      (*latency_out)[i] = unique[i].latency;
    }
  }
  if (link_out != nullptr) {
    link_out->resize(unique.size());
    for (std::size_t i = 0; i < unique.size(); ++i) {
      (*link_out)[i] = unique[i].link;
    }
  }
  return g;
}

std::string Network::validate() const {
  const auto n = static_cast<NodeId>(nodes.size());
  if (num_routers < 0 || num_routers > n) return "bad router count";
  for (std::size_t i = 0; i < links.size(); ++i) {
    const NetLink& l = links[i];
    if (l.a < 0 || l.a >= n || l.b < 0 || l.b >= n || l.a == l.b) {
      return "link " + std::to_string(i) + " has bad endpoints";
    }
    if (l.latency <= 0) return "link " + std::to_string(i) + " has non-positive latency";
    if (l.bandwidth_bps <= 0) return "link " + std::to_string(i) + " has non-positive bandwidth";
  }
  for (NodeId v = 0; v < n; ++v) {
    const NetNode& node = nodes[static_cast<std::size_t>(v)];
    if (is_router(v)) {
      if (node.kind != NodeKind::kRouter) return "router node with host kind";
    } else {
      if (node.kind != NodeKind::kHost) return "host node with router kind";
      if (node.attach_router < 0 || node.attach_router >= num_routers) {
        return "host " + std::to_string(v) + " not attached to a router";
      }
    }
  }
  if (num_routers > 0) {
    const Graph g = router_graph();
    if (!is_connected(g)) return "router graph is disconnected";
  }
  if (!as_info.empty()) {
    NodeId expect = 0;
    for (std::size_t a = 0; a < as_info.size(); ++a) {
      const AsInfo& info = as_info[a];
      if (info.first_router != expect) return "AS router ranges not contiguous";
      expect += info.num_routers;
      for (NodeId r = info.first_router;
           r < info.first_router + info.num_routers; ++r) {
        if (nodes[static_cast<std::size_t>(r)].as_id !=
            static_cast<AsId>(a)) {
          return "router with inconsistent as_id";
        }
      }
    }
    if (expect != num_routers) return "AS ranges do not cover all routers";
  }
  return "";
}

double distance_miles(double x1, double y1, double x2, double y2) {
  const double dx = x1 - x2, dy = y1 - y2;
  return std::sqrt(dx * dx + dy * dy);
}

SimTime latency_for_distance(double miles) {
  // ~2e8 m/s in fiber = 124,274 miles/s.
  constexpr double kMilesPerSecond = 124274.0;
  const auto t = from_seconds(miles / kMilesPerSecond);
  return std::max<SimTime>(t, microseconds(10));
}

}  // namespace massf
