#include "topology/mabrite.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "topology/brite.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace massf {
namespace {

struct AsLevelEdge {
  AsId a, b;
};

// Plain Barabási–Albert over `n` vertices with `m` links per new vertex.
std::vector<AsLevelEdge> as_level_power_law(std::int32_t n, std::int32_t m,
                                            Rng& rng) {
  std::vector<AsLevelEdge> edges;
  std::vector<AsId> arcs;
  const std::int32_t seed_n = std::min(m + 1, n);
  for (AsId i = 0; i < seed_n; ++i) {
    for (AsId j = i + 1; j < seed_n; ++j) {
      edges.push_back({i, j});
      arcs.push_back(i);
      arcs.push_back(j);
    }
  }
  std::vector<AsId> chosen;
  for (AsId i = seed_n; i < n; ++i) {
    chosen.clear();
    const std::int32_t want = std::min<std::int32_t>(m, i);
    for (std::int32_t e = 0; e < want; ++e) {
      AsId target = -1;
      for (int attempt = 0; attempt < 64 && target < 0; ++attempt) {
        const AsId cand = arcs[rng.uniform(arcs.size())];
        if (cand != i &&
            std::find(chosen.begin(), chosen.end(), cand) == chosen.end()) {
          target = cand;
        }
      }
      if (target < 0) {
        for (AsId cand = 0; cand < i && target < 0; ++cand) {
          if (std::find(chosen.begin(), chosen.end(), cand) == chosen.end()) {
            target = cand;
          }
        }
      }
      MASSF_CHECK(target >= 0);
      chosen.push_back(target);
      edges.push_back({i, target});
      arcs.push_back(i);
      arcs.push_back(target);
    }
  }
  return edges;
}

int class_rank(AsClass c) {
  switch (c) {
    case AsClass::kCore:
      return 2;
    case AsClass::kRegional:
      return 1;
    case AsClass::kStub:
      return 0;
  }
  return 0;
}

}  // namespace

Network generate_multi_as(const MaBriteOptions& opts) {
  MASSF_CHECK(opts.num_as >= 3);
  MASSF_CHECK(opts.routers_per_as >= 2);
  Rng root(opts.seed);

  // ---- Step 1: AS-level power-law topology. ----------------------------
  Rng as_rng = root.fork("as-level");
  std::vector<AsLevelEdge> as_edges =
      as_level_power_law(opts.num_as, opts.as_links_per_node, as_rng);

  std::vector<std::int32_t> degree(static_cast<std::size_t>(opts.num_as), 0);
  for (const auto& e : as_edges) {
    ++degree[static_cast<std::size_t>(e.a)];
    ++degree[static_cast<std::size_t>(e.b)];
  }

  // ---- Step 2: classify ASes by connection degree. ---------------------
  // Core: the highest-degree ASes (paper: "top 2" degrees; we take the top
  // core_fraction with a floor of 3 so the Dense Core clique exists).
  // Stub: degree <= 2. Regional ISP: everything else.
  std::vector<AsId> by_degree(static_cast<std::size_t>(opts.num_as));
  for (AsId a = 0; a < opts.num_as; ++a) by_degree[static_cast<std::size_t>(a)] = a;
  std::sort(by_degree.begin(), by_degree.end(), [&](AsId x, AsId y) {
    const auto dx = degree[static_cast<std::size_t>(x)];
    const auto dy = degree[static_cast<std::size_t>(y)];
    return dx != dy ? dx > dy : x < y;
  });
  const auto num_core = std::max<std::int32_t>(
      3, static_cast<std::int32_t>(
             std::ceil(opts.core_fraction * opts.num_as)));
  std::vector<AsClass> cls(static_cast<std::size_t>(opts.num_as),
                           AsClass::kStub);
  for (std::int32_t i = 0; i < num_core && i < opts.num_as; ++i) {
    cls[static_cast<std::size_t>(by_degree[static_cast<std::size_t>(i)])] =
        AsClass::kCore;
  }
  for (AsId a = 0; a < opts.num_as; ++a) {
    if (cls[static_cast<std::size_t>(a)] == AsClass::kCore) continue;
    cls[static_cast<std::size_t>(a)] =
        degree[static_cast<std::size_t>(a)] <= 2 ? AsClass::kStub
                                                 : AsClass::kRegional;
  }

  // ---- Step 3a: Core clique (Dense Cores are almost fully meshed). ------
  std::vector<AsId> cores;
  for (AsId a = 0; a < opts.num_as; ++a) {
    if (cls[static_cast<std::size_t>(a)] == AsClass::kCore) cores.push_back(a);
  }
  {
    std::vector<std::vector<char>> have(
        static_cast<std::size_t>(opts.num_as));
    for (auto& row : have) row.assign(static_cast<std::size_t>(opts.num_as), 0);
    for (const auto& e : as_edges) {
      have[static_cast<std::size_t>(e.a)][static_cast<std::size_t>(e.b)] = 1;
      have[static_cast<std::size_t>(e.b)][static_cast<std::size_t>(e.a)] = 1;
    }
    for (std::size_t i = 0; i < cores.size(); ++i) {
      for (std::size_t j = i + 1; j < cores.size(); ++j) {
        if (!have[static_cast<std::size_t>(cores[i])]
                 [static_cast<std::size_t>(cores[j])]) {
          as_edges.push_back({cores[i], cores[j]});
          have[static_cast<std::size_t>(cores[i])]
              [static_cast<std::size_t>(cores[j])] = 1;
          have[static_cast<std::size_t>(cores[j])]
              [static_cast<std::size_t>(cores[i])] = 1;
        }
      }
    }
  }

  // ---- Step 3b: relationships per AS-level edge. ------------------------
  // Different classes: the higher class is the provider. Same class: peers.
  struct RelEdge {
    AsId a, b;
    AsRel rel_ab;  // relationship of b from a's perspective inverted below;
                   // rel_ab = kCustomer means b is a's customer.
  };
  std::vector<RelEdge> rel_edges;
  rel_edges.reserve(as_edges.size());
  for (const auto& e : as_edges) {
    const int ra = class_rank(cls[static_cast<std::size_t>(e.a)]);
    const int rb = class_rank(cls[static_cast<std::size_t>(e.b)]);
    AsRel rel;
    if (ra == rb) {
      rel = AsRel::kPeer;
    } else if (ra > rb) {
      rel = AsRel::kCustomer;  // b is a's customer
    } else {
      rel = AsRel::kProvider;  // b is a's provider
    }
    rel_edges.push_back({e.a, e.b, rel});
  }

  // ---- Step 3c: every non-Core AS needs a provider path to a Core. ------
  // Walk "up" from each AS along provider edges; if no Core is reachable,
  // attach the AS to a random Core as its customer.
  {
    Rng repair_rng = root.fork("repair");
    // provider lists
    std::vector<std::vector<AsId>> providers(
        static_cast<std::size_t>(opts.num_as));
    const auto rebuild = [&]() {
      for (auto& p : providers) p.clear();
      for (const auto& e : rel_edges) {
        if (e.rel_ab == AsRel::kProvider) {
          providers[static_cast<std::size_t>(e.a)].push_back(e.b);
        } else if (e.rel_ab == AsRel::kCustomer) {
          providers[static_cast<std::size_t>(e.b)].push_back(e.a);
        }
      }
    };
    rebuild();
    for (AsId a = 0; a < opts.num_as; ++a) {
      if (cls[static_cast<std::size_t>(a)] == AsClass::kCore) continue;
      // BFS up the provider hierarchy.
      std::vector<char> seen(static_cast<std::size_t>(opts.num_as), 0);
      std::vector<AsId> stack{a};
      seen[static_cast<std::size_t>(a)] = 1;
      bool reaches_core = false;
      while (!stack.empty() && !reaches_core) {
        const AsId v = stack.back();
        stack.pop_back();
        for (AsId p : providers[static_cast<std::size_t>(v)]) {
          if (cls[static_cast<std::size_t>(p)] == AsClass::kCore) {
            reaches_core = true;
            break;
          }
          if (!seen[static_cast<std::size_t>(p)]) {
            seen[static_cast<std::size_t>(p)] = 1;
            stack.push_back(p);
          }
        }
      }
      if (!reaches_core) {
        const AsId core = cores[repair_rng.uniform(cores.size())];
        rel_edges.push_back({a, core, AsRel::kProvider});
        providers[static_cast<std::size_t>(a)].push_back(core);
      }
    }
  }

  // ---- Step 6a: per-AS internal router topologies. ----------------------
  Network net;
  net.as_info.resize(static_cast<std::size_t>(opts.num_as));
  const double cell = opts.plane_miles / std::ceil(std::sqrt(
                          static_cast<double>(opts.num_as)));
  Rng place_rng = root.fork("as-placement");
  Rng intra_rng = root.fork("intra-as");
  for (AsId a = 0; a < opts.num_as; ++a) {
    AsInfo& info = net.as_info[static_cast<std::size_t>(a)];
    info.cls = cls[static_cast<std::size_t>(a)];
    info.center_x = place_rng.uniform_real(cell / 2, opts.plane_miles - cell / 2);
    info.center_y = place_rng.uniform_real(cell / 2, opts.plane_miles - cell / 2);
    info.num_routers = opts.routers_per_as;
    info.first_router = append_router_topology(
        net, opts.routers_per_as, a, info.center_x, info.center_y, cell / 2,
        opts.links_per_node, opts.intra_locality_miles,
        opts.intra_bandwidth_bps, intra_rng);
  }

  // ---- Border links for every AS-level adjacency. ------------------------
  Rng border_rng = root.fork("border");
  for (const auto& e : rel_edges) {
    const AsInfo& ia = net.as_info[static_cast<std::size_t>(e.a)];
    const AsInfo& ib = net.as_info[static_cast<std::size_t>(e.b)];
    const auto ra = static_cast<NodeId>(
        ia.first_router +
        static_cast<NodeId>(border_rng.uniform(
            static_cast<std::uint64_t>(ia.num_routers))));
    const auto rb = static_cast<NodeId>(
        ib.first_router +
        static_cast<NodeId>(border_rng.uniform(
            static_cast<std::uint64_t>(ib.num_routers))));
    NetLink l;
    l.a = ra;
    l.b = rb;
    l.latency = latency_for_distance(
        distance_miles(net.nodes[static_cast<std::size_t>(ra)].x,
                       net.nodes[static_cast<std::size_t>(ra)].y,
                       net.nodes[static_cast<std::size_t>(rb)].x,
                       net.nodes[static_cast<std::size_t>(rb)].y));
    l.bandwidth_bps = opts.inter_bandwidth_bps;
    l.inter_as = true;
    const auto link_id = static_cast<LinkId>(net.links.size());
    net.links.push_back(l);
    net.as_adjacency.push_back({e.a, e.b, e.rel_ab, link_id});
  }

  // ---- Step 6d: hosts attach to Stub ASes only. --------------------------
  Rng host_rng = root.fork("hosts");
  std::vector<AsId> stubs;
  for (AsId a = 0; a < opts.num_as; ++a) {
    if (cls[static_cast<std::size_t>(a)] == AsClass::kStub) stubs.push_back(a);
  }
  if (stubs.empty()) {
    MASSF_LOG(kWarn) << "no Stub AS generated; attaching hosts everywhere";
    for (AsId a = 0; a < opts.num_as; ++a) stubs.push_back(a);
  }
  for (std::int32_t h = 0; h < opts.num_hosts; ++h) {
    const AsId a = stubs[host_rng.uniform(stubs.size())];
    const AsInfo& info = net.as_info[static_cast<std::size_t>(a)];
    attach_hosts(net, 1, info.first_router,
                 info.first_router + info.num_routers,
                 opts.access_bandwidth_bps, host_rng);
  }

  net.build_adjacency();
  return net;
}

}  // namespace massf
