// Topology-aware channel-clock synchronization for the threaded executor.
//
// The barrier executor (threaded.cpp) makes every worker cross three global
// sense-reversing barriers per window, so each window costs 3 x num_threads
// futex/spin round-trips even when most engine pairs never exchange an
// event. This module replaces the global gates with per-engine-pair
// progress tracking in the null-message/channel-clock tradition: each LP
// carries an epoch-tagged stage word (idle -> processing -> processed ->
// merging -> merged), a merge becomes ready as soon as the LP itself and
// its *in-neighbors on the channel graph* are processed (their channel
// clocks have reached the window end), and engines whose neighbors are
// already ahead run free with no gate at all. A quiescence detector — the
// thread that completes a window's last merge observes every channel clock
// at the window end — collapses the per-pair clocks into a global epoch
// and runs the EngineHooks boundary (hooks -> rebalance -> ckpt) exactly
// where the barrier executor ran it, so boundary semantics, checkpoints,
// and the bit-exact event trace are unchanged (DESIGN.md section 5g).
//
// The ChannelGraph is the topology the sync protocol exploits. Channels
// are directional (src may send cross-LP events to dst) with a per-channel
// lookahead that must be at least the engine's global lookahead — it is
// the pairwise MLL the partitioner already computes for the window width.
// An empty graph means "unknown topology": every pair is assumed
// connected, which is always safe and degrades to all-pairs dependencies.
// When a graph is declared, Engine::schedule enforces it: a cross-LP send
// along an undeclared channel aborts rather than silently perturbing the
// merge order the declared topology promised.
#pragma once

#include <cstdint>
#include <vector>

#include "pdes/event.hpp"

namespace massf {

/// Executor synchronization protocol for Engine::run_threaded.
enum class SyncMode : std::uint8_t {
  kBarrier,  ///< three global sense-reversing barriers per window
  kChannel,  ///< per-engine-pair channel clocks + quiescence epochs
};

/// Process-wide default sync mode: SyncMode::kChannel unless the
/// environment sets MASSF_SYNC=barrier (the CI matrix uses this to run the
/// whole suite under both protocols). Read once and cached.
SyncMode default_sync_mode();

const char* sync_mode_name(SyncMode mode);

/// Directed cross-LP communication topology with per-channel lookahead.
/// Build with add(), then hand to Engine::set_channels (which finalizes).
class ChannelGraph {
 public:
  struct Channel {
    LpId src = kInvalidLp;
    LpId dst = kInvalidLp;
    SimTime lookahead = 0;
  };

  /// Declares that `src` may send cross-LP events to `dst`; `lookahead` is
  /// the channel's minimum latency (>= the engine lookahead, checked at
  /// set_channels). Self-channels and duplicates are dropped (same-LP
  /// sends never cross a channel; duplicates keep the smaller lookahead).
  void add(LpId src, LpId dst, SimTime lookahead);

  bool empty() const { return channels_.empty(); }
  std::size_t size() const { return channels_.size(); }
  const std::vector<Channel>& channels() const { return channels_; }

  /// Builds the per-LP neighbor indexes; ids must be < num_lps. Called by
  /// Engine::set_channels.
  void finalize(LpId num_lps);
  bool finalized() const { return finalized_; }

  /// True when src may send to dst. Valid after finalize; an empty graph
  /// allows everything.
  bool allows(LpId src, LpId dst) const;

  /// Sources that may send to `dst`, sorted by LP id (the deterministic
  /// merge order). Valid after finalize on a non-empty graph.
  const std::vector<LpId>& in_neighbors(LpId dst) const {
    return in_[static_cast<std::size_t>(dst)];
  }

  /// Smallest declared channel lookahead (kSimTimeMax when empty).
  SimTime min_lookahead() const { return min_lookahead_; }

 private:
  std::vector<Channel> channels_;
  std::vector<std::vector<LpId>> in_;   // per-dst sorted src ids
  std::vector<std::vector<LpId>> out_;  // per-src sorted dst ids
  SimTime min_lookahead_ = kSimTimeMax;
  bool finalized_ = false;
};

/// Aggregates of one run's synchronization behaviour, published as
/// `pdes.sync.*` when a registry is attached (schema in DESIGN.md 5g).
/// Only the channel executor fills the dynamic fields; wait times are
/// measured only while a WindowProbe is attached (the hot path performs no
/// clock reads otherwise).
struct SyncStats {
  SyncMode mode = SyncMode::kBarrier;
  /// Declared channels (0 = all-pairs fallback).
  std::uint64_t channels = 0;
  /// Channel advances that carried no events: at each merge, an
  /// in-neighbor whose window outbox for the destination was empty.
  /// Deterministic — the null-message analog of the protocol.
  std::uint64_t null_events = 0;
  /// Claim scans that found no runnable work while the window was open
  /// (a neighbor's channel clock was still behind). Scheduling-dependent.
  std::uint64_t stalls = 0;
  /// Quiescent epochs detected (channel-clock collapses = window
  /// boundaries executed by the channel executor).
  std::uint64_t quiescence_epochs = 0;
  /// Thread-seconds blocked on a channel whose clock was behind (stall
  /// loops inside an open window). Probe-attached runs only.
  double channel_wait_s = 0;
  /// Thread-seconds between a thread running out of claimable work and
  /// the close of the window that was open at that moment. Probe-attached
  /// runs only. channel_wait_s + epoch_wait_s is the protocol-imposed
  /// wait the bench reports as barrier_wait_s for channel entries.
  double epoch_wait_s = 0;
};

}  // namespace massf
