// Cache-friendly per-LP event scheduling for the conservative engine.
//
// EventSched replaces the former std::priority_queue<Event>: a 4-ary
// min-heap of compact 24-byte (time, seq, slot) keys over a slab arena of
// event payloads. Sift operations move only the small keys, the payloads
// never move, and freed arena slots are recycled, so a steady-state run
// performs no allocator traffic at all after warm-up. min_time() is a
// single load, which turns Engine::next_event_floor() into a plain scan of
// per-LP fields instead of a walk over priority-queue tops.
//
// Pop order is the strict total order (time, seq) — seq is unique within
// an LP — so execution order is independent of the heap's internal shape
// and of which executor (sequential or threaded) drives the LP. That
// property is what lets the engine swap heap layouts without perturbing
// the bit-exact event trace.
//
// Outbox replaces the former flat cross-LP send vector with per-(src,dst)
// buffers: sends are appended to their destination's bucket in send order,
// and the barrier merge drains, for each destination, the source LPs in id
// order and each bucket in send order. For any destination that traversal
// visits events in exactly the order the old src-major flat walk did, so
// the seq values assigned at delivery — and therefore the event trace —
// are unchanged, while the per-destination grouping lets worker threads
// claim destinations and merge them concurrently.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pdes/event.hpp"
#include "util/check.hpp"

namespace massf {

class EventSched {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event; kSimTimeMax when empty.
  SimTime min_time() const {
    return heap_.empty() ? kSimTimeMax : heap_[0].time;
  }

  /// Deepest the heap has been over the scheduler's lifetime.
  std::size_t peak_size() const { return peak_; }
  /// Payload slots ever allocated (arena high-water mark).
  std::size_t arena_slots() const { return arena_.size(); }

  void reserve(std::size_t n) {
    heap_.reserve(n);
    arena_.reserve(n);
    free_.reserve(n);
  }

  /// Inserts an event (seq must already be assigned by the engine).
  void push(const Event& ev) {
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(arena_.size());
      arena_.push_back(ev);
    } else {
      slot = free_.back();
      free_.pop_back();
      arena_[slot] = ev;
    }
    heap_.push_back(Key{ev.time, ev.seq, slot});
    sift_up(heap_.size() - 1);
    peak_ = std::max(peak_, heap_.size());
  }

  /// Earliest event by (time, seq). The reference is invalidated by the
  /// next push or pop — copy before handling.
  const Event& top() const {
    MASSF_DCHECK(!heap_.empty());
    return arena_[heap_[0].slot];
  }

  void pop() {
    MASSF_DCHECK(!heap_.empty());
    free_.push_back(heap_[0].slot);
    const Key last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      sift_down(0);
    }
  }

  /// Pending events in (time, seq) order — the scheduler's canonical
  /// content, independent of the heap's internal shape and of the arena
  /// slot assignment. Checkpoints store this list; re-pushing it in order
  /// reconstructs a scheduler with identical pop behavior.
  std::vector<Event> sorted_events() const {
    std::vector<Key> keys = heap_;
    std::sort(keys.begin(), keys.end(), before);
    std::vector<Event> out;
    out.reserve(keys.size());
    for (const Key& k : keys) out.push_back(arena_[k.slot]);
    return out;
  }

  /// Drops all pending events and the arena (checkpoint restore repopulates
  /// via push). peak_ is deliberately kept: it remains a lifetime metric.
  void clear() {
    heap_.clear();
    arena_.clear();
    free_.clear();
  }

 private:
  struct Key {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool before(const Key& x, const Key& y) {
    if (x.time != y.time) return x.time < y.time;
    return x.seq < y.seq;
  }

  void sift_up(std::size_t i) {
    const Key k = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(k, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = k;
  }

  void sift_down(std::size_t i) {
    const Key k = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], k)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = k;
  }

  std::vector<Key> heap_;
  std::vector<Event> arena_;          // stable payload slots
  std::vector<std::uint32_t> free_;   // recycled arena slots
  std::size_t peak_ = 0;
};

class Outbox {
 public:
  /// Buffers a cross-LP send (ev.lp is the destination) in send order
  /// within its destination's bucket.
  void add(const Event& ev) {
    ++total_;
    for (Bucket& b : buckets_) {
      if (b.dst == ev.lp) {
        b.events.push_back(ev);
        return;
      }
    }
    buckets_.emplace_back();
    buckets_.back().dst = ev.lp;
    buckets_.back().events.push_back(ev);
  }

  /// The buffered sends for `dst` in send order, or nullptr if none. The
  /// bucket list is bounded by the source's out-degree, so the linear scan
  /// stays short.
  const std::vector<Event>* find(LpId dst) const {
    if (total_ == 0) return nullptr;
    for (const Bucket& b : buckets_) {
      if (b.dst == dst) return b.events.empty() ? nullptr : &b.events;
    }
    return nullptr;
  }

  /// Destinations with at least one buffered send, sorted by LP id. The
  /// sharded executor walks this to frame per-(src,dst) ring batches in
  /// the same deterministic order the barrier merge drains them.
  std::vector<LpId> dsts() const {
    std::vector<LpId> out;
    for (const Bucket& b : buckets_) {
      if (!b.events.empty()) out.push_back(b.dst);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Buffered events this window (all destinations).
  std::size_t total() const { return total_; }

  /// Non-empty (src,dst) buffers this window.
  std::size_t batches() const {
    std::size_t n = 0;
    for (const Bucket& b : buckets_) n += b.events.empty() ? 0 : 1;
    return n;
  }

  /// Empties the buckets but keeps their capacity (and the bucket list
  /// itself) for the next window.
  void clear() {
    for (Bucket& b : buckets_) b.events.clear();
    total_ = 0;
  }

 private:
  struct Bucket {
    LpId dst = kInvalidLp;
    std::vector<Event> events;
  };
  std::vector<Bucket> buckets_;
  std::size_t total_ = 0;
};

}  // namespace massf
