// Threaded executor for the conservative engine: the same window protocol
// as Engine::run(), with the per-window LP processing distributed over
// worker threads. LPs are assigned round-robin; each LP's queue, outbox,
// and statistics are touched only by its owning thread inside a window, so
// no locks are needed — the std::barrier phases are the only coordination,
// mirroring the MPI barrier of the real cluster engine.
#include <barrier>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/probe.hpp"
#include "pdes/engine.hpp"
#include "util/check.hpp"

namespace massf {

namespace {
using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}
}  // namespace

RunStats Engine::run_threaded(std::int32_t num_threads) {
  MASSF_CHECK(num_threads >= 1);
  num_threads = std::min<std::int32_t>(num_threads,
                                       std::max<std::int32_t>(1, num_lps()));
  begin_run();
  threaded_ = true;

  std::barrier sync(num_threads + 1);
  bool done = false;  // written by coordinator between barrier phases only

  // Per-worker busy time within the current window (seconds); written by
  // the owning worker inside the window, read by the coordinator after the
  // closing barrier. Only maintained when a probe is attached.
  std::vector<double> worker_busy_s(static_cast<std::size_t>(num_threads), 0.0);

  std::vector<std::jthread> workers;
  workers.reserve(static_cast<std::size_t>(num_threads));
  for (std::int32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([this, t, num_threads, &sync, &done, &worker_busy_s] {
      for (;;) {
        sync.arrive_and_wait();  // window opened (or done raised)
        if (done) return;
        const auto t0 = probe_ ? Clock::now() : Clock::time_point{};
        for (LpId i = t; i < static_cast<LpId>(lps_.size());
             i += num_threads) {
          process_lp_window(i);
        }
        if (probe_) {
          worker_busy_s[static_cast<std::size_t>(t)] =
              elapsed_s(t0, Clock::now());
        }
        sync.arrive_and_wait();  // window closed
      }
    });
  }

  SimTime floor = next_event_floor();
  while (floor < opts_.end_time && floor != kSimTimeMax && !stop_requested()) {
    window_end_ = floor + opts_.lookahead;
    if (probe_ == nullptr) {
      run_barrier_hooks(floor);
      sync.arrive_and_wait();  // release workers into the window
      sync.arrive_and_wait();  // wait for all LPs to finish
      deliver_outboxes();
      account_window();
    } else {
      const auto t0 = Clock::now();
      run_barrier_hooks(floor);
      const auto t1 = Clock::now();
      sync.arrive_and_wait();  // release workers into the window
      sync.arrive_and_wait();  // wait for all LPs to finish
      const auto t2 = Clock::now();
      probe_window(floor);
      deliver_outboxes();
      account_window();
      const auto t3 = Clock::now();
      // Barrier wait = idle thread-seconds at the closing barrier: the
      // window span charged to every worker minus the time it was busy.
      const double span = elapsed_s(t1, t2);
      double busy = 0;
      for (std::int32_t t = 0; t < num_threads; ++t) {
        busy += worker_busy_s[static_cast<std::size_t>(t)];
      }
      const double wait = std::max(0.0, span * num_threads - busy);
      probe_->end_window(elapsed_s(t0, t1), span, wait, elapsed_s(t2, t3));
    }
    floor = next_event_floor();
  }

  done = true;
  sync.arrive_and_wait();  // release workers to observe `done`

  workers.clear();  // join
  threaded_ = false;
  finish_run(floor);
  return stats_;
}

}  // namespace massf
