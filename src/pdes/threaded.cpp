// Threaded executor for the conservative engine: the same window protocol
// as Engine::run(), with both the per-window LP processing and the barrier
// outbox merge distributed over threads (the coordinator doubles as worker
// 0). Work is claimed dynamically: each phase pops LP ids off a shared
// atomic index, so load balance is limited only by the slowest single LP,
// not by a static LP→thread bucket. Claim order cannot affect results —
// within a window every LP is still processed serially by exactly one
// thread, and the merge phase claims *destinations*, whose arrival order
// (src id, send order) is fixed by the Outbox layout (sched.hpp).
//
// Window shape: three sense-reversing barriers (barrier.hpp) —
//   open  : coordinator has reset claim counters, run hooks, set the window
//   mid   : all LPs processed; outboxes frozen, merge may begin
//   close : all destinations merged; coordinator accounts and picks the
//           next floor
// Per-LP state is handed between threads exclusively across these barriers,
// which is the entire synchronization story (no locks on the hot path).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/probe.hpp"
#include "pdes/barrier.hpp"
#include "pdes/engine.hpp"
#include "util/check.hpp"
#include "util/warn.hpp"

namespace massf {

namespace {
using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}
}  // namespace

RunStats Engine::run_threaded(std::int32_t num_threads) {
  MASSF_CHECK(num_threads >= 1);
  const std::int32_t requested = num_threads;
  num_threads = std::min<std::int32_t>(num_threads,
                                       std::max<std::int32_t>(1, num_lps()));
  if (num_threads < requested) {
    warn(ErrorCategory::kConfig,
         "run_threaded: " + std::to_string(requested) + " threads requested "
         "for " + std::to_string(num_lps()) + " LPs; clamped to " +
         std::to_string(num_threads) +
         " (a thread with no claimable LP would only spin at the gates)");
  }
  warn_unknown_host_concurrency(std::thread::hardware_concurrency());
  if (num_threads == 1) {
    // One thread has nobody to synchronize with: run the sequential window
    // loop instead of paying three self-barrier arrivals per window. Only
    // the reported thread count differs from run() — RunStats, probe rows,
    // and the event trace are identical.
    begin_run();
    run_threads_ = 1;
    return run_window_loop();
  }
  if (opts_.sync == SyncMode::kChannel) {
    return run_threaded_channel(num_threads);
  }
  begin_run();
  threaded_ = true;
  run_threads_ = num_threads;

  const LpId n = num_lps();
  const std::int32_t spin = spin_budget(num_threads);
  SpinBarrier open_gate(num_threads, spin);
  SpinBarrier mid_gate(num_threads, spin);
  SpinBarrier close_gate(num_threads, spin);
  std::atomic<std::int32_t> process_claim{0};
  std::atomic<std::int32_t> merge_claim{0};
  bool done = false;  // written by coordinator between barrier phases only

  // Per-thread busy time in the processing phase (seconds); written by the
  // owning thread inside the window, read by the coordinator after the mid
  // barrier. Only maintained when a probe is attached.
  std::vector<double> busy_s(static_cast<std::size_t>(num_threads), 0.0);

  // A throw from a handler must not unwind past a barrier: the other
  // threads would wait forever at a gate nobody reaches. The first error
  // is recorded (which raises the stop flag), the protocol completes the
  // window, and the run rethrows after the join.
  const auto guarded_process = [&](std::int32_t i) {
    try {
      process_lp_window(i);
    } catch (...) {
      record_run_error();
    }
  };
  const auto guarded_merge = [&](std::int32_t d) {
    try {
      merge_lp_inbox(d);
    } catch (...) {
      record_run_error();
    }
  };

  // Processing phase then merge phase, claiming dynamically in each.
  const auto window_phase = [&](std::int32_t self) {
    const auto t0 = probe_ ? Clock::now() : Clock::time_point{};
    std::int32_t i;
    while ((i = process_claim.fetch_add(1, std::memory_order_relaxed)) < n) {
      guarded_process(i);
    }
    if (probe_) {
      busy_s[static_cast<std::size_t>(self)] = elapsed_s(t0, Clock::now());
    }
    mid_gate.arrive_and_wait();
    std::int32_t d;
    while ((d = merge_claim.fetch_add(1, std::memory_order_relaxed)) < n) {
      guarded_merge(d);
    }
  };

  std::vector<std::jthread> workers;
  workers.reserve(static_cast<std::size_t>(num_threads - 1));
  for (std::int32_t t = 1; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      for (;;) {
        open_gate.arrive_and_wait();  // window opened (or done raised)
        if (done) return;
        window_phase(t);
        close_gate.arrive_and_wait();
      }
    });
  }

  SimTime floor = next_event_floor();
  // The boundary sequence runs hooks that may throw while every worker is
  // parked at the open gate; the catch below records the error and falls
  // through to the normal shutdown (raise done, release the gate, join).
  try {
  while (floor < opts_.end_time && floor != kSimTimeMax && !stop_requested()) {
    // Coordinator-only: workers are parked at the open gate, so the whole
    // boundary sequence (barrier hooks → rebalance → ckpt, EngineHooks
    // contract) sees the same quiescent state the sequential executor does.
    process_claim.store(0, std::memory_order_relaxed);
    merge_claim.store(0, std::memory_order_relaxed);
    if (probe_ == nullptr) {
      if (!open_window_boundary(floor)) break;  // checkpoint-then-exit
      open_gate.arrive_and_wait();
      window_phase(0);
      close_gate.arrive_and_wait();
      clear_outboxes();
      account_window();
    } else {
      const auto t0 = Clock::now();
      const bool go = open_window_boundary(floor);
      const auto t1 = Clock::now();
      if (!go) break;  // checkpoint-then-exit
      open_gate.arrive_and_wait();
      // Inlined window_phase so the end of the processing phase (everyone
      // through the mid barrier) can be timestamped.
      std::int32_t i;
      while ((i = process_claim.fetch_add(1, std::memory_order_relaxed)) <
             n) {
        guarded_process(i);
      }
      busy_s[0] = elapsed_s(t1, Clock::now());
      mid_gate.arrive_and_wait();
      const auto t2 = Clock::now();
      std::int32_t d;
      while ((d = merge_claim.fetch_add(1, std::memory_order_relaxed)) < n) {
        guarded_merge(d);
      }
      close_gate.arrive_and_wait();
      probe_window(floor);
      clear_outboxes();
      account_window();
      const auto t3 = Clock::now();
      // Barrier wait = idle thread-seconds in the processing phase: the
      // phase span charged to every thread minus the time it was busy.
      const double span = elapsed_s(t1, t2);
      double busy = 0;
      for (std::int32_t t = 0; t < num_threads; ++t) {
        busy += busy_s[static_cast<std::size_t>(t)];
      }
      const double wait = std::max(0.0, span * num_threads - busy);
      probe_->end_window(elapsed_s(t0, t1), span, wait, elapsed_s(t2, t3));
    }
    floor = next_event_floor();
  }
  } catch (...) {
    record_run_error();
  }

  done = true;
  open_gate.arrive_and_wait();  // release workers to observe `done`

  workers.clear();  // join
  threaded_ = false;
  finish_run(floor);
  rethrow_run_error();
  return stats_;
}

}  // namespace massf
