// Threaded executor for the conservative engine: the same window protocol
// as Engine::run(), with the per-window LP processing distributed over
// worker threads. LPs are assigned round-robin; each LP's queue, outbox,
// and statistics are touched only by its owning thread inside a window, so
// no locks are needed — the std::barrier phases are the only coordination,
// mirroring the MPI barrier of the real cluster engine.
#include <barrier>
#include <thread>
#include <vector>

#include "pdes/engine.hpp"
#include "util/check.hpp"

namespace massf {

RunStats Engine::run_threaded(std::int32_t num_threads) {
  MASSF_CHECK(num_threads >= 1);
  num_threads = std::min<std::int32_t>(num_threads,
                                       std::max<std::int32_t>(1, num_lps()));
  begin_run();
  threaded_ = true;

  std::barrier sync(num_threads + 1);
  bool done = false;  // written by coordinator between barrier phases only

  std::vector<std::jthread> workers;
  workers.reserve(static_cast<std::size_t>(num_threads));
  for (std::int32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([this, t, num_threads, &sync, &done] {
      for (;;) {
        sync.arrive_and_wait();  // window opened (or done raised)
        if (done) return;
        for (LpId i = t; i < static_cast<LpId>(lps_.size());
             i += num_threads) {
          process_lp_window(i);
        }
        sync.arrive_and_wait();  // window closed
      }
    });
  }

  SimTime floor = next_event_floor();
  while (floor < opts_.end_time && floor != kSimTimeMax && !stop_requested_) {
    window_end_ = floor + opts_.lookahead;
    for (auto& hook : barrier_hooks_) hook(*this, floor);
    sync.arrive_and_wait();  // release workers into the window
    sync.arrive_and_wait();  // wait for all LPs to finish
    deliver_outboxes();
    account_window();
    floor = next_event_floor();
  }

  done = true;
  sync.arrive_and_wait();  // release workers to observe `done`

  workers.clear();  // join
  threaded_ = false;
  finish_run(floor);
  return stats_;
}

}  // namespace massf
