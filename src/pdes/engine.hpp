// Conservative barrier-synchronous parallel discrete-event engine.
//
// This reproduces the synchronization protocol of DaSSF-class simulators
// (MaSSF's engine): logical processes (LPs) — one per simulation engine
// node — advance in global windows of width `lookahead`, the minimum
// cross-partition link latency (MLL). Within a window every LP processes
// its own events independently; events sent to other LPs are buffered and
// exchanged at the window barrier. Conservative correctness holds because a
// cross-LP event sent at time t arrives at t + (channel latency >= MLL),
// i.e. never inside the window it was sent from — the engine enforces this
// with a runtime check rather than trusting the caller.
//
// The engine also implements the paper-cluster substitution documented in
// DESIGN.md: per window it charges each LP `cost_per_event` for every event
// processed and the whole machine one synchronization cost, accumulating a
// *modeled* parallel wall clock from which simulation time, load imbalance,
// and parallel efficiency are derived. A threaded executor (threaded.hpp)
// really runs LPs on worker threads and produces identical simulation
// results.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "guard/options.hpp"
#include "pdes/channel_sync.hpp"
#include "pdes/event.hpp"
#include "pdes/sched.hpp"
#include "util/stats.hpp"

namespace massf {

namespace obs {
class Registry;
class WindowProbe;
}  // namespace obs

namespace ckpt {
class Reader;
class Writer;
}  // namespace ckpt

namespace shard {
class ShardDriver;
}  // namespace shard

class Engine;

/// Every hook the engine fires at a window boundary, installed as one
/// struct (set_hooks / hooks()). Firing order at each boundary, on the
/// coordinator thread under both executors (workers quiescent, no handler
/// running):
///
///   1. barrier hooks, in registration order — online pacing, fault
///      injection, routing changes;
///   2. the rebalance hook, every `rebalance_every` completed windows —
///      may migrate LP state between engine nodes (Engine::migrate_events);
///   3. the ckpt hook, every `ckpt_every` completed windows — snapshots the
///      post-barrier, post-rebalance state.
///
/// Because the checkpoint captures state *after* stages 1–2, a restored run
/// skips those stages at the boundary it resumed from (restore_state sets
/// the skip; the ckpt stage is suppressed by last_ckpt_window_). Any stage
/// may call request_stop(): from stages 1–2 the boundary's window is still
/// processed before the run ends (matching the loop-top stop check); from
/// stage 3 the run ends immediately — checkpoint-then-exit.
struct EngineHooks {
  std::vector<std::function<void(Engine&, SimTime)>> barrier;
  /// 0 disables the rebalance stage.
  std::uint64_t rebalance_every = 0;
  std::function<void(Engine&, SimTime)> rebalance;
  /// 0 disables the ckpt stage.
  std::uint64_t ckpt_every = 0;
  std::function<void(Engine&, SimTime)> ckpt;
};

/// Tally of one migrate_events() call: events re-registered on the
/// destination and the massf.ckpt.v1 wire bytes they serialized to.
struct MigrationStats {
  std::uint64_t events = 0;
  std::uint64_t bytes = 0;
};

/// One logical process: a simulation engine node owning a partition of the
/// network. Implementations must be deterministic functions of the event
/// stream (all randomness from per-LP forked Rng streams).
class LogicalProcess {
 public:
  virtual ~LogicalProcess() = default;
  virtual void handle(Engine& engine, const Event& event) = 0;

  /// Checkpoint hooks (ckpt/ckpt.hpp): serialize every member that can
  /// diverge from construction — RNG positions, counters, per-flow state.
  /// Called at a window boundary while no events are in flight. The default
  /// is correct only for stateless LPs. load() returns false on a semantic
  /// mismatch (the checkpoint was taken with a different topology/config).
  virtual void save(ckpt::Writer& writer) const;
  virtual bool load(ckpt::Reader& reader);
};

struct EngineOptions {
  /// Synchronization window width = minimum cross-partition link latency.
  SimTime lookahead = milliseconds(1);
  /// Modeled per-event processing cost in seconds on one engine node.
  double cost_per_event_s = 5e-6;
  /// Modeled per-window global synchronization cost in seconds (from the
  /// cluster cost model, a function of the engine-node count).
  double sync_cost_s = 0;
  /// Simulation horizon; events at or beyond it are not executed.
  SimTime end_time = seconds(1);
  /// When > 0, per-LP event counts are recorded into virtual-time bins of
  /// this width (for load-variation traces, paper Figure 3).
  SimTime load_bin = 0;
  /// Synchronization protocol for run_threaded (run() is unaffected; both
  /// protocols produce the bit-identical trace). Defaults to channel
  /// clocks; MASSF_SYNC=barrier flips the process default.
  SyncMode sync = default_sync_mode();
  /// Supervision (src/guard). When enabled the engine maintains liveness
  /// telemetry (guard::GuardTelemetry) a watchdog can sample; off by
  /// default, flipped process-wide by MASSF_GUARD. The engine itself never
  /// starts the monitor thread — guard::Watchdog does.
  guard::GuardOptions guard = guard::default_guard_options();
};

struct RunStats {
  std::uint64_t total_events = 0;
  std::uint64_t num_windows = 0;
  std::vector<std::uint64_t> events_per_lp;
  /// Modeled parallel wall-clock (seconds): sum over windows of
  /// max_lp(events * cost_per_event) + sync_cost.
  double modeled_wall_s = 0;
  /// Modeled wall-clock spent in synchronization only.
  double modeled_sync_s = 0;
  /// Modeled wall-clock charged for LP migrations (already included in
  /// modeled_wall_s) — zero unless a rebalance hook moved state.
  double modeled_migrate_s = 0;
  /// Per-LP modeled busy time (seconds).
  std::vector<double> busy_s;
  /// Virtual time at which the run stopped.
  SimTime end_vtime = 0;
  /// Per-LP load traces (empty unless EngineOptions::load_bin > 0).
  std::vector<TimeSeries> lp_load;
  /// Cross-LP events exchanged at window barriers over the whole run, and
  /// the number of non-empty (src,dst) outbox buffers merged. Both are
  /// deterministic functions of the event stream — the differential tests
  /// compare them across executors.
  std::uint64_t cross_lp_events = 0;
  std::uint64_t merge_batches = 0;

  /// Per-engine-node kernel event rates (events per modeled second of the
  /// whole run), the quantity whose normalized stddev is the paper's load
  /// imbalance metric.
  std::vector<double> event_rates() const;
};

class Engine {
 public:
  explicit Engine(const EngineOptions& options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers an LP; returns its id (dense, in registration order).
  LpId add_lp(std::unique_ptr<LogicalProcess> lp);

  std::int32_t num_lps() const {
    return static_cast<std::int32_t>(lps_.size());
  }

  const EngineOptions& options() const { return opts_; }

  /// Schedules an event. Usable both before run() (initial events, any LP)
  /// and from inside LogicalProcess::handle. From a handler, an event for a
  /// *different* LP must arrive at or after the end of the current window
  /// (the conservative contract); same-LP events only need time >= now().
  void schedule(LpId lp, SimTime time, std::int32_t type, std::uint64_t a = 0,
                std::uint64_t b = 0, std::uint64_t c = 0, std::uint64_t d = 0);

  /// Timestamp of the event being handled (valid inside handle()); inside a
  /// barrier hook, the start time (floor) of the window about to open —
  /// identical under both executors.
  SimTime now() const {
    return (threaded_ && tls_ctx_.engine == this) ? tls_ctx_.now : now_;
  }

  /// LP whose event is being handled (valid inside handle()).
  LpId current_lp() const {
    return (threaded_ && tls_ctx_.engine == this) ? tls_ctx_.lp : current_lp_;
  }

  /// Runs sequentially (deterministic reference executor) until end_time or
  /// event exhaustion. Contract violations (util/error.hpp) surface as
  /// thrown EngineError under every executor — a throw from a handler or
  /// hook on a worker thread is captured, the run shuts down cleanly at
  /// the next protocol step, and the first error is rethrown on the
  /// calling thread. The engine must not be reused after a thrown run.
  RunStats run();

  /// Runs the same protocol with the per-window LP processing and outbox
  /// merge distributed over `num_threads` threads (the calling thread
  /// counts as one). LPs are claimed dynamically, so a window's span is
  /// bounded by its slowest single LP rather than by a static LP bucket.
  /// Produces bit-identical simulation results to run(): within a window
  /// each LP is processed serially by exactly one thread, and the merge
  /// assigns arrival seqs in an order independent of thread scheduling
  /// (DESIGN.md sections 5d and 5g). Modeled-time statistics are identical
  /// as well — only real wall clock differs. The synchronization protocol
  /// is selected by EngineOptions::sync: global barriers (threaded.cpp) or
  /// per-channel clocks with quiescence epochs (channel_sync.cpp).
  /// num_threads == 1 short-circuits to the sequential window loop — one
  /// thread has nothing to synchronize with.
  RunStats run_threaded(std::int32_t num_threads);

  /// Declares the cross-LP communication topology the channel-clock
  /// executor synchronizes over, replacing the all-pairs default. Every
  /// channel lookahead must be >= options().lookahead and ids must name
  /// registered LPs (violations throw EngineError, category topology).
  /// Once declared, schedule() enforces the topology under every executor:
  /// a cross-LP send along an undeclared channel throws.
  void set_channels(ChannelGraph graph);
  const ChannelGraph& channels() const { return channels_; }

  /// Synchronization aggregates of the last run (pdes.sync.* schema).
  const SyncStats& sync_stats() const { return sync_stats_; }

  /// Requests a clean stop at the next window boundary. Callable from
  /// handlers (including ones running on run_threaded workers) and, in
  /// online mode, from the agent thread — hence the atomic: the coordinator
  /// re-reads the flag at every window boundary.
  void request_stop() { stop_requested_.store(true, std::memory_order_release); }

  /// Forcibly cancels the in-flight run from another thread (the watchdog's
  /// stall policy). Beyond request_stop() — which only takes effect at the
  /// next window boundary, a boundary a stalled run never reaches — this
  /// additionally wakes the channel-clock executor's parked/stalling
  /// workers so they observe the stop and return. Returns true when the
  /// active executor supports forced cancellation (currently the channel
  /// executor); false otherwise (sequential and barrier executors can only
  /// honor the boundary stop — a run wedged *inside* a window or at a
  /// SpinBarrier cannot be recovered in-process). After a cancelled run,
  /// run_cancelled() is true, the RunStats are a truncated prefix, and the
  /// engine must not be reused — recovery restores a checkpoint into a
  /// fresh engine (guard/guarded_run.hpp).
  bool cancel_run();

  /// True when the last run ended via cancel_run() rather than reaching
  /// end_time / event exhaustion / a clean stop.
  bool run_cancelled() const {
    return cancel_requested_.load(std::memory_order_acquire);
  }

  /// Liveness telemetry sampled by guard::Watchdog. Sized by begin_run()
  /// when options().guard.enabled; all fields are atomics (safe to read
  /// concurrently with the run).
  const guard::GuardTelemetry& guard_telemetry() const { return guard_; }

  /// Test-only stall injection: once `after_windows` windows have been
  /// accounted, the channel-clock executor stops claiming `lp`, freezing
  /// its channel clock mid-run — in-neighbors can never merge, the epoch
  /// never closes, and the protocol stalls exactly the way a lost/wedged
  /// component would. Other executors ignore the freeze (the degradation
  /// ladder's barrier fallback must complete). kInvalidLp (default) disarms.
  void test_freeze_lp_clock(LpId lp, std::uint64_t after_windows = 0) {
    freeze_lp_ = lp;
    freeze_after_windows_ = after_windows;
  }

  /// Installs the window-boundary hook set, replacing whatever was
  /// installed before. See EngineHooks for the firing-order contract.
  void set_hooks(EngineHooks hooks) { hooks_ = std::move(hooks); }

  /// Mutable access to the installed hooks — the composition path: each
  /// subsystem (fault injector, failover, checkpointing, rebalancer)
  /// appends or fills in its own stage without clobbering the others.
  EngineHooks& hooks() { return hooks_; }
  const EngineHooks& hooks() const { return hooks_; }

  /// DEPRECATED shim (one PR): append to hooks().barrier instead. Barrier
  /// hooks run at every window boundary with the window start time,
  /// outside of any handler, in registration order (stage 1 of the
  /// EngineHooks contract).
  void add_barrier_hook(std::function<void(Engine&, SimTime)> hook) {
    hooks_.barrier.push_back(std::move(hook));
  }

  /// DEPRECATED shim (one PR): append to hooks().barrier instead.
  void set_barrier_hook(std::function<void(Engine&, SimTime)> hook) {
    add_barrier_hook(std::move(hook));
  }

  /// Attaches a window telemetry probe (obs/probe.hpp): per window the
  /// engine records per-LP events, queue depths, outbox sizes, and real
  /// wall-clock per protocol phase. Null (the default) detaches; without a
  /// probe the run loop performs no clock reads and no recording — the
  /// per-event path is untouched either way.
  void set_probe(obs::WindowProbe* probe) { probe_ = probe; }

  /// Attaches a metrics registry (obs/metrics.hpp): run totals are
  /// published as `pdes.*` counters/gauges when a run finishes (schema in
  /// DESIGN.md). Null (the default) publishes nothing.
  void set_registry(obs::Registry* registry) { registry_ = registry; }

  /// DEPRECATED shim (one PR): set hooks().ckpt_every / hooks().ckpt
  /// instead. The ckpt stage fires every `every_windows` completed windows
  /// at the window boundary, after the barrier and rebalance stages (stage
  /// 3 of the EngineHooks contract — the snapshot captures post-hook
  /// state). The fn typically drives Participants::save + a file write and
  /// may call request_stop() to end the run at this boundary (checkpoint-
  /// then-exit). every_windows == 0 disarms.
  void set_ckpt_hook(std::uint64_t every_windows,
                     std::function<void(Engine&, SimTime)> fn) {
    hooks_.ckpt_every = every_windows;
    hooks_.ckpt = std::move(fn);
  }

  /// Moves the pending events of LP `from` that satisfy `pred` to LP `to`:
  /// the matching events are extracted in (time, seq) order, serialized
  /// through the massf.ckpt.v1 record encoding (DESIGN.md section 5f), and
  /// re-registered on the destination with fresh destination seqs — so the
  /// migrated events sort after `to`'s previously pending same-timestamp
  /// events, deterministically under both executors. Callable only at a
  /// window boundary (from a barrier or rebalance hook; no handler may be
  /// running). Returns the events moved and their serialized size.
  MigrationStats migrate_events(LpId from, LpId to,
                                const std::function<bool(const Event&)>& pred);

  /// Charges `seconds` of modeled wall-clock to the run (recorded in both
  /// modeled_wall_s and modeled_migrate_s) — the rebalancer's honest
  /// accounting of migration cost. Coordinator-only, at a boundary.
  void charge_modeled_cost(double seconds) {
    stats_.modeled_wall_s += seconds;
    stats_.modeled_migrate_s += seconds;
  }

  /// Events processed by `lp` so far this run — live (mid-run) view of the
  /// tally that finish_run publishes as RunStats::events_per_lp. The
  /// rebalance controller reads these at boundaries to measure imbalance.
  std::uint64_t lp_events(LpId lp) const {
    return lps_[static_cast<std::size_t>(lp)].events;
  }

  /// Pending (not yet executed) events queued on `lp`.
  std::size_t lp_pending(LpId lp) const {
    return lps_[static_cast<std::size_t>(lp)].queue.size();
  }

  /// Serializes engine-owned run state: per-LP pending events in (time,
  /// seq) order, seq counters, event counts, the accumulated RunStats, and
  /// each LogicalProcess's own state via its save() hook. Call only from a
  /// ckpt hook (window boundary).
  void save_state(ckpt::Writer& writer) const;

  /// Restores state saved by save_state() into an identically constructed
  /// engine (same LPs in the same order, same options). The next run()/
  /// run_threaded() call resumes from the checkpointed boundary and
  /// produces the same event trace as the uninterrupted run. Returns false
  /// on shape mismatch (LP count / lookahead / load_bin differ).
  bool restore_state(ckpt::Reader& reader);

 private:
  /// The multi-process executor (src/shard) drives the same window
  /// protocol as run()/run_threaded() over a subset of the LPs, splicing
  /// remote arrivals into the outboxes so merge_lp_inbox assigns the
  /// bit-identical sequence numbers. It reuses the private protocol steps
  /// rather than duplicating them.
  friend class shard::ShardDriver;

  struct Lp {
    std::unique_ptr<LogicalProcess> process;
    EventSched queue;
    std::uint64_t next_seq = 0;
    std::uint64_t events = 0;
    std::uint64_t window_events = 0;
    Outbox outbox;  // cross-LP sends buffered within a window, by dst
    /// Queue depth after processing, before the barrier merge — recorded
    /// by whichever thread merges this LP's arrivals, read by the window
    /// probe. Deterministic, so probe rows match across executors.
    std::uint64_t premerge_depth = 0;
  };

  SimTime next_event_floor() const;
  /// Delivers every source's buffered sends for destination `dst`,
  /// assigning arrival seqs in (src id, send order) — the deterministic
  /// merge order. Touches only `dst`'s queue/seq (sources are read-only),
  /// so distinct destinations can merge concurrently. When a channel graph
  /// is declared only the in-neighbors are drained (same order — schedule()
  /// guarantees nobody else sent) and empty channels are tallied as null
  /// advances into `nulls` when non-null.
  void merge_lp_inbox(LpId dst, std::uint64_t* nulls = nullptr);
  /// Empties all outboxes after a merge and folds their sizes into the
  /// sched counters. Coordinator-only.
  void clear_outboxes();
  void account_window();
  void process_lp_window(LpId i);
  void run_barrier_hooks(SimTime floor);
  /// Stage 2: fires the rebalance hook when the boundary completes a
  /// multiple of hooks_.rebalance_every windows. Coordinator-only.
  void maybe_rebalance(SimTime floor);
  /// Stage 3: fires the ckpt hook when the boundary at `floor` completes a
  /// multiple of hooks_.ckpt_every windows. Coordinator-only, after the
  /// boundary's barrier and rebalance stages. last_ckpt_window_ keeps a
  /// restored run from re-saving (or re-stopping) at the boundary it just
  /// resumed from.
  void maybe_checkpoint(SimTime floor);
  /// The full boundary sequence (EngineHooks contract) for the window
  /// opening at `floor`; returns false when the run must end at this
  /// boundary without processing the window (checkpoint-then-exit).
  bool open_window_boundary(SimTime floor);
  void probe_window(SimTime floor);
  void publish_run_metrics();
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  // ---- structured run errors (util/error.hpp) ---------------------------
  // A throw from a handler or hook on a worker thread cannot simply
  // propagate: the other workers are parked at gates / epoch waits and the
  // process would deadlock at thread join. Workers instead record the
  // first exception here (which also raises the stop flag so every thread
  // unwinds through the normal protocol) and the run rethrows it on the
  // calling thread after the join. The engine is poisoned afterwards —
  // mid-window state is a torn prefix.
  void record_run_error();
  bool has_run_error() const;
  /// Rethrows the recorded error (if any) on the calling thread. Called at
  /// the end of every run, after finish_run.
  void rethrow_run_error();

  // ---- guard telemetry (guard/options.hpp) ------------------------------
  /// Publishes LP `i`'s post-window liveness cell (clock, events, queue
  /// depth/min). Called by process_lp_window; relaxed atomic stores, gated
  /// on guard_enabled_.
  void guard_note_lp(LpId i);
  /// True when the test freeze hook says LP `i` must not be claimed.
  bool guard_frozen(LpId i) const {
    return i == freeze_lp_ &&
           guard_.windows.load(std::memory_order_relaxed) >=
               freeze_after_windows_;
  }

  EngineOptions opts_;
  std::vector<Lp> lps_;
  SimTime now_ = 0;
  LpId current_lp_ = kInvalidLp;
  SimTime window_end_ = 0;
  bool running_ = false;
  bool threaded_ = false;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> cancel_requested_{false};
  /// Cached opts_.guard.enabled: the only guard cost a watchdog-off run
  /// pays is this branch.
  bool guard_enabled_ = false;
  guard::GuardTelemetry guard_;
  /// Installed by the active executor when it supports forced wake-up of
  /// its workers; invoked (under the mutex) by cancel_run.
  std::mutex cancel_mu_;
  std::function<void()> canceller_;
  /// First exception recorded by any thread during the run (record_run_
  /// error); rethrown on the calling thread after join.
  mutable std::mutex error_mu_;
  std::exception_ptr run_error_;
  /// Test-only stall injection (test_freeze_lp_clock).
  LpId freeze_lp_ = kInvalidLp;
  std::uint64_t freeze_after_windows_ = 0;
  /// Thread count of the last run (0 = sequential), for pdes.sched.*.
  std::int32_t run_threads_ = 0;
  RunStats stats_;
  EngineHooks hooks_;
  /// Declared cross-LP topology (empty = all-pairs). Finalized.
  ChannelGraph channels_;
  /// Sync aggregates of the current/last run (reset by begin_run).
  SyncStats sync_stats_;
  obs::WindowProbe* probe_ = nullptr;
  obs::Registry* registry_ = nullptr;
  std::uint64_t last_ckpt_window_ = 0;
  /// Set by restore_state; makes the next begin_run keep the restored
  /// RunStats instead of zeroing them (consumed by that run).
  bool restored_ = false;
  /// Set by restore_state; the checkpoint captured post-barrier, post-
  /// rebalance state, so those stages must not re-fire at the boundary the
  /// run resumes from (consumed at the first boundary).
  bool skip_boundary_hooks_ = false;

  void begin_run();
  void finish_run(SimTime floor);
  /// The sequential window loop shared by run() and the single-thread
  /// run_threaded short-circuit (begin_run/run_threads_ already done).
  RunStats run_window_loop();
  /// The channel-clock executor (channel_sync.cpp). Requires
  /// num_threads >= 2; run_threaded dispatches here for SyncMode::kChannel.
  RunStats run_threaded_channel(std::int32_t num_threads);

  // Handler context for worker threads; each LP is owned by exactly one
  // thread within a window, so all queue/outbox mutations stay LP-local.
  // The context is tagged with the owning engine and saved/restored around
  // each LP's window, so engines that nest or interleave on one thread
  // (e.g. a handler driving an inner simulation) cannot read each other's
  // handler state.
  struct HandlerCtx {
    const Engine* engine = nullptr;
    SimTime now = 0;
    LpId lp = kInvalidLp;
  };
  static thread_local HandlerCtx tls_ctx_;
};

}  // namespace massf
