#include "pdes/engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "ckpt/ckpt.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace massf {

thread_local Engine::HandlerCtx Engine::tls_ctx_;

void LogicalProcess::save(ckpt::Writer&) const {}
bool LogicalProcess::load(ckpt::Reader&) { return true; }

namespace {
using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}
}  // namespace

std::vector<double> RunStats::event_rates() const {
  std::vector<double> rates(events_per_lp.size(), 0.0);
  if (modeled_wall_s <= 0) return rates;
  for (std::size_t i = 0; i < events_per_lp.size(); ++i) {
    rates[i] = static_cast<double>(events_per_lp[i]) / modeled_wall_s;
  }
  return rates;
}

Engine::Engine(const EngineOptions& options)
    : opts_(options), guard_enabled_(options.guard.enabled) {
  MASSF_ENFORCE(opts_.lookahead > 0, ErrorCategory::kConfig,
                "EngineOptions::lookahead must be > 0");
  MASSF_ENFORCE(opts_.cost_per_event_s >= 0, ErrorCategory::kConfig,
                "EngineOptions::cost_per_event_s must be >= 0");
  MASSF_ENFORCE(opts_.end_time > 0, ErrorCategory::kConfig,
                "EngineOptions::end_time must be > 0");
}

Engine::~Engine() = default;

LpId Engine::add_lp(std::unique_ptr<LogicalProcess> lp) {
  MASSF_CHECK(!running_);
  MASSF_CHECK(lp != nullptr);
  lps_.push_back(Lp{});
  lps_.back().process = std::move(lp);
  return static_cast<LpId>(lps_.size() - 1);
}

void Engine::schedule(LpId lp, SimTime time, std::int32_t type,
                      std::uint64_t a, std::uint64_t b, std::uint64_t c,
                      std::uint64_t d) {
  MASSF_CHECK(lp >= 0 && lp < static_cast<LpId>(lps_.size()));
  Event ev;
  ev.time = time;
  ev.lp = lp;
  ev.type = type;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.d = d;

  const LpId cur = current_lp();
  if (!running_ || cur == kInvalidLp) {
    // Initial (pre-run) or barrier-hook scheduling: direct insertion. While
    // running, injected events must not land inside the open window.
    if (running_ && time < window_end_) {
      MASSF_THROW(ErrorCategory::kConfig,
                  "injected event at t=" + std::to_string(time) +
                      " lands inside the open window ending at t=" +
                      std::to_string(window_end_) +
                      " (boundary hooks must schedule at or after the "
                      "window end)");
    }
    auto& dst = lps_[static_cast<std::size_t>(lp)];
    ev.seq = dst.next_seq++;
    dst.queue.push(ev);
    return;
  }

  MASSF_CHECK(time >= now());
  if (lp == cur) {
    auto& dst = lps_[static_cast<std::size_t>(lp)];
    ev.seq = dst.next_seq++;
    dst.queue.push(ev);
    return;
  }

  // Cross-LP send: the conservative contract. The channel latency embedded
  // in `time` must push the event past the current window, otherwise the
  // partition's lookahead (MLL) was computed wrong.
  if (time < window_end_) {
    MASSF_THROW(ErrorCategory::kTopology,
                "cross-LP send from lp " + std::to_string(cur) + " to lp " +
                    std::to_string(lp) + " at t=" + std::to_string(time) +
                    " arrives inside the sending window ending at t=" +
                    std::to_string(window_end_) +
                    " — channel latency is below the partition lookahead "
                    "(MLL)");
  }
  // A declared topology is a promise the merge order relies on: sends may
  // only travel declared channels (channel_sync.hpp).
  if (!channels_.allows(cur, lp)) {
    MASSF_THROW(ErrorCategory::kTopology,
                "cross-LP send from lp " + std::to_string(cur) + " to lp " +
                    std::to_string(lp) +
                    " travels a channel missing from the declared "
                    "ChannelGraph");
  }
  lps_[static_cast<std::size_t>(cur)].outbox.add(ev);
}

void Engine::set_channels(ChannelGraph graph) {
  MASSF_CHECK(!running_);
  graph.finalize(num_lps());
  // A channel faster than the window width would let a send land inside
  // the window it was sent from — the lookahead (MLL) contract.
  if (graph.min_lookahead() < opts_.lookahead) {
    MASSF_THROW(ErrorCategory::kTopology,
                "ChannelGraph min lookahead " +
                    std::to_string(graph.min_lookahead()) +
                    " is below the engine lookahead " +
                    std::to_string(opts_.lookahead) +
                    " — a send along that channel could land inside its "
                    "own window");
  }
  channels_ = std::move(graph);
}

SimTime Engine::next_event_floor() const {
  // min_time() is a cached field read, so this is a linear scan of one
  // word per LP — no heap walks.
  SimTime floor = kSimTimeMax;
  for (const Lp& lp : lps_) floor = std::min(floor, lp.queue.min_time());
  return floor;
}

void Engine::merge_lp_inbox(LpId dst_id, std::uint64_t* nulls) {
  Lp& dst = lps_[static_cast<std::size_t>(dst_id)];
  dst.premerge_depth = dst.queue.size();
  const auto drain = [&](const Lp& src) {
    const std::vector<Event>* bucket = src.outbox.find(dst_id);
    if (bucket == nullptr) {
      // Channel advanced with no traffic this window — the null-message
      // analog, tallied by the channel executor.
      if (nulls != nullptr) ++*nulls;
      return;
    }
    for (const Event& ev : *bucket) {
      Event copy = ev;
      copy.seq = dst.next_seq++;
      dst.queue.push(copy);
    }
  };
  if (channels_.empty()) {
    for (const Lp& src : lps_) {
      if (&src == &dst) continue;  // same-LP sends never cross a channel
      drain(src);
    }
  } else {
    // In-neighbors are sorted by LP id, so the drain order — and the seqs
    // assigned — match the all-pairs walk exactly: schedule() guarantees
    // no other source could have sent to dst.
    for (const LpId s : channels_.in_neighbors(dst_id)) {
      drain(lps_[static_cast<std::size_t>(s)]);
    }
  }
}

void Engine::clear_outboxes() {
  for (Lp& src : lps_) {
    if (src.outbox.total() == 0) continue;
    stats_.cross_lp_events += src.outbox.total();
    stats_.merge_batches += src.outbox.batches();
    src.outbox.clear();
  }
}

void Engine::account_window() {
  double max_busy = 0;
  for (std::size_t i = 0; i < lps_.size(); ++i) {
    const double busy = static_cast<double>(lps_[i].window_events) *
                        opts_.cost_per_event_s;
    stats_.busy_s[i] += busy;
    max_busy = std::max(max_busy, busy);
    lps_[i].window_events = 0;
  }
  stats_.modeled_wall_s += max_busy + opts_.sync_cost_s;
  stats_.modeled_sync_s += opts_.sync_cost_s;
  ++stats_.num_windows;
  // Unconditional (one relaxed increment per window): the watchdog's
  // progress sample and the test freeze hook key off it.
  guard_.windows.fetch_add(1, std::memory_order_relaxed);
}

void Engine::process_lp_window(LpId i) {
  Lp& lp = lps_[static_cast<std::size_t>(i)];
  // Save/restore the thread's handler context: an inner engine driven from
  // a handler (nested simulation) must not clobber the outer engine's
  // context on this thread.
  const HandlerCtx saved = tls_ctx_;
  if (threaded_) {
    tls_ctx_ = HandlerCtx{this, 0, i};
  } else {
    current_lp_ = i;
  }
  try {
    for (;;) {
      const SimTime next = lp.queue.min_time();  // kSimTimeMax when empty
      if (next >= window_end_ || next >= opts_.end_time) break;
      const Event ev = lp.queue.top();
      lp.queue.pop();
      if (threaded_) {
        tls_ctx_.now = ev.time;
      } else {
        now_ = ev.time;
      }
      lp.process->handle(*this, ev);
      ++lp.events;
      ++lp.window_events;
      if (opts_.load_bin > 0) {
        stats_.lp_load[static_cast<std::size_t>(i)].add(to_seconds(ev.time),
                                                        1.0);
      }
    }
  } catch (...) {
    // Restore the handler context before the error propagates: the worker
    // keeps running protocol steps (and possibly other LPs) while the run
    // shuts down, and a stale context would corrupt now()/current_lp().
    if (threaded_) {
      tls_ctx_ = saved;
    } else {
      current_lp_ = kInvalidLp;
    }
    throw;
  }
  if (threaded_) {
    tls_ctx_ = saved;
  } else {
    current_lp_ = kInvalidLp;
  }
  if (guard_enabled_) guard_note_lp(i);
}

void Engine::run_barrier_hooks(SimTime floor) {
  // Hooks observe the window floor through now() under both executors
  // (current_lp() is invalid here, so schedule() takes the injection path).
  now_ = floor;
  for (auto& hook : hooks_.barrier) hook(*this, floor);
}

void Engine::maybe_rebalance(SimTime floor) {
  if (hooks_.rebalance_every == 0 || !hooks_.rebalance) return;
  const std::uint64_t w = stats_.num_windows;
  if (w == 0 || w % hooks_.rebalance_every != 0) return;
  now_ = floor;
  hooks_.rebalance(*this, floor);
}

bool Engine::open_window_boundary(SimTime floor) {
  window_end_ = floor + opts_.lookahead;
  // A restored run resumes at the boundary whose post-hook state the
  // checkpoint captured: stages 1-2 already ran there, so they must not
  // re-fire (the ckpt stage is suppressed by last_ckpt_window_ instead).
  const bool fire = !skip_boundary_hooks_;
  skip_boundary_hooks_ = false;
  if (fire) {
    run_barrier_hooks(floor);
    maybe_rebalance(floor);
  }
  const bool hook_stop = stop_requested();
  maybe_checkpoint(floor);
  // A stop raised by the ckpt stage ends the run *before* this window is
  // processed (checkpoint-then-exit); one raised by stages 1-2 lets the
  // window run and is caught at the loop-top stop check — the behavior
  // barrier-hook stops have always had.
  return !(stop_requested() && !hook_stop);
}

void Engine::probe_window(SimTime floor) {
  // Called after the merge, before outboxes are cleared: window_events is
  // still this window's tally, outbox sizes are still readable, and
  // premerge_depth (recorded by merge_lp_inbox) is the backlog each LP
  // carried out of its processing phase — the same quantity the probe
  // reported when it ran before the merge, but available identically under
  // both executors now that the merge itself is parallel.
  probe_->begin_window(stats_.num_windows, to_seconds(floor));
  for (std::size_t i = 0; i < lps_.size(); ++i) {
    probe_->record_lp(static_cast<std::int32_t>(i), lps_[i].window_events,
                      lps_[i].premerge_depth, lps_[i].outbox.total(),
                      lps_[i].outbox.batches());
  }
}

void Engine::publish_run_metrics() {
  obs::Registry& r = *registry_;
  r.counter("pdes.events").inc(stats_.total_events);
  r.counter("pdes.windows").inc(stats_.num_windows);
  r.gauge("pdes.lps").set(static_cast<double>(lps_.size()));
  r.gauge("pdes.modeled_wall_s").add(stats_.modeled_wall_s);
  r.gauge("pdes.modeled_sync_s").add(stats_.modeled_sync_s);
  r.gauge("pdes.modeled_migrate_s").add(stats_.modeled_migrate_s);
  r.gauge("pdes.end_vtime_s").set(to_seconds(stats_.end_vtime));
  r.gauge("pdes.lookahead_s").set(to_seconds(opts_.lookahead));
  // Scheduler internals (schema massf.metrics.v1, DESIGN.md section 5d).
  std::size_t heap_peak = 0, arena_slots = 0;
  for (const Lp& lp : lps_) {
    heap_peak = std::max(heap_peak, lp.queue.peak_size());
    arena_slots += lp.queue.arena_slots();
  }
  r.gauge("pdes.sched.heap_peak").set(static_cast<double>(heap_peak));
  r.gauge("pdes.sched.arena_slots").set(static_cast<double>(arena_slots));
  r.counter("pdes.sched.cross_events").inc(stats_.cross_lp_events);
  r.counter("pdes.sched.merge_batches").inc(stats_.merge_batches);
  r.gauge("pdes.sched.threads").set(static_cast<double>(run_threads_));
  // Synchronization protocol aggregates (schema massf.metrics.v1,
  // DESIGN.md section 5g). Wait gauges are zero unless a probe timed them.
  r.gauge("pdes.sync.mode")
      .set(sync_stats_.mode == SyncMode::kChannel ? 1.0 : 0.0);
  r.gauge("pdes.sync.channels").set(static_cast<double>(sync_stats_.channels));
  r.counter("pdes.sync.null_events").inc(sync_stats_.null_events);
  r.counter("pdes.sync.stalls").inc(sync_stats_.stalls);
  r.counter("pdes.sync.quiescence_epochs")
      .inc(sync_stats_.quiescence_epochs);
  r.gauge("pdes.sync.channel_wait_s").add(sync_stats_.channel_wait_s);
  r.gauge("pdes.sync.epoch_wait_s").add(sync_stats_.epoch_wait_s);
}

void Engine::begin_run() {
  MASSF_CHECK(!running_);
  running_ = true;
  stop_requested_.store(false, std::memory_order_relaxed);
  cancel_requested_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    run_error_ = nullptr;
  }
  if (guard_enabled_) {
    guard_.reset(lps_.size());
  } else {
    guard_.windows.store(0, std::memory_order_relaxed);
    guard_.epochs.store(0, std::memory_order_relaxed);
    guard_.sync_stalls.store(0, std::memory_order_relaxed);
  }
  sync_stats_ = SyncStats{};
  sync_stats_.channels = channels_.size();
  if (restored_) {
    // Resuming from a checkpoint: stats_ already holds the tallies the
    // interrupted run accumulated up to the boundary (restore_state). The
    // resumed run keeps accumulating into them; zeroing here would make the
    // final RunStats diverge from the uninterrupted run.
    restored_ = false;
    return;
  }
  stats_ = RunStats{};
  stats_.events_per_lp.assign(lps_.size(), 0);
  stats_.busy_s.assign(lps_.size(), 0.0);
  if (opts_.load_bin > 0) {
    stats_.lp_load.assign(lps_.size(), TimeSeries(to_seconds(opts_.load_bin)));
  }
  last_ckpt_window_ = 0;
}

void Engine::maybe_checkpoint(SimTime floor) {
  if (hooks_.ckpt_every == 0 || !hooks_.ckpt) return;
  const std::uint64_t w = stats_.num_windows;
  if (w == 0 || w % hooks_.ckpt_every != 0 || w == last_ckpt_window_) return;
  // Updated before the hook runs so save_state records it: a restored run
  // must not re-fire at the boundary it resumed from.
  last_ckpt_window_ = w;
  now_ = floor;
  hooks_.ckpt(*this, floor);
}

MigrationStats Engine::migrate_events(
    LpId from, LpId to, const std::function<bool(const Event&)>& pred) {
  MASSF_CHECK(from >= 0 && from < static_cast<LpId>(lps_.size()));
  MASSF_CHECK(to >= 0 && to < static_cast<LpId>(lps_.size()));
  MASSF_CHECK(from != to);
  // Boundary-only: migration touches two LP queues at once, which is safe
  // exactly when no handler is running (workers quiescent under the
  // threaded executor — hooks run coordinator-only).
  MASSF_ENFORCE(current_lp() == kInvalidLp, ErrorCategory::kInternal,
                "migrate_events called from inside a handler — boundary-"
                "only operation (no handler may be running)");

  Lp& src = lps_[static_cast<std::size_t>(from)];
  Lp& dst = lps_[static_cast<std::size_t>(to)];

  // Extract in (time, seq) order; re-pushing the kept events with their
  // original keys leaves the source's pop order unchanged.
  const std::vector<Event> pending = src.queue.sorted_events();
  src.queue.clear();
  ckpt::Writer w;
  std::uint64_t moved = 0;
  for (const Event& ev : pending) {
    if (!pred(ev)) {
      src.queue.push(ev);
      continue;
    }
    // massf.ckpt.v1 migration record (DESIGN.md section 5f): only the
    // payload travels — lp and seq are reassigned on arrival.
    w.i64(ev.time);
    w.i32(ev.type);
    w.u64(ev.a);
    w.u64(ev.b);
    w.u64(ev.c);
    w.u64(ev.d);
    ++moved;
  }

  ckpt::Reader r(w.buffer().data(), w.size());
  for (std::uint64_t k = 0; k < moved; ++k) {
    Event ev;
    ev.time = r.i64();
    ev.type = r.i32();
    ev.a = r.u64();
    ev.b = r.u64();
    ev.c = r.u64();
    ev.d = r.u64();
    ev.lp = to;
    ev.seq = dst.next_seq++;
    dst.queue.push(ev);
  }
  MASSF_CHECK(r.done());
  return MigrationStats{moved, w.size()};
}

void Engine::save_state(ckpt::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(lps_.size()));
  w.i64(opts_.lookahead);
  w.i64(opts_.end_time);
  w.u8(opts_.load_bin > 0 ? 1 : 0);
  w.u64(stats_.num_windows);
  w.u64(last_ckpt_window_);
  w.f64(stats_.modeled_wall_s);
  w.f64(stats_.modeled_sync_s);
  w.f64(stats_.modeled_migrate_s);
  w.u64(stats_.cross_lp_events);
  w.u64(stats_.merge_batches);
  for (std::size_t i = 0; i < lps_.size(); ++i) {
    const Lp& lp = lps_[i];
    w.u64(lp.next_seq);
    w.u64(lp.events);
    w.f64(stats_.busy_s[i]);
    if (opts_.load_bin > 0) ckpt::write_f64_vec(w, stats_.lp_load[i].bins());
    // Pending events in (time, seq) order — canonical, heap-shape-free.
    const std::vector<Event> pending = lp.queue.sorted_events();
    w.u64(pending.size());
    for (const Event& ev : pending) {
      w.i64(ev.time);
      w.u64(ev.seq);
      w.i32(ev.lp);
      w.i32(ev.type);
      w.u64(ev.a);
      w.u64(ev.b);
      w.u64(ev.c);
      w.u64(ev.d);
    }
    lp.process->save(w);
  }
}

bool Engine::restore_state(ckpt::Reader& r) {
  MASSF_CHECK(!running_);
  if (r.u32() != lps_.size()) return false;
  if (r.i64() != opts_.lookahead) return false;
  if (r.i64() != opts_.end_time) return false;
  const bool has_load = r.u8() != 0;
  if (has_load != (opts_.load_bin > 0)) return false;
  stats_ = RunStats{};
  stats_.events_per_lp.assign(lps_.size(), 0);
  stats_.busy_s.assign(lps_.size(), 0.0);
  if (has_load) {
    stats_.lp_load.assign(lps_.size(), TimeSeries(to_seconds(opts_.load_bin)));
  }
  stats_.num_windows = r.u64();
  last_ckpt_window_ = r.u64();
  stats_.modeled_wall_s = r.f64();
  stats_.modeled_sync_s = r.f64();
  stats_.modeled_migrate_s = r.f64();
  stats_.cross_lp_events = r.u64();
  stats_.merge_batches = r.u64();
  for (std::size_t i = 0; i < lps_.size(); ++i) {
    Lp& lp = lps_[i];
    lp.next_seq = r.u64();
    lp.events = r.u64();
    stats_.busy_s[i] = r.f64();
    if (has_load) {
      std::vector<double> bins;
      if (!ckpt::read_f64_vec(r, bins)) return false;
      stats_.lp_load[i].load_bins(std::move(bins));
    }
    const std::uint64_t pending = r.u64();
    if (!r.ok() || pending > (1ULL << 40)) return false;
    lp.queue.clear();
    for (std::uint64_t k = 0; k < pending; ++k) {
      Event ev;
      ev.time = r.i64();
      ev.seq = r.u64();
      ev.lp = r.i32();
      ev.type = r.i32();
      ev.a = r.u64();
      ev.b = r.u64();
      ev.c = r.u64();
      ev.d = r.u64();
      if (!r.ok()) return false;
      lp.queue.push(ev);
    }
    lp.window_events = 0;
    lp.outbox.clear();
    if (!lp.process->load(r)) return false;
  }
  if (!r.ok()) return false;
  restored_ = true;
  // The snapshot captured post-barrier, post-rebalance state (EngineHooks
  // firing order), so those stages must not re-run at the resumed boundary.
  // A pre-run snapshot (num_windows == 0) precedes any boundary, so the
  // first boundary's hooks still fire.
  skip_boundary_hooks_ = stats_.num_windows > 0;
  return true;
}

void Engine::finish_run(SimTime floor) {
  running_ = false;
  stats_.end_vtime = std::min(floor, opts_.end_time);
  stats_.total_events = 0;
  for (std::size_t i = 0; i < lps_.size(); ++i) {
    stats_.events_per_lp[i] = lps_[i].events;
    stats_.total_events += lps_[i].events;
  }
  if (registry_) publish_run_metrics();
}

RunStats Engine::run() {
  begin_run();
  run_threads_ = 0;
  return run_window_loop();
}

bool Engine::cancel_run() {
  std::lock_guard<std::mutex> lk(cancel_mu_);
  cancel_requested_.store(true, std::memory_order_release);
  stop_requested_.store(true, std::memory_order_release);
  if (!canceller_) return false;
  canceller_();
  return true;
}

void Engine::record_run_error() {
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    if (!run_error_) run_error_ = std::current_exception();
  }
  // The stop flag drains the run through the normal protocol: every
  // worker reaches its gates/epochs, the coordinator exits at the next
  // boundary, threads join cleanly.
  stop_requested_.store(true, std::memory_order_release);
}

bool Engine::has_run_error() const {
  std::lock_guard<std::mutex> lk(error_mu_);
  return run_error_ != nullptr;
}

void Engine::rethrow_run_error() {
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    e = run_error_;
  }
  if (e) std::rethrow_exception(e);
}

void Engine::guard_note_lp(LpId i) {
  if (static_cast<std::size_t>(i) >= guard_.num_lps()) return;
  const Lp& lp = lps_[static_cast<std::size_t>(i)];
  guard::LpLiveness& cell = guard_.lp(static_cast<std::size_t>(i));
  cell.clock.store(window_end_, std::memory_order_relaxed);
  cell.events.store(lp.events, std::memory_order_relaxed);
  cell.queue_depth.store(lp.queue.size(), std::memory_order_relaxed);
  cell.queue_min_time.store(lp.queue.min_time(), std::memory_order_relaxed);
}

RunStats Engine::run_window_loop() {
  const LpId n = static_cast<LpId>(lps_.size());
  SimTime floor = next_event_floor();
  while (floor < opts_.end_time && floor != kSimTimeMax && !stop_requested()) {
    if (probe_ == nullptr) {
      if (!open_window_boundary(floor)) break;  // checkpoint-then-exit
      for (LpId i = 0; i < n; ++i) process_lp_window(i);
      for (LpId d = 0; d < n; ++d) merge_lp_inbox(d);
      clear_outboxes();
      account_window();
    } else {
      const auto t0 = Clock::now();
      const bool go = open_window_boundary(floor);
      const auto t1 = Clock::now();
      if (!go) break;  // checkpoint-then-exit
      for (LpId i = 0; i < n; ++i) process_lp_window(i);
      const auto t2 = Clock::now();
      for (LpId d = 0; d < n; ++d) merge_lp_inbox(d);
      probe_window(floor);
      clear_outboxes();
      account_window();
      const auto t3 = Clock::now();
      probe_->end_window(elapsed_s(t0, t1), elapsed_s(t1, t2),
                         /*barrier_wait_s=*/0.0, elapsed_s(t2, t3));
    }
    floor = next_event_floor();
  }
  finish_run(floor);
  return stats_;
}

}  // namespace massf
