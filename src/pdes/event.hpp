// The event record of the conservative PDES engine.
//
// Events are plain data: a timestamp, a deterministic tie-break sequence
// number, the destination logical process, a user-defined type tag, and
// four 64-bit payload words. Millions of per-packet events flow through the
// engine, so events carry no allocations and no indirect calls.
#pragma once

#include <cstdint>

#include "util/sim_time.hpp"

namespace massf {

using LpId = std::int32_t;
constexpr LpId kInvalidLp = -1;

struct Event {
  SimTime time = 0;
  /// Assigned by the engine at insertion; (time, seq) totally orders the
  /// events of one LP, making execution deterministic.
  std::uint64_t seq = 0;
  LpId lp = kInvalidLp;
  std::int32_t type = 0;
  std::uint64_t a = 0, b = 0, c = 0, d = 0;
};

/// Max-heap comparator for earliest-first ordering. The engine's own
/// scheduler (sched.hpp) orders keys directly; this is kept for consumers
/// that hold Events in standard containers.
struct EventAfter {
  bool operator()(const Event& x, const Event& y) const {
    if (x.time != y.time) return x.time > y.time;
    return x.seq > y.seq;
  }
};

}  // namespace massf
