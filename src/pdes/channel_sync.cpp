// Channel-clock threaded executor (see channel_sync.hpp for the model).
//
// Protocol state is one epoch-tagged stage word per LP,
//   (window_epoch << 3) | {idle, processing, processed, merging, merged},
// monotonically increasing over the run. Worker threads scan for claimable
// work: processing an LP's window has no dependencies; merging LP d's
// inbox becomes legal the instant d and all of d's in-neighbors are
// processed — each in-neighbor's stage word *is* that channel's clock, and
// reading it at >= processed is the null-message "your clock reached my
// window end" guarantee. There is no global gate inside the window: an LP
// whose neighbors are already processed merges immediately, and threads
// only stall when some specific channel's clock is behind.
//
// Quiescence detection: the thread that completes the window's last merge
// observes merged_count == n — every channel clock has collapsed to the
// window end, which is exactly the global quiescent point the barrier
// executor reaches after its close gate. That thread becomes the *epoch
// closer*: it runs the unchanged boundary sequence (probe, outbox
// accounting, EngineHooks stages 1-3, next-floor scan) single-threadedly,
// then publishes the next epoch with one release store on the epoch word
// (the only futex wake of the whole window). Hook/rebalance/ckpt semantics
// are therefore identical to the barrier executor and the sequential
// reference — only who waits on whom changed.
//
// Memory ordering. Claims CAS the stage word acq_rel (synchronizing with
// the previous owner's release store); merge-readiness reads neighbor
// stages acquire (synchronizing with their processors); the closer reaches
// every worker's writes through the merged_count acq_rel chain; and the
// epoch word's release/acquire pair republishes the closer's boundary
// writes (window floor, hook effects, stage resets) to every worker. A
// worker only claims work tagged with an epoch it acquired from the epoch
// word, so no claim can outrun the boundary that armed it.
#include "pdes/channel_sync.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include <mutex>
#include <string>

#include "obs/probe.hpp"
#include "pdes/barrier.hpp"
#include "pdes/engine.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace massf {

SyncMode default_sync_mode() {
  static const SyncMode mode = [] {
    const char* env = std::getenv("MASSF_SYNC");
    if (env != nullptr && std::strcmp(env, "barrier") == 0) {
      return SyncMode::kBarrier;
    }
    return SyncMode::kChannel;
  }();
  return mode;
}

const char* sync_mode_name(SyncMode mode) {
  return mode == SyncMode::kChannel ? "channel" : "barrier";
}

void ChannelGraph::add(LpId src, LpId dst, SimTime lookahead) {
  MASSF_ENFORCE(!finalized_, ErrorCategory::kTopology,
                "ChannelGraph::add after the graph was finalized "
                "(installed via Engine::set_channels)");
  MASSF_ENFORCE(src >= 0 && dst >= 0, ErrorCategory::kTopology,
                "channel endpoints must be non-negative LP ids (got " +
                    std::to_string(src) + " -> " + std::to_string(dst) + ")");
  MASSF_ENFORCE(lookahead > 0, ErrorCategory::kTopology,
                "channel lookahead must be > 0");
  if (src == dst) return;  // same-LP sends never cross a channel
  channels_.push_back(Channel{src, dst, lookahead});
  min_lookahead_ = std::min(min_lookahead_, lookahead);
}

void ChannelGraph::finalize(LpId num_lps) {
  if (finalized_) return;
  finalized_ = true;
  if (channels_.empty()) return;
  std::sort(channels_.begin(), channels_.end(),
            [](const Channel& a, const Channel& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.lookahead < b.lookahead;
            });
  // Duplicates keep the smallest lookahead (first after the sort).
  channels_.erase(std::unique(channels_.begin(), channels_.end(),
                              [](const Channel& a, const Channel& b) {
                                return a.src == b.src && a.dst == b.dst;
                              }),
                  channels_.end());
  in_.assign(static_cast<std::size_t>(num_lps), {});
  out_.assign(static_cast<std::size_t>(num_lps), {});
  for (const Channel& c : channels_) {
    if (c.src >= num_lps || c.dst >= num_lps) {
      MASSF_THROW(ErrorCategory::kTopology,
                  "channel " + std::to_string(c.src) + " -> " +
                      std::to_string(c.dst) +
                      " names an unregistered LP (engine has " +
                      std::to_string(num_lps) + ")");
    }
    // Channels are (src, dst)-sorted, so both lists come out sorted —
    // in-neighbor order is the deterministic merge order.
    in_[static_cast<std::size_t>(c.dst)].push_back(c.src);
    out_[static_cast<std::size_t>(c.src)].push_back(c.dst);
  }
}

bool ChannelGraph::allows(LpId src, LpId dst) const {
  if (channels_.empty()) return true;  // unknown topology: all-pairs
  const std::vector<LpId>& outs = out_[static_cast<std::size_t>(src)];
  return std::binary_search(outs.begin(), outs.end(), dst);
}

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Stage word layout: (epoch << kPhaseBits) | phase. Monotonic over a run.
constexpr std::uint64_t kIdle = 0;
constexpr std::uint64_t kProcessed = 2;
constexpr std::uint64_t kMerging = 3;
constexpr std::uint64_t kMerged = 4;
constexpr std::uint64_t kProcessing = 1;
constexpr int kPhaseBits = 3;

struct alignas(64) PaddedStage {
  std::atomic<std::uint64_t> v{0};
};

// Per-thread accumulators. Wait gauges are atomic<double> because the
// epoch closer reads them mid-run for probe rows; everything else is
// owner-thread-only and folded after the join.
struct alignas(64) ThreadAccum {
  std::atomic<double> channel_wait_s{0.0};
  std::atomic<double> epoch_wait_s{0.0};
  std::uint64_t stalls = 0;
  std::uint64_t null_events = 0;
};

void add_relaxed(std::atomic<double>& a, double d) {
  // Single-writer accumulator: plain read-modify-write is race-free.
  a.store(a.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
}

}  // namespace

RunStats Engine::run_threaded_channel(std::int32_t num_threads) {
  MASSF_CHECK(num_threads >= 2);
  begin_run();
  sync_stats_.mode = SyncMode::kChannel;
  const LpId n = num_lps();
  const bool timed = probe_ != nullptr;

  // First boundary on the calling thread, before any worker exists — the
  // same quiescent point the sequential loop opens its first window at.
  SimTime floor = next_event_floor();
  bool go =
      floor < opts_.end_time && floor != kSimTimeMax && !stop_requested();
  double pending_hook_s = 0;
  if (go) {
    const auto t0 = timed ? Clock::now() : Clock::time_point{};
    go = open_window_boundary(floor);
    if (timed) pending_hook_s = elapsed_s(t0, Clock::now());
  }
  if (!go) {
    finish_run(floor);
    return stats_;
  }

  threaded_ = true;
  run_threads_ = num_threads;

  // ---- shared protocol state ---------------------------------------------
  std::vector<PaddedStage> stage(static_cast<std::size_t>(n));
  std::vector<ThreadAccum> accum(static_cast<std::size_t>(num_threads));
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::int32_t> processed_count{0};
  std::atomic<std::int32_t> merged_count{0};
  std::atomic<bool> done{false};
  // Closer-to-closer state, ordered by the epoch word's release/acquire.
  SimTime window_floor = floor;
  SimTime final_floor = floor;
  double last_wait_sum = 0;
  Clock::time_point window_open_t = timed ? Clock::now() : Clock::time_point{};
  const auto run_t0 = window_open_t;
  // Publish instants (seconds since run start) of recent epochs, slot
  // e & 63: lets a thread woken from an epoch park attribute only the
  // protocol-imposed part of its sleep (up to the publish), not scheduler
  // latency after release. Probe-attached runs only.
  std::array<std::atomic<double>, 64> publish_time_s{};

  const bool dense = channels_.empty();
  const std::int32_t spin = spin_budget(num_threads);

  // True when every in-neighbor channel clock for LP i reached the window
  // end of epoch `e` (their stage is >= processed for e).
  const auto neighbors_processed = [&](LpId i, std::uint64_t e) {
    if (dense) {
      return processed_count.load(std::memory_order_acquire) == n;
    }
    const std::uint64_t want =
        (e << kPhaseBits) | kProcessed;
    for (const LpId s : channels_.in_neighbors(i)) {
      if (stage[static_cast<std::size_t>(s)].v.load(
              std::memory_order_acquire) < want) {
        return false;
      }
    }
    return true;
  };

  // Runs on the thread whose merge completed the window: every channel
  // clock has collapsed to the window end — the global quiescent point.
  // Executes the boundary exactly as the sequential loop does, then arms
  // and publishes the next epoch (or raises done).
  const auto close_epoch = [&](std::uint64_t e) {
    const auto t2 = timed ? Clock::now() : Clock::time_point{};
    if (probe_ != nullptr) probe_window(window_floor);
    clear_outboxes();
    account_window();
    ++sync_stats_.quiescence_epochs;
    guard_.epochs.fetch_add(1, std::memory_order_relaxed);
    if (timed) {
      // Close the probe row before the next boundary's hooks run — a ckpt
      // hook may serialize the probe, which requires no open window. The
      // wait charged to the row is the protocol-imposed wait accumulated
      // across all threads since the previous close.
      double wait_sum = 0;
      for (const ThreadAccum& a : accum) {
        wait_sum += a.channel_wait_s.load(std::memory_order_relaxed) +
                    a.epoch_wait_s.load(std::memory_order_relaxed);
      }
      probe_->end_window(pending_hook_s, elapsed_s(window_open_t, t2),
                         wait_sum - last_wait_sum,
                         elapsed_s(t2, Clock::now()));
      last_wait_sum = wait_sum;
    }

    SimTime next = next_event_floor();
    bool cont =
        next < opts_.end_time && next != kSimTimeMax && !stop_requested();
    if (cont) {
      const auto th = timed ? Clock::now() : Clock::time_point{};
      try {
        cont = open_window_boundary(next);  // checkpoint-then-exit on false
      } catch (...) {
        // A boundary hook threw at the quiescent point: record (raises the
        // stop flag) and shut the run down as a checkpoint-then-exit would.
        record_run_error();
        cont = false;
      }
      if (timed) pending_hook_s = elapsed_s(th, Clock::now());
    }

    if (!cont) {
      final_floor = next;
      done.store(true, std::memory_order_release);
      epoch.store(e + 1, std::memory_order_release);
      epoch.notify_all();
      return;
    }
    window_floor = next;
    processed_count.store(0, std::memory_order_relaxed);
    merged_count.store(0, std::memory_order_relaxed);
    const std::uint64_t armed = ((e + 1) << kPhaseBits) | kIdle;
    for (PaddedStage& s : stage) {
      s.v.store(armed, std::memory_order_relaxed);
    }
    if (timed) {
      window_open_t = Clock::now();
      publish_time_s[(e + 1) & 63].store(elapsed_s(run_t0, window_open_t),
                                         std::memory_order_relaxed);
    }
    epoch.store(e + 1, std::memory_order_release);
    epoch.notify_all();
  };

  const auto worker = [&](std::int32_t self) {
    ThreadAccum& mine = accum[static_cast<std::size_t>(self)];
    // Stagger scan starts so threads don't fight over the same claim.
    const LpId offset =
        static_cast<LpId>((static_cast<std::int64_t>(n) * self) /
                          num_threads);
    std::uint64_t e = epoch.load(std::memory_order_acquire);
    for (;;) {
      if (done.load(std::memory_order_acquire)) return;
      const std::uint64_t base = e << kPhaseBits;
      bool did_work = false;
      bool closed = false;
      for (LpId k = 0; k < n && !closed; ++k) {
        const LpId i = (offset + k) % n;
        // Test-only stall injection: a frozen LP is never claimed, so its
        // channel clock stops and the epoch cannot close — the synthetic
        // protocol stall the watchdog tests exercise.
        if (guard_frozen(i)) continue;
        PaddedStage& st = stage[static_cast<std::size_t>(i)];
        std::uint64_t s = st.v.load(std::memory_order_acquire);
        if (s == base + kIdle) {
          std::uint64_t expect = base + kIdle;
          if (st.v.compare_exchange_strong(expect, base + kProcessing,
                                           std::memory_order_acq_rel)) {
            try {
              process_lp_window(i);
            } catch (...) {
              record_run_error();  // first error wins; stop flag raised
            }
            st.v.store(base + kProcessed, std::memory_order_release);
            processed_count.fetch_add(1, std::memory_order_acq_rel);
            did_work = true;
            s = base + kProcessed;
          } else {
            s = expect;
          }
        }
        if (s == base + kProcessed && neighbors_processed(i, e)) {
          std::uint64_t expect = base + kProcessed;
          if (st.v.compare_exchange_strong(expect, base + kMerging,
                                           std::memory_order_acq_rel)) {
            try {
              merge_lp_inbox(i, &mine.null_events);
            } catch (...) {
              record_run_error();
            }
            st.v.store(base + kMerged, std::memory_order_release);
            did_work = true;
            if (merged_count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n) {
              close_epoch(e);
              closed = true;
            }
          }
        }
      }
      const std::uint64_t cur = epoch.load(std::memory_order_acquire);
      if (cur != e) {
        e = cur;
        continue;
      }
      if (closed || did_work) continue;
      if (merged_count.load(std::memory_order_acquire) ==
          static_cast<std::int32_t>(n)) {
        // Window fully merged; the closer is running the boundary. Park on
        // the epoch word — the one futex of the protocol.
        if (timed) {
          const double t0 = elapsed_s(run_t0, Clock::now());
          epoch.wait(e, std::memory_order_acquire);
          const double now = elapsed_s(run_t0, Clock::now());
          const double pub =
              publish_time_s[(e + 1) & 63].load(std::memory_order_relaxed);
          add_relaxed(mine.epoch_wait_s,
                      std::clamp(pub - t0, 0.0, now - t0));
        } else {
          epoch.wait(e, std::memory_order_acquire);
        }
      } else {
        // Some channel clock is behind (a neighbor is still processing):
        // stall briefly without sleeping — the stage transition that frees
        // us has no wake channel, and it is at most one LP window away.
        ++mine.stalls;
        if (guard_enabled_) {
          guard_.sync_stalls.fetch_add(1, std::memory_order_relaxed);
        }
        if (timed) {
          const auto t0 = Clock::now();
          for (std::int32_t r = 0; r < spin; ++r) cpu_relax();
          std::this_thread::yield();
          add_relaxed(mine.channel_wait_s, elapsed_s(t0, Clock::now()));
        } else {
          for (std::int32_t r = 0; r < spin; ++r) cpu_relax();
          std::this_thread::yield();
        }
      }
    }
  };

  // Forced cancellation (Engine::cancel_run, the watchdog's stall policy):
  // raise done and bump the epoch word so parked workers wake — an
  // atomic wait only returns when the value actually changed, so a bare
  // notify would be lost. Every worker reaches its loop top and returns;
  // a stray e+1 store from a racing closer is harmless because done is
  // checked first.
  {
    std::lock_guard<std::mutex> lk(cancel_mu_);
    canceller_ = [&done, &epoch] {
      done.store(true, std::memory_order_release);
      epoch.fetch_add(1, std::memory_order_release);
      epoch.notify_all();
    };
  }

  std::vector<std::jthread> workers;
  workers.reserve(static_cast<std::size_t>(num_threads - 1));
  for (std::int32_t t = 1; t < num_threads; ++t) {
    workers.emplace_back(worker, t);
  }
  worker(0);
  workers.clear();  // join

  {
    // The canceller captures this frame's locals; it must not outlive them.
    std::lock_guard<std::mutex> lk(cancel_mu_);
    canceller_ = nullptr;
  }

  for (const ThreadAccum& a : accum) {
    sync_stats_.stalls += a.stalls;
    sync_stats_.null_events += a.null_events;
    sync_stats_.channel_wait_s +=
        a.channel_wait_s.load(std::memory_order_relaxed);
    sync_stats_.epoch_wait_s +=
        a.epoch_wait_s.load(std::memory_order_relaxed);
  }
  threaded_ = false;
  finish_run(final_floor);
  rethrow_run_error();
  return stats_;
}

}  // namespace massf
