// Centralized sense-reversing barrier for the threaded executor.
//
// std::barrier's completion-step machinery and per-phase token plumbing
// cost more than this engine's windows need: the window protocol only ever
// wants "everyone arrived, go". Arrival is one fetch_sub on a shared
// counter; the last arriver resets the counter and bumps a generation
// word (the reversed sense) that waiters watch. Waiters spin briefly —
// windows are sub-millisecond, so the generation usually flips while
// spinning is still cheaper than a futex round-trip — then fall back to
// C++20 atomic wait. On a single-CPU host the spin budget should be zero
// (spinning only delays the thread that would flip the generation);
// Engine::run_threaded picks the budget from hardware_concurrency().
//
// Memory ordering: the acq_rel fetch_sub chain on `remaining_` makes every
// arriver's prior writes visible to the last arriver, and the release bump
// of `gen_` (plus acquire loads in the waiters) republishes them to every
// thread leaving the barrier — the same happens-before a std::barrier
// phase provides.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/check.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace massf {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Busy-wait budget for `parties` synchronizing threads. Spinning only
/// pays when every party plus the main thread can run at once; a host
/// reporting fewer cores — or 0, hardware_concurrency()'s "unknown" value
/// — is treated as oversubscribed and sleeps immediately (spinning there
/// only delays whichever thread everyone is waiting for).
inline std::int32_t spin_budget(std::int32_t parties) {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) return 0;  // unknown host: assume oversubscribed
  return hc >= static_cast<unsigned>(parties) + 1 ? 512 : 0;
}

class SpinBarrier {
 public:
  /// `spin` bounds the busy-wait iterations before sleeping; 0 sleeps
  /// immediately (right for a machine with fewer cores than parties).
  explicit SpinBarrier(std::int32_t parties, std::int32_t spin = 512)
      : parties_(parties), spin_(spin), remaining_(parties) {
    MASSF_CHECK(parties >= 1);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() {
    const std::uint32_t gen = gen_.load(std::memory_order_acquire);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: reopen the barrier for the next phase, then flip the
      // sense. The release on gen_ orders the counter reset before any
      // waiter can re-enter.
      remaining_.store(parties_, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_acq_rel);
      gen_.notify_all();
      return;
    }
    for (std::int32_t i = 0; i < spin_; ++i) {
      if (gen_.load(std::memory_order_acquire) != gen) return;
      cpu_relax();
    }
    while (gen_.load(std::memory_order_acquire) == gen) {
      gen_.wait(gen, std::memory_order_acquire);
    }
  }

 private:
  const std::int32_t parties_;
  const std::int32_t spin_;
  std::atomic<std::int32_t> remaining_;
  std::atomic<std::uint32_t> gen_{0};
};

}  // namespace massf
