// Packet <-> Event payload encoding.
//
// The PDES event carries four 64-bit words; packets use them as:
//   a: src host (low 32) | dst host (high 32)
//   b: flow id
//   c: seq (low 32) | payload length (next 24) | flags (high 8)
//   d: arrive node (low 32) | ack (high 32)
// Everything is fixed-width so the encoding round-trips exactly.
#pragma once

#include <cstdint>

#include "pdes/event.hpp"
#include "topology/network.hpp"

namespace massf {

using FlowId = std::uint64_t;

enum PacketFlags : std::uint8_t {
  kFlagAck = 1,  ///< pure TCP acknowledgment
  kFlagFin = 2,  ///< last data segment of the flow
  kFlagUdp = 4,  ///< datagram (no transport state)
};

/// IP+TCP header overhead added to every packet's wire size.
constexpr std::uint32_t kHeaderBytes = 40;
/// TCP maximum segment size (payload bytes per data packet).
constexpr std::uint32_t kMss = 1460;

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  FlowId flow = 0;
  std::uint32_t seq = 0;
  std::uint32_t len = 0;  ///< payload bytes (0 for pure acks)
  std::uint8_t flags = 0;
  NodeId arrive = kInvalidNode;  ///< node this arrival event targets
  std::uint32_t ack = 0;

  std::uint32_t wire_bytes() const { return len + kHeaderBytes; }

  void encode(Event& ev) const {
    ev.a = static_cast<std::uint32_t>(src) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 32);
    ev.b = flow;
    ev.c = static_cast<std::uint64_t>(seq) |
           (static_cast<std::uint64_t>(len & 0xffffffu) << 32) |
           (static_cast<std::uint64_t>(flags) << 56);
    ev.d = static_cast<std::uint32_t>(arrive) |
           (static_cast<std::uint64_t>(ack) << 32);
  }

  static Packet decode(const Event& ev) {
    Packet p;
    p.src = static_cast<NodeId>(static_cast<std::uint32_t>(ev.a));
    p.dst = static_cast<NodeId>(static_cast<std::uint32_t>(ev.a >> 32));
    p.flow = ev.b;
    p.seq = static_cast<std::uint32_t>(ev.c);
    p.len = static_cast<std::uint32_t>((ev.c >> 32) & 0xffffffu);
    p.flags = static_cast<std::uint8_t>(ev.c >> 56);
    p.arrive = static_cast<NodeId>(static_cast<std::uint32_t>(ev.d));
    p.ack = static_cast<std::uint32_t>(ev.d >> 32);
    return p;
  }
};

}  // namespace massf
