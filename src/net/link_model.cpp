#include "net/link_model.hpp"

#include "ckpt/ckpt.hpp"
#include "net/fluid_link.hpp"
#include "net/netsim.hpp"
#include "net/packet_link.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace massf {

const char* link_model_kind_name(LinkModelKind kind) {
  switch (kind) {
    case LinkModelKind::kPacket: return "packet";
    case LinkModelKind::kHybrid: return "hybrid";
  }
  return "unknown";
}

bool parse_link_model_kind(const std::string& text, LinkModelKind* out) {
  if (text == "packet") {
    *out = LinkModelKind::kPacket;
    return true;
  }
  if (text == "hybrid") {
    *out = LinkModelKind::kHybrid;
    return true;
  }
  return false;
}

void LinkModel::start_background_flow(Engine&, SimTime, NodeId, NodeId,
                                      std::uint32_t, std::uint32_t) {
  MASSF_THROW(ErrorCategory::kConfig,
              std::string("link model '") + name() +
                  "' does not carry background flows");
}

std::vector<FlowRecord> LinkModel::background_flow_records() const {
  return {};
}

void LinkModel::publish_metrics(obs::Registry&) const {}

void save_flow_record(ckpt::Writer& w, const FlowRecord& rec) {
  w.u64(rec.flow);
  w.i32(rec.src);
  w.i32(rec.dst);
  w.u32(rec.bytes);
  w.u32(rec.tag);
  w.i64(rec.started_at);
  w.i64(rec.finished_at);
  w.u32(rec.retransmits);
  w.u8(rec.failed ? 1 : 0);
}

void load_flow_record(ckpt::Reader& r, FlowRecord& rec) {
  rec.flow = r.u64();
  rec.src = r.i32();
  rec.dst = r.i32();
  rec.bytes = r.u32();
  rec.tag = r.u32();
  rec.started_at = r.i64();
  rec.finished_at = r.i64();
  rec.retransmits = r.u32();
  rec.failed = r.u8() != 0;
}

std::unique_ptr<LinkModel> make_link_model(const Network& net,
                                           const ForwardingPlane& fp,
                                           const NetSimOptions& opts) {
  switch (opts.link_model.kind) {
    case LinkModelKind::kPacket:
      return std::make_unique<PacketLinkModel>(net, opts);
    case LinkModelKind::kHybrid:
      return std::make_unique<FluidLinkModel>(net, fp, opts);
  }
  MASSF_THROW(ErrorCategory::kConfig, "unknown link model kind");
}

}  // namespace massf
