// The packet-level link model: per-directed-interface busy-until clocks,
// drop-tail output queues, administrative up/down state, and deterministic
// loss bursts — extracted verbatim from the original NetSim so pure-packet
// runs stay bit-identical (same doubles, same event stream, same
// checkpoint content). See link_model.hpp for the ownership contract.
#pragma once

#include "net/link_model.hpp"
#include "net/netsim.hpp"

namespace massf {

class PacketLinkModel : public LinkModel {
 public:
  PacketLinkModel(const Network& net, const NetSimOptions& opts);

  LinkModelKind kind() const override { return LinkModelKind::kPacket; }
  void attach(NetSim& sim, Engine& engine) override;

  TransmitResult transmit(Engine& engine, NodeId from, LinkId link,
                          const Packet& p) override;

  void schedule_link_state(Engine& engine, LinkId link, SimTime when,
                           bool up) override;
  void schedule_loss_state(Engine& engine, LinkId link, SimTime when,
                           double loss_rate) override;
  void on_link_state(std::uint64_t slot, bool up) override;
  void on_loss_state(std::uint64_t slot, std::uint32_t ppm) override;

  const std::vector<std::uint64_t>& link_bytes() const override {
    return link_bytes_;
  }
  double link_utilization(LinkId link, int direction,
                          SimTime duration) const override;

  void save(ckpt::Writer& writer) const override;
  bool load(ckpt::Reader& reader) override;

 protected:
  /// The shared drop-tail transmission path, parameterized on the
  /// bandwidth the packet class may use: the pure-packet model passes the
  /// link's full bandwidth (bit-identical to the pre-refactor code); the
  /// hybrid model passes the residual left by the fluid reservation.
  TransmitResult transmit_impl(Engine& engine, NodeId from, LinkId link,
                               const Packet& p, double bandwidth_bps);

  const Network* net_;
  NetSim* sim_ = nullptr;
  NetSimOptions opts_;

  /// Busy-until time per directed interface (link*2 + dir); each slot is
  /// only touched by the LP owning the transmitting endpoint.
  std::vector<SimTime> iface_free_;
  /// Interface administrative state (same indexing/ownership discipline).
  std::vector<char> iface_up_;
  /// Loss-burst rate per directed interface in ppm (0 = no loss), and the
  /// per-slot transmit counter feeding the deterministic drop hash. Both
  /// follow the iface ownership discipline.
  std::vector<std::uint32_t> loss_rate_ppm_;
  std::vector<std::uint64_t> loss_seq_;
  /// Bytes carried per directed interface (same ownership discipline);
  /// empty unless collect_link_stats.
  std::vector<std::uint64_t> link_bytes_;
};

}  // namespace massf
