#include "net/tcp.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace massf {

bool TcpReceiver::on_data(std::uint32_t seq, std::uint32_t len) {
  if (len == 0) return false;
  const std::uint32_t end = seq + len;
  if (end <= expected) return false;  // old duplicate
  if (seq > expected) {
    // Buffer out of order; merge overlapping ranges.
    std::uint32_t s = seq, e = end;
    auto it = ooo.lower_bound(s);
    if (it != ooo.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= s) {
        s = prev->first;
        e = std::max(e, prev->second);
        it = ooo.erase(prev);
      }
    }
    while (it != ooo.end() && it->first <= e) {
      e = std::max(e, it->second);
      it = ooo.erase(it);
    }
    ooo[s] = e;
    return false;
  }
  // In-order (possibly partially duplicate) data.
  expected = end;
  // Absorb buffered segments that are now contiguous.
  auto it = ooo.begin();
  while (it != ooo.end() && it->first <= expected) {
    expected = std::max(expected, it->second);
    it = ooo.erase(it);
  }
  return true;
}

void tcp_rtt_update(TcpSender& s, SimTime sample) {
  MASSF_CHECK(sample >= 0);
  if (s.srtt == 0) {
    s.srtt = sample;
  } else {
    s.srtt = s.srtt - s.srtt / 8 + sample / 8;
  }
  s.rto = std::clamp<SimTime>(2 * s.srtt, kMinRto, kMaxRto);
}

}  // namespace massf
