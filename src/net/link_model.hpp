// Pluggable link-model boundary: the contract between NetSim (event
// dispatch, TCP/UDP endpoints, application callbacks) and the thing that
// decides what happens when a packet — or an analytic background flow — is
// offered to a link.
//
// Two implementations ship behind this interface:
//
//   * PacketLinkModel (packet_link.hpp): the original per-interface
//     busy-until / drop-tail / loss-burst machinery, extracted verbatim.
//     Pure-packet runs produce bit-identical event streams and counters to
//     the pre-refactor NetSim.
//   * FluidLinkModel (fluid_link.hpp): the hybrid fast path. Packets take
//     the same drop-tail path, while *background* flows are modeled as
//     analytic max-min bandwidth-sharing events recomputed at window
//     boundaries — no per-packet events, which is what buys 10-100x more
//     simulated hosts at equal wall clock (ROADMAP "hybrid packet/flow
//     fidelity"; DESIGN.md §5k).
//
// Ownership and determinism contract (normative — see DESIGN.md §5k):
//
//   * Slot state. Per-directed-interface state (slot = link*2 + dir) is
//     owned by the LP of the transmitting endpoint; transmit()/
//     on_link_state()/on_loss_state() for a slot run only on that LP.
//     Router migration flips the owner by rewriting NetSim's node→LP table;
//     the model's slot vectors never move.
//   * Fluid state. All background-flow state is coordinator-owned: it is
//     read and written only at window boundaries (EngineHooks stage-1,
//     every LP quiescent) or before the run. During a window, LPs may only
//     *append* arrivals to their own per-LP admission queue and *read* the
//     per-slot fluid reservation published at the previous boundary — both
//     race-free under the threaded executors.
//   * Determinism. Boundary work must be a pure function of (merged
//     arrival queues in (when, lp, submit-order) order, slot state, window
//     floor). Events scheduled from a boundary must land at or after the
//     open window's end (floor + lookahead) — the engine enforces this.
//   * Checkpoints. save()/load() run at quiescent boundaries and must
//     capture everything that diverges from construction, including the
//     published fluid reservations (a restored run must see the same
//     residual bandwidth the interrupted run's next window would have).
//   * Faults. kEvLinkState/kEvLossState events address the slot owner's
//     LP; the model observes them via on_link_state/on_loss_state. How a
//     downed link affects in-flight background flows is model-defined
//     (FluidLinkModel re-paths at the next recompute and fails flows that
//     stay stalled past the configured timeout).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "pdes/engine.hpp"
#include "topology/network.hpp"

namespace massf {

class NetSim;
class ForwardingPlane;

namespace obs {
class Registry;
}  // namespace obs

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

enum class LinkModelKind : std::int32_t {
  kPacket = 0,  ///< packet-level only (the paper's model)
  kHybrid = 1,  ///< packet foreground + analytic fluid background flows
};

const char* link_model_kind_name(LinkModelKind kind);
/// Parses "packet" / "hybrid"; returns false on anything else.
bool parse_link_model_kind(const std::string& text, LinkModelKind* out);

/// NetFlow-style record of one finished flow — packet TCP or analytic
/// background (background flow ids carry FluidLinkModel::kFluidFlowBit).
struct FlowRecord {
  FlowId flow = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t bytes = 0;
  std::uint32_t tag = 0;
  SimTime started_at = 0;
  SimTime finished_at = 0;  ///< last-byte-acked / analytic-crossing time
  std::uint32_t retransmits = 0;
  bool failed = false;

  double duration_s() const { return to_seconds(finished_at - started_at); }
  /// Goodput in bits/second.
  double goodput_bps() const {
    const double d = duration_s();
    return d > 0 ? bytes * 8.0 / d : 0;
  }
};

/// FlowRecord checkpoint encoding, shared by NetSim and the link models.
void save_flow_record(ckpt::Writer& w, const FlowRecord& rec);
void load_flow_record(ckpt::Reader& r, FlowRecord& rec);

/// Model-level knobs, a sub-struct of NetSimOptions.
struct LinkModelOptions {
  LinkModelKind kind = LinkModelKind::kPacket;
  /// Fluid rate recompute cadence in window boundaries: arrivals and
  /// coupling refreshes are batched so a recompute runs at most once per
  /// this many windows (departures and link-state changes also trigger
  /// one). Larger = faster, coarser fidelity.
  std::int32_t fluid_recompute_every = 8;
  /// Fraction of a link's bandwidth the packet path always keeps, however
  /// much fluid demand shares the link: packets must never starve, and the
  /// floor keeps the service-time math away from division blow-ups.
  double fluid_min_packet_share = 0.05;
  /// A background flow whose max-min rate stays zero (downed path, no
  /// route) for this long of virtual time is failed, mirroring the TCP
  /// give-up-after-consecutive-timeouts behavior.
  double fluid_stall_timeout_s = 60.0;
  /// Per-flow ceiling on the max-min rate (bps), modeling the TCP
  /// window/RTT throughput limit the packet path exhibits (a Reno flow
  /// cannot exceed ~window_bytes*8/RTT even on an idle link). 0 disables
  /// the cap, granting flows their full fair share. bench_hybrid
  /// calibrates this against the packet model's measured per-flow goodput.
  double fluid_flow_rate_cap_bps = 0.0;
};

/// Result of offering one packet to a link. The model decides fate and
/// timing; NetSim counts the outcome and schedules the arrival event, so
/// the event stream stays identical to the pre-refactor code.
struct TransmitResult {
  enum Status : std::int32_t {
    kSent = 0,      ///< scheduled: arrival lands at `arrive` on `peer`
    kLinkDown = 1,  ///< dropped: interface administratively down
    kLoss = 2,      ///< dropped: loss/corruption burst
    kQueueFull = 3, ///< dropped: drop-tail backlog exceeded
  };
  Status status = kSent;
  NodeId peer = kInvalidNode;
  SimTime arrive = 0;
};

class LinkModel {
 public:
  virtual ~LinkModel() = default;

  virtual LinkModelKind kind() const = 0;
  const char* name() const { return link_model_kind_name(kind()); }

  /// Called once from the NetSim constructor, after LP registration. The
  /// model may keep the NetSim pointer (completion dispatch, lp_of) and
  /// register EngineHooks boundary work. A pure-packet model registers
  /// nothing — a pure-packet run's hook sequence is untouched.
  virtual void attach(NetSim& sim, Engine& engine) = 0;

  // ---- packet path (runs on the transmitting endpoint's LP) ----

  /// Offers `p` for transmission from `from` over `link`. Advances the
  /// slot's busy-until clock on success. Does not count or schedule —
  /// the caller does, from the returned status/times.
  virtual TransmitResult transmit(Engine& engine, NodeId from, LinkId link,
                                  const Packet& p) = 0;

  // ---- control plane (fault-injection touchpoint) ----

  /// Takes `link` down (or up) at `when`, both directions: one
  /// kEvLinkState event per directed slot, addressed to the owner LP.
  virtual void schedule_link_state(Engine& engine, LinkId link, SimTime when,
                                   bool up) = 0;
  /// Sets the loss/corruption rate of `link` (both directions) at `when`.
  virtual void schedule_loss_state(Engine& engine, LinkId link, SimTime when,
                                   double loss_rate) = 0;
  /// Event-side effects, invoked by NetSim::handle on the owner LP.
  virtual void on_link_state(std::uint64_t slot, bool up) = 0;
  virtual void on_loss_state(std::uint64_t slot, std::uint32_t ppm) = 0;

  // ---- background flows (the flow-level fast path) ----

  /// True when the model can carry analytic background flows. NetSim falls
  /// back to packet TCP when false, so applications can request flow
  /// fidelity unconditionally.
  virtual bool supports_background_flows() const { return false; }

  /// Admits a background flow of `bytes` from `src` to `dst`. Callable
  /// before the run, from a handler (queued on the calling LP), or from a
  /// boundary hook. The flow is rated into the max-min share at the next
  /// recompute boundary >= `when`; completion fires NetSim's flow-complete
  /// callback *at a window boundary* with the analytic finish time
  /// recorded. Only meaningful when supports_background_flows().
  virtual void start_background_flow(Engine& engine, SimTime when, NodeId src,
                                     NodeId dst, std::uint32_t bytes,
                                     std::uint32_t tag);

  // ---- observation ----

  /// Bytes carried per directed slot (empty unless collect_link_stats).
  /// For hybrid models this includes fluid bytes, accrued at boundary
  /// granularity.
  virtual const std::vector<std::uint64_t>& link_bytes() const = 0;
  /// Carried bits over capacity for one direction of `link`. Throws
  /// kConfig when stats are off or `duration` is not positive.
  virtual double link_utilization(LinkId link, int direction,
                                  SimTime duration) const = 0;
  /// Finished background flows in completion order (empty for packet-only
  /// models; packet TCP records live in NetSim's per-LP state).
  virtual std::vector<FlowRecord> background_flow_records() const;
  /// Model-specific counters (net.bg.* for the fluid path). The packet
  /// model's counters are NetSim's and are published by NetSim itself.
  virtual void publish_metrics(obs::Registry& registry) const;

  // ---- checkpoint participation (call at boundaries only) ----

  virtual void save(ckpt::Writer& writer) const = 0;
  virtual bool load(ckpt::Reader& reader) = 0;
};

/// Factory used by NetSim; custom models can be injected through the
/// NetSim constructor overload instead.
std::unique_ptr<LinkModel> make_link_model(const Network& net,
                                           const ForwardingPlane& fp,
                                           const struct NetSimOptions& opts);

}  // namespace massf
