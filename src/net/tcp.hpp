// TCP Reno transport state.
//
// A full event-driven Reno: slow start, congestion avoidance, duplicate-ack
// fast retransmit with fast recovery (NewReno-style partial-ack handling),
// retransmission timeouts with a coarse SRTT estimator, and cumulative
// acknowledgments with out-of-order segment buffering at the receiver.
// Per-flow state is split into sender and receiver halves because they live
// on (possibly) different logical processes.
#pragma once

#include <cstdint>
#include <map>

#include "net/packet.hpp"
#include "util/sim_time.hpp"

namespace massf {

struct TcpSender {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t size = 0;  ///< total bytes to transfer
  std::uint32_t tag = 0;   ///< application cookie, echoed in callbacks

  std::uint32_t next_seq = 0;   ///< next new byte to send
  std::uint32_t acked = 0;      ///< cumulative bytes acknowledged
  double cwnd = kMss;           ///< congestion window (bytes)
  double ssthresh = 64 * 1024;  ///< slow-start threshold (bytes)
  std::int32_t dup_acks = 0;
  bool in_recovery = false;
  std::uint32_t recover = 0;  ///< recovery exit point (NewReno)

  // Coarse RTT estimation (one sample in flight at a time, Karn's rule:
  // suspended during recovery/after timeout).
  SimTime rtt_sent_at = -1;
  std::uint32_t rtt_seq = 0;
  SimTime srtt = 0;  ///< 0 = no sample yet
  SimTime rto = 0;   ///< current timeout; derived from srtt

  /// Timer epoch: bumping it invalidates outstanding timeout events.
  std::uint64_t timer_epoch = 0;

  /// Consecutive RTO expirations with no forward progress; the flow is
  /// abandoned past NetSimOptions::tcp_max_consecutive_timeouts.
  std::int32_t consecutive_timeouts = 0;
  bool failed = false;

  // Accounting for flow records.
  SimTime started_at = -1;
  std::uint32_t total_retransmits = 0;

  bool complete() const { return size > 0 && acked >= size; }
  std::uint32_t flight_size() const { return next_seq - acked; }
};

struct TcpReceiver {
  NodeId src = kInvalidNode;  ///< flow sender
  NodeId dst = kInvalidNode;  ///< this host
  std::uint32_t expected = 0;  ///< cumulative in-order bytes received
  std::uint32_t fin_seq = 0;   ///< flow size, learned from the FIN segment
  bool fin_seen = false;
  bool completed = false;
  /// Out-of-order segments: start -> end (exclusive), non-overlapping.
  std::map<std::uint32_t, std::uint32_t> ooo;

  /// Absorbs a data segment [seq, seq+len); advances `expected` over any
  /// now-contiguous buffered segments. Returns true if `expected` moved.
  bool on_data(std::uint32_t seq, std::uint32_t len);

  bool all_received() const { return fin_seen && expected >= fin_seq; }
};

/// RTO bounds.
constexpr SimTime kMinRto = milliseconds(100);
constexpr SimTime kMaxRto = seconds(3);
constexpr SimTime kInitialRto = seconds(1);

/// Updates srtt/rto from a measurement (classic EWMA, gain 1/8; RTO =
/// 2 * srtt clamped to [kMinRto, kMaxRto]).
void tcp_rtt_update(TcpSender& s, SimTime sample);

}  // namespace massf
