// Packet-level network simulation mapped onto the conservative PDES engine.
//
// NetSim instantiates one logical process per simulation engine node (the
// partition produced by the load balancer), owns every router/host/link of
// the virtual network, and simulates hop-by-hop packet forwarding with
// drop-tail output queues, TCP Reno flows, and UDP datagrams. Applications
// (the traffic module and the online layer) interact through flows, UDP
// messages, app timers, and completion callbacks, all of which execute on
// the logical process owning the relevant host — which is what makes the
// threaded executor race-free.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/link_model.hpp"
#include "net/packet.hpp"
#include "net/tcp.hpp"
#include "pdes/engine.hpp"
#include "routing/forwarding.hpp"
#include "topology/network.hpp"

namespace massf {

namespace obs {
class Registry;
}  // namespace obs

enum NetEventType : std::int32_t {
  kEvArrive = 1,      ///< packet arrival (payload = encoded Packet)
  kEvFlowStart = 2,   ///< a = flow id
  kEvTcpTimeout = 3,  ///< a = flow id, b = timer epoch
  kEvAppTimer = 4,    ///< a = host, b/c = user payload
  kEvUdpSend = 5,     ///< payload = encoded Packet (transmit from src host)
  kEvLinkState = 6,   ///< a = directed slot (link*2+dir), b = up (0/1)
  kEvNodeState = 7,   ///< a = router id, b = up (0/1); crash/restore
  kEvLossState = 8,   ///< a = directed slot, b = loss rate in ppm (0 = off)
  kEvFluidWake = 9,   ///< no-op heartbeat forcing a window boundary for the
                      ///< fluid model's completion/admission machinery
};

struct NetSimOptions {
  /// Per interface-direction output buffer (drop-tail) in bytes.
  double queue_capacity_bytes = 256 * 1024;
  /// Collect per-network-node processed-event counts (the traffic profile
  /// consumed by the PROF/HPROF mappings).
  bool collect_node_profile = false;
  /// A TCP sender abandons its flow after this many consecutive
  /// retransmission timeouts (a partitioned path would otherwise emit
  /// retransmissions until the simulation horizon).
  std::int32_t tcp_max_consecutive_timeouts = 8;
  /// Track per-directed-interface bytes carried (for utilization reports).
  bool collect_link_stats = false;
  /// Record one FlowRecord per finished (completed or abandoned) TCP flow.
  bool collect_flow_records = false;
  /// Seed for the deterministic loss-burst hash (fault injection). The drop
  /// decision for a packet is a pure function of (seed, directed slot,
  /// per-slot transmit counter), so it is bit-identical under both
  /// executors.
  std::uint64_t fault_seed = 1;
  /// Which LinkModel carries the traffic (and the fluid-path knobs); see
  /// link_model.hpp.
  LinkModelOptions link_model;
};

class NetSim {
 public:
  /// Invoked when a flow finishes. `failed == false`: the last byte arrived
  /// (runs on the receiver's LP). `failed == true`: the sender abandoned the
  /// flow after tcp_max_consecutive_timeouts (runs on the sender's LP) —
  /// applications see an explicit failure instead of a silently dying flow.
  using FlowCompleteFn = std::function<void(
      Engine&, NetSim&, FlowId flow, NodeId src_host, NodeId dst_host,
      std::uint32_t tag, bool failed)>;
  /// Invoked on the destination host's LP for each delivered datagram.
  using UdpReceiveFn =
      std::function<void(Engine&, NetSim&, const Packet& packet)>;
  /// Invoked on the host's LP when an app timer fires.
  using AppTimerFn = std::function<void(Engine&, NetSim&, NodeId host,
                                        std::uint64_t b, std::uint64_t c)>;

  /// `router_lp` maps every router to its engine node; hosts follow their
  /// attachment router. Registers num_engine_nodes LPs with the engine.
  /// Checks the conservative contract: every link whose endpoints map to
  /// different LPs must have latency >= engine lookahead.
  NetSim(const Network& net, const ForwardingPlane& fp,
         std::span<const LpId> router_lp, Engine& engine,
         const NetSimOptions& opts);

  /// Same, but with an injected LinkModel (tests / custom models); the
  /// default constructor builds one from opts.link_model via
  /// make_link_model.
  NetSim(const Network& net, const ForwardingPlane& fp,
         std::span<const LpId> router_lp, Engine& engine,
         const NetSimOptions& opts, std::unique_ptr<LinkModel> model);

  LpId lp_of(NodeId node) const;
  std::int32_t num_lps() const { return num_lps_; }

  /// The pluggable network model carrying this simulation's traffic. Link
  /// control (fault injection), link statistics, and background flows all
  /// live here; see link_model.hpp for the contract.
  LinkModel& link_model() { return *model_; }
  const LinkModel& link_model() const { return *model_; }

  /// Starts a TCP flow of `bytes` from src_host to dst_host at virtual time
  /// `when`. Callable before the run (initial traffic) or from a handler
  /// running on src_host's LP. `tag` is an application cookie delivered
  /// with the completion callback.
  FlowId start_flow(Engine& engine, SimTime when, NodeId src_host,
                    NodeId dst_host, std::uint32_t bytes, std::uint32_t tag);

  /// Starts a *background* flow at the fidelity the link model offers:
  /// under a hybrid model it is carried analytically (no per-packet
  /// events; completion fires at a window boundary with the analytic
  /// finish time); under a packet-only model it silently falls back to a
  /// packet TCP flow, so applications can request flow fidelity
  /// unconditionally. Returns true when the fluid fast path took it.
  /// Callable in the same contexts as start_flow, plus boundary hooks.
  bool start_background_flow(Engine& engine, SimTime when, NodeId src_host,
                             NodeId dst_host, std::uint32_t bytes,
                             std::uint32_t tag);

  /// Sends one UDP datagram (payload <= kMss bytes).
  void send_udp(Engine& engine, SimTime when, NodeId src_host,
                NodeId dst_host, std::uint32_t payload_bytes,
                std::uint32_t tag);

  /// Schedules an app timer on `host`'s LP.
  void schedule_app_timer(Engine& engine, NodeId host, SimTime when,
                          std::uint64_t b = 0, std::uint64_t c = 0);

  /// DEPRECATED shim (one PR): call link_model().schedule_link_state().
  /// Takes `link` down (or back up) at `when` in both directions.
  void schedule_link_state(Engine& engine, LinkId link, SimTime when,
                           bool up) {
    model_->schedule_link_state(engine, link, when, up);
  }

  /// Fault injection: crashes (or restores) a router at virtual time
  /// `when`. While down, packets arriving at the router are blackholed
  /// (dropped_node_down) and app timers on its attached hosts are dropped
  /// (the hosts are off the network). Incident interfaces are NOT touched
  /// here — callers (the fault injector) down them with
  /// schedule_link_state so the control plane can observe the withdrawals.
  void schedule_node_state(Engine& engine, NodeId router, SimTime when,
                           bool up);

  /// DEPRECATED shim (one PR): call link_model().schedule_loss_state().
  /// Sets the loss/corruption rate of `link` (both directions) at `when`.
  void schedule_loss_state(Engine& engine, LinkId link, SimTime when,
                           double loss_rate) {
    model_->schedule_loss_state(engine, link, when, loss_rate);
  }

  void set_flow_complete(FlowCompleteFn fn) { on_flow_complete_ = std::move(fn); }
  void set_udp_receive(UdpReceiveFn fn) { on_udp_ = std::move(fn); }
  void set_app_timer(AppTimerFn fn) { on_app_timer_ = std::move(fn); }

  struct Counters {
    std::uint64_t forwarded = 0;      ///< router-level packet hops
    std::uint64_t delivered = 0;      ///< data packets reaching their host
    std::uint64_t acks = 0;           ///< pure acks received by senders
    std::uint64_t dropped_queue = 0;  ///< drop-tail losses
    std::uint64_t dropped_no_route = 0;
    std::uint64_t dropped_link_down = 0;
    std::uint64_t dropped_node_down = 0;  ///< blackholed at a crashed router
    std::uint64_t dropped_loss = 0;       ///< loss/corruption-burst drops
    std::uint64_t app_timers_dropped = 0;  ///< timers on crashed-router hosts
    std::uint64_t retransmits = 0;
    std::uint64_t flows_started = 0;
    std::uint64_t flows_completed = 0;
    std::uint64_t flows_failed = 0;  ///< abandoned after repeated timeouts
    std::uint64_t udp_delivered = 0;
  };
  /// Aggregated over all LPs; call after the run.
  Counters totals() const;

  /// Publishes totals() into `registry` as `net.*` counters (schema in
  /// DESIGN.md). Call after the run; with no registry the packet path
  /// carries no telemetry cost (the per-LP counters above always exist).
  void publish_metrics(obs::Registry& registry) const;

  /// Per-network-node processed-event counts (empty unless
  /// collect_node_profile). Index = NodeId.
  const std::vector<std::uint64_t>& node_profile() const { return profile_; }

  /// DEPRECATED shim (one PR): call link_model().link_bytes(). Bytes
  /// carried by each directed interface (slot = link*2 + direction;
  /// direction 0 transmits from NetLink::a). Empty unless
  /// collect_link_stats. Valid after the run.
  const std::vector<std::uint64_t>& link_bytes() const {
    return model_->link_bytes();
  }

  /// DEPRECATED shim (one PR): call link_model().link_utilization().
  /// Utilization of one direction of a link over `duration`: carried bits
  /// over capacity. Requires collect_link_stats.
  double link_utilization(LinkId link, int direction,
                          SimTime duration) const {
    return model_->link_utilization(link, direction, duration);
  }

  /// All finished flows: packet TCP flows merged across LPs in
  /// (LP, finish-order), followed by the link model's background flows in
  /// completion order. Requires collect_flow_records; call after the run.
  std::vector<FlowRecord> flow_records() const;

  const Network& network() const { return *net_; }
  const ForwardingPlane& forwarding() const { return *fp_; }

  /// True when `router` may be rehomed onto another engine node at a
  /// window boundary without breaking the simulation's invariants:
  ///   * it has no attached hosts — host state (TCP flows, app callbacks)
  ///     is pinned to its LP by the FlowId encoding and must not move;
  ///   * every incident link has latency >= `lookahead`, so whatever LP the
  ///     router lands on, no link it terminates can violate the
  ///     conservative contract by becoming a too-fast cross-LP channel.
  bool router_mobile(NodeId router, SimTime lookahead) const;

  /// Rehomes `router` onto engine node `to` at a synchronization-window
  /// boundary (call from a rebalance/barrier hook only): flips the
  /// ownership table entry and moves the router's pending events — packet
  /// arrivals addressed to it, link/loss-state changes on interfaces it
  /// transmits, and its own crash/restore events — to the destination LP
  /// through Engine::migrate_events (massf.ckpt.v1 records). The router's
  /// simulation state itself (interface clocks, up/down, loss cursors)
  /// lives in shared slot-indexed vectors whose single-writer owner is
  /// defined by this table, so flipping the entry *is* the state handoff.
  /// Requires router_mobile(). Returns the events/bytes moved.
  MigrationStats migrate_router(Engine& engine, NodeId router, LpId to);

  /// Internal: event dispatch, called by the per-LP adapters.
  void handle(Engine& engine, const Event& ev);

  /// Internal (link models): dispatches the flow-complete callback for a
  /// finished background flow. Runs at a window boundary.
  void background_flow_finished(Engine& engine, const FlowRecord& rec);

  /// Internal (link models): charges `weight` processed-event equivalents
  /// to `node` in the traffic profile (no-op unless collect_node_profile).
  void count_background_events(NodeId node, std::uint64_t weight) {
    if (!profile_.empty()) profile_[static_cast<std::size_t>(node)] += weight;
  }

  /// Checkpoint hooks (ckpt/ckpt.hpp): serialize everything that diverges
  /// from construction — the node→LP ownership table (mutable since
  /// migrate_router), interface busy/up state, node up state, loss-burst
  /// cursors, link byte counters, per-LP TCP senders/receivers, packet
  /// counters, and flow records. Topology and forwarding are rebuilt by
  /// the driver; load() returns false when the checkpoint's shape disagrees
  /// with the constructed instance. Call at a window boundary only (no
  /// packets are in flight inside the object — they live in the engine's
  /// event queues, captured separately).
  void save(ckpt::Writer& writer) const;
  bool load(ckpt::Reader& reader);

 private:
  struct LpState {
    std::vector<TcpSender> senders;
    std::unordered_map<FlowId, TcpReceiver> receivers;
    Counters counters;
    std::vector<FlowRecord> records;  ///< finished flows (sender side)
  };

  void record_flow(FlowId flow, const TcpSender& s, SimTime finished_at);

  static constexpr int kFlowLpShift = 40;
  LpId flow_lp(FlowId f) const { return static_cast<LpId>(f >> kFlowLpShift); }
  std::size_t flow_index(FlowId f) const {
    return static_cast<std::size_t>(f & ((1ULL << kFlowLpShift) - 1));
  }

  TcpSender& sender(FlowId f);

  void on_arrive(Engine& engine, const Packet& p);
  void deliver(Engine& engine, const Packet& p);
  void on_data(Engine& engine, const Packet& p);
  void on_ack(Engine& engine, const Packet& p);
  void on_flow_start(Engine& engine, FlowId flow);
  void on_timeout(Engine& engine, FlowId flow, std::uint64_t epoch);

  /// Transmits `p` from `from` over `link` through the drop-tail queue
  /// model; schedules the arrival event on the peer's LP.
  void transmit(Engine& engine, NodeId from, LinkId link, Packet p);

  void send_segment(Engine& engine, TcpSender& s, FlowId flow,
                    std::uint32_t seq, bool count_retransmit);
  void send_available(Engine& engine, TcpSender& s, FlowId flow);
  void arm_timer(Engine& engine, TcpSender& s, FlowId flow);

  void count_node_event(NodeId node);

  const Network* net_;
  const ForwardingPlane* fp_;
  std::vector<LpId> node_lp_;  ///< per node (routers and hosts)
  std::int32_t num_lps_ = 0;
  NetSimOptions opts_;

  /// The pluggable link model: per-interface state (busy-until clocks,
  /// up/down, loss cursors, byte counters) and, under the hybrid model,
  /// the analytic background-flow machinery all live behind this boundary.
  std::unique_ptr<LinkModel> model_;

  /// Node up/down state (router crash); slot owned by the node's LP.
  std::vector<char> node_up_;

  std::vector<LpState> lp_state_;
  std::vector<std::uint64_t> profile_;

  FlowCompleteFn on_flow_complete_;
  UdpReceiveFn on_udp_;
  AppTimerFn on_app_timer_;
};

}  // namespace massf
