// The hybrid link model: foreground traffic stays packet-level (inherited
// drop-tail path), while *background* flows are carried analytically as
// max-min fair bandwidth shares — no per-packet events, which is the
// flow-level fast path the ROADMAP's hybrid-fidelity item asks for.
//
// How it works (full contract in DESIGN.md §5k):
//
//   * Admission. start_background_flow() appends to the calling LP's
//     private queue (single-writer under the threaded executors). At a
//     window boundary the queues are merged in (when, lp, submit-order)
//     order — an executor-independent order — and flows are admitted with
//     sequentially assigned ids.
//   * Rates. A recompute runs the classic max-min water-fill over the
//     directed-slot capacities left by the packet class (measured from
//     per-slot packet byte counters over the elapsed windows). Recomputes
//     are batched: at most one per `fluid_recompute_every` boundaries,
//     plus one whenever a completion falls due. Between recomputes, rates
//     are piecewise-constant, so per-flow progress and completion times
//     are closed-form — the fidelity error is bounded by the batching
//     cadence times the window width.
//   * Completions. Detected at boundaries; the recorded finish time is the
//     exact analytic crossing under the constant rate, while the
//     application callback fires at the boundary (documented skew <= one
//     cadence). A kEvFluidWake event pinned to LP 0 guarantees a boundary
//     exists near the earliest pending completion even when the packet
//     class goes quiet.
//   * Coupling. fluid -> packet: the published per-slot fluid reservation
//     shrinks the bandwidth the packet path sees (never below
//     fluid_min_packet_share). packet -> fluid: measured packet throughput
//     shrinks the capacity the water-fill distributes. Both sides are
//     refreshed at recompute boundaries only, keeping every read/write
//     inside the quiescent-point discipline.
//   * Faults. A slot that is administratively down (or lossy) contributes
//     zero (or loss-scaled) capacity; flows crossing it are re-pathed at
//     the next recompute and fail after fluid_stall_timeout_s of zero
//     progress, mirroring TCP's give-up behavior.
#pragma once

#include "net/packet_link.hpp"
#include "routing/forwarding.hpp"

#include <atomic>
#include <limits>

namespace massf {

class FluidLinkModel : public PacketLinkModel {
 public:
  /// Background-flow ids carry this bit so they can never collide with
  /// packet-TCP FlowIds (which encode the sender's LP in the high bits).
  static constexpr FlowId kFluidFlowBit = 1ULL << 63;

  FluidLinkModel(const Network& net, const ForwardingPlane& fp,
                 const NetSimOptions& opts);

  LinkModelKind kind() const override { return LinkModelKind::kHybrid; }
  void attach(NetSim& sim, Engine& engine) override;

  TransmitResult transmit(Engine& engine, NodeId from, LinkId link,
                          const Packet& p) override;
  void on_link_state(std::uint64_t slot, bool up) override;
  void on_loss_state(std::uint64_t slot, std::uint32_t ppm) override;

  bool supports_background_flows() const override { return true; }
  void start_background_flow(Engine& engine, SimTime when, NodeId src,
                             NodeId dst, std::uint32_t bytes,
                             std::uint32_t tag) override;

  std::vector<FlowRecord> background_flow_records() const override;
  void publish_metrics(obs::Registry& registry) const override;

  void save(ckpt::Writer& writer) const override;
  bool load(ckpt::Reader& reader) override;

  struct BgCounters {
    std::uint64_t started = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t bytes_completed = 0;
    std::uint64_t recomputes = 0;
    std::uint64_t wakes = 0;
  };
  const BgCounters& bg_counters() const { return bg_; }
  /// Currently-admitted background flows (post-run or boundary use).
  std::size_t active_background_flows() const { return active_.size(); }

 private:
  struct Pending {
    SimTime when = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint32_t bytes = 0;
    std::uint32_t tag = 0;
  };
  struct ActiveFlow {
    FlowId flow = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint32_t bytes = 0;
    std::uint32_t tag = 0;
    SimTime started_at = 0;
    double remaining = 0;      ///< bytes left at `advanced_to_`
    double rate_bps = 0;       ///< max-min share set at the last recompute
    SimTime stall_since = -1;  ///< first boundary with zero rate, -1 = none
    std::vector<std::uint32_t> path;  ///< directed slots src->dst
  };

  void on_boundary(Engine& engine, SimTime floor);
  void advance_to(Engine& engine, SimTime floor);
  void admit_pending(SimTime floor);
  void recompute(Engine& engine, SimTime floor);
  void repath(ActiveFlow& f) const;
  bool path_blocked(const ActiveFlow& f) const;
  void finish_flow(Engine& engine, const ActiveFlow& f, SimTime finished_at,
                   bool failed);
  void schedule_wake(Engine& engine, SimTime floor);
  bool has_pending() const;
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  const ForwardingPlane* fp_;

  /// Per-LP admission queues; index lp+1, entry 0 is the pre-run /
  /// boundary-hook queue. Only the owning LP appends during a window; the
  /// boundary hook drains them at quiescent points.
  std::vector<std::vector<Pending>> pending_;

  // Coordinator-owned fluid state (boundary hook only).
  std::vector<ActiveFlow> active_;
  std::uint64_t next_flow_seq_ = 0;
  std::uint64_t boundaries_ = 0;
  std::int64_t last_recompute_boundary_ = 0;
  SimTime advanced_to_ = 0;         ///< progress integrated up to here
  SimTime last_recompute_floor_ = -1;
  SimTime earliest_completion_ = kNever;
  SimTime earliest_deadline_ = kNever;  ///< stall-timeout deadlines
  SimTime next_wake_ = -1;
  BgCounters bg_;
  std::vector<FlowRecord> records_;  ///< finished flows, completion order

  /// Published fluid reservation per directed slot: written at recompute
  /// boundaries, read by the packet path on owner LPs during windows.
  std::vector<double> fluid_share_bps_;
  /// Packet bytes per slot, accumulated by owner LPs during windows and
  /// differenced at recompute boundaries to measure packet throughput.
  std::vector<std::uint64_t> packet_window_bytes_;
  std::vector<std::uint64_t> packet_bytes_snapshot_;
  std::vector<double> packet_bps_;  ///< measured packet rate per slot

  /// Set by on_link_state/on_loss_state on owner LPs; consumed at the next
  /// boundary. Relaxed is enough: the value is only examined at quiescent
  /// points, where every window-side store is already ordered before the
  /// hook by the executor's epoch/barrier synchronization.
  std::atomic<bool> link_dirty_{false};
  bool dirty_ = false;  ///< membership/topology changed since last recompute
};

}  // namespace massf
