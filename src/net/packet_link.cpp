#include "net/packet_link.hpp"

#include <algorithm>

#include "ckpt/ckpt.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace massf {
namespace {

SimTime service_time(std::uint32_t wire_bytes, double bandwidth_bps) {
  return from_seconds(static_cast<double>(wire_bytes) * 8.0 / bandwidth_bps);
}

/// splitmix64-style finalizer over (seed, slot, seq): the loss-burst drop
/// decision depends only on values owned by the transmitting LP, so it is
/// bit-identical under the sequential and threaded executors.
std::uint64_t loss_hash(std::uint64_t seed, std::uint64_t slot,
                        std::uint64_t seq) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (slot + 1) +
                    0xbf58476d1ce4e5b9ULL * (seq + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

PacketLinkModel::PacketLinkModel(const Network& net, const NetSimOptions& opts)
    : net_(&net), opts_(opts) {
  iface_free_.assign(net.links.size() * 2, 0);
  iface_up_.assign(net.links.size() * 2, 1);
  loss_rate_ppm_.assign(net.links.size() * 2, 0);
  loss_seq_.assign(net.links.size() * 2, 0);
  if (opts_.collect_link_stats) {
    link_bytes_.assign(net.links.size() * 2, 0);
  }
}

void PacketLinkModel::attach(NetSim& sim, Engine& engine) {
  (void)engine;  // the packet model registers no boundary work
  sim_ = &sim;
}

TransmitResult PacketLinkModel::transmit(Engine& engine, NodeId from,
                                         LinkId link, const Packet& p) {
  const NetLink& l = net_->links[static_cast<std::size_t>(link)];
  return transmit_impl(engine, from, link, p, l.bandwidth_bps);
}

TransmitResult PacketLinkModel::transmit_impl(Engine& engine, NodeId from,
                                              LinkId link, const Packet& p,
                                              double bandwidth_bps) {
  const NetLink& l = net_->links[static_cast<std::size_t>(link)];
  MASSF_CHECK(l.a == from || l.b == from);
  TransmitResult res;
  res.peer = l.a == from ? l.b : l.a;
  const std::size_t slot = static_cast<std::size_t>(link) * 2 +
                           (l.a == from ? 0 : 1);

  if (!iface_up_[slot]) {
    res.status = TransmitResult::kLinkDown;
    return res;
  }
  if (const std::uint32_t rate = loss_rate_ppm_[slot]; rate > 0) {
    // Loss/corruption burst: deterministic per-slot counter hash (the
    // corrupted frame is dropped at ingress and consumes no bandwidth).
    const std::uint64_t seq = loss_seq_[slot]++;
    if (loss_hash(opts_.fault_seed, slot, seq) % 1000000u < rate) {
      res.status = TransmitResult::kLoss;
      return res;
    }
  }

  const SimTime now = engine.now();
  const SimTime start = std::max(now, iface_free_[slot]);
  // Drop-tail: the backlog currently queued ahead of this packet, in bytes.
  const double backlog_bytes = to_seconds(start - now) * bandwidth_bps / 8.0;
  if (backlog_bytes > opts_.queue_capacity_bytes) {
    res.status = TransmitResult::kQueueFull;
    return res;
  }
  const SimTime depart = start + service_time(p.wire_bytes(), bandwidth_bps);
  iface_free_[slot] = depart;
  if (!link_bytes_.empty()) link_bytes_[slot] += p.wire_bytes();

  res.status = TransmitResult::kSent;
  res.arrive = depart + l.latency;
  return res;
}

void PacketLinkModel::schedule_link_state(Engine& engine, LinkId link,
                                          SimTime when, bool up) {
  MASSF_CHECK(link >= 0 && link < static_cast<LinkId>(net_->links.size()));
  const NetLink& l = net_->links[static_cast<std::size_t>(link)];
  // One event per direction, addressed to the LP owning that transmitter.
  engine.schedule(sim_->lp_of(l.a), when, kEvLinkState,
                  static_cast<std::uint64_t>(link) * 2, up ? 1 : 0);
  engine.schedule(sim_->lp_of(l.b), when, kEvLinkState,
                  static_cast<std::uint64_t>(link) * 2 + 1, up ? 1 : 0);
}

void PacketLinkModel::schedule_loss_state(Engine& engine, LinkId link,
                                          SimTime when, double loss_rate) {
  MASSF_CHECK(link >= 0 && link < static_cast<LinkId>(net_->links.size()));
  MASSF_CHECK(loss_rate >= 0 && loss_rate < 1.0);
  const auto ppm = static_cast<std::uint64_t>(loss_rate * 1e6);
  const NetLink& l = net_->links[static_cast<std::size_t>(link)];
  engine.schedule(sim_->lp_of(l.a), when, kEvLossState,
                  static_cast<std::uint64_t>(link) * 2, ppm);
  engine.schedule(sim_->lp_of(l.b), when, kEvLossState,
                  static_cast<std::uint64_t>(link) * 2 + 1, ppm);
}

void PacketLinkModel::on_link_state(std::uint64_t slot, bool up) {
  // The slot's state is owned by the transmitting endpoint's LP, which is
  // where the kEvLinkState event was addressed.
  iface_up_[slot] = up ? 1 : 0;
}

void PacketLinkModel::on_loss_state(std::uint64_t slot, std::uint32_t ppm) {
  loss_rate_ppm_[slot] = ppm;
}

double PacketLinkModel::link_utilization(LinkId link, int direction,
                                         SimTime duration) const {
  MASSF_ENFORCE(!link_bytes_.empty(), ErrorCategory::kConfig,
                "link_utilization requires collect_link_stats");
  MASSF_ENFORCE(direction == 0 || direction == 1, ErrorCategory::kConfig,
                "link direction must be 0 or 1");
  MASSF_ENFORCE(duration > 0, ErrorCategory::kConfig,
                "link_utilization over a zero-duration window");
  const NetLink& l = net_->links[static_cast<std::size_t>(link)];
  const std::size_t slot = static_cast<std::size_t>(link) * 2 +
                           static_cast<std::size_t>(direction);
  return static_cast<double>(link_bytes_[slot]) * 8.0 /
         (l.bandwidth_bps * to_seconds(duration));
}

void PacketLinkModel::save(ckpt::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(kind()));
  ckpt::write_u64_vec(w, iface_free_);
  ckpt::write_char_vec(w, iface_up_);
  ckpt::write_u64_vec(w, loss_rate_ppm_);
  ckpt::write_u64_vec(w, loss_seq_);
  ckpt::write_u64_vec(w, link_bytes_);
}

bool PacketLinkModel::load(ckpt::Reader& r) {
  if (r.u32() != static_cast<std::uint32_t>(kind())) return false;
  const std::size_t n_iface = iface_free_.size();
  const std::size_t n_link_bytes = link_bytes_.size();
  if (!ckpt::read_u64_vec(r, iface_free_) || iface_free_.size() != n_iface)
    return false;
  if (!ckpt::read_char_vec(r, iface_up_) || iface_up_.size() != n_iface)
    return false;
  if (!ckpt::read_u64_vec(r, loss_rate_ppm_) ||
      loss_rate_ppm_.size() != n_iface)
    return false;
  if (!ckpt::read_u64_vec(r, loss_seq_) || loss_seq_.size() != n_iface)
    return false;
  if (!ckpt::read_u64_vec(r, link_bytes_) ||
      link_bytes_.size() != n_link_bytes)
    return false;
  return r.ok();
}

}  // namespace massf
