#include "net/fluid_link.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/ckpt.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace massf {
namespace {

/// Fraction of a link's bandwidth the fluid class always keeps, however
/// much measured packet traffic crosses it: a saturated shared link slows
/// background flows to a crawl instead of freezing them at rate zero
/// (zero is reserved for down/unrouted paths, which is what the stall
/// timeout keys on).
constexpr double kFluidMinShare = 0.01;

}  // namespace

FluidLinkModel::FluidLinkModel(const Network& net, const ForwardingPlane& fp,
                               const NetSimOptions& opts)
    : PacketLinkModel(net, opts), fp_(&fp) {
  const std::size_t slots = net.links.size() * 2;
  fluid_share_bps_.assign(slots, 0.0);
  packet_window_bytes_.assign(slots, 0);
  packet_bytes_snapshot_.assign(slots, 0);
  packet_bps_.assign(slots, 0.0);
  // Let the first boundary with work recompute immediately instead of
  // waiting out a full cadence.
  last_recompute_boundary_ =
      -static_cast<std::int64_t>(
          std::max<std::int32_t>(1, opts.link_model.fluid_recompute_every));
}

void FluidLinkModel::attach(NetSim& sim, Engine& engine) {
  PacketLinkModel::attach(sim, engine);
  pending_.resize(static_cast<std::size_t>(sim.num_lps()) + 1);
  engine.hooks().barrier.push_back(
      [this](Engine& e, SimTime floor) { on_boundary(e, floor); });
}

TransmitResult FluidLinkModel::transmit(Engine& engine, NodeId from,
                                        LinkId link, const Packet& p) {
  const NetLink& l = net_->links[static_cast<std::size_t>(link)];
  const std::size_t slot = static_cast<std::size_t>(link) * 2 +
                           (l.a == from ? 0 : 1);
  // Flow -> packet coupling: the packet class sees the bandwidth left by
  // the fluid reservation published at the last recompute boundary, but
  // never less than its guaranteed floor. The no-reservation branch keeps
  // packet-only traffic on the exact pre-coupling arithmetic.
  double bw = l.bandwidth_bps;
  if (const double share = fluid_share_bps_[slot]; share > 0) {
    bw = std::max(bw - share,
                  opts_.link_model.fluid_min_packet_share * l.bandwidth_bps);
  }
  const TransmitResult res = transmit_impl(engine, from, link, p, bw);
  if (res.status == TransmitResult::kSent) {
    // Packet -> flow coupling input, differenced at recompute boundaries.
    packet_window_bytes_[slot] += p.wire_bytes();
  }
  return res;
}

void FluidLinkModel::on_link_state(std::uint64_t slot, bool up) {
  PacketLinkModel::on_link_state(slot, up);
  link_dirty_.store(true, std::memory_order_relaxed);
}

void FluidLinkModel::on_loss_state(std::uint64_t slot, std::uint32_t ppm) {
  PacketLinkModel::on_loss_state(slot, ppm);
  link_dirty_.store(true, std::memory_order_relaxed);
}

void FluidLinkModel::start_background_flow(Engine& engine, SimTime when,
                                           NodeId src, NodeId dst,
                                           std::uint32_t bytes,
                                           std::uint32_t tag) {
  const LpId lp = engine.current_lp();
  const std::size_t q =
      lp == kInvalidLp ? 0 : static_cast<std::size_t>(lp) + 1;
  MASSF_CHECK(q < pending_.size());
  pending_[q].push_back(Pending{when, src, dst, bytes, tag});

  // Guarantee an admission boundary even if the packet class goes quiet.
  // From a handler the only always-legal target is the calling LP itself
  // (a cross-LP send would have to honor the declared ChannelGraph); from
  // the pre-run or a boundary hook the injection path reaches LP 0, where
  // the coordinator can dedupe against the pending wake.
  if (lp != kInvalidLp) {
    engine.schedule(lp, std::max(when, engine.now()) +
                            engine.options().lookahead,
                    kEvFluidWake, 0);
    return;
  }
  const SimTime target =
      std::max(when, engine.now() + engine.options().lookahead);
  if (next_wake_ > engine.now() && next_wake_ <= target) return;
  next_wake_ = target;
  ++bg_.wakes;
  engine.schedule(0, target, kEvFluidWake, 0);
}

bool FluidLinkModel::has_pending() const {
  for (const auto& q : pending_) {
    if (!q.empty()) return true;
  }
  return false;
}

void FluidLinkModel::on_boundary(Engine& engine, SimTime floor) {
  ++boundaries_;
  const auto cadence = static_cast<std::int64_t>(
      std::max<std::int32_t>(1, opts_.link_model.fluid_recompute_every));
  const bool due = earliest_completion_ <= floor || earliest_deadline_ <= floor;
  const bool work =
      dirty_ || link_dirty_.load(std::memory_order_relaxed) || has_pending();
  if (!due &&
      !(work && static_cast<std::int64_t>(boundaries_) -
                        last_recompute_boundary_ >= cadence)) {
    schedule_wake(engine, floor);
    return;
  }
  advance_to(engine, floor);
  admit_pending(floor);
  recompute(engine, floor);
  schedule_wake(engine, floor);
}

void FluidLinkModel::advance_to(Engine& engine, SimTime floor) {
  const SimTime dt = floor - advanced_to_;
  if (dt <= 0 && active_.empty()) {
    advanced_to_ = std::max(advanced_to_, floor);
    return;
  }
  const double dt_s = to_seconds(std::max<SimTime>(dt, 0));

  struct Done {
    SimTime at;
    std::size_t idx;
  };
  std::vector<Done> done;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    ActiveFlow& f = active_[i];
    if (f.rate_bps <= 0) continue;
    const double progress = f.rate_bps * dt_s / 8.0;  // bytes
    const double carried = std::min(f.remaining, progress);
    if (!link_bytes_.empty() && carried > 0) {
      const auto b = static_cast<std::uint64_t>(std::llround(carried));
      for (const std::uint32_t slot : f.path) link_bytes_[slot] += b;
    }
    if (f.remaining <= progress + 0.5) {
      // Piecewise-constant rate: the crossing time is closed-form.
      const SimTime at =
          advanced_to_ +
          from_seconds(std::max(f.remaining, 0.0) * 8.0 / f.rate_bps);
      done.push_back(Done{std::min(at, floor), i});
      f.remaining = 0;
    } else {
      f.remaining -= progress;
    }
  }
  advanced_to_ = std::max(advanced_to_, floor);
  if (done.empty()) return;

  // Completion callbacks fire in (analytic time, flow id) order — a pure
  // function of coordinator state, identical under every executor.
  std::sort(done.begin(), done.end(), [this](const Done& a, const Done& b) {
    if (a.at != b.at) return a.at < b.at;
    return active_[a.idx].flow < active_[b.idx].flow;
  });
  std::vector<char> dead(active_.size(), 0);
  for (const Done& d : done) {
    finish_flow(engine, active_[d.idx], d.at, /*failed=*/false);
    dead[d.idx] = 1;
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (!dead[i]) active_[out++] = std::move(active_[i]);
  }
  active_.resize(out);
  dirty_ = true;  // departures free bandwidth
}

void FluidLinkModel::admit_pending(SimTime floor) {
  struct Item {
    SimTime when;
    Pending p;
  };
  std::vector<Item> due;
  for (auto& q : pending_) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].when <= floor) {
        due.push_back(Item{q[i].when, q[i]});
      } else {
        q[out++] = q[i];
      }
    }
    q.resize(out);
  }
  if (due.empty()) return;
  // Stable by arrival time; ties keep (queue, submit) order, which is the
  // same merged order under every executor (per-LP queues are filled in
  // deterministic handler order).
  std::stable_sort(due.begin(), due.end(),
                   [](const Item& a, const Item& b) { return a.when < b.when; });
  for (const Item& it : due) {
    ActiveFlow f;
    f.flow = kFluidFlowBit | next_flow_seq_++;
    f.src = it.p.src;
    f.dst = it.p.dst;
    f.bytes = it.p.bytes;
    f.tag = it.p.tag;
    f.started_at = floor;
    f.remaining = static_cast<double>(it.p.bytes);
    repath(f);
    // Keep the profiling run's PROF/HPROF inputs meaningful under hybrid
    // fidelity: charge each node on the path roughly what the packet
    // model would have (one event per MSS-sized segment).
    if (!f.path.empty()) {
      const std::uint64_t weight = 1 + (f.bytes + kMss - 1) / kMss;
      for (const std::uint32_t slot : f.path) {
        const NetLink& l = net_->links[slot / 2];
        sim_->count_background_events(slot % 2 == 0 ? l.a : l.b, weight);
      }
      sim_->count_background_events(f.dst, weight);
    }
    active_.push_back(std::move(f));
    ++bg_.started;
  }
  dirty_ = true;
}

void FluidLinkModel::repath(ActiveFlow& f) const {
  f.path.clear();
  NodeId cur = f.src;
  while (cur != f.dst) {
    LinkId next = kInvalidLink;
    if (net_->is_host(cur)) {
      const auto inc = net_->incident(cur);
      if (inc.size() == 1) next = inc[0].link;
    } else {
      next = fp_->next_link(cur, f.dst);
    }
    if (next == kInvalidLink ||
        f.path.size() > net_->nodes.size()) {  // no route / routing loop
      f.path.clear();
      return;
    }
    const NetLink& l = net_->links[static_cast<std::size_t>(next)];
    const bool fwd = l.a == cur;
    f.path.push_back(static_cast<std::uint32_t>(next) * 2 + (fwd ? 0 : 1));
    cur = fwd ? l.b : l.a;
  }
}

bool FluidLinkModel::path_blocked(const ActiveFlow& f) const {
  if (f.path.empty()) return true;
  for (const std::uint32_t slot : f.path) {
    if (!iface_up_[slot]) return true;
  }
  return false;
}

void FluidLinkModel::recompute(Engine& engine, SimTime floor) {
  ++bg_.recomputes;
  dirty_ = false;
  link_dirty_.store(false, std::memory_order_relaxed);
  last_recompute_boundary_ = static_cast<std::int64_t>(boundaries_);

  // Packet -> flow coupling: measured packet throughput since the last
  // recompute shrinks what the water-fill may hand out.
  const std::size_t slots = packet_window_bytes_.size();
  if (last_recompute_floor_ >= 0 && floor > last_recompute_floor_) {
    const double el = to_seconds(floor - last_recompute_floor_);
    for (std::size_t s = 0; s < slots; ++s) {
      packet_bps_[s] = static_cast<double>(packet_window_bytes_[s] -
                                           packet_bytes_snapshot_[s]) *
                       8.0 / el;
    }
  }
  packet_bytes_snapshot_ = packet_window_bytes_;
  last_recompute_floor_ = floor;

  // Re-path around failed links before rating.
  for (ActiveFlow& f : active_) {
    if (path_blocked(f)) repath(f);
  }

  // Max-min water-fill over residual slot capacities. Loss bursts scale a
  // slot's usable capacity by the delivery probability (goodput view).
  std::vector<double> cap(slots, 0.0);
  std::vector<std::int32_t> load(slots, 0);
  for (std::size_t s = 0; s < slots; ++s) {
    if (!iface_up_[s]) continue;
    const NetLink& l = net_->links[s / 2];
    double c = std::max(l.bandwidth_bps - packet_bps_[s],
                        kFluidMinShare * l.bandwidth_bps);
    c *= 1.0 - static_cast<double>(loss_rate_ppm_[s]) / 1e6;
    cap[s] = c;
  }
  std::vector<char> frozen(active_.size(), 0);
  std::int32_t unfrozen = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    ActiveFlow& f = active_[i];
    f.rate_bps = 0;
    if (path_blocked(f)) {
      frozen[i] = 1;  // stays at rate 0; handled by the stall machinery
      continue;
    }
    for (const std::uint32_t slot : f.path) ++load[slot];
    ++unfrozen;
  }
  const double rate_cap = opts_.link_model.fluid_flow_rate_cap_bps;
  while (unfrozen > 0) {
    // Bottleneck slot: smallest fair share among loaded slots.
    std::size_t bn = slots;
    double share = 0;
    for (std::size_t s = 0; s < slots; ++s) {
      if (load[s] <= 0) continue;
      const double sh = cap[s] / load[s];
      if (bn == slots || sh < share) {
        bn = s;
        share = sh;
      }
    }
    if (bn == slots) break;
    share = std::max(share, 0.0);
    if (rate_cap > 0 && rate_cap < share) {
      // Every remaining flow is window-limited below any fair share, so
      // all freeze at the cap at once (feasible: each loaded slot's fair
      // share exceeds the cap, hence cap * load[s] < cap[s]).
      for (std::size_t i = 0; i < active_.size(); ++i) {
        if (frozen[i]) continue;
        active_[i].rate_bps = rate_cap;
        frozen[i] = 1;
      }
      unfrozen = 0;
      break;
    }
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (frozen[i]) continue;
      ActiveFlow& f = active_[i];
      bool crosses = false;
      for (const std::uint32_t slot : f.path) {
        if (slot == bn) {
          crosses = true;
          break;
        }
      }
      if (!crosses) continue;
      f.rate_bps = share;
      frozen[i] = 1;
      --unfrozen;
      for (const std::uint32_t slot : f.path) {
        cap[slot] = std::max(cap[slot] - share, 0.0);
        --load[slot];
      }
    }
  }

  // Publish the flow -> packet coupling for the coming windows.
  std::fill(fluid_share_bps_.begin(), fluid_share_bps_.end(), 0.0);
  for (const ActiveFlow& f : active_) {
    for (const std::uint32_t slot : f.path) {
      fluid_share_bps_[slot] += f.rate_bps;
    }
  }

  // Completion horizon, stall deadlines, and stall failures.
  earliest_completion_ = kNever;
  earliest_deadline_ = kNever;
  const SimTime timeout = from_seconds(opts_.link_model.fluid_stall_timeout_s);
  std::vector<std::size_t> failed;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    ActiveFlow& f = active_[i];
    if (f.rate_bps > 0) {
      f.stall_since = -1;
      const SimTime at =
          floor + from_seconds(f.remaining * 8.0 / f.rate_bps);
      earliest_completion_ = std::min(earliest_completion_, at);
      continue;
    }
    if (f.stall_since < 0) f.stall_since = floor;
    if (floor - f.stall_since >= timeout) {
      failed.push_back(i);
    } else {
      earliest_deadline_ =
          std::min(earliest_deadline_, f.stall_since + timeout);
    }
  }
  if (!failed.empty()) {
    for (const std::size_t i : failed) {
      finish_flow(engine, active_[i], floor, /*failed=*/true);
    }
    std::vector<char> dead(active_.size(), 0);
    for (const std::size_t i : failed) dead[i] = 1;
    std::size_t out = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (!dead[i]) active_[out++] = std::move(active_[i]);
    }
    active_.resize(out);
    dirty_ = true;  // the freed shares redistribute at the next recompute
  }
}

void FluidLinkModel::finish_flow(Engine& engine, const ActiveFlow& f,
                                 SimTime finished_at, bool failed) {
  if (failed) {
    ++bg_.failed;
  } else {
    ++bg_.completed;
    bg_.bytes_completed += f.bytes;
  }
  FlowRecord rec;
  rec.flow = f.flow;
  rec.src = f.src;
  rec.dst = f.dst;
  rec.bytes = f.bytes;
  rec.tag = f.tag;
  rec.started_at = f.started_at;
  rec.finished_at = finished_at;
  rec.failed = failed;
  if (opts_.collect_flow_records) records_.push_back(rec);
  sim_->background_flow_finished(engine, rec);
}

void FluidLinkModel::schedule_wake(Engine& engine, SimTime floor) {
  SimTime target = std::min(earliest_completion_, earliest_deadline_);
  if (dirty_ || link_dirty_.load(std::memory_order_relaxed) ||
      has_pending()) {
    const auto cadence = static_cast<std::int64_t>(
        std::max<std::int32_t>(1, opts_.link_model.fluid_recompute_every));
    const std::int64_t since =
        static_cast<std::int64_t>(boundaries_) - last_recompute_boundary_;
    const std::int64_t left = std::max<std::int64_t>(cadence - since, 1);
    target = std::min(target, floor + left * engine.options().lookahead);
  }
  if (target == kNever) return;
  target = std::max(target, floor + engine.options().lookahead);
  if (next_wake_ > floor && next_wake_ <= target) return;
  next_wake_ = target;
  ++bg_.wakes;
  engine.schedule(0, target, kEvFluidWake, 0);
}

std::vector<FlowRecord> FluidLinkModel::background_flow_records() const {
  return records_;
}

void FluidLinkModel::publish_metrics(obs::Registry& registry) const {
  registry.counter("net.bg.flows_started").inc(bg_.started);
  registry.counter("net.bg.flows_completed").inc(bg_.completed);
  registry.counter("net.bg.flows_failed").inc(bg_.failed);
  registry.counter("net.bg.bytes_completed").inc(bg_.bytes_completed);
  registry.counter("net.bg.recomputes").inc(bg_.recomputes);
  registry.counter("net.bg.wakes").inc(bg_.wakes);
}

void FluidLinkModel::save(ckpt::Writer& w) const {
  PacketLinkModel::save(w);
  w.u64(next_flow_seq_);
  w.u64(boundaries_);
  w.i64(last_recompute_boundary_);
  w.i64(advanced_to_);
  w.i64(last_recompute_floor_);
  w.i64(earliest_completion_);
  w.i64(earliest_deadline_);
  w.i64(next_wake_);
  w.u64(bg_.started);
  w.u64(bg_.completed);
  w.u64(bg_.failed);
  w.u64(bg_.bytes_completed);
  w.u64(bg_.recomputes);
  w.u64(bg_.wakes);
  ckpt::write_f64_vec(w, fluid_share_bps_);
  ckpt::write_u64_vec(w, packet_window_bytes_);
  ckpt::write_u64_vec(w, packet_bytes_snapshot_);
  ckpt::write_f64_vec(w, packet_bps_);
  w.u8(dirty_ ? 1 : 0);
  w.u8(link_dirty_.load(std::memory_order_relaxed) ? 1 : 0);
  w.u64(records_.size());
  for (const FlowRecord& rec : records_) save_flow_record(w, rec);
  w.u64(active_.size());
  for (const ActiveFlow& f : active_) {
    w.u64(f.flow);
    w.i32(f.src);
    w.i32(f.dst);
    w.u32(f.bytes);
    w.u32(f.tag);
    w.i64(f.started_at);
    w.f64(f.remaining);
    w.f64(f.rate_bps);
    w.i64(f.stall_since);
    ckpt::write_u64_vec(w, f.path);
  }
  w.u64(pending_.size());
  for (const auto& q : pending_) {
    w.u64(q.size());
    for (const Pending& p : q) {
      w.i64(p.when);
      w.i32(p.src);
      w.i32(p.dst);
      w.u32(p.bytes);
      w.u32(p.tag);
    }
  }
}

bool FluidLinkModel::load(ckpt::Reader& r) {
  if (!PacketLinkModel::load(r)) return false;
  next_flow_seq_ = r.u64();
  boundaries_ = r.u64();
  last_recompute_boundary_ = r.i64();
  advanced_to_ = r.i64();
  last_recompute_floor_ = r.i64();
  earliest_completion_ = r.i64();
  earliest_deadline_ = r.i64();
  next_wake_ = r.i64();
  bg_.started = r.u64();
  bg_.completed = r.u64();
  bg_.failed = r.u64();
  bg_.bytes_completed = r.u64();
  bg_.recomputes = r.u64();
  bg_.wakes = r.u64();
  const std::size_t slots = fluid_share_bps_.size();
  if (!ckpt::read_f64_vec(r, fluid_share_bps_) ||
      fluid_share_bps_.size() != slots)
    return false;
  if (!ckpt::read_u64_vec(r, packet_window_bytes_) ||
      packet_window_bytes_.size() != slots)
    return false;
  if (!ckpt::read_u64_vec(r, packet_bytes_snapshot_) ||
      packet_bytes_snapshot_.size() != slots)
    return false;
  if (!ckpt::read_f64_vec(r, packet_bps_) || packet_bps_.size() != slots)
    return false;
  dirty_ = r.u8() != 0;
  link_dirty_.store(r.u8() != 0, std::memory_order_relaxed);
  const std::uint64_t n_records = r.u64();
  if (!r.ok() || n_records > (1ULL << 32)) return false;
  records_.resize(static_cast<std::size_t>(n_records));
  for (FlowRecord& rec : records_) load_flow_record(r, rec);
  const std::uint64_t n_active = r.u64();
  if (!r.ok() || n_active > (1ULL << 32)) return false;
  active_.resize(static_cast<std::size_t>(n_active));
  for (ActiveFlow& f : active_) {
    f.flow = r.u64();
    f.src = r.i32();
    f.dst = r.i32();
    f.bytes = r.u32();
    f.tag = r.u32();
    f.started_at = r.i64();
    f.remaining = r.f64();
    f.rate_bps = r.f64();
    f.stall_since = r.i64();
    if (!ckpt::read_u64_vec(r, f.path)) return false;
  }
  const std::uint64_t n_queues = r.u64();
  if (n_queues != pending_.size()) return false;
  for (auto& q : pending_) {
    const std::uint64_t n = r.u64();
    if (!r.ok() || n > (1ULL << 32)) return false;
    q.resize(static_cast<std::size_t>(n));
    for (Pending& p : q) {
      p.when = r.i64();
      p.src = r.i32();
      p.dst = r.i32();
      p.bytes = r.u32();
      p.tag = r.u32();
    }
  }
  return r.ok();
}

}  // namespace massf
