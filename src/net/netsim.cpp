#include "net/netsim.hpp"

#include <algorithm>

#include "ckpt/ckpt.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace massf {
namespace {

/// Engine adapter: forwards every event of one LP to the shared NetSim.
class PartitionLp final : public LogicalProcess {
 public:
  explicit PartitionLp(NetSim* sim) : sim_(sim) {}
  void handle(Engine& engine, const Event& event) override {
    sim_->handle(engine, event);
  }

 private:
  NetSim* sim_;
};

}  // namespace

NetSim::NetSim(const Network& net, const ForwardingPlane& fp,
               std::span<const LpId> router_lp, Engine& engine,
               const NetSimOptions& opts)
    : NetSim(net, fp, router_lp, engine, opts,
             make_link_model(net, fp, opts)) {}

NetSim::NetSim(const Network& net, const ForwardingPlane& fp,
               std::span<const LpId> router_lp, Engine& engine,
               const NetSimOptions& opts, std::unique_ptr<LinkModel> model)
    : net_(&net), fp_(&fp), opts_(opts), model_(std::move(model)) {
  MASSF_CHECK(model_ != nullptr);
  MASSF_CHECK(static_cast<NodeId>(router_lp.size()) == net.num_routers);

  node_lp_.resize(net.nodes.size());
  for (NodeId r = 0; r < net.num_routers; ++r) {
    const LpId lp = router_lp[static_cast<std::size_t>(r)];
    MASSF_CHECK(lp >= 0);
    node_lp_[static_cast<std::size_t>(r)] = lp;
    num_lps_ = std::max(num_lps_, lp + 1);
  }
  for (NodeId h = net.num_routers; h < static_cast<NodeId>(net.nodes.size());
       ++h) {
    node_lp_[static_cast<std::size_t>(h)] =
        node_lp_[static_cast<std::size_t>(
            net.nodes[static_cast<std::size_t>(h)].attach_router)];
  }

  // Conservative contract: cross-LP links must respect the lookahead.
  for (const NetLink& l : net.links) {
    if (lp_of(l.a) != lp_of(l.b)) {
      MASSF_CHECK(l.latency >= engine.options().lookahead);
    }
  }

  node_up_.assign(net.nodes.size(), 1);
  lp_state_.resize(static_cast<std::size_t>(num_lps_));
  if (opts_.collect_node_profile) {
    profile_.assign(net.nodes.size(), 0);
  }

  MASSF_CHECK(engine.num_lps() == 0);  // NetSim owns the LP layout
  for (std::int32_t i = 0; i < num_lps_; ++i) {
    engine.add_lp(std::make_unique<PartitionLp>(this));
  }
  model_->attach(*this, engine);
}

LpId NetSim::lp_of(NodeId node) const {
  MASSF_CHECK(node >= 0 &&
              node < static_cast<NodeId>(node_lp_.size()));
  return node_lp_[static_cast<std::size_t>(node)];
}

TcpSender& NetSim::sender(FlowId f) {
  auto& senders = lp_state_[static_cast<std::size_t>(flow_lp(f))].senders;
  const std::size_t idx = flow_index(f);
  MASSF_CHECK(idx < senders.size());
  return senders[idx];
}

void NetSim::count_node_event(NodeId node) {
  if (!profile_.empty()) ++profile_[static_cast<std::size_t>(node)];
}

FlowId NetSim::start_flow(Engine& engine, SimTime when, NodeId src_host,
                          NodeId dst_host, std::uint32_t bytes,
                          std::uint32_t tag) {
  MASSF_CHECK(net_->is_host(src_host) && net_->is_host(dst_host));
  MASSF_CHECK(bytes > 0);
  const LpId lp = lp_of(src_host);
  // Flow records may be created before the run (main thread) or from a
  // handler executing on the sender's LP; both keep the arena single-writer.
  MASSF_CHECK(engine.current_lp() == kInvalidLp || engine.current_lp() == lp);

  auto& senders = lp_state_[static_cast<std::size_t>(lp)].senders;
  const FlowId flow = (static_cast<FlowId>(lp) << kFlowLpShift) |
                      static_cast<FlowId>(senders.size());
  TcpSender s;
  s.src = src_host;
  s.dst = dst_host;
  s.size = bytes;
  s.tag = tag;
  s.rto = kInitialRto;
  senders.push_back(s);
  ++lp_state_[static_cast<std::size_t>(lp)].counters.flows_started;

  engine.schedule(lp, when, kEvFlowStart, flow);
  return flow;
}

void NetSim::send_udp(Engine& engine, SimTime when, NodeId src_host,
                      NodeId dst_host, std::uint32_t payload_bytes,
                      std::uint32_t tag) {
  MASSF_CHECK(net_->is_host(src_host) && net_->is_host(dst_host));
  MASSF_CHECK(payload_bytes <= kMss);
  Packet p;
  p.src = src_host;
  p.dst = dst_host;
  p.flow = 0;
  p.len = payload_bytes;
  p.flags = kFlagUdp;
  p.ack = tag;
  p.arrive = src_host;
  Event ev;
  p.encode(ev);
  engine.schedule(lp_of(src_host), when, kEvUdpSend, ev.a, ev.b, ev.c, ev.d);
}

void NetSim::schedule_app_timer(Engine& engine, NodeId host, SimTime when,
                                std::uint64_t b, std::uint64_t c) {
  MASSF_CHECK(net_->is_host(host));
  engine.schedule(lp_of(host), when, kEvAppTimer,
                  static_cast<std::uint64_t>(host), b, c);
}

bool NetSim::start_background_flow(Engine& engine, SimTime when,
                                   NodeId src_host, NodeId dst_host,
                                   std::uint32_t bytes, std::uint32_t tag) {
  MASSF_CHECK(net_->is_host(src_host) && net_->is_host(dst_host));
  MASSF_CHECK(bytes > 0);
  if (!model_->supports_background_flows()) {
    // Packet-only model: honor the request at packet fidelity so traffic
    // apps can select fidelity per flow without caring which model runs.
    start_flow(engine, when, src_host, dst_host, bytes, tag);
    return false;
  }
  model_->start_background_flow(engine, when, src_host, dst_host, bytes, tag);
  return true;
}

void NetSim::background_flow_finished(Engine& engine, const FlowRecord& rec) {
  if (on_flow_complete_) {
    on_flow_complete_(engine, *this, rec.flow, rec.src, rec.dst, rec.tag,
                      rec.failed);
  }
}

void NetSim::schedule_node_state(Engine& engine, NodeId router, SimTime when,
                                 bool up) {
  MASSF_CHECK(net_->is_router(router));
  engine.schedule(lp_of(router), when, kEvNodeState,
                  static_cast<std::uint64_t>(router), up ? 1 : 0);
}

bool NetSim::router_mobile(NodeId router, SimTime lookahead) const {
  if (!net_->is_router(router)) return false;
  for (const Network::Incidence& inc : net_->incident(router)) {
    if (net_->is_host(inc.peer)) return false;
    if (net_->links[static_cast<std::size_t>(inc.link)].latency < lookahead) {
      return false;
    }
  }
  return true;
}

MigrationStats NetSim::migrate_router(Engine& engine, NodeId router, LpId to) {
  MASSF_CHECK(net_->is_router(router));
  MASSF_CHECK(to >= 0 && to < num_lps_);
  const LpId from = lp_of(router);
  if (from == to) return {};
  MASSF_CHECK(router_mobile(router, engine.options().lookahead));

  node_lp_[static_cast<std::size_t>(router)] = to;

  const Network* net = net_;
  return engine.migrate_events(from, to, [net, router](const Event& ev) {
    switch (ev.type) {
      case kEvArrive:
        return Packet::decode(ev).arrive == router;
      case kEvLinkState:
      case kEvLossState: {
        // Directed-slot events are addressed to the transmitter's LP.
        const NetLink& l = net->links[static_cast<std::size_t>(ev.a / 2)];
        return (ev.a % 2 == 0 ? l.a : l.b) == router;
      }
      case kEvNodeState:
        return static_cast<NodeId>(ev.a) == router;
      default:
        // Flow, timer, and UDP-send events are host-bound; a mobile router
        // has no hosts, so none of its pending events carry these types.
        return false;
    }
  });
}

void NetSim::handle(Engine& engine, const Event& ev) {
  switch (ev.type) {
    case kEvArrive: {
      const Packet p = Packet::decode(ev);
      count_node_event(p.arrive);
      on_arrive(engine, p);
      break;
    }
    case kEvFlowStart: {
      count_node_event(sender(ev.a).src);
      on_flow_start(engine, ev.a);
      break;
    }
    case kEvTcpTimeout:
      on_timeout(engine, ev.a, ev.b);
      break;
    case kEvAppTimer: {
      const auto host = static_cast<NodeId>(ev.a);
      const NodeId ar =
          net_->nodes[static_cast<std::size_t>(host)].attach_router;
      if (ar != kInvalidNode && !node_up_[static_cast<std::size_t>(ar)]) {
        // The host's attachment router crashed: the host is off the
        // network, so its pending application events are dropped.
        ++lp_state_[static_cast<std::size_t>(lp_of(host))]
              .counters.app_timers_dropped;
        break;
      }
      count_node_event(host);
      if (on_app_timer_) on_app_timer_(engine, *this, host, ev.b, ev.c);
      break;
    }
    case kEvLinkState: {
      // The slot's state is owned by the transmitting endpoint's LP, which
      // is where this event was addressed.
      model_->on_link_state(ev.a, ev.b != 0);
      break;
    }
    case kEvNodeState: {
      // Addressed to the node's LP, which owns every read of this slot.
      node_up_[ev.a] = ev.b != 0;
      break;
    }
    case kEvLossState: {
      model_->on_loss_state(ev.a, static_cast<std::uint32_t>(ev.b));
      break;
    }
    case kEvFluidWake:
      // Heartbeat: its only job was forcing the window boundary that just
      // ran the fluid model's hook.
      break;
    case kEvUdpSend: {
      const Packet p = Packet::decode(ev);
      count_node_event(p.src);
      // Host egress over its access link.
      const auto inc = net_->incident(p.src);
      MASSF_CHECK(inc.size() == 1);
      transmit(engine, p.src, inc[0].link, p);
      break;
    }
    default:
      MASSF_CHECK(false && "unknown event type");
  }
}

void NetSim::transmit(Engine& engine, NodeId from, LinkId link, Packet p) {
  const TransmitResult res = model_->transmit(engine, from, link, p);
  auto& counters = lp_state_[static_cast<std::size_t>(lp_of(from))].counters;
  switch (res.status) {
    case TransmitResult::kLinkDown:
      ++counters.dropped_link_down;
      return;
    case TransmitResult::kLoss:
      ++counters.dropped_loss;
      return;
    case TransmitResult::kQueueFull:
      ++counters.dropped_queue;
      return;
    case TransmitResult::kSent:
      break;
  }
  ++counters.forwarded;
  p.arrive = res.peer;
  Event ev;
  p.encode(ev);
  engine.schedule(lp_of(res.peer), res.arrive, kEvArrive, ev.a, ev.b, ev.c,
                  ev.d);
}

void NetSim::on_arrive(Engine& engine, const Packet& p) {
  const NodeId here = p.arrive;
  if (!node_up_[static_cast<std::size_t>(here)]) {
    // Crashed router: packets in flight toward it are blackholed.
    ++lp_state_[static_cast<std::size_t>(lp_of(here))]
          .counters.dropped_node_down;
    return;
  }
  if (here == p.dst) {
    deliver(engine, p);
    return;
  }
  MASSF_CHECK(net_->is_router(here));
  const LinkId next = fp_->next_link(here, p.dst);
  if (next == kInvalidLink) {
    ++lp_state_[static_cast<std::size_t>(lp_of(here))]
          .counters.dropped_no_route;
    return;
  }
  transmit(engine, here, next, p);
}

void NetSim::deliver(Engine& engine, const Packet& p) {
  auto& state = lp_state_[static_cast<std::size_t>(lp_of(p.dst))];
  if (p.flags & kFlagUdp) {
    ++state.counters.udp_delivered;
    if (on_udp_) on_udp_(engine, *this, p);
    return;
  }
  if (p.flags & kFlagAck) {
    ++state.counters.acks;
    on_ack(engine, p);
    return;
  }
  ++state.counters.delivered;
  on_data(engine, p);
}

void NetSim::on_data(Engine& engine, const Packet& p) {
  auto& state = lp_state_[static_cast<std::size_t>(lp_of(p.dst))];
  TcpReceiver& r = state.receivers[p.flow];
  if (r.src == kInvalidNode) {
    r.src = p.src;
    r.dst = p.dst;
  }
  r.on_data(p.seq, p.len);
  if (p.flags & kFlagFin) {
    r.fin_seen = true;
    r.fin_seq = p.seq + p.len;
  }

  // Cumulative acknowledgment back to the sender (tag echoed via the data
  // packet's ack field so the completion callback can carry it).
  Packet ack;
  ack.src = p.dst;
  ack.dst = p.src;
  ack.flow = p.flow;
  ack.flags = kFlagAck;
  ack.ack = r.expected;
  ack.arrive = p.dst;
  const auto inc = net_->incident(p.dst);
  MASSF_CHECK(inc.size() == 1);
  transmit(engine, p.dst, inc[0].link, ack);

  if (r.all_received() && !r.completed) {
    r.completed = true;
    ++state.counters.flows_completed;
    if (on_flow_complete_) {
      on_flow_complete_(engine, *this, p.flow, r.src, r.dst, p.ack,
                        /*failed=*/false);
    }
  }
}

void NetSim::on_flow_start(Engine& engine, FlowId flow) {
  TcpSender& s = sender(flow);
  s.started_at = engine.now();
  send_available(engine, s, flow);
  arm_timer(engine, s, flow);
}

void NetSim::record_flow(FlowId flow, const TcpSender& s,
                         SimTime finished_at) {
  if (!opts_.collect_flow_records) return;
  FlowRecord r;
  r.flow = flow;
  r.src = s.src;
  r.dst = s.dst;
  r.bytes = s.size;
  r.tag = s.tag;
  r.started_at = s.started_at;
  r.finished_at = finished_at;
  r.retransmits = s.total_retransmits;
  r.failed = s.failed;
  lp_state_[static_cast<std::size_t>(lp_of(s.src))].records.push_back(r);
}

void NetSim::send_segment(Engine& engine, TcpSender& s, FlowId flow,
                          std::uint32_t seq, bool count_retransmit) {
  const std::uint32_t len = std::min(kMss, s.size - seq);
  MASSF_CHECK(len > 0);
  Packet p;
  p.src = s.src;
  p.dst = s.dst;
  p.flow = flow;
  p.seq = seq;
  p.len = len;
  p.ack = s.tag;  // data packets repurpose the ack field for the app tag
  if (seq + len == s.size) p.flags |= kFlagFin;
  p.arrive = s.src;
  if (count_retransmit) {
    ++lp_state_[static_cast<std::size_t>(lp_of(s.src))]
          .counters.retransmits;
    ++s.total_retransmits;
  }
  const auto inc = net_->incident(s.src);
  MASSF_CHECK(inc.size() == 1);
  transmit(engine, s.src, inc[0].link, p);
}

void NetSim::send_available(Engine& engine, TcpSender& s, FlowId flow) {
  // A cumulative ack can overtake a timeout-rewound next_seq (reordered
  // pre-timeout acks); never re-send already-acked bytes.
  if (s.next_seq < s.acked) s.next_seq = s.acked;
  while (s.next_seq < s.size) {
    const std::uint32_t len = std::min(kMss, s.size - s.next_seq);
    const std::uint32_t flight_after = s.next_seq + len - s.acked;
    if (static_cast<double>(flight_after) > s.cwnd &&
        s.next_seq > s.acked) {
      break;  // window full (always allow at least one segment in flight)
    }
    send_segment(engine, s, flow, s.next_seq, /*count_retransmit=*/false);
    if (s.rtt_sent_at < 0 && !s.in_recovery) {
      s.rtt_sent_at = engine.now();
      s.rtt_seq = s.next_seq + len;
    }
    s.next_seq += len;
  }
}

void NetSim::arm_timer(Engine& engine, TcpSender& s, FlowId flow) {
  ++s.timer_epoch;
  if (s.complete()) return;
  engine.schedule(flow_lp(flow), engine.now() + s.rto, kEvTcpTimeout, flow,
                  s.timer_epoch);
}

void NetSim::on_ack(Engine& engine, const Packet& p) {
  TcpSender& s = sender(p.flow);
  if (s.complete() || s.failed) return;  // stale ack

  const std::uint32_t ackno = p.ack;
  if (ackno > s.acked) {
    s.consecutive_timeouts = 0;  // forward progress
    // RTT sample (Karn: only when the measured segment was not
    // retransmitted, which recovery/timeout handling guarantees by
    // clearing rtt_sent_at).
    if (s.rtt_sent_at >= 0 && ackno >= s.rtt_seq) {
      tcp_rtt_update(s, engine.now() - s.rtt_sent_at);
      s.rtt_sent_at = -1;
    }
    if (s.in_recovery) {
      if (ackno >= s.recover) {
        // Full ack: leave fast recovery.
        s.in_recovery = false;
        s.cwnd = s.ssthresh;
        s.dup_acks = 0;
        s.acked = ackno;
      } else {
        // Partial ack (NewReno): retransmit the next hole, stay in
        // recovery, deflate the window by the amount acked.
        const std::uint32_t newly = ackno - s.acked;
        s.acked = ackno;
        s.cwnd = std::max(s.ssthresh,
                          s.cwnd - static_cast<double>(newly) + kMss);
        send_segment(engine, s, p.flow, s.acked, /*count_retransmit=*/true);
      }
    } else {
      s.acked = ackno;
      s.dup_acks = 0;
      if (s.cwnd < s.ssthresh) {
        s.cwnd += kMss;  // slow start
      } else {
        s.cwnd += static_cast<double>(kMss) * kMss / s.cwnd;  // AIMD
      }
    }
    if (s.complete()) record_flow(p.flow, s, engine.now());
    arm_timer(engine, s, p.flow);  // also invalidates the old timer
    send_available(engine, s, p.flow);
    return;
  }

  if (ackno == s.acked && s.acked < s.size && s.flight_size() > 0) {
    ++s.dup_acks;
    if (!s.in_recovery && s.dup_acks == 3) {
      // Fast retransmit + fast recovery.
      s.ssthresh = std::max<double>(s.flight_size() / 2.0, 2.0 * kMss);
      s.cwnd = s.ssthresh + 3.0 * kMss;
      s.in_recovery = true;
      s.recover = s.next_seq;
      s.rtt_sent_at = -1;  // Karn
      send_segment(engine, s, p.flow, s.acked, /*count_retransmit=*/true);
    } else if (s.in_recovery) {
      s.cwnd += kMss;  // window inflation per extra dup ack
      send_available(engine, s, p.flow);
    }
  }
}

void NetSim::on_timeout(Engine& engine, FlowId flow, std::uint64_t epoch) {
  TcpSender& s = sender(flow);
  if (epoch != s.timer_epoch || s.complete() || s.failed) return;  // stale

  if (++s.consecutive_timeouts > opts_.tcp_max_consecutive_timeouts) {
    // The path is (or behaves) partitioned: give up rather than chatter
    // until the simulation horizon.
    s.failed = true;
    ++lp_state_[static_cast<std::size_t>(lp_of(s.src))]
          .counters.flows_failed;
    record_flow(flow, s, engine.now());
    if (on_flow_complete_) {
      on_flow_complete_(engine, *this, flow, s.src, s.dst, s.tag,
                        /*failed=*/true);
    }
    return;
  }

  s.ssthresh = std::max<double>(s.flight_size() / 2.0, 2.0 * kMss);
  s.cwnd = kMss;
  s.dup_acks = 0;
  s.in_recovery = false;
  s.rtt_sent_at = -1;  // Karn
  s.rto = std::min<SimTime>(s.rto * 2, kMaxRto);  // exponential backoff
  // Go-back-N: everything past the cumulative ack is presumed lost.
  // Without the rewind, next_seq keeps the flight size inflated, so after
  // a multi-segment loss the window never opens and the hole refills at
  // one segment per (backed-off) RTO instead of ack-clocked slow start.
  send_segment(engine, s, flow, s.acked, /*count_retransmit=*/true);
  s.next_seq = s.acked + std::min(kMss, s.size - s.acked);
  arm_timer(engine, s, flow);
}

std::vector<FlowRecord> NetSim::flow_records() const {
  MASSF_CHECK(opts_.collect_flow_records);
  std::vector<FlowRecord> all;
  for (const LpState& st : lp_state_) {
    all.insert(all.end(), st.records.begin(), st.records.end());
  }
  const std::vector<FlowRecord> bg = model_->background_flow_records();
  all.insert(all.end(), bg.begin(), bg.end());
  return all;
}

NetSim::Counters NetSim::totals() const {
  Counters total;
  for (const LpState& st : lp_state_) {
    total.forwarded += st.counters.forwarded;
    total.delivered += st.counters.delivered;
    total.acks += st.counters.acks;
    total.dropped_queue += st.counters.dropped_queue;
    total.dropped_no_route += st.counters.dropped_no_route;
    total.dropped_link_down += st.counters.dropped_link_down;
    total.dropped_node_down += st.counters.dropped_node_down;
    total.dropped_loss += st.counters.dropped_loss;
    total.app_timers_dropped += st.counters.app_timers_dropped;
    total.retransmits += st.counters.retransmits;
    total.flows_started += st.counters.flows_started;
    total.flows_completed += st.counters.flows_completed;
    total.flows_failed += st.counters.flows_failed;
    total.udp_delivered += st.counters.udp_delivered;
  }
  return total;
}

namespace {

void save_sender(ckpt::Writer& w, const TcpSender& s) {
  w.i32(s.src);
  w.i32(s.dst);
  w.u32(s.size);
  w.u32(s.tag);
  w.u32(s.next_seq);
  w.u32(s.acked);
  w.f64(s.cwnd);
  w.f64(s.ssthresh);
  w.i32(s.dup_acks);
  w.u8(s.in_recovery ? 1 : 0);
  w.u32(s.recover);
  w.i64(s.rtt_sent_at);
  w.u32(s.rtt_seq);
  w.i64(s.srtt);
  w.i64(s.rto);
  w.u64(s.timer_epoch);
  w.i32(s.consecutive_timeouts);
  w.u8(s.failed ? 1 : 0);
  w.i64(s.started_at);
  w.u32(s.total_retransmits);
}

void load_sender(ckpt::Reader& r, TcpSender& s) {
  s.src = r.i32();
  s.dst = r.i32();
  s.size = r.u32();
  s.tag = r.u32();
  s.next_seq = r.u32();
  s.acked = r.u32();
  s.cwnd = r.f64();
  s.ssthresh = r.f64();
  s.dup_acks = r.i32();
  s.in_recovery = r.u8() != 0;
  s.recover = r.u32();
  s.rtt_sent_at = r.i64();
  s.rtt_seq = r.u32();
  s.srtt = r.i64();
  s.rto = r.i64();
  s.timer_epoch = r.u64();
  s.consecutive_timeouts = r.i32();
  s.failed = r.u8() != 0;
  s.started_at = r.i64();
  s.total_retransmits = r.u32();
}

void save_receiver(ckpt::Writer& w, const TcpReceiver& rcv) {
  w.i32(rcv.src);
  w.i32(rcv.dst);
  w.u32(rcv.expected);
  w.u32(rcv.fin_seq);
  w.u8(rcv.fin_seen ? 1 : 0);
  w.u8(rcv.completed ? 1 : 0);
  w.u64(rcv.ooo.size());
  for (const auto& [start, end] : rcv.ooo) {
    w.u32(start);
    w.u32(end);
  }
}

bool load_receiver(ckpt::Reader& r, TcpReceiver& rcv) {
  rcv.src = r.i32();
  rcv.dst = r.i32();
  rcv.expected = r.u32();
  rcv.fin_seq = r.u32();
  rcv.fin_seen = r.u8() != 0;
  rcv.completed = r.u8() != 0;
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ULL << 32)) return false;
  rcv.ooo.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t start = r.u32();
    const std::uint32_t end = r.u32();
    rcv.ooo.emplace(start, end);
  }
  return r.ok();
}

}  // namespace

void NetSim::save(ckpt::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(num_lps_));
  // The ownership table is state since migrate_router: a restored run must
  // see the same node→LP assignment the interrupted run had.
  ckpt::write_u64_vec(w, node_lp_);
  model_->save(w);
  ckpt::write_char_vec(w, node_up_);
  ckpt::write_u64_vec(w, profile_);
  for (const LpState& st : lp_state_) {
    w.u64(st.senders.size());
    for (const TcpSender& s : st.senders) save_sender(w, s);
    // Receivers live in an unordered_map; emit them sorted by flow id so
    // the checkpoint bytes are a deterministic function of the state.
    std::vector<FlowId> keys;
    keys.reserve(st.receivers.size());
    for (const auto& [f, rcv] : st.receivers) keys.push_back(f);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (const FlowId f : keys) {
      w.u64(f);
      save_receiver(w, st.receivers.at(f));
    }
    const Counters& c = st.counters;
    w.u64(c.forwarded);
    w.u64(c.delivered);
    w.u64(c.acks);
    w.u64(c.dropped_queue);
    w.u64(c.dropped_no_route);
    w.u64(c.dropped_link_down);
    w.u64(c.dropped_node_down);
    w.u64(c.dropped_loss);
    w.u64(c.app_timers_dropped);
    w.u64(c.retransmits);
    w.u64(c.flows_started);
    w.u64(c.flows_completed);
    w.u64(c.flows_failed);
    w.u64(c.udp_delivered);
    w.u64(st.records.size());
    for (const FlowRecord& rec : st.records) save_flow_record(w, rec);
  }
}

bool NetSim::load(ckpt::Reader& r) {
  if (r.u32() != static_cast<std::uint32_t>(num_lps_)) return false;
  const std::size_t n_lp_table = node_lp_.size();
  if (!ckpt::read_u64_vec(r, node_lp_) || node_lp_.size() != n_lp_table)
    return false;
  if (!model_->load(r)) return false;
  const std::size_t n_nodes = node_up_.size();
  const std::size_t n_profile = profile_.size();
  if (!ckpt::read_char_vec(r, node_up_) || node_up_.size() != n_nodes)
    return false;
  if (!ckpt::read_u64_vec(r, profile_) || profile_.size() != n_profile)
    return false;
  for (LpState& st : lp_state_) {
    const std::uint64_t n_senders = r.u64();
    if (!r.ok() || n_senders > (1ULL << 32)) return false;
    st.senders.resize(static_cast<std::size_t>(n_senders));
    for (TcpSender& s : st.senders) load_sender(r, s);
    const std::uint64_t n_receivers = r.u64();
    if (!r.ok() || n_receivers > (1ULL << 32)) return false;
    st.receivers.clear();
    for (std::uint64_t i = 0; i < n_receivers; ++i) {
      const FlowId f = r.u64();
      if (!load_receiver(r, st.receivers[f])) return false;
    }
    Counters& c = st.counters;
    c.forwarded = r.u64();
    c.delivered = r.u64();
    c.acks = r.u64();
    c.dropped_queue = r.u64();
    c.dropped_no_route = r.u64();
    c.dropped_link_down = r.u64();
    c.dropped_node_down = r.u64();
    c.dropped_loss = r.u64();
    c.app_timers_dropped = r.u64();
    c.retransmits = r.u64();
    c.flows_started = r.u64();
    c.flows_completed = r.u64();
    c.flows_failed = r.u64();
    c.udp_delivered = r.u64();
    const std::uint64_t n_records = r.u64();
    if (!r.ok() || n_records > (1ULL << 32)) return false;
    st.records.resize(static_cast<std::size_t>(n_records));
    for (FlowRecord& rec : st.records) load_flow_record(r, rec);
  }
  return r.ok();
}

void NetSim::publish_metrics(obs::Registry& registry) const {
  const Counters t = totals();
  registry.counter("net.forwarded").inc(t.forwarded);
  registry.counter("net.delivered").inc(t.delivered);
  registry.counter("net.acks").inc(t.acks);
  registry.counter("net.dropped_queue").inc(t.dropped_queue);
  registry.counter("net.dropped_no_route").inc(t.dropped_no_route);
  registry.counter("net.dropped_link_down").inc(t.dropped_link_down);
  registry.counter("net.dropped_node_down").inc(t.dropped_node_down);
  registry.counter("net.dropped_loss").inc(t.dropped_loss);
  registry.counter("net.app_timers_dropped").inc(t.app_timers_dropped);
  registry.counter("net.retransmits").inc(t.retransmits);
  registry.counter("net.flows_started").inc(t.flows_started);
  registry.counter("net.flows_completed").inc(t.flows_completed);
  registry.counter("net.flows_failed").inc(t.flows_failed);
  registry.counter("net.udp_delivered").inc(t.udp_delivered);
  model_->publish_metrics(registry);
}

}  // namespace massf
