// Declarative experiment campaigns: a base scenario plus sweep axes,
// expanded into a deterministic list of fully-resolved runs.
//
// A campaign file is DML (like the scenario format it builds on):
//
//   Campaign [
//     name nightly-tiny
//     scenario tiny.dml     # base scenario file, relative to this file —
//                           # or an embedded Experiment [ ... ] block
//     workers 2             # default worker parallelism (CLI overrides)
//     golden 1              # add PDES-ring calibration rows (golden.hpp)
//     sweep [
//       seed 1   seed 2     # each repeated atom is one point on its axis
//       sync barrier  sync channel
//       threads 0  threads 2
//       mapping HPROF
//       override [ tag small  routers 80  rebalance.enabled 1 ]
//     ]
//   ]
//
// Expansion is the cross product over the non-empty axes, in the fixed
// order override > mapping > sync > threads > seed (outer to inner), so
// the run list — ids, directories, roll-up rows — is identical no matter
// where or with how many workers the campaign executes. Each run's id is
// the joined "axis=value" labels ("base" when there are no axes).
//
// An `override` block is one axis point holding scalar scenario keys
// (dotted for sub-blocks: `rebalance.enabled`); values are merged into
// the base Experiment tree and re-validated by the strict scenario
// parser, so a typo'd key or bad value fails with the campaign file's
// line number. `tag` names the point in run ids (default o0, o1, ...).
//
// With `golden 1`, one calibration row per distinct (sync, threads)
// combination in the expansion runs the pinned PDES ring workload
// (tests/pdes_golden_test.cpp) instead of a scenario — putting the
// engine-determinism golden checksum in every campaign roll-up.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/scenario_config.hpp"

namespace massf {

/// One axis assignment of an expanded run, e.g. {"sync", "channel"}.
struct CampaignAxisValue {
  std::string axis;
  std::string label;
};

/// A fully-resolved unit of campaign work.
struct CampaignRun {
  std::string id;  ///< "seed=1,sync=barrier" / "base" / "golden[...]"
  std::vector<CampaignAxisValue> axis;
  ScenarioSpec spec;
  /// True for a PDES-ring calibration row: the runner executes the
  /// golden workload under spec.options.{sync, executor_threads} and
  /// records its checksum instead of running the scenario.
  bool golden = false;
};

struct CampaignSpec {
  std::string name;      ///< "" = unnamed
  std::string scenario;  ///< base scenario path as written ("" = embedded)
  std::int32_t workers = 1;
  bool golden = false;
  /// The expansion, in deterministic order (golden rows last).
  std::vector<CampaignRun> runs;
};

/// Parses + expands a campaign document. Strict like the scenario parser:
/// unknown keys and malformed values are "line N: what" errors (x_ keys
/// ignored). `include_dir` anchors the `scenario` file and, transitively,
/// its fault includes.
std::optional<CampaignSpec> parse_campaign(std::string_view text,
                                           std::string* error = nullptr,
                                           const std::string& include_dir = "");

/// Reads and parses a campaign file; relative includes resolve against
/// the file's directory.
std::optional<CampaignSpec> load_campaign_file(const std::string& path,
                                               std::string* error = nullptr);

}  // namespace massf
