#include "campaign/campaign.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <tuple>

#include "pdes/channel_sync.hpp"

namespace massf {
namespace {

std::string line_err(int line, const std::string& what) {
  return "line " + std::to_string(line) + ": " + what;
}

bool ignored_key(const std::string& key) { return key.rfind("x_", 0) == 0; }

bool parse_i64(const std::string& s, std::int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return !s.empty() && end == s.c_str() + s.size();
}

std::string resolve_include(const std::string& include_dir,
                            const std::string& path) {
  if (include_dir.empty() || path.empty() || path.front() == '/') return path;
  return include_dir + "/" + path;
}

std::string dirname_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// DmlNode is move-only (unique_ptr children); expansion stamps each run's
// overrides onto its own copy of the base tree.
DmlNode clone_dml(const DmlNode& node) {
  DmlNode out;
  out.attributes.reserve(node.attributes.size());
  for (const DmlAttribute& a : node.attributes) {
    DmlAttribute copy;
    copy.key = a.key;
    copy.atom = a.atom;
    copy.line = a.line;
    if (a.child) {
      copy.child = std::make_unique<DmlNode>(clone_dml(*a.child));
    }
    out.attributes.push_back(std::move(copy));
  }
  return out;
}

// Sets `dotted` (path segments separated by '.') to `value` in the
// Experiment tree: existing attributes under the leaf key are replaced
// (all of them — `mapping` repeats), missing sub-blocks are created. The
// campaign-file line rides along so the strict scenario parser reports
// bad values against the campaign file.
void merge_atom(DmlNode* node, const std::string& dotted,
                const std::string& value, int line) {
  const auto dot = dotted.find('.');
  if (dot == std::string::npos) {
    std::erase_if(node->attributes, [&](const DmlAttribute& a) {
      return a.key == dotted;
    });
    DmlAttribute a;
    a.key = dotted;
    a.atom = value;
    a.line = line;
    node->attributes.push_back(std::move(a));
    return;
  }
  const std::string head = dotted.substr(0, dot);
  const std::string rest = dotted.substr(dot + 1);
  for (DmlAttribute& a : node->attributes) {
    if (a.key == head && a.child) {
      merge_atom(a.child.get(), rest, value, line);
      return;
    }
  }
  merge_atom(&node->add_child(head), rest, value, line);
}

/// One sweep axis: a name plus its points; each point is a list of
/// (dotted key, value, line) assignments and a label for the run id.
struct AxisPoint {
  std::string label;
  std::vector<std::tuple<std::string, std::string, int>> assignments;
};
struct Axis {
  std::string name;
  std::vector<AxisPoint> points;
};

bool unknown_key(const DmlAttribute& a, const char* where,
                 std::string* error) {
  if (error) {
    *error = line_err(a.line, std::string("unknown key '") + a.key +
                                  "' in " + where +
                                  " (prefix with x_ to ignore)");
  }
  return false;
}

bool parse_sweep(const DmlNode& node, std::vector<Axis>* axes,
                 std::string* error) {
  Axis over{"override", {}}, mapping{"mapping", {}}, sync{"sync", {}},
      threads{"threads", {}}, shards{"shards", {}}, seed{"seed", {}};
  for (const DmlAttribute& a : node.attributes) {
    if (ignored_key(a.key)) continue;
    if (a.key == "override" && a.child) {
      AxisPoint p;
      for (const DmlAttribute& o : a.child->attributes) {
        if (ignored_key(o.key)) continue;
        if (o.child) {
          if (error) {
            *error = line_err(o.line, "override entries must be scalar "
                                      "(use dotted keys for sub-blocks)");
          }
          return false;
        }
        if (o.key == "tag") {
          p.label = o.atom;
        } else {
          p.assignments.emplace_back(o.key, o.atom, o.line);
        }
      }
      if (p.label.empty()) p.label = "o" + std::to_string(over.points.size());
      over.points.push_back(std::move(p));
    } else if (a.key == "seed" || a.key == "threads" || a.key == "shards") {
      std::int64_t v = 0;
      if (!parse_i64(a.atom, &v) || (a.key == "threads" && v < 0) ||
          (a.key == "shards" && v < 1)) {
        if (error) {
          *error = line_err(
              a.line, "'" + a.key + "' wants a " +
                          (a.key == "shards" ? "positive" : "non-negative") +
                          " integer, got '" + a.atom + "'");
        }
        return false;
      }
      Axis& ax = a.key == "seed" ? seed
                 : a.key == "threads" ? threads
                                      : shards;
      const char* dotted = a.key == "seed"      ? "seed"
                           : a.key == "threads" ? "executor_threads"
                                                : "executor_shards";
      ax.points.push_back(
          {a.atom, {{std::string(dotted), a.atom, a.line}}});
    } else if (a.key == "sync" || a.key == "mapping") {
      // Value validity is checked when the merged run re-parses, with
      // this atom's line.
      Axis& ax = a.key == "sync" ? sync : mapping;
      ax.points.push_back({a.atom, {{a.key, a.atom, a.line}}});
    } else {
      if (error) {
        *error = line_err(a.line, "unknown sweep axis '" + a.key +
                                      "' (seed|sync|threads|shards|mapping|"
                                      "override)");
      }
      return false;
    }
  }
  for (Axis* ax : {&over, &mapping, &sync, &threads, &shards, &seed}) {
    if (!ax->points.empty()) axes->push_back(std::move(*ax));
  }
  return true;
}

}  // namespace

std::optional<CampaignSpec> parse_campaign(std::string_view text,
                                           std::string* error,
                                           const std::string& include_dir) {
  DmlParseError perr;
  const auto root = parse_dml(text, &perr);
  if (!root) {
    if (error) *error = line_err(perr.line, perr.message);
    return std::nullopt;
  }
  const DmlNode* c = root->find("Campaign");
  if (c == nullptr) {
    if (error) *error = "missing top-level Campaign [ ] block";
    return std::nullopt;
  }

  CampaignSpec spec;
  std::optional<DmlNode> base;      // root holding one Experiment attribute
  std::string base_include_dir = include_dir;
  int base_line = 0;
  std::vector<Axis> axes;

  for (const DmlAttribute& a : c->attributes) {
    if (ignored_key(a.key)) continue;
    if (a.key == "Experiment" && a.child) {
      if (base) {
        if (error) {
          *error = line_err(a.line,
                            "both `scenario` and an embedded "
                            "Experiment [ ] block given");
        }
        return std::nullopt;
      }
      DmlNode wrapped;
      DmlAttribute exp;
      exp.key = "Experiment";
      exp.line = a.line;
      exp.child = std::make_unique<DmlNode>(clone_dml(*a.child));
      wrapped.attributes.push_back(std::move(exp));
      base = std::move(wrapped);
      base_line = a.line;
    } else if (a.child) {
      if (a.key == "sweep") {
        if (!parse_sweep(*a.child, &axes, error)) return std::nullopt;
      } else {
        unknown_key(a, "Campaign", error);
        return std::nullopt;
      }
    } else if (a.key == "name") {
      spec.name = a.atom;
    } else if (a.key == "scenario") {
      if (base) {
        if (error) {
          *error = line_err(a.line,
                            "both `scenario` and an embedded "
                            "Experiment [ ] block given");
        }
        return std::nullopt;
      }
      spec.scenario = a.atom;
      const std::string path = resolve_include(include_dir, a.atom);
      std::ifstream in(path);
      if (!in) {
        if (error) {
          *error = line_err(a.line, "cannot open scenario '" + a.atom + "'");
        }
        return std::nullopt;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      DmlParseError serr;
      auto sroot = parse_dml(buf.str(), &serr);
      if (!sroot) {
        if (error) {
          *error = line_err(a.line, "scenario '" + a.atom + "': " +
                                        line_err(serr.line, serr.message));
        }
        return std::nullopt;
      }
      base = std::move(*sroot);
      base_include_dir = dirname_of(path);
      base_line = a.line;
    } else if (a.key == "workers") {
      std::int64_t v = 0;
      if (!parse_i64(a.atom, &v) || v < 1) {
        if (error) {
          *error = line_err(a.line, "'workers' must be an integer >= 1");
        }
        return std::nullopt;
      }
      spec.workers = static_cast<std::int32_t>(v);
    } else if (a.key == "golden") {
      std::int64_t v = 0;
      if (!parse_i64(a.atom, &v)) {
        if (error) {
          *error = line_err(a.line, "'golden' wants an integer, got '" +
                                        a.atom + "'");
        }
        return std::nullopt;
      }
      spec.golden = v != 0;
    } else {
      unknown_key(a, "Campaign", error);
      return std::nullopt;
    }
  }

  if (!base) {
    if (error) {
      *error = "missing a base scenario (`scenario` file or an embedded "
               "Experiment [ ] block)";
    }
    return std::nullopt;
  }
  // Validate the base once on its own, so a broken base file is reported
  // directly rather than once per expanded run.
  {
    std::string berr;
    if (!scenario_spec_from_dml(*base, &berr, base_include_dir)) {
      if (error) {
        *error = spec.scenario.empty()
                     ? berr
                     : line_err(base_line, "scenario '" + spec.scenario +
                                               "': " + berr);
      }
      return std::nullopt;
    }
  }

  // Cross-product expansion: odometer over the non-empty axes, first axis
  // slowest, point order as written.
  std::vector<std::size_t> idx(axes.size(), 0);
  while (true) {
    DmlNode merged = clone_dml(*base);
    DmlNode* exp = nullptr;
    for (DmlAttribute& a : merged.attributes) {
      if (a.key == "Experiment" && a.child) exp = a.child.get();
    }
    CampaignRun run;
    for (std::size_t i = 0; i < axes.size(); ++i) {
      const AxisPoint& p = axes[i].points[idx[i]];
      for (const auto& [key, value, line] : p.assignments) {
        merge_atom(exp, key, value, line);
      }
      run.axis.push_back({axes[i].name, p.label});
      if (!run.id.empty()) run.id += ",";
      run.id += axes[i].name + "=" + p.label;
    }
    if (run.id.empty()) run.id = "base";
    std::string rerr;
    auto parsed = scenario_spec_from_dml(merged, &rerr, base_include_dir);
    if (!parsed) {
      if (error) *error = rerr;
      return std::nullopt;
    }
    run.spec = std::move(*parsed);
    spec.runs.push_back(std::move(run));

    // Advance the odometer (last axis fastest); done when it wraps.
    bool wrapped = true;
    for (std::size_t i = axes.size(); i-- > 0;) {
      if (++idx[i] < axes[i].points.size()) {
        wrapped = false;
        break;
      }
      idx[i] = 0;
    }
    if (wrapped) break;
  }

  if (spec.golden) {
    // One calibration row per distinct (sync, threads, shards) the
    // expansion exercises, in first-appearance order. The shards suffix
    // only appears for sharded rows, keeping single-process row ids (the
    // values artifacts and gates already pin) stable.
    std::vector<std::tuple<SyncMode, std::int32_t, std::int32_t>> seen;
    for (const CampaignRun& r : spec.runs) {
      const auto key = std::make_tuple(r.spec.options.sync,
                                       r.spec.options.executor_threads,
                                       r.spec.options.executor_shards);
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
      seen.push_back(key);
      CampaignRun g;
      g.golden = true;
      g.spec.options.sync = std::get<0>(key);
      g.spec.options.executor_threads = std::get<1>(key);
      g.spec.options.executor_shards = std::get<2>(key);
      g.id = std::string("golden[sync=") + sync_mode_name(std::get<0>(key)) +
             ",threads=" + std::to_string(std::get<1>(key));
      if (std::get<2>(key) > 1) {
        g.id += ",shards=" + std::to_string(std::get<2>(key));
      }
      g.id += "]";
      spec.runs.push_back(std::move(g));
    }
  }
  return spec;
}

std::optional<CampaignSpec> load_campaign_file(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_campaign(buf.str(), error, dirname_of(path));
}

}  // namespace massf
