#include "campaign/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "campaign/golden.hpp"
#include "fault/injector.hpp"
#include "guard/guarded_run.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"
#include "util/error.hpp"

namespace massf {
namespace {

constexpr std::string_view kTimingExcludes[] = {
    "ckpt.write_ms",
    "guard.",
    "pdes.sched.arena_slots",
    "pdes.sched.heap_peak",
    "pdes.shard.control_wait_s",
    "pdes.shard.control_waits",
    "pdes.shard.ring_stalls",
    "pdes.shard.ring_wait_s",
    "pdes.sync.channel_wait_s",
    "pdes.sync.epoch_wait_s",
    "pdes.sync.null_events",
    "pdes.sync.quiescence_epochs",
    "pdes.sync.stalls",
};

double elapsed_s(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

std::string sanitize_error(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\t' || c == '\r') c = ' ';
  }
  return s;
}

// The massf_cli run loop for one mapping, minus the printing: supervised
// (GuardedRun + checkpoint resume) when the guard is armed with the
// recover policy, plain otherwise.
void execute_scenario(const CampaignRun& run, obs::Registry* registry,
                      RunRecord* rec) {
  const ScenarioSpec& s = run.spec;
  ScenarioOptions opts = s.options;
  opts.registry = registry;
  Scenario scenario(opts);

  std::unique_ptr<FaultInjector> injector;
  if (!s.faults.empty()) {
    injector = std::make_unique<FaultInjector>(scenario.network(),
                                               scenario.forwarding_mut());
    const FaultSchedule* sched = &s.faults;
    FaultInjector* inj = injector.get();
    scenario.set_pre_run([inj, sched](Engine& engine, NetSim& sim) {
      inj->arm(engine, sim, *sched);
    });
  }

  const MappingKind kind = s.mappings.front();
  ExperimentResult r;
  if (opts.guard.enabled && opts.guard.on_stall == guard::OnStall::kCancel) {
    bool have_result = false;
    guard::GuardedRun::Options gro;
    gro.max_retries = s.guard_retries;
    guard::GuardedRun runner(gro, registry);
    const auto report = runner.run(
        opts.sync, opts.executor_threads,
        [&](const guard::AttemptPlan& plan) -> guard::AttemptOutcome {
          scenario.set_sync(plan.sync);
          scenario.set_executor_threads(plan.threads);
          CkptOptions attempt_ckpt = opts.ckpt;
          if (plan.restore && !attempt_ckpt.path.empty() &&
              file_exists(attempt_ckpt.path)) {
            attempt_ckpt.restore_path = attempt_ckpt.path;
          }
          scenario.set_ckpt(attempt_ckpt);
          try {
            r = scenario.run(kind);
          } catch (const EngineError& e) {
            if (e.category() == ErrorCategory::kInternal) throw;
            return {guard::AttemptStatus::kFailed, e.what()};
          }
          if (scenario.last_run_cancelled()) {
            return {guard::AttemptStatus::kStalled,
                    "watchdog cancelled the run"};
          }
          have_result = true;
          return {guard::AttemptStatus::kCompleted, ""};
        });
    if (!have_result) {
      rec->error = "guarded run failed permanently: " + report.last_error;
      return;
    }
  } else {
    r = scenario.run(kind);
  }

  rec->ok = true;
  rec->mapping = mapping_kind_name(kind);
  rec->events = r.metrics.total_events;
  rec->windows = r.metrics.num_windows;
  rec->modeled_time_s = r.metrics.simulation_time_s;
  rec->load_imbalance = r.metrics.load_imbalance;
  rec->parallel_efficiency = r.metrics.parallel_efficiency;
  rec->mll_ms = to_milliseconds(r.mapping.achieved_mll);
  rec->faults_injected =
      injector != nullptr ? injector->faults_injected() : 0;
}

std::string kv_line(const std::string& key, const std::string& value) {
  return key + "\t" + value + "\n";
}

}  // namespace

std::span<const std::string_view> timing_metric_excludes() {
  return kTimingExcludes;
}

RunRecord execute_run(const CampaignRun& run, const std::string& run_dir) {
  const auto start = std::chrono::steady_clock::now();
  RunRecord rec;
  rec.id = run.id;
  rec.axis = run.axis;
  rec.golden = run.golden;

  obs::Registry registry;
  try {
    if (run.golden) {
      rec.checksum = golden_ring_checksum(run.spec.options.sync,
                                          run.spec.options.executor_threads,
                                          &rec.events, &rec.windows,
                                          run.spec.options.executor_shards);
      rec.has_checksum = true;
      rec.ok = true;
      registry.counter("pdes.events").inc(rec.events);
      registry.counter("pdes.windows").inc(rec.windows);
      registry.counter("golden.checksum").inc(rec.checksum);
    } else {
      execute_scenario(run, &registry, &rec);
    }
  } catch (const std::exception& e) {
    rec.ok = false;
    rec.error = e.what();
  }
  rec.wall_s = elapsed_s(start);

  if (!run_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(run_dir, ec);
    obs::write_file(run_dir + "/metrics.json", obs::to_json(registry));
    obs::write_file(run_dir + "/metrics.canonical.json",
                    obs::to_json_excluding(registry,
                                           timing_metric_excludes()));
    obs::write_file(run_dir + "/result.kv", run_record_to_kv(rec));
  }
  return rec;
}

std::string run_dir_name(std::size_t index, const CampaignRun& run) {
  char prefix[8];
  std::snprintf(prefix, sizeof prefix, "%03zu-", index);
  std::string name = prefix;
  for (const char c : run.id) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    name += safe ? c : '_';
  }
  return name;
}

std::string run_record_to_kv(const RunRecord& rec) {
  std::string out;
  out += kv_line("id", rec.id);
  for (const CampaignAxisValue& a : rec.axis) {
    out += kv_line("axis." + a.axis, a.label);
  }
  out += kv_line("golden", rec.golden ? "1" : "0");
  out += kv_line("ok", rec.ok ? "1" : "0");
  if (!rec.error.empty()) out += kv_line("error", sanitize_error(rec.error));
  if (!rec.mapping.empty()) out += kv_line("mapping", rec.mapping);
  out += kv_line("events", std::to_string(rec.events));
  out += kv_line("windows", std::to_string(rec.windows));
  out += kv_line("modeled_time_s", obs::format_double(rec.modeled_time_s));
  out += kv_line("load_imbalance", obs::format_double(rec.load_imbalance));
  out += kv_line("parallel_efficiency",
                 obs::format_double(rec.parallel_efficiency));
  out += kv_line("mll_ms", obs::format_double(rec.mll_ms));
  out += kv_line("faults_injected", std::to_string(rec.faults_injected));
  if (rec.has_checksum) {
    out += kv_line("checksum", std::to_string(rec.checksum));
  }
  out += kv_line("wall_s", obs::format_double(rec.wall_s));
  return out;
}

bool run_record_from_kv(const std::string& text, RunRecord* rec,
                        std::string* error) {
  std::istringstream in(text);
  std::string line;
  bool saw_ok = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto tab = line.find('\t');
    if (tab == std::string::npos) {
      if (error) *error = "malformed result.kv line: " + line;
      return false;
    }
    const std::string key = line.substr(0, tab);
    const std::string value = line.substr(tab + 1);
    if (key == "id") {
      rec->id = value;
    } else if (key.rfind("axis.", 0) == 0) {
      rec->axis.push_back({key.substr(5), value});
    } else if (key == "golden") {
      rec->golden = value == "1";
    } else if (key == "ok") {
      rec->ok = value == "1";
      saw_ok = true;
    } else if (key == "error") {
      rec->error = value;
    } else if (key == "mapping") {
      rec->mapping = value;
    } else if (key == "events") {
      rec->events = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "windows") {
      rec->windows = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "modeled_time_s") {
      rec->modeled_time_s = std::strtod(value.c_str(), nullptr);
    } else if (key == "load_imbalance") {
      rec->load_imbalance = std::strtod(value.c_str(), nullptr);
    } else if (key == "parallel_efficiency") {
      rec->parallel_efficiency = std::strtod(value.c_str(), nullptr);
    } else if (key == "mll_ms") {
      rec->mll_ms = std::strtod(value.c_str(), nullptr);
    } else if (key == "faults_injected") {
      rec->faults_injected = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "checksum") {
      rec->checksum = std::strtoull(value.c_str(), nullptr, 10);
      rec->has_checksum = true;
    } else if (key == "wall_s") {
      rec->wall_s = std::strtod(value.c_str(), nullptr);
    }
    // Unknown keys are skipped: a newer worker may report more columns.
  }
  if (!saw_ok) {
    if (error) *error = "result.kv has no `ok` line";
    return false;
  }
  return true;
}

CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const CampaignExecOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  CampaignOutcome outcome;
  outcome.runs.resize(spec.runs.size());
  const std::int32_t workers = std::max<std::int32_t>(
      1, std::min<std::int32_t>(options.workers,
                                static_cast<std::int32_t>(spec.runs.size())));
  outcome.workers = workers;

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= spec.runs.size()) return;
      const CampaignRun& run = spec.runs[i];
      const std::string run_dir =
          options.out_dir.empty()
              ? std::string()
              : options.out_dir + "/runs/" + run_dir_name(i, run);
      if (options.self_exe.empty()) {
        outcome.runs[i] = execute_run(run, run_dir);
        continue;
      }
      // Subprocess mode: the worker re-invokes the campaign binary for
      // one run index; the child writes the run dir (including
      // result.kv) and this side only collects.
      std::error_code ec;
      std::filesystem::create_directories(run_dir, ec);
      const std::string cmd = "'" + options.self_exe + "' --campaign='" +
                              options.campaign_path + "' --worker-run=" +
                              std::to_string(i) + " --out='" +
                              options.out_dir + "' > '" + run_dir +
                              "/log.txt' 2>&1";
      const int rc = std::system(cmd.c_str());
      RunRecord rec;
      std::ifstream in(run_dir + "/result.kv");
      std::ostringstream buf;
      std::string err;
      if (in) buf << in.rdbuf();
      if (!in || !run_record_from_kv(buf.str(), &rec, &err)) {
        rec = RunRecord{};
        rec.id = run.id;
        rec.axis = run.axis;
        rec.golden = run.golden;
        rec.ok = false;
        rec.error = "worker exited " + std::to_string(rc) +
                    (err.empty() ? " without result.kv" : ": " + err);
      }
      outcome.runs[i] = rec;
    }
  };

  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (std::int32_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  outcome.wall_s = elapsed_s(start);
  return outcome;
}

}  // namespace massf
