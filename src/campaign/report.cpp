#include "campaign/report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/export.hpp"

namespace massf {
namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string quoted(const std::string& s) {
  return "\"" + escape_json(s) + "\"";
}

struct Aggregate {
  std::uint64_t runs = 0;
  std::uint64_t events = 0;
  double modeled_time_s = 0;
  double load_imbalance = 0;
  double parallel_efficiency = 0;
};

}  // namespace

std::string campaign_to_json(const CampaignSpec& spec,
                             const CampaignOutcome& outcome) {
  std::string out = "{\n  \"schema\": \"massf.campaign.v1\",\n";
  out += "  \"name\": " + quoted(spec.name) + ",\n";
  out += "  \"scenario\": " + quoted(spec.scenario) + ",\n";

  out += "  \"runs\": [";
  for (std::size_t i = 0; i < outcome.runs.size(); ++i) {
    const RunRecord& r = outcome.runs[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"id\": " + quoted(r.id) + ", \"axis\": {";
    for (std::size_t a = 0; a < r.axis.size(); ++a) {
      if (a) out += ", ";
      out += quoted(r.axis[a].axis) + ": " + quoted(r.axis[a].label);
    }
    out += "}, \"ok\": ";
    out += r.ok ? "true" : "false";
    if (!r.mapping.empty()) out += ", \"mapping\": " + quoted(r.mapping);
    out += ", \"events\": " + std::to_string(r.events);
    out += ", \"windows\": " + std::to_string(r.windows);
    out += ", \"modeled_time_s\": " + obs::format_double(r.modeled_time_s);
    out += ", \"load_imbalance\": " + obs::format_double(r.load_imbalance);
    out += ", \"parallel_efficiency\": " +
           obs::format_double(r.parallel_efficiency);
    out += ", \"mll_ms\": " + obs::format_double(r.mll_ms);
    out += ", \"faults_injected\": " + std::to_string(r.faults_injected);
    if (r.has_checksum) {
      // Checksums exceed 2^53; a string survives every JSON reader.
      out += ", \"checksum\": " + quoted(std::to_string(r.checksum));
    }
    if (!r.ok) out += ", \"error\": " + quoted(r.error);
    out += "}";
  }
  out += outcome.runs.empty() ? "],\n" : "\n  ],\n";

  out += "  \"failed\": [";
  bool first = true;
  for (const RunRecord& r : outcome.runs) {
    if (r.ok) continue;
    if (!first) out += ", ";
    first = false;
    out += quoted(r.id);
  }
  out += "],\n";

  // Per-axis-value aggregates over the successful scenario rows; the
  // std::map keys the section in sorted order for byte stability.
  std::map<std::string, Aggregate> agg;
  for (const RunRecord& r : outcome.runs) {
    if (!r.ok || r.golden) continue;
    for (const CampaignAxisValue& a : r.axis) {
      Aggregate& g = agg[a.axis + "=" + a.label];
      g.runs += 1;
      g.events += r.events;
      g.modeled_time_s += r.modeled_time_s;
      g.load_imbalance += r.load_imbalance;
      g.parallel_efficiency += r.parallel_efficiency;
    }
  }
  out += "  \"aggregates\": {";
  first = true;
  for (const auto& [key, g] : agg) {
    out += first ? "\n" : ",\n";
    first = false;
    const double n = static_cast<double>(g.runs);
    out += "    " + quoted(key) + ": {\"runs\": " + std::to_string(g.runs) +
           ", \"events\": " + std::to_string(g.events) +
           ", \"modeled_time_s_mean\": " +
           obs::format_double(g.modeled_time_s / n) +
           ", \"load_imbalance_mean\": " +
           obs::format_double(g.load_imbalance / n) +
           ", \"parallel_efficiency_mean\": " +
           obs::format_double(g.parallel_efficiency / n) + "}";
  }
  out += agg.empty() ? "},\n" : "\n  },\n";

  out += "  \"golden\": {";
  first = true;
  for (const RunRecord& r : outcome.runs) {
    if (!r.has_checksum) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + quoted(r.id) + ": " + quoted(std::to_string(r.checksum));
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"timing\": {\"wall_s\": " + obs::format_double(outcome.wall_s) +
         ", \"workers\": " + std::to_string(outcome.workers) +
         ", \"run_wall_s\": [";
  for (std::size_t i = 0; i < outcome.runs.size(); ++i) {
    if (i) out += ", ";
    out += obs::format_double(outcome.runs[i].wall_s);
  }
  out += "]}\n}\n";
  return out;
}

std::string campaign_table(const CampaignSpec& spec,
                           const CampaignOutcome& outcome) {
  std::size_t id_width = 2;
  for (const RunRecord& r : outcome.runs) {
    id_width = std::max(id_width, r.id.size());
  }
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-*s %-7s %10s %9s %7s %6s %7s  %s\n",
                static_cast<int>(id_width), "id", "mapping", "events",
                "T(s)", "imbal", "PE", "wall(s)", "status");
  std::string out = spec.name.empty() ? "" : "campaign: " + spec.name + "\n";
  out += buf;
  for (const RunRecord& r : outcome.runs) {
    std::string status = r.ok ? "ok" : "FAILED " + r.error;
    if (r.has_checksum) {
      status += " checksum=" + std::to_string(r.checksum);
    }
    std::snprintf(buf, sizeof buf,
                  "%-*s %-7s %10llu %9.3f %7.3f %6.3f %7.2f  %s\n",
                  static_cast<int>(id_width), r.id.c_str(),
                  r.mapping.empty() ? "-" : r.mapping.c_str(),
                  static_cast<unsigned long long>(r.events),
                  r.modeled_time_s, r.load_imbalance, r.parallel_efficiency,
                  r.wall_s, status.c_str());
    out += buf;
  }
  return out;
}

}  // namespace massf
