// The pinned PDES calibration workload for campaign roll-ups.
//
// Mirrors the bench_pdes ring (lps=32, chain=64, hops=2000 — the workload
// behind BENCH_pdes.json and tests/pdes_golden_test.cpp): a ring of LPs
// forwarding hop events at exactly the lookahead, each hop spawning a
// same-window self-chain. The event-trace checksum folds every handled
// event's timestamp per LP and then across LPs, so any change to
// execution order, event count, or LP assignment moves it.
//
// A campaign with `golden 1` runs this once per distinct (sync, threads)
// combination and records the checksum in the roll-up; the nightly gate
// (scripts/check_bench.py --campaign) pins the expected value, putting
// the engine-determinism contract into every campaign artifact.
#pragma once

#include <cstdint>

#include "pdes/channel_sync.hpp"

namespace massf {

/// The expected checksum/events/windows of golden_ring_checksum, for
/// callers that gate on them (the authoritative pin stays in
/// tests/pdes_golden_test.cpp).
inline constexpr std::uint64_t kGoldenRingChecksum = 807988445054369792ULL;
inline constexpr std::uint64_t kGoldenRingEvents = 4162080ULL;
inline constexpr std::uint64_t kGoldenRingWindows = 2001ULL;

/// Runs the calibration workload under the given executor configuration
/// (threads <= 0 = sequential) and returns the trace checksum; `events` /
/// `windows` (optional) receive the run totals. shards > 1 runs the
/// multi-process executor (src/shard) instead — same checksum contract:
/// sequential, threaded, and sharded runs all produce the bit-identical
/// trace, so every configuration returns kGoldenRingChecksum.
std::uint64_t golden_ring_checksum(SyncMode sync, std::int32_t threads,
                                   std::uint64_t* events = nullptr,
                                   std::uint64_t* windows = nullptr,
                                   std::int32_t shards = 1);

}  // namespace massf
