// Campaign roll-up: the machine-readable artifact and the human table.
//
// JSON layout (schema id "massf.campaign.v1"):
//
//   {
//     "schema": "massf.campaign.v1",
//     "name": "<campaign name>",
//     "scenario": "<base scenario path or \"\">",
//     "runs": [                       // expansion order
//       { "id": "...", "axis": {"seed": "1", ...}, "ok": true,
//         "mapping": "HPROF", "events": <uint>, "windows": <uint>,
//         "modeled_time_s": <d>, "load_imbalance": <d>,
//         "parallel_efficiency": <d>, "mll_ms": <d>,
//         "faults_injected": <uint>,
//         "checksum": "<uint as string>",   // golden rows only
//         "error": "..." }                  // failed rows only
//     ],
//     "failed": ["<id>", ...],
//     "aggregates": {                 // key-ordered; scenario rows only
//       "<axis>=<value>": { "runs": <uint>, "events": <uint>,
//         "modeled_time_s_mean": <d>, "load_imbalance_mean": <d>,
//         "parallel_efficiency_mean": <d> }
//     },
//     "golden": { "<id>": "<checksum>" },   // the golden-checksum column
//     "timing": { "wall_s": <d>, "workers": <int>,
//                 "run_wall_s": [<d>, ...] }
//   }
//
// Everything outside "timing" is a pure function of the campaign spec and
// the simulator's deterministic results; doubles use the shortest
// round-trip rendering (obs::format_double). Two executions of the same
// campaign — any worker count, threads or subprocesses — therefore
// produce byte-identical roll-ups once "timing" is dropped, which is the
// comparison scripts/check_bench.py --campaign --compare performs.
#pragma once

#include <string>

#include "campaign/runner.hpp"

namespace massf {

std::string campaign_to_json(const CampaignSpec& spec,
                             const CampaignOutcome& outcome);

/// Fixed-width table of the run list, one row per run, for terminals.
std::string campaign_table(const CampaignSpec& spec,
                           const CampaignOutcome& outcome);

}  // namespace massf
