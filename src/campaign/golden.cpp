#include "campaign/golden.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "pdes/engine.hpp"
#include "shard/supervisor.hpp"

namespace massf {
namespace {

constexpr std::int32_t kEvHop = 1;
constexpr std::int32_t kEvLocal = 2;

class RingLp final : public LogicalProcess {
 public:
  RingLp(LpId next, std::int64_t chain) : next_(next), chain_(chain) {}

  void handle(Engine& engine, const Event& ev) override {
    checksum =
        checksum * 1099511628211ULL + static_cast<std::uint64_t>(ev.time);
    if (ev.type == kEvHop) {
      if (ev.a > 0) {
        engine.schedule(next_, ev.time + engine.options().lookahead, kEvHop,
                        ev.a - 1);
      }
      if (chain_ > 0) {
        engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                        kEvLocal, static_cast<std::uint64_t>(chain_ - 1));
      }
    } else if (ev.a > 0) {
      engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                      kEvLocal, ev.a - 1);
    }
  }

  // The fold is LP state: a checkpoint-restored run (the sharded rows'
  // recovery rung) must carry the already-folded prefix.
  void save(ckpt::Writer& w) const override { w.u64(checksum); }
  bool load(ckpt::Reader& r) override {
    checksum = r.u64();
    return r.ok();
  }

  std::uint64_t checksum = 0;

 private:
  LpId next_;
  std::int64_t chain_;
};

shard::ShardWorkload build_ring(SyncMode sync) {
  constexpr std::int64_t kLps = 32;
  constexpr std::int64_t kChain = 64;
  constexpr std::uint64_t kHops = 2000;

  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = seconds(3600);
  o.sync = sync;
  auto engine = std::make_unique<Engine>(o);
  auto lps = std::make_shared<std::vector<RingLp*>>();
  for (std::int64_t i = 0; i < kLps; ++i) {
    auto lp =
        std::make_unique<RingLp>(static_cast<LpId>((i + 1) % kLps), kChain);
    lps->push_back(lp.get());
    engine->add_lp(std::move(lp));
  }
  for (std::int64_t i = 0; i < kLps; ++i) {
    engine->schedule(static_cast<LpId>(i), 0, kEvHop, kHops);
  }
  shard::ShardWorkload w;
  w.engine = std::move(engine);
  w.lp_checksum = [lps](LpId i) {
    return (*lps)[static_cast<std::size_t>(i)]->checksum;
  };
  return w;
}

}  // namespace

std::uint64_t golden_ring_checksum(SyncMode sync, std::int32_t threads,
                                   std::uint64_t* events,
                                   std::uint64_t* windows,
                                   std::int32_t shards) {
  if (shards > 1) {
    shard::ShardOptions so;
    so.shards = shards;
    const shard::ShardResult result =
        shard::run_sharded(so, [sync] { return build_ring(sync); });
    if (events != nullptr) *events = result.stats.total_events;
    if (windows != nullptr) *windows = result.stats.num_windows;
    return result.checksum;
  }

  shard::ShardWorkload w = build_ring(sync);
  const RunStats stats =
      threads > 0 ? w.engine->run_threaded(threads) : w.engine->run();
  if (events != nullptr) *events = stats.total_events;
  if (windows != nullptr) *windows = stats.num_windows;

  std::uint64_t checksum = 0;
  for (LpId i = 0; i < w.engine->num_lps(); ++i) {
    checksum = checksum * 31 + w.lp_checksum(i);
  }
  return checksum;
}

}  // namespace massf
