#include "campaign/golden.hpp"

#include <memory>
#include <vector>

#include "pdes/engine.hpp"

namespace massf {
namespace {

constexpr std::int32_t kEvHop = 1;
constexpr std::int32_t kEvLocal = 2;

class RingLp final : public LogicalProcess {
 public:
  RingLp(LpId next, std::int64_t chain) : next_(next), chain_(chain) {}

  void handle(Engine& engine, const Event& ev) override {
    checksum =
        checksum * 1099511628211ULL + static_cast<std::uint64_t>(ev.time);
    if (ev.type == kEvHop) {
      if (ev.a > 0) {
        engine.schedule(next_, ev.time + engine.options().lookahead, kEvHop,
                        ev.a - 1);
      }
      if (chain_ > 0) {
        engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                        kEvLocal, static_cast<std::uint64_t>(chain_ - 1));
      }
    } else if (ev.a > 0) {
      engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                      kEvLocal, ev.a - 1);
    }
  }

  std::uint64_t checksum = 0;

 private:
  LpId next_;
  std::int64_t chain_;
};

}  // namespace

std::uint64_t golden_ring_checksum(SyncMode sync, std::int32_t threads,
                                   std::uint64_t* events,
                                   std::uint64_t* windows) {
  constexpr std::int64_t kLps = 32;
  constexpr std::int64_t kChain = 64;
  constexpr std::uint64_t kHops = 2000;

  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = seconds(3600);
  o.sync = sync;
  Engine engine(o);
  std::vector<RingLp*> lps;
  for (std::int64_t i = 0; i < kLps; ++i) {
    auto lp =
        std::make_unique<RingLp>(static_cast<LpId>((i + 1) % kLps), kChain);
    lps.push_back(lp.get());
    engine.add_lp(std::move(lp));
  }
  for (std::int64_t i = 0; i < kLps; ++i) {
    engine.schedule(static_cast<LpId>(i), 0, kEvHop, kHops);
  }
  const RunStats stats =
      threads > 0 ? engine.run_threaded(threads) : engine.run();
  if (events != nullptr) *events = stats.total_events;
  if (windows != nullptr) *windows = stats.num_windows;

  std::uint64_t checksum = 0;
  for (const RingLp* lp : lps) checksum = checksum * 31 + lp->checksum;
  return checksum;
}

}  // namespace massf
