// Campaign execution: one resolved run at a time, or the whole expansion
// across parallel workers.
//
// Every run executes hermetically — its own Scenario (or golden ring),
// its own obs::Registry — so the result is a pure function of the run's
// spec. run_campaign exploits that: whether runs execute in-process on
// worker threads, or in worker subprocesses (massf_campaign re-invoking
// itself with --worker-run=K), with 1 worker or N, the per-run records
// and artifacts are bit-identical apart from the wall-clock fields the
// canonical views exclude. The campaign determinism test holds the
// runner to exactly that.
//
// Per-run artifacts (under <out>/runs/<NNN>-<id>/):
//   metrics.json            full massf.metrics.v1 export
//   metrics.canonical.json  the same minus timing_metric_excludes()
//   result.kv               the RunRecord, one "key<TAB>value" per line —
//                           the wire format worker subprocesses report
//                           through (no JSON parser in the tree)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"

namespace massf {

/// The outcome of one campaign run: the deterministic result columns the
/// roll-up reports, plus `wall_s` (timing; excluded from canonical
/// comparisons) and failure diagnostics.
struct RunRecord {
  std::string id;
  std::vector<CampaignAxisValue> axis;
  bool golden = false;
  bool ok = false;
  std::string error;  ///< failure diagnostic ("" when ok)

  // Deterministic results (scenario rows).
  std::string mapping;  ///< mapping kind name ("" for golden rows)
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  double modeled_time_s = 0;
  double load_imbalance = 0;
  double parallel_efficiency = 0;
  double mll_ms = 0;
  std::uint64_t faults_injected = 0;

  // Golden rows only.
  bool has_checksum = false;
  std::uint64_t checksum = 0;

  // Timing — never part of canonical comparisons.
  double wall_s = 0;
};

/// Metric names excluded from the canonical per-run JSON: wall-clock
/// timings and watchdog accounting (entries ending in '.' exclude by
/// prefix — see obs::to_json_excluding). Everything else the simulator
/// publishes is deterministic for a fixed run spec.
std::span<const std::string_view> timing_metric_excludes();

/// Executes one run in-process. When `run_dir` is non-empty it is
/// created and the per-run artifacts are written there.
RunRecord execute_run(const CampaignRun& run, const std::string& run_dir);

/// "NNN-<id with non-[A-Za-z0-9._-] mapped to _>": stable, shell-safe
/// per-run directory names, identical in parent and worker.
std::string run_dir_name(std::size_t index, const CampaignRun& run);

/// result.kv wire format round trip.
std::string run_record_to_kv(const RunRecord& record);
bool run_record_from_kv(const std::string& text, RunRecord* record,
                        std::string* error);

struct CampaignExecOptions {
  std::string out_dir;  ///< "" = execute without writing artifacts
  std::int32_t workers = 1;
  /// Non-empty = subprocess mode: the binary to re-invoke per run (the
  /// campaign CLI passes /proc/self/exe). Requires out_dir and
  /// campaign_path, since workers re-load the campaign file themselves.
  std::string self_exe;
  std::string campaign_path;
};

struct CampaignOutcome {
  std::vector<RunRecord> runs;  ///< expansion order (== spec.runs)
  std::int32_t workers = 1;
  double wall_s = 0;  ///< timing
};

/// Executes the whole expansion across `workers` parallel workers.
CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const CampaignExecOptions& options);

}  // namespace massf
