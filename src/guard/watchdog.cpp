#include "guard/watchdog.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "pdes/engine.hpp"

namespace massf::guard {

namespace {
using Clock = std::chrono::steady_clock;

double effective_poll_s(const GuardOptions& o) {
  if (o.poll_interval_s > 0) return o.poll_interval_s;
  const double p = o.stall_deadline_s / 8.0;
  return p < 0.001 ? 0.001 : (p > 0.25 ? 0.25 : p);
}
}  // namespace

Watchdog::Watchdog(Engine& engine, GuardOptions options,
                   obs::Registry* registry)
    : engine_(engine), opts_(std::move(options)), registry_(registry) {}

Watchdog::~Watchdog() { disarm(); }

void Watchdog::arm() {
  if (!opts_.enabled || thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = false;
    fired_ = false;
    diagnostic_.clear();
  }
  thread_ = std::thread([this] { monitor(); });
}

void Watchdog::disarm() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Watchdog::fired() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fired_;
}

std::string Watchdog::last_diagnostic() const {
  std::lock_guard<std::mutex> lk(mu_);
  return diagnostic_;
}

void Watchdog::monitor() {
  const auto poll = std::chrono::duration<double>(effective_poll_s(opts_));
  std::uint64_t last_progress = engine_.guard_telemetry().progress();
  Clock::time_point last_change = Clock::now();

  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait_for(lk, poll, [this] { return stop_; });
    if (stop_) return;
    const std::uint64_t p = engine_.guard_telemetry().progress();
    const Clock::time_point now = Clock::now();
    if (p != last_progress) {
      last_progress = p;
      last_change = now;
      continue;
    }
    const double stalled =
        std::chrono::duration<double>(now - last_change).count();
    if (stalled < opts_.stall_deadline_s) continue;
    lk.unlock();
    fire(stalled);
    return;  // one firing per arm(); the policy decides what happens next
  }
}

void Watchdog::fire(double stalled_for_s) {
  const std::string json =
      render_diagnostic(engine_, stalled_for_s, opts_.stall_deadline_s);

  std::fprintf(stderr,
               "massf guard: no progress for %.3f s (deadline %.3f s) — "
               "protocol stall; policy=%s%s%s\n%s\n",
               stalled_for_s, opts_.stall_deadline_s,
               on_stall_name(opts_.on_stall),
               opts_.dump_path.empty() ? "" : "; dump=",
               opts_.dump_path.c_str(), json.c_str());
  std::fflush(stderr);

  bool dumped = false;
  if (!opts_.dump_path.empty()) {
    dumped = obs::write_file(opts_.dump_path, json + "\n");
    if (!dumped) {
      std::fprintf(stderr, "massf guard: failed to write dump to %s\n",
                   opts_.dump_path.c_str());
    }
  }
  if (registry_ != nullptr) {
    registry_->counter("guard.stalls_detected").inc();
    if (dumped) registry_->counter("guard.dump_writes").inc();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    fired_ = true;
    diagnostic_ = json;
  }

  if (opts_.on_stall == OnStall::kCancel && engine_.cancel_run()) {
    return;  // the run unwinds; GuardedRun (or the caller) recovers
  }
  // kAbort, or the active executor cannot be cancelled: die loudly with
  // the diagnostic already on stderr rather than hang the job.
  std::fprintf(stderr, "massf guard: aborting stalled run\n");
  std::fflush(stderr);
  std::abort();
}

std::string Watchdog::render_diagnostic(const Engine& engine,
                                        double stalled_for_s,
                                        double deadline_s) {
  const GuardTelemetry& t = engine.guard_telemetry();
  const ChannelGraph& graph = engine.channels();
  const EngineOptions& o = engine.options();
  const std::int32_t n = engine.num_lps();

  std::string j = "{\n  \"schema\": \"massf.guard.v1\",\n";
  j += "  \"reason\": \"no-progress\",\n";
  j += "  \"stalled_for_s\": " + obs::format_double(stalled_for_s) + ",\n";
  j += "  \"deadline_s\": " + obs::format_double(deadline_s) + ",\n";
  j += "  \"sync\": {\"mode\": \"";
  j += sync_mode_name(o.sync);
  j += "\", \"channels\": " + std::to_string(graph.size());
  j += ", \"stalls\": " +
       std::to_string(t.sync_stalls.load(std::memory_order_relaxed));
  j += ", \"quiescence_epochs\": " +
       std::to_string(t.epochs.load(std::memory_order_relaxed)) + "},\n";
  j += "  \"windows\": " +
       std::to_string(t.windows.load(std::memory_order_relaxed)) + ",\n";
  j += "  \"lookahead_s\": " + obs::format_double(to_seconds(o.lookahead)) +
       ",\n";
  j += "  \"end_time_s\": " + obs::format_double(to_seconds(o.end_time)) +
       ",\n";

  std::uint64_t total_events = 0;
  j += "  \"lps\": [\n";
  for (std::int32_t i = 0; i < n; ++i) {
    guard::LpLiveness* cell =
        static_cast<std::size_t>(i) < t.num_lps() && t.cells() != nullptr
            ? t.cells() + i
            : nullptr;
    const std::int64_t clock =
        cell ? cell->clock.load(std::memory_order_relaxed) : 0;
    const std::uint64_t events =
        cell ? cell->events.load(std::memory_order_relaxed) : 0;
    const std::uint64_t depth =
        cell ? cell->queue_depth.load(std::memory_order_relaxed) : 0;
    const std::int64_t min_time =
        cell ? cell->queue_min_time.load(std::memory_order_relaxed)
             : kSimTimeMax;
    total_events += events;
    const std::size_t in_degree =
        graph.empty() ? static_cast<std::size_t>(n > 0 ? n - 1 : 0)
                      : graph.in_neighbors(i).size();
    j += "    {\"lp\": " + std::to_string(i);
    j += ", \"clock_s\": " + obs::format_double(to_seconds(clock));
    j += ", \"events\": " + std::to_string(events);
    j += ", \"queue_depth\": " + std::to_string(depth);
    j += ", \"min_time_s\": ";
    j += min_time == kSimTimeMax ? std::string("null")
                                 : obs::format_double(to_seconds(min_time));
    j += ", \"in_degree\": " + std::to_string(in_degree);
    j += i + 1 < n ? "},\n" : "}\n";
  }
  j += "  ],\n";
  j += "  \"events\": " + std::to_string(total_events) + "\n";
  j += "}";
  return j;
}

}  // namespace massf::guard
