// Supervision knobs and engine-side liveness telemetry.
//
// This header is the only part of src/guard the engine itself sees: it is
// header-only (no link dependency) so massf_pdes can embed a GuardOptions
// in EngineOptions and export a GuardTelemetry without depending on the
// watchdog machinery. The monitor thread, diagnostics, and the recovery
// ladder live in watchdog.{hpp,cpp} / guarded_run.{hpp,cpp} (massf_guard).
//
// Telemetry discipline: every field the watchdog reads is a std::atomic
// updated with relaxed stores from the executor threads. The watchdog runs
// concurrently with the run it observes, so plain fields would be data
// races under TSan (and in fact). Updates are gated on GuardOptions::
// enabled, cached by the engine at construction, so a watchdog-off run
// pays nothing but a predictable branch per LP-window.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace massf::guard {

/// What the watchdog does once the no-progress deadline expires (after the
/// diagnostic has been written to stderr and the dump file).
enum class OnStall : std::uint8_t {
  /// Abort the process. The fallback when nothing can catch a stall —
  /// better a diagnosed corpse than a wedged CI job.
  kAbort,
  /// Ask the engine to cancel the run (Engine::cancel_run). The run
  /// returns with Engine::run_cancelled() set and the caller — typically
  /// GuardedRun — decides how to recover. Falls back to kAbort when the
  /// active executor cannot be cancelled (see Engine::cancel_run).
  kCancel,
};

inline const char* on_stall_name(OnStall p) {
  return p == OnStall::kAbort ? "abort" : "cancel";
}

struct GuardOptions {
  /// Master switch. Off by default; flip via the MASSF_GUARD env
  /// (default_guard_options), EngineOptions::guard, or massf_cli --guard.
  bool enabled = false;
  /// Wall-clock seconds without progress (windows closed or events
  /// processed) before the watchdog declares a stall.
  double stall_deadline_s = 30.0;
  /// Watchdog sampling period. <= 0 picks stall_deadline_s / 8, clamped
  /// to [1ms, 250ms] — fine enough that detection latency is dominated by
  /// the deadline itself, coarse enough to be free.
  double poll_interval_s = 0;
  /// Where to write the JSON stall diagnostic ("" = stderr only).
  std::string dump_path;
  OnStall on_stall = OnStall::kCancel;
};

/// Process-default guard options: enabled when MASSF_GUARD is set to
/// anything but "0"/"off"/"" ; MASSF_GUARD_DEADLINE_S overrides the
/// deadline. Read once and cached (mirrors default_sync_mode()).
inline GuardOptions default_guard_options() {
  static const GuardOptions cached = [] {
    GuardOptions g;
    if (const char* env = std::getenv("MASSF_GUARD")) {
      const std::string v(env);
      g.enabled = !v.empty() && v != "0" && v != "off";
    }
    if (const char* env = std::getenv("MASSF_GUARD_DEADLINE_S")) {
      char* end = nullptr;
      const double d = std::strtod(env, &end);
      if (end != env && d > 0) g.stall_deadline_s = d;
    }
    return g;
  }();
  return cached;
}

/// Per-LP liveness cell, padded so the owning worker's relaxed stores do
/// not false-share with neighbours or with the watchdog's scan.
struct alignas(64) LpLiveness {
  /// Channel clock: end of the last window this LP completed (ticks).
  std::atomic<std::int64_t> clock{0};
  /// Events this LP has processed over the run so far.
  std::atomic<std::uint64_t> events{0};
  /// Pending-queue depth and min event time after the last completed
  /// window (min_time is kSimTimeMax when the queue was empty).
  std::atomic<std::uint64_t> queue_depth{0};
  std::atomic<std::int64_t> queue_min_time{kSimTimeMax};
};

/// Engine-owned progress telemetry. Sized in Engine::begin_run when the
/// guard is enabled; the watchdog holds a reference for the duration of
/// the run — including *across* begin_run, since callers arm the monitor
/// before calling run(). The per-LP cell array is therefore published
/// with release/acquire (cell count and pointer both atomic), and a grown
/// array retires its predecessor instead of freeing it so a monitor that
/// raced the swap still dereferences live memory.
struct GuardTelemetry {
  std::atomic<std::uint64_t> windows{0};  ///< windows fully accounted
  std::atomic<std::uint64_t> epochs{0};   ///< channel-sync epochs closed
  /// Stall-loop iterations in the channel executor (workers awake with no
  /// claimable LP). Climbs during a protocol stall — deliberately NOT part
  /// of progress(), it is the symptom the watchdog exists to catch.
  std::atomic<std::uint64_t> sync_stalls{0};

  std::size_t num_lps() const {
    return num_lps_.load(std::memory_order_acquire);
  }
  LpLiveness* cells() const { return cells_.load(std::memory_order_acquire); }
  /// The writer-side accessor (executor threads; index < the n last reset).
  LpLiveness& lp(std::size_t i) { return cells()[i]; }

  void reset(std::size_t n) {
    windows.store(0, std::memory_order_relaxed);
    epochs.store(0, std::memory_order_relaxed);
    sync_stalls.store(0, std::memory_order_relaxed);
    // Hide the cells while they are resized/zeroed: a concurrent monitor
    // sees count 0 and skips the per-LP scan.
    num_lps_.store(0, std::memory_order_release);
    if (n > capacity_) {
      auto fresh = std::make_unique<LpLiveness[]>(n);
      // unique_ptr array rather than vector: atomics are not movable.
      // The old array stays alive (retired, freed with the engine) so a
      // monitor holding the previous pointer never reads freed memory.
      if (storage_) retired_.push_back(std::move(storage_));
      storage_ = std::move(fresh);
      capacity_ = n;
      cells_.store(storage_.get(), std::memory_order_release);
    }
    for (std::size_t i = 0; i < n; ++i) {
      storage_[i].clock.store(0, std::memory_order_relaxed);
      storage_[i].events.store(0, std::memory_order_relaxed);
      storage_[i].queue_depth.store(0, std::memory_order_relaxed);
      storage_[i].queue_min_time.store(kSimTimeMax,
                                       std::memory_order_relaxed);
    }
    num_lps_.store(n, std::memory_order_release);
  }

  /// Monotone progress sample: changes whenever any LP processes events or
  /// a window/epoch closes anywhere. The watchdog fires when this stops
  /// moving for the deadline.
  std::uint64_t progress() const {
    std::uint64_t p = windows.load(std::memory_order_relaxed) +
                      epochs.load(std::memory_order_relaxed);
    const std::size_t n = num_lps();
    LpLiveness* c = cells();
    for (std::size_t i = 0; c != nullptr && i < n; ++i) {
      p += c[i].events.load(std::memory_order_relaxed);
    }
    return p;
  }

 private:
  std::atomic<std::size_t> num_lps_{0};
  std::atomic<LpLiveness*> cells_{nullptr};
  std::unique_ptr<LpLiveness[]> storage_;
  std::vector<std::unique_ptr<LpLiveness[]>> retired_;
  std::size_t capacity_ = 0;
};

}  // namespace massf::guard
