// Liveness watchdog: a monitor thread over a running engine.
//
// The channel-clock executor (DESIGN.md section 5g) made the threaded
// run's progress depend on a distributed protocol: a misdeclared channel,
// a zero-lookahead cycle, or a protocol bug no longer crashes — it hangs.
// The watchdog samples the engine's GuardTelemetry (guard/options.hpp) on
// a fixed cadence; when the progress counter stops moving for the
// configured deadline it (1) renders a structured stall diagnostic —
// per-LP channel clock, events, queue depth and min event time, channel
// in-degree, sync wait counters — to stderr and, when configured, a JSON
// dump file (schema massf.guard.v1, DESIGN.md section 5h), then (2)
// applies GuardOptions::on_stall: cancel the run (recoverable, the
// GuardedRun path) or abort the process (diagnosed corpse beats wedged CI
// job).
//
// Lifecycle: construct with the engine and options, arm() before the run,
// disarm() (or destroy) after. The monitor only reads engine atomics and
// the finalized ChannelGraph, so it is safe — including under TSan —
// while the run executes.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "guard/options.hpp"

namespace massf {
class Engine;
}  // namespace massf

namespace massf::obs {
class Registry;
}  // namespace massf::obs

namespace massf::guard {

class Watchdog {
 public:
  /// `registry` (optional) receives guard.stalls_detected /
  /// guard.dump_writes when the watchdog fires. The engine must outlive
  /// the armed watchdog.
  Watchdog(Engine& engine, GuardOptions options,
           obs::Registry* registry = nullptr);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts the monitor thread. No-op when options.enabled is false.
  void arm();
  /// Stops and joins the monitor. Idempotent; called by the destructor.
  void disarm();

  /// True once the no-progress deadline expired and the diagnostic was
  /// emitted (sticky until the next arm()).
  bool fired() const;
  /// The JSON diagnostic of the last firing ("" when never fired).
  std::string last_diagnostic() const;

  /// Renders the stall diagnostic for `engine` right now (no deadline
  /// involved) — the JSON body the dump file receives. Exposed for tests
  /// and for one-shot "dump state" tooling.
  static std::string render_diagnostic(const Engine& engine,
                                       double stalled_for_s,
                                       double deadline_s);

 private:
  void monitor();
  void fire(double stalled_for_s);

  Engine& engine_;
  GuardOptions opts_;
  obs::Registry* registry_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool fired_ = false;
  std::string diagnostic_;
  std::thread thread_;
};

}  // namespace massf::guard
