// Checkpoint-based auto-recovery with a degradation ladder.
//
// GuardedRun drives repeated *attempts* of a run the caller knows how to
// (re)build — massf_cli rebuilds a Scenario, the tests rebuild a bare
// engine — until one completes or the ladder is exhausted. On a stall
// (watchdog cancelled the run) or a recoverable EngineError, the next
// attempt restores the latest massf.ckpt.v1 checkpoint (the caller's
// attempt fn owns the restore — GuardedRun only sequences and accounts)
// under a progressively safer configuration:
//
//   rung 0   retry the same configuration (x max_retries)
//   rung 1   fall back sync = channel -> barrier (global gates cannot
//            deadlock on a misdeclared channel clock)
//   rung 2   reduce to one thread (the sequential reference executor)
//   fail     re-raise with diagnostics
//
// Determinism contract: recovery replays from a bit-identical checkpoint,
// and both executors produce the bit-identical trace — so a recovered run
// yields the same results (golden checksum included) as an uninterrupted
// one. Every action lands in guard.* metrics (DESIGN.md section 5h).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "pdes/channel_sync.hpp"

namespace massf::obs {
class Registry;
}  // namespace massf::obs

namespace massf::guard {

/// The configuration GuardedRun asks one attempt to run under.
struct AttemptPlan {
  int attempt = 0;  ///< 0-based attempt index
  SyncMode sync = SyncMode::kChannel;
  std::int32_t threads = 0;  ///< 0/1 = sequential
  /// True when a previous attempt made progress worth resuming: the
  /// attempt fn should restore the latest checkpoint if it has one.
  bool restore = false;
  /// Degradation rung this plan sits on (0 = original configuration).
  int rung = 0;
};

enum class AttemptStatus {
  kCompleted,  ///< ran to its natural end
  kStalled,    ///< watchdog cancelled it (Engine::run_cancelled())
  kFailed,     ///< recoverable EngineError (caller caught it)
};

struct AttemptOutcome {
  AttemptStatus status = AttemptStatus::kCompleted;
  std::string message;  ///< diagnostic for kFailed / kStalled
};

struct GuardedRunReport {
  bool completed = false;
  int attempts = 0;          ///< attempts actually executed
  std::uint64_t stalls = 0;  ///< attempts that ended in a watchdog cancel
  std::uint64_t errors = 0;  ///< attempts that ended in an EngineError
  /// Rung the completing attempt ran on (0 = never degraded); -1 when
  /// nothing completed.
  int degraded_rung = -1;
  std::string last_error;  ///< message of the final failure ("" if none)
};

class GuardedRun {
 public:
  struct Options {
    /// Same-configuration retries before degrading (rung 0 width).
    int max_retries = 1;
  };

  /// `registry` (optional) receives the guard.* recovery metrics.
  explicit GuardedRun(Options options, obs::Registry* registry = nullptr)
      : opts_(options), registry_(registry) {}

  /// Runs `attempt` under the ladder starting from (sync, threads).
  /// The attempt fn must be re-entrant: each call rebuilds its engine
  /// stack from scratch (plus checkpoint restore when plan.restore).
  GuardedRunReport run(
      SyncMode sync, std::int32_t threads,
      const std::function<AttemptOutcome(const AttemptPlan&)>& attempt);

 private:
  Options opts_;
  obs::Registry* registry_;
};

}  // namespace massf::guard
