#include "guard/guarded_run.hpp"

#include <cstdio>
#include <vector>

#include "obs/metrics.hpp"

namespace massf::guard {

GuardedRunReport GuardedRun::run(
    SyncMode sync, std::int32_t threads,
    const std::function<AttemptOutcome(const AttemptPlan&)>& attempt) {
  // Build the ladder up front: rung 0 is the requested configuration
  // (1 + max_retries tries), rung 1 swaps channel clocks for global
  // barriers, rung 2 drops to the sequential reference executor. Rungs
  // that would not change anything are skipped.
  struct Rung {
    SyncMode sync;
    std::int32_t threads;
    int rung;
    int tries;
  };
  std::vector<Rung> ladder;
  const int retries = opts_.max_retries < 0 ? 0 : opts_.max_retries;
  ladder.push_back(Rung{sync, threads, 0, 1 + retries});
  if (sync == SyncMode::kChannel && threads > 1) {
    ladder.push_back(Rung{SyncMode::kBarrier, threads, 1, 1});
  }
  if (threads > 1) {
    ladder.push_back(Rung{SyncMode::kBarrier, 1, 2, 1});
  }

  GuardedRunReport report;
  for (const Rung& rung : ladder) {
    for (int t = 0; t < rung.tries; ++t) {
      AttemptPlan plan;
      plan.attempt = report.attempts;
      plan.sync = rung.sync;
      plan.threads = rung.threads;
      plan.rung = rung.rung;
      // First attempt starts fresh; every later attempt resumes from the
      // latest checkpoint the earlier attempts managed to write (the
      // attempt fn falls back to a fresh start when none exists).
      plan.restore = report.attempts > 0;
      ++report.attempts;

      if (report.attempts > 1) {
        std::fprintf(stderr,
                     "massf guard: recovery attempt %d (sync=%s threads=%d "
                     "rung=%d restore=%d)\n",
                     plan.attempt, sync_mode_name(plan.sync),
                     plan.threads, plan.rung, plan.restore ? 1 : 0);
        std::fflush(stderr);
        if (registry_ != nullptr) registry_->counter("guard.retries").inc();
      }

      const AttemptOutcome out = attempt(plan);
      switch (out.status) {
        case AttemptStatus::kCompleted: {
          report.completed = true;
          report.degraded_rung = rung.rung;
          if (registry_ != nullptr) {
            if (report.attempts > 1) {
              registry_->counter("guard.recoveries").inc();
            }
            registry_->gauge("guard.degraded_mode")
                .set(static_cast<double>(rung.rung));
          }
          return report;
        }
        case AttemptStatus::kStalled:
          ++report.stalls;
          report.last_error = out.message.empty()
                                  ? "watchdog cancelled a stalled run"
                                  : out.message;
          break;
        case AttemptStatus::kFailed:
          ++report.errors;
          report.last_error = out.message;
          std::fprintf(stderr, "massf guard: attempt %d failed: %s\n",
                       plan.attempt, out.message.c_str());
          std::fflush(stderr);
          break;
      }
    }
  }
  if (registry_ != nullptr) {
    registry_->gauge("guard.degraded_mode").set(-1.0);
  }
  std::fprintf(stderr,
               "massf guard: recovery ladder exhausted after %d attempts: "
               "%s\n",
               report.attempts, report.last_error.c_str());
  std::fflush(stderr);
  return report;
}

}  // namespace massf::guard
