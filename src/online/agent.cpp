#include "online/agent.hpp"

#include <thread>

#include "util/check.hpp"

namespace massf {

Agent::Agent(const AgentOptions& options) : opts_(options) {}

void Agent::attach(Engine& engine) {
  engine.set_barrier_hook([this](Engine& eng, SimTime window_start) {
    on_barrier(eng, window_start);
  });
}

void Agent::start(Engine&, NetSim& sim) { sim_ = &sim; }

void Agent::submit(const SendRequest& request) {
  MASSF_CHECK(request.bytes > 0);
  std::lock_guard<std::mutex> lock(mu_);
  inbox_.push_back(request);
}

std::optional<Agent::Delivery> Agent::poll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (outbox_.empty()) return std::nullopt;
  Delivery d = outbox_.front();
  outbox_.pop_front();
  return d;
}

void Agent::requeue(const Delivery& delivery) {
  std::lock_guard<std::mutex> lock(mu_);
  outbox_.push_back(delivery);
}

SimTime Agent::virtual_now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_now_;
}

void Agent::on_barrier(Engine& engine, SimTime window_start) {
  MASSF_CHECK(sim_ != nullptr && "Agent not registered with TrafficManager");

  // Soft real-time pacing: hold the window until wall clock catches up.
  if (opts_.slowdown > 0) {
    if (!wall_started_) {
      wall_start_ = std::chrono::steady_clock::now();
      wall_started_ = true;
    }
    const double due_wall_s = to_seconds(window_start) * opts_.slowdown;
    for (;;) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start_)
              .count();
      if (elapsed >= due_wall_s) break;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(0.001, due_wall_s - elapsed)));
    }
  }

  // Drain live sends into the simulation. Injection happens at the window
  // end: the earliest time a conservative engine can admit a new event.
  std::deque<SendRequest> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    virtual_now_ = window_start;
    pending.swap(inbox_);
  }
  const SimTime inject_at = window_start + engine.options().lookahead;
  for (const SendRequest& req : pending) {
    std::uint32_t idx;
    {
      std::lock_guard<std::mutex> lock(mu_);
      idx = static_cast<std::uint32_t>(in_flight_.size());
      in_flight_.push_back(req);
    }
    sim_->start_flow(engine, inject_at, req.src_host, req.dst_host,
                     req.bytes, make_tag(TrafficKind::kOnline, idx));
  }
}

void Agent::on_flow_complete(Engine& engine, NetSim&, FlowId, NodeId src_host,
                             NodeId dst_host, std::uint32_t tag) {
  const std::uint32_t idx = tag_payload(tag);
  std::lock_guard<std::mutex> lock(mu_);
  MASSF_CHECK(idx < in_flight_.size());
  Delivery d;
  d.src_host = src_host;
  d.dst_host = dst_host;
  d.cookie = in_flight_[idx].cookie;
  d.virtual_time = engine.now();
  outbox_.push_back(d);
}

}  // namespace massf
