#include "online/agent.hpp"

#include <algorithm>
#include <thread>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace massf {

Agent::Agent(const AgentOptions& options) : opts_(options) {}

void Agent::attach(Engine& engine) {
  engine.hooks().barrier.push_back([this](Engine& eng, SimTime window_start) {
    on_barrier(eng, window_start);
  });
}

void Agent::start(Engine&, NetSim& sim) { sim_ = &sim; }

void Agent::submit(const SendRequest& request) {
  MASSF_CHECK(request.bytes > 0);
  std::lock_guard<std::mutex> lock(mu_);
  inbox_.push_back(request);
}

std::optional<Agent::Delivery> Agent::poll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (outbox_.empty()) return std::nullopt;
  Delivery d = outbox_.front();
  outbox_.pop_front();
  return d;
}

void Agent::requeue(const Delivery& delivery) {
  std::lock_guard<std::mutex> lock(mu_);
  outbox_.push_back(delivery);
}

SimTime Agent::virtual_now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_now_;
}

std::uint64_t Agent::retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retries_;
}

std::uint64_t Agent::requests_failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

void Agent::on_barrier(Engine& engine, SimTime window_start) {
  MASSF_CHECK(sim_ != nullptr && "Agent not registered with TrafficManager");

  // Soft real-time pacing: hold the window until wall clock catches up.
  if (opts_.slowdown > 0) {
    if (!wall_started_) {
      wall_start_ = std::chrono::steady_clock::now();
      wall_started_ = true;
    }
    const double due_wall_s = to_seconds(window_start) * opts_.slowdown;
    for (;;) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start_)
              .count();
      if (elapsed >= due_wall_s) break;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(0.001, due_wall_s - elapsed)));
    }
  }

  // Drain live sends into the simulation. Injection happens at the window
  // end: the earliest time a conservative engine can admit a new event.
  // Retries whose backoff has expired ride the same barrier; they are
  // sorted by (not_before, idx) so the order flows are (re)started — and
  // hence flow-id allocation — is identical under every executor,
  // regardless of which worker thread recorded each failure.
  std::deque<SendRequest> pending;
  std::vector<Retry> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    virtual_now_ = window_start;
    pending.swap(inbox_);
    auto split = std::partition(
        retry_queue_.begin(), retry_queue_.end(),
        [&](const Retry& r) { return r.not_before > window_start; });
    ready.assign(split, retry_queue_.end());
    retry_queue_.erase(split, retry_queue_.end());
  }
  std::sort(ready.begin(), ready.end(), [](const Retry& a, const Retry& b) {
    return a.not_before != b.not_before ? a.not_before < b.not_before
                                        : a.idx < b.idx;
  });

  const SimTime inject_at = window_start + engine.options().lookahead;
  for (const SendRequest& req : pending) {
    std::uint32_t idx;
    {
      std::lock_guard<std::mutex> lock(mu_);
      idx = static_cast<std::uint32_t>(in_flight_.size());
      in_flight_.push_back(InFlight{req, /*attempts=*/1});
    }
    sim_->start_flow(engine, inject_at, req.src_host, req.dst_host,
                     req.bytes, make_tag(TrafficKind::kOnline, idx));
  }
  for (const Retry& r : ready) {
    SendRequest req;
    bool give_up = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      InFlight& f = in_flight_[r.idx];
      req = f.req;
      give_up = f.attempts > opts_.max_retries;
      if (!give_up) {
        ++f.attempts;
        ++retries_;
      }
    }
    if (give_up) {
      // Degraded mode: tell the application the path is gone instead of
      // retrying forever. Callback runs here, on the coordinator thread.
      if (degraded_) degraded_(req, window_start);
      Delivery d;
      d.src_host = req.src_host;
      d.dst_host = req.dst_host;
      d.cookie = req.cookie;
      d.virtual_time = window_start;
      d.failed = true;
      std::lock_guard<std::mutex> lock(mu_);
      ++failed_;
      outbox_.push_back(d);
    } else {
      sim_->start_flow(engine, inject_at, req.src_host, req.dst_host,
                       req.bytes, make_tag(TrafficKind::kOnline, r.idx));
    }
  }
}

void Agent::on_flow_complete(Engine& engine, NetSim&, FlowId, NodeId src_host,
                             NodeId dst_host, std::uint32_t tag) {
  const std::uint32_t idx = tag_payload(tag);
  std::lock_guard<std::mutex> lock(mu_);
  MASSF_CHECK(idx < in_flight_.size());
  Delivery d;
  d.src_host = src_host;
  d.dst_host = dst_host;
  d.cookie = in_flight_[idx].req.cookie;
  d.virtual_time = engine.now();
  outbox_.push_back(d);
}

void Agent::on_flow_failed(Engine& engine, NetSim&, FlowId, NodeId, NodeId,
                           std::uint32_t tag) {
  const std::uint32_t idx = tag_payload(tag);
  std::lock_guard<std::mutex> lock(mu_);
  MASSF_CHECK(idx < in_flight_.size());
  // Exponential backoff: retry_backoff_s doubles with every attempt made.
  const double backoff_s =
      opts_.retry_backoff_s *
      static_cast<double>(1ULL << std::min(in_flight_[idx].attempts - 1, 30u));
  retry_queue_.push_back(Retry{engine.now() + from_seconds(backoff_s), idx});
}

void Agent::publish_metrics(obs::Registry& registry) const {
  std::lock_guard<std::mutex> lock(mu_);
  registry.counter("online.requests").inc(in_flight_.size());
  registry.counter("online.retries").inc(retries_);
  registry.counter("online.requests_failed").inc(failed_);
}

}  // namespace massf
