// WrapSocket analog: a small blocking socket-style API over the Agent.
//
// In the real MaSSF, unmodified applications are linked against a
// WrapSocket library that intercepts socket calls and redirects the stream
// through the Agent into the simulated network. Here applications are
// in-process (possibly on their own threads); a VSocket gives them the
// same shape of API — send() and a blocking receive-completion wait —
// while every byte they exchange traverses the simulated network in
// virtual time.
#pragma once

#include <cstdint>
#include <optional>

#include "online/agent.hpp"

namespace massf {

class VSocket {
 public:
  /// Binds the socket to a simulated host.
  VSocket(Agent& agent, NodeId local_host);

  NodeId local_host() const { return local_host_; }

  /// Sends `bytes` to a peer host; returns a cookie identifying the
  /// transfer.
  std::uint32_t send(NodeId dst_host, std::uint32_t bytes);

  /// Non-blocking: next completed transfer addressed to this host, if any.
  std::optional<Agent::Delivery> try_receive();

  /// Blocks (polling the agent) until a transfer addressed to this host
  /// completes or `wall_timeout_s` elapses.
  std::optional<Agent::Delivery> receive(double wall_timeout_s);

 private:
  Agent* agent_;
  NodeId local_host_;
  std::uint32_t next_cookie_ = 1;
};

}  // namespace massf
