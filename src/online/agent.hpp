// Online-simulation support: the Agent (paper Section 2.1).
//
// MaSSF supports *online* simulation: traffic enters the simulator live
// from running applications instead of being pre-scripted. Applications
// talk to a WrapSocket-style API (vsocket.hpp) whose sends are queued into
// the Agent from any thread; the Agent drains the queue at every
// synchronization-window barrier — the only point where a conservative
// engine can admit external events — and injects them as flows starting at
// or after the window end. Deliveries flow back through a thread-safe
// outbound queue the application polls.
//
// The Agent also implements the soft real-time scheduler's pacing: with a
// slowdown factor s, virtual time is never allowed to run faster than
// wall-clock time / s, so a live application and the simulated network stay
// in step (s > 1 runs the network slower than real time, as the paper does
// when the simulated system is too large for real time).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "traffic/manager.hpp"

namespace massf {

struct AgentOptions {
  /// Virtual seconds advance at most (wall seconds) / slowdown. 0 disables
  /// pacing (run as fast as possible).
  double slowdown = 0;
  /// A live transfer abandoned by TCP is retried up to this many times
  /// before it is reported back to the application as failed.
  std::uint32_t max_retries = 2;
  /// Backoff before the first retry; doubles on each subsequent attempt.
  double retry_backoff_s = 0.5;
};

class Agent final : public TrafficComponent {
 public:
  explicit Agent(const AgentOptions& options);

  /// Installs the barrier hook on the engine. Call once before run().
  void attach(Engine& engine);

  // ---- Application side (any thread) ------------------------------------

  struct SendRequest {
    NodeId src_host = kInvalidNode;
    NodeId dst_host = kInvalidNode;
    std::uint32_t bytes = 0;
    std::uint32_t cookie = 0;  ///< echoed in the matching Delivery
  };

  /// Queues a live send; it is injected at the next window barrier.
  void submit(const SendRequest& request);

  struct Delivery {
    NodeId src_host = kInvalidNode;
    NodeId dst_host = kInvalidNode;
    std::uint32_t cookie = 0;
    SimTime virtual_time = 0;  ///< when the last byte arrived (or gave up)
    bool failed = false;  ///< transfer abandoned after max_retries attempts
  };

  /// Non-blocking poll for completed transfers.
  std::optional<Delivery> poll();

  /// Puts a polled delivery back (used by VSocket when a delivery belongs
  /// to a different host's socket).
  void requeue(const Delivery& delivery);

  /// Virtual time of the latest window barrier (application-visible clock).
  SimTime virtual_now() const;

  /// Degraded-mode callback: invoked on the coordinator thread at a window
  /// barrier once a request has exhausted its retries, just before the
  /// failed Delivery is queued. `virtual_time` is the barrier time.
  using DegradedFn = std::function<void(const SendRequest&, SimTime)>;
  void set_degraded(DegradedFn fn) { degraded_ = std::move(fn); }

  /// Retries attempted / requests abandoned (for tests and metrics).
  std::uint64_t retries() const;
  std::uint64_t requests_failed() const;

  // ---- TrafficComponent (engine side) ------------------------------------
  void start(Engine& engine, NetSim& sim) override;
  void on_flow_complete(Engine& engine, NetSim& sim, FlowId flow,
                        NodeId src_host, NodeId dst_host,
                        std::uint32_t tag) override;
  /// TCP abandoned the flow: queue a retry with exponential backoff (or a
  /// failed Delivery once retries are exhausted). Runs on the sender's LP.
  void on_flow_failed(Engine& engine, NetSim& sim, FlowId flow,
                      NodeId src_host, NodeId dst_host,
                      std::uint32_t tag) override;
  void publish_metrics(obs::Registry& registry) const override;

 private:
  struct InFlight {
    SendRequest req;
    std::uint32_t attempts = 0;  ///< transmissions started so far
  };
  struct Retry {
    SimTime not_before;
    std::uint32_t idx;  ///< in_flight_ index
  };

  void on_barrier(Engine& engine, SimTime window_start);

  AgentOptions opts_;
  NetSim* sim_ = nullptr;
  DegradedFn degraded_;

  mutable std::mutex mu_;
  std::deque<SendRequest> inbox_;
  std::deque<Delivery> outbox_;
  std::vector<InFlight> in_flight_;  // tag payload -> request + attempts
  std::vector<Retry> retry_queue_;
  std::uint64_t retries_ = 0;
  std::uint64_t failed_ = 0;
  SimTime virtual_now_ = 0;

  std::chrono::steady_clock::time_point wall_start_;
  bool wall_started_ = false;
};

}  // namespace massf
