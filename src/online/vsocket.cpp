#include "online/vsocket.hpp"

#include <chrono>
#include <thread>

namespace massf {

VSocket::VSocket(Agent& agent, NodeId local_host)
    : agent_(&agent), local_host_(local_host) {}

std::uint32_t VSocket::send(NodeId dst_host, std::uint32_t bytes) {
  Agent::SendRequest req;
  req.src_host = local_host_;
  req.dst_host = dst_host;
  req.bytes = bytes;
  req.cookie = next_cookie_++;
  agent_->submit(req);
  return req.cookie;
}

std::optional<Agent::Delivery> VSocket::try_receive() {
  // The agent's outbox is shared by all sockets; deliveries not addressed
  // to this host are re-queued by resubmission into the outbox through
  // poll/push cycles. To keep the common case simple we filter here and
  // drop foreign deliveries back via a local stash-free strategy: the
  // demo applications use one socket per host pair direction, so a foreign
  // delivery simply belongs to another poll loop — we push it back.
  auto d = agent_->poll();
  if (!d) return std::nullopt;
  if (d->dst_host == local_host_) return d;
  // Not ours: requeue and report nothing this round.
  // (Agent::Delivery round-trips losslessly through submit/outbox only via
  // this private hook.)
  agent_->requeue(*d);
  return std::nullopt;
}

std::optional<Agent::Delivery> VSocket::receive(double wall_timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(wall_timeout_s));
  for (;;) {
    if (auto d = try_receive()) return d;
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace massf
