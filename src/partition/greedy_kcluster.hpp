// The ModelNet greedy k-cluster partitioning algorithm, implemented as a
// comparison baseline (paper Section 6: "for k nodes in the core set,
// randomly selects k nodes in the virtual topology and greedily selects
// links from the current connected component in a round-robin fashion").
// It ignores vertex weights and link latencies entirely — which is exactly
// why the paper's weighted multilevel approach outperforms it.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace massf {

/// Partitions g into k clusters by greedy round-robin region growing from
/// k random seeds. Every vertex is assigned; disconnected leftovers are
/// appended to the smallest cluster. Deterministic for a fixed seed.
std::vector<VertexId> greedy_k_cluster(const Graph& g, std::int32_t k,
                                       Rng& rng);

}  // namespace massf
