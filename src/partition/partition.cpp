#include "partition/partition.hpp"

#include <algorithm>
#include <limits>

#include "partition/kway.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace massf {

double PartitionResult::balance(Weight total_weight) const {
  if (part_weights.empty() || total_weight == 0) return 1.0;
  const Weight max_w = *std::max_element(part_weights.begin(),
                                         part_weights.end());
  const double ideal =
      static_cast<double>(total_weight) / static_cast<double>(
                                              part_weights.size());
  return static_cast<double>(max_w) / ideal;
}

PartitionResult partition_graph(const Graph& g, const PartitionOptions& opts) {
  MASSF_CHECK(opts.num_parts >= 1);
  MASSF_CHECK(opts.imbalance_tolerance >= 1.0);

  Rng rng(opts.seed);
  PartitionResult result;
  result.part = recursive_bisection(g, opts, rng);
  kway_refine(g, result.part, opts);
  result.edge_cut = compute_edge_cut(g, result.part);
  result.part_weights = compute_part_weights(g, result.part, opts.num_parts);
  return result;
}

Weight compute_edge_cut(const Graph& g, std::span<const VertexId> part) {
  MASSF_CHECK(static_cast<VertexId>(part.size()) == g.num_vertices());
  Weight cut = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (part[static_cast<std::size_t>(g.edge_u(e))] !=
        part[static_cast<std::size_t>(g.edge_v(e))]) {
      cut += g.edge_weight(e);
    }
  }
  return cut;
}

std::vector<Weight> compute_part_weights(const Graph& g,
                                         std::span<const VertexId> part,
                                         std::int32_t num_parts) {
  std::vector<Weight> pw(static_cast<std::size_t>(num_parts), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId p = part[static_cast<std::size_t>(v)];
    MASSF_CHECK(p >= 0 && p < num_parts);
    pw[static_cast<std::size_t>(p)] += g.vertex_weight(v);
  }
  return pw;
}

std::int64_t min_cut_edge_aux(const Graph& g, std::span<const VertexId> part,
                              std::span<const std::int64_t> edge_aux) {
  MASSF_CHECK(static_cast<EdgeId>(edge_aux.size()) == g.num_edges());
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (part[static_cast<std::size_t>(g.edge_u(e))] !=
        part[static_cast<std::size_t>(g.edge_v(e))]) {
      best = std::min(best, edge_aux[static_cast<std::size_t>(e)]);
    }
  }
  return best;
}

}  // namespace massf
