// Public interface of the multilevel k-way graph partitioner.
//
// This is the METIS-equivalent substrate the load-balance layer builds on:
// multilevel recursive bisection with heavy-edge-matching coarsening,
// greedy-graph-growing initial partitions, and Fiduccia–Mattheyses
// refinement, followed by a k-way boundary refinement pass. It balances
// total vertex weight across parts while minimizing the weighted edge cut.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace massf {

struct PartitionOptions {
  std::int32_t num_parts = 2;
  /// Maximum allowed part weight as a multiple of the ideal (total/k).
  double imbalance_tolerance = 1.05;
  std::uint64_t seed = 1;
  /// Coarsening stops once the graph has at most this many vertices per
  /// requested part (or matching stalls).
  std::int32_t coarsen_vertices_per_part = 30;
  /// Number of random seeds tried by the greedy-graph-growing initial
  /// bisection; the best (lowest-cut) one is kept.
  std::int32_t initial_partition_trials = 4;
  /// Maximum FM passes per refinement invocation.
  std::int32_t refinement_passes = 8;
};

struct PartitionResult {
  std::vector<VertexId> part;        ///< vertex -> part id in [0, k)
  Weight edge_cut = 0;               ///< sum of weights of cut edges
  std::vector<Weight> part_weights;  ///< total vertex weight per part

  /// max part weight / ideal part weight; 1.0 is perfect balance.
  double balance(Weight total_weight) const;
};

/// Partitions g into opts.num_parts parts. Deterministic for a fixed seed.
PartitionResult partition_graph(const Graph& g, const PartitionOptions& opts);

/// Recomputes the weighted edge cut of an assignment (validation helper).
Weight compute_edge_cut(const Graph& g, std::span<const VertexId> part);

/// Recomputes per-part vertex-weight totals.
std::vector<Weight> compute_part_weights(const Graph& g,
                                         std::span<const VertexId> part,
                                         std::int32_t num_parts);

/// Minimum value of `edge_aux` over edges whose endpoints lie in different
/// parts (e.g. the achieved minimum cross-partition link latency). Returns
/// int64 max when no edge is cut.
std::int64_t min_cut_edge_aux(const Graph& g, std::span<const VertexId> part,
                              std::span<const std::int64_t> edge_aux);

}  // namespace massf
