// Multilevel 2-way partitioning: coarsen by heavy-edge matching, bisect the
// coarsest graph with greedy graph growing, refine with FM on every level
// while projecting back up.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace massf {

/// Bisects g so that part 0 totals approximately `target0` vertex weight.
/// Returns an assignment of 0/1 per vertex.
std::vector<VertexId> multilevel_bisect(const Graph& g, Weight target0,
                                        const PartitionOptions& opts,
                                        double tolerance, Rng& rng);

}  // namespace massf
