#include "partition/fm.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "util/check.hpp"

namespace massf {
namespace {

struct Candidate {
  Weight gain;
  VertexId v;
  // Max-heap by gain; ties broken by lower vertex id for determinism.
  bool operator<(const Candidate& o) const {
    return gain != o.gain ? gain < o.gain : v > o.v;
  }
};

}  // namespace

Weight fm_refine_bisection(const Graph& g, std::span<VertexId> part,
                           const FmOptions& opts) {
  const VertexId n = g.num_vertices();
  MASSF_CHECK(static_cast<VertexId>(part.size()) == n);

  const Weight total = g.total_vertex_weight();
  const Weight target1 = total - opts.target0;
  const auto max_w = [&](int side) {
    const Weight target = side == 0 ? opts.target0 : target1;
    return static_cast<Weight>(
        std::ceil(static_cast<double>(target) * opts.tolerance));
  };

  // Internal/external incident weights per vertex; gain = ext - int.
  std::vector<Weight> ext(static_cast<std::size_t>(n), 0);
  std::vector<Weight> inter(static_cast<std::size_t>(n), 0);
  Weight cut = 0;
  Weight w[2] = {0, 0};
  for (VertexId v = 0; v < n; ++v) {
    w[part[static_cast<std::size_t>(v)]] += g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.arc_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (part[static_cast<std::size_t>(nbrs[i])] ==
          part[static_cast<std::size_t>(v)]) {
        inter[static_cast<std::size_t>(v)] += ws[i];
      } else {
        ext[static_cast<std::size_t>(v)] += ws[i];
        cut += ws[i];
      }
    }
  }
  cut /= 2;

  const auto violation = [&]() {
    return std::max<Weight>(0, w[0] - max_w(0)) +
           std::max<Weight>(0, w[1] - max_w(1));
  };

  std::vector<char> locked(static_cast<std::size_t>(n));
  std::vector<VertexId> moved;
  moved.reserve(static_cast<std::size_t>(n));

  if (!opts.pinned.empty()) {
    MASSF_CHECK(static_cast<VertexId>(opts.pinned.size()) == n);
  }
  // Net-move accounting for the max_moves bound: away[v] marks vertices
  // whose current side differs from the input assignment.
  const bool bounded = opts.max_moves > 0;
  std::vector<char> away;
  if (bounded) away.assign(static_cast<std::size_t>(n), 0);
  std::int32_t net_moved = 0;

  for (std::int32_t pass = 0; pass < opts.max_passes; ++pass) {
    std::fill(locked.begin(), locked.end(), char{0});
    if (!opts.pinned.empty()) {
      for (VertexId v = 0; v < n; ++v) {
        if (opts.pinned[static_cast<std::size_t>(v)]) {
          locked[static_cast<std::size_t>(v)] = 1;
        }
      }
    }
    moved.clear();

    std::priority_queue<Candidate> heap;
    for (VertexId v = 0; v < n; ++v) {
      if (locked[static_cast<std::size_t>(v)]) continue;
      heap.push({ext[static_cast<std::size_t>(v)] -
                     inter[static_cast<std::size_t>(v)],
                 v});
    }

    const Weight start_cut = cut;
    Weight best_cut = cut;
    Weight best_violation = violation();
    std::size_t best_prefix = 0;
    std::size_t since_best = 0;
    const std::size_t stall_limit =
        std::max<std::size_t>(64, static_cast<std::size_t>(n) / 8);

    while (!heap.empty() && since_best < stall_limit) {
      const Candidate c = heap.top();
      heap.pop();
      const auto vi = static_cast<std::size_t>(c.v);
      if (locked[vi]) continue;
      const Weight cur_gain = ext[vi] - inter[vi];
      if (c.gain != cur_gain) continue;  // stale entry

      const int src = part[vi];
      const int dst = 1 - src;
      const Weight wv = g.vertex_weight(c.v);
      // A move is admissible if the destination stays within bound, or if
      // the source is currently over its bound (rebalancing move).
      const bool dst_ok = w[dst] + wv <= max_w(dst);
      const bool src_over = w[src] > max_w(src);
      if (!dst_ok && !src_over) continue;
      if (w[src] - wv <= 0 && n > 1) continue;  // never empty a part
      const bool returning = bounded && away[vi] != 0;
      if (bounded && !returning && net_moved >= opts.max_moves) continue;

      // Execute the move.
      locked[vi] = 1;
      if (bounded) {
        away[vi] = returning ? 0 : 1;
        net_moved += returning ? -1 : 1;
      }
      part[vi] = static_cast<VertexId>(dst);
      w[src] -= wv;
      w[dst] += wv;
      cut -= cur_gain;
      std::swap(ext[vi], inter[vi]);
      const auto nbrs = g.neighbors(c.v);
      const auto ws = g.arc_weights(c.v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const auto ui = static_cast<std::size_t>(nbrs[i]);
        if (part[ui] == dst) {
          ext[ui] -= ws[i];
          inter[ui] += ws[i];
        } else {
          ext[ui] += ws[i];
          inter[ui] -= ws[i];
        }
        if (!locked[ui]) heap.push({ext[ui] - inter[ui], nbrs[i]});
      }
      moved.push_back(c.v);

      // Track best prefix: prefer lower balance violation, then lower cut.
      const Weight viol = violation();
      if (std::tie(viol, cut) < std::tie(best_violation, best_cut)) {
        best_violation = viol;
        best_cut = cut;
        best_prefix = moved.size();
        since_best = 0;
      } else {
        ++since_best;
      }
    }

    // Roll back moves past the best prefix.
    while (moved.size() > best_prefix) {
      const VertexId v = moved.back();
      moved.pop_back();
      const auto vi = static_cast<std::size_t>(v);
      const int src = part[vi];
      const int dst = 1 - src;
      const Weight wv = g.vertex_weight(v);
      const Weight gain = ext[vi] - inter[vi];
      part[vi] = static_cast<VertexId>(dst);
      if (bounded) {
        // Undoing a move toggles the vertex's away state in reverse.
        net_moved += away[vi] != 0 ? -1 : 1;
        away[vi] = away[vi] != 0 ? 0 : 1;
      }
      w[src] -= wv;
      w[dst] += wv;
      cut -= gain;
      std::swap(ext[vi], inter[vi]);
      const auto nbrs = g.neighbors(v);
      const auto ws = g.arc_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const auto ui = static_cast<std::size_t>(nbrs[i]);
        if (part[ui] == dst) {
          ext[ui] -= ws[i];
          inter[ui] += ws[i];
        } else {
          ext[ui] += ws[i];
          inter[ui] -= ws[i];
        }
      }
    }
    MASSF_DCHECK(cut == best_cut);

    if (best_prefix == 0 && best_cut >= start_cut) break;  // no progress
  }
  return cut;
}

}  // namespace massf
