// Recursive-bisection k-way driver plus a final k-way greedy boundary
// refinement pass.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace massf {

/// Partitions g into opts.num_parts via recursive multilevel bisection.
std::vector<VertexId> recursive_bisection(const Graph& g,
                                          const PartitionOptions& opts,
                                          Rng& rng);

/// Greedy k-way boundary refinement: repeatedly moves boundary vertices to
/// the neighboring part with the best cut gain, subject to the balance
/// constraint. Improves the recursive-bisection result in place.
void kway_refine(const Graph& g, std::span<VertexId> part,
                 const PartitionOptions& opts);

}  // namespace massf
