#include "partition/kway.hpp"

#include <algorithm>
#include <cmath>

#include "partition/bisect.hpp"
#include "util/check.hpp"

namespace massf {
namespace {

// Extracts the subgraph induced by `vertices`; `vertices[i]` becomes vertex
// i of the result.
Graph extract_subgraph(const Graph& g, std::span<const VertexId> vertices) {
  std::vector<VertexId> local(static_cast<std::size_t>(g.num_vertices()),
                              kInvalidVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    local[static_cast<std::size_t>(vertices[i])] = static_cast<VertexId>(i);
  }
  GraphBuilder builder(static_cast<VertexId>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    builder.set_vertex_weight(static_cast<VertexId>(i), g.vertex_weight(v));
    const auto nbrs = g.neighbors(v);
    const auto ws = g.arc_weights(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId lu = local[static_cast<std::size_t>(nbrs[j])];
      if (lu != kInvalidVertex && lu > static_cast<VertexId>(i)) {
        builder.add_edge(static_cast<VertexId>(i), lu, ws[j]);
      }
    }
  }
  return builder.build();
}

void recurse(const Graph& g, std::span<const VertexId> vertices,
             std::int32_t k, std::int32_t first_part, double tolerance,
             const PartitionOptions& opts, Rng& rng,
             std::vector<VertexId>& out) {
  if (k == 1) {
    for (VertexId v : vertices) {
      out[static_cast<std::size_t>(v)] = first_part;
    }
    return;
  }
  const Graph sub = extract_subgraph(g, vertices);
  const std::int32_t k0 = k / 2;
  const std::int32_t k1 = k - k0;
  const auto target0 = static_cast<Weight>(
      static_cast<double>(sub.total_vertex_weight()) * k0 / k);

  std::vector<VertexId> half =
      multilevel_bisect(sub, target0, opts, tolerance, rng);

  std::vector<VertexId> left, right;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    (half[i] == 0 ? left : right).push_back(vertices[i]);
  }
  recurse(g, left, k0, first_part, tolerance, opts, rng, out);
  recurse(g, right, k1, first_part + k0, tolerance, opts, rng, out);
}

}  // namespace

std::vector<VertexId> recursive_bisection(const Graph& g,
                                          const PartitionOptions& opts,
                                          Rng& rng) {
  MASSF_CHECK(opts.num_parts >= 1);
  std::vector<VertexId> part(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<VertexId> all(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    all[static_cast<std::size_t>(v)] = v;
  }
  // Per-bisection tolerance so that log2(k) nested bisections compound to at
  // most the requested overall imbalance.
  const double depth =
      std::max(1.0, std::ceil(std::log2(static_cast<double>(opts.num_parts))));
  const double tol = std::pow(opts.imbalance_tolerance, 1.0 / depth);
  recurse(g, all, opts.num_parts, 0, tol, opts, rng, part);
  return part;
}

void kway_refine(const Graph& g, std::span<VertexId> part,
                 const PartitionOptions& opts) {
  const VertexId n = g.num_vertices();
  const std::int32_t k = opts.num_parts;
  if (k <= 1 || n == 0) return;

  std::vector<Weight> pw = compute_part_weights(g, part, k);
  const auto max_w = static_cast<Weight>(
      std::ceil(static_cast<double>(g.total_vertex_weight()) / k *
                opts.imbalance_tolerance));

  std::vector<Weight> conn(static_cast<std::size_t>(k), 0);
  for (std::int32_t pass = 0; pass < opts.refinement_passes; ++pass) {
    bool any_move = false;
    for (VertexId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const VertexId home = part[vi];
      // Connectivity of v to each part it touches.
      const auto nbrs = g.neighbors(v);
      const auto ws = g.arc_weights(v);
      bool boundary = false;
      std::fill(conn.begin(), conn.end(), Weight{0});
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId p = part[static_cast<std::size_t>(nbrs[i])];
        conn[static_cast<std::size_t>(p)] += ws[i];
        if (p != home) boundary = true;
      }
      if (!boundary) continue;

      VertexId best = home;
      Weight best_gain = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId p = part[static_cast<std::size_t>(nbrs[i])];
        if (p == best) continue;
        const Weight gain =
            conn[static_cast<std::size_t>(p)] -
            conn[static_cast<std::size_t>(home)];
        const Weight wv = g.vertex_weight(v);
        if (gain > best_gain &&
            pw[static_cast<std::size_t>(p)] + wv <= max_w &&
            pw[static_cast<std::size_t>(home)] - wv > 0) {
          best_gain = gain;
          best = p;
        }
      }
      if (best != home) {
        pw[static_cast<std::size_t>(home)] -= g.vertex_weight(v);
        pw[static_cast<std::size_t>(best)] += g.vertex_weight(v);
        part[vi] = best;
        any_move = true;
      }
    }
    if (!any_move) break;
  }
}

}  // namespace massf
