// Fiduccia–Mattheyses 2-way refinement.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace massf {

struct FmOptions {
  /// Target weight of part 0 (part 1 gets the remainder).
  Weight target0 = 0;
  /// Parts may exceed their target by this multiple.
  double tolerance = 1.05;
  std::int32_t max_passes = 8;
  /// Vertices that must never change sides (size num_vertices, nonzero =
  /// pinned). Empty span = all vertices free. The online rebalancer pins
  /// immobile routers (hosts attached / sub-lookahead links) here.
  std::span<const char> pinned = {};
  /// Upper bound on *net* moves (vertices whose side differs from the
  /// input when refinement returns). 0 = unlimited. Bounding the move
  /// count bounds migration cost for incremental (online) refinement.
  std::int32_t max_moves = 0;
};

/// Refines a 2-way assignment (entries must be 0 or 1) in place, reducing
/// edge cut while keeping both parts within tolerance of their targets.
/// Returns the final edge cut.
Weight fm_refine_bisection(const Graph& g, std::span<VertexId> part,
                           const FmOptions& opts);

}  // namespace massf
