#include "partition/bisect.hpp"

#include <algorithm>
#include <queue>

#include "partition/fm.hpp"
#include "partition/matching.hpp"
#include "util/check.hpp"

namespace massf {
namespace {

// Greedy graph growing (GGGP): grow part 0 from a random seed, always
// absorbing the frontier vertex with the largest connectivity to the grown
// region, until part 0 reaches its weight target.
std::vector<VertexId> grow_bisection(const Graph& g, Weight target0,
                                     Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> part(static_cast<std::size_t>(n), 1);
  if (n == 0 || target0 <= 0) return part;

  std::vector<Weight> attach(static_cast<std::size_t>(n), 0);
  std::vector<char> in0(static_cast<std::size_t>(n), 0);
  struct Cand {
    Weight attach;
    VertexId v;
    bool operator<(const Cand& o) const {
      return attach != o.attach ? attach < o.attach : v > o.v;
    }
  };
  std::priority_queue<Cand> frontier;

  Weight w0 = 0;
  VertexId grown = 0;
  const auto seed = static_cast<VertexId>(rng.uniform(
      static_cast<std::uint64_t>(n)));
  frontier.push({Weight{1}, seed});
  attach[static_cast<std::size_t>(seed)] = 1;

  while (w0 < target0 && grown < n) {
    VertexId v = kInvalidVertex;
    while (!frontier.empty()) {
      const Cand c = frontier.top();
      frontier.pop();
      const auto vi = static_cast<std::size_t>(c.v);
      if (in0[vi] || c.attach != attach[vi]) continue;  // taken or stale
      v = c.v;
      break;
    }
    if (v == kInvalidVertex) {
      // Disconnected remainder: restart from an arbitrary unabsorbed vertex.
      for (VertexId u = 0; u < n; ++u) {
        if (!in0[static_cast<std::size_t>(u)]) {
          v = u;
          break;
        }
      }
      if (v == kInvalidVertex) break;
    }
    const auto vi = static_cast<std::size_t>(v);
    in0[vi] = 1;
    part[vi] = 0;
    w0 += g.vertex_weight(v);
    ++grown;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.arc_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto ui = static_cast<std::size_t>(nbrs[i]);
      if (!in0[ui]) {
        attach[ui] += ws[i];
        frontier.push({attach[ui], nbrs[i]});
      }
    }
  }
  return part;
}

}  // namespace

std::vector<VertexId> multilevel_bisect(const Graph& g, Weight target0,
                                        const PartitionOptions& opts,
                                        double tolerance, Rng& rng) {
  const VertexId coarsen_stop = std::max<VertexId>(
      64, 2 * opts.coarsen_vertices_per_part);

  // Coarsening hierarchy. levels[0] is the input graph (by pointer); coarser
  // graphs are owned.
  std::vector<Graph> owned;
  std::vector<std::vector<VertexId>> maps;
  const Graph* cur = &g;
  while (cur->num_vertices() > coarsen_stop) {
    MatchingResult m = heavy_edge_matching(*cur, rng);
    // Stop when matching stalls (graph too dense/irregular to shrink).
    if (m.num_coarse >
        static_cast<VertexId>(0.95 * static_cast<double>(cur->num_vertices()))) {
      break;
    }
    owned.push_back(contract(*cur, m.coarse_map, m.num_coarse));
    maps.push_back(std::move(m.coarse_map));
    cur = &owned.back();
  }

  // Initial partition on the coarsest graph: best of several GGGP trials.
  FmOptions fm;
  fm.target0 = target0;
  fm.tolerance = tolerance;
  fm.max_passes = opts.refinement_passes;

  std::vector<VertexId> best_part;
  Weight best_cut = 0;
  for (std::int32_t trial = 0;
       trial < std::max<std::int32_t>(1, opts.initial_partition_trials);
       ++trial) {
    std::vector<VertexId> part = grow_bisection(*cur, target0, rng);
    const Weight cut = fm_refine_bisection(*cur, part, fm);
    if (best_part.empty() || cut < best_cut) {
      best_cut = cut;
      best_part = std::move(part);
    }
  }

  // Uncoarsen: project through each level and refine.
  for (std::size_t level = maps.size(); level-- > 0;) {
    const Graph& fine = level == 0 ? g : owned[level - 1];
    std::vector<VertexId> fine_part(
        static_cast<std::size_t>(fine.num_vertices()));
    for (VertexId v = 0; v < fine.num_vertices(); ++v) {
      fine_part[static_cast<std::size_t>(v)] =
          best_part[static_cast<std::size_t>(
              maps[level][static_cast<std::size_t>(v)])];
    }
    fm_refine_bisection(fine, fine_part, fm);
    best_part = std::move(fine_part);
  }
  MASSF_CHECK(static_cast<VertexId>(best_part.size()) == g.num_vertices());
  return best_part;
}

}  // namespace massf
