#include "partition/greedy_kcluster.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/check.hpp"

namespace massf {

std::vector<VertexId> greedy_k_cluster(const Graph& g, std::int32_t k,
                                       Rng& rng) {
  const VertexId n = g.num_vertices();
  MASSF_CHECK(k >= 1);
  std::vector<VertexId> part(static_cast<std::size_t>(n), kInvalidVertex);
  if (n == 0) return part;
  k = std::min<std::int32_t>(k, n);

  // k distinct random seeds.
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), VertexId{0});
  rng.shuffle(order);
  std::vector<std::deque<VertexId>> frontier(static_cast<std::size_t>(k));
  std::vector<std::int32_t> size(static_cast<std::size_t>(k), 0);
  for (std::int32_t c = 0; c < k; ++c) {
    const VertexId seed = order[static_cast<std::size_t>(c)];
    part[static_cast<std::size_t>(seed)] = c;
    frontier[static_cast<std::size_t>(c)].push_back(seed);
    ++size[static_cast<std::size_t>(c)];
  }

  // Round-robin: each cluster absorbs one unclaimed neighbor per turn by
  // following links out of its current component.
  VertexId assigned = static_cast<VertexId>(k);
  bool progress = true;
  while (assigned < n && progress) {
    progress = false;
    for (std::int32_t c = 0; c < k && assigned < n; ++c) {
      auto& fr = frontier[static_cast<std::size_t>(c)];
      while (!fr.empty()) {
        const VertexId v = fr.front();
        VertexId grabbed = kInvalidVertex;
        for (VertexId u : g.neighbors(v)) {
          if (part[static_cast<std::size_t>(u)] == kInvalidVertex) {
            grabbed = u;
            break;
          }
        }
        if (grabbed == kInvalidVertex) {
          fr.pop_front();  // exhausted vertex
          continue;
        }
        part[static_cast<std::size_t>(grabbed)] = c;
        fr.push_back(grabbed);
        ++size[static_cast<std::size_t>(c)];
        ++assigned;
        progress = true;
        break;
      }
    }
  }

  // Vertices unreachable from any seed (disconnected graphs): dump each
  // into the currently smallest cluster.
  for (VertexId v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == kInvalidVertex) {
      const auto smallest = static_cast<std::int32_t>(
          std::min_element(size.begin(), size.end()) - size.begin());
      part[static_cast<std::size_t>(v)] = smallest;
      ++size[static_cast<std::size_t>(smallest)];
    }
  }
  return part;
}

}  // namespace massf
