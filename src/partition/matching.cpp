#include "partition/matching.hpp"

#include <numeric>

namespace massf {

MatchingResult heavy_edge_matching(const Graph& g, Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> match(static_cast<std::size_t>(n), kInvalidVertex);
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), VertexId{0});
  rng.shuffle(order);

  for (VertexId v : order) {
    if (match[static_cast<std::size_t>(v)] != kInvalidVertex) continue;
    VertexId best = kInvalidVertex;
    Weight best_w = -1;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.arc_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (match[static_cast<std::size_t>(u)] != kInvalidVertex) continue;
      if (ws[i] > best_w) {
        best_w = ws[i];
        best = u;
      }
    }
    if (best != kInvalidVertex) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // singleton
    }
  }

  MatchingResult result;
  result.coarse_map.assign(static_cast<std::size_t>(n), kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (result.coarse_map[static_cast<std::size_t>(v)] != kInvalidVertex) {
      continue;
    }
    const VertexId m = match[static_cast<std::size_t>(v)];
    result.coarse_map[static_cast<std::size_t>(v)] = next;
    result.coarse_map[static_cast<std::size_t>(m)] = next;
    ++next;
  }
  result.num_coarse = next;
  return result;
}

}  // namespace massf
