// Heavy-edge matching for multilevel coarsening.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace massf {

struct MatchingResult {
  /// coarse vertex id per fine vertex, dense in [0, num_coarse).
  std::vector<VertexId> coarse_map;
  VertexId num_coarse = 0;
};

/// Visits vertices in random order and matches each unmatched vertex with
/// its unmatched neighbor of maximum edge weight (heavy-edge matching,
/// Karypis & Kumar). Unmatched vertices map to singleton coarse vertices.
MatchingResult heavy_edge_matching(const Graph& g, Rng& rng);

}  // namespace massf
