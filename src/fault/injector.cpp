#include "fault/injector.hpp"

#include <algorithm>

#include "ckpt/ckpt.hpp"
#include "util/check.hpp"

namespace massf {
namespace {

const char* kMetricNames[] = {
    "massf.fault.link_down",      "massf.fault.link_up",
    "massf.fault.router_crash",   "massf.fault.router_restore",
    "massf.fault.loss_burst",     "massf.fault.bgp_reset",
};

constexpr double kReconvergeBounds[] = {0.01, 0.05, 0.1, 0.2, 0.5,
                                        1.0,  2.0,  5.0, 10.0};

}  // namespace

FaultInjector::FaultInjector(const Network& net, ForwardingPlane& fp,
                             const FaultInjectorOptions& options)
    : net_(&net), fp_(&fp), opts_(options) {
  MASSF_CHECK(opts_.ospf_convergence_delay >= 0);
}

void FaultInjector::arm(Engine& engine, NetSim& sim,
                        const FaultSchedule& schedule) {
  MASSF_CHECK(sim_ == nullptr && "arm() may be called once");
  sim_ = &sim;
  controller_ = std::make_unique<FailoverController>(
      *fp_, opts_.ospf_convergence_delay);
  controller_->set_observer(
      [this](SimTime applied_at, LinkId, bool, SimTime requested_at) {
        ospf_reconverge_s_.push_back(to_seconds(applied_at - requested_at));
      });
  controller_->attach(engine);

  const auto num_links = static_cast<LinkId>(net_->links.size());
  for (const FaultEvent& e : schedule.events()) {
    ++injected_;
    ++count_[static_cast<std::size_t>(e.kind)];
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp: {
        MASSF_CHECK(e.target >= 0 && e.target < num_links);
        const NetLink& l = net_->links[static_cast<std::size_t>(e.target)];
        const bool up = e.kind == FaultKind::kLinkUp;
        if (net_->is_router(l.a) && net_->is_router(l.b)) {
          // Routed link: data plane now, OSPF one convergence delay later.
          if (up) {
            controller_->restore_link(engine, sim, e.target, e.at);
          } else {
            controller_->fail_link(engine, sim, e.target, e.at);
          }
        } else {
          // Host access link: no routing choice exists — pure data plane.
          sim.link_model().schedule_link_state(engine, e.target, e.at, up);
        }
        break;
      }
      case FaultKind::kRouterCrash:
      case FaultKind::kRouterRestore: {
        MASSF_CHECK(net_->is_router(e.target));
        const bool up = e.kind == FaultKind::kRouterRestore;
        // The router itself blackholes (kEvNodeState, which also drops the
        // crashed node's pending host app timers), and every incident
        // interface goes down with it.
        sim.schedule_node_state(engine, e.target, e.at, up);
        for (const Network::Incidence& inc : net_->incident(e.target)) {
          if (net_->is_router(inc.peer)) {
            if (up) {
              controller_->restore_link(engine, sim, inc.link, e.at);
            } else {
              controller_->fail_link(engine, sim, inc.link, e.at);
            }
          } else {
            sim.link_model().schedule_link_state(engine, inc.link, e.at, up);
          }
        }
        break;
      }
      case FaultKind::kLossBurst: {
        MASSF_CHECK(e.target >= 0 && e.target < num_links);
        sim.link_model().schedule_loss_state(engine, e.target, e.at, e.rate);
        sim.link_model().schedule_loss_state(engine, e.target,
                                             e.at + e.duration, 0.0);
        break;
      }
      case FaultKind::kBgpReset: {
        MASSF_CHECK(speakers_ != nullptr &&
                    "kBgpReset requires set_bgp() before arm()");
        speakers_->schedule_session_reset(engine, sim, e.target, e.peer,
                                          e.at, e.duration);
        bgp_reconverge_.push_back({e.at, -1});
        break;
      }
    }
  }
  std::sort(bgp_reconverge_.begin(), bgp_reconverge_.end(),
            [](const BgpReconvergence& a, const BgpReconvergence& b) {
              return a.at < b.at;
            });

  if (speakers_ != nullptr) {
    engine.hooks().barrier.push_back([this](Engine& eng, SimTime window_start) {
      on_barrier(eng, window_start);
    });
  }
}

void FaultInjector::on_barrier(Engine&, SimTime) {
  // Workers are quiescent at a barrier, so reading speaker state is safe;
  // barriers fall at identical virtual times under both executors, so the
  // samples — and the derived settle times — are deterministic.
  const SimTime change = speakers_->last_change();
  if (change <= last_bgp_change_seen_) return;
  last_bgp_change_seen_ = change;
  auto it = std::upper_bound(
      bgp_reconverge_.begin(), bgp_reconverge_.end(), change,
      [](SimTime t, const BgpReconvergence& r) { return t < r.at; });
  if (it == bgp_reconverge_.begin()) return;  // pre-fault churn (origination)
  --it;
  it->settle_s = std::max(it->settle_s, to_seconds(change - it->at));
}

void FaultInjector::publish_metrics(obs::Registry& registry) const {
  MASSF_CHECK(sim_ != nullptr && "publish_metrics() requires arm()");
  registry.counter("massf.fault.injected").inc(injected_);
  for (std::size_t k = 0; k < std::size(kMetricNames); ++k) {
    registry.counter(kMetricNames[k]).inc(count_[k]);
  }

  const NetSim::Counters totals = sim_->totals();
  registry.counter("massf.fault.packets_blackholed")
      .inc(totals.dropped_link_down + totals.dropped_node_down +
           totals.dropped_loss);
  registry.counter("massf.fault.flows_abandoned").inc(totals.flows_failed);
  registry.counter("massf.fault.app_timers_dropped")
      .inc(totals.app_timers_dropped);

  obs::Histogram& ospf =
      registry.histogram("massf.fault.ospf_reconverge_s", kReconvergeBounds);
  for (const double s : ospf_reconverge_s_) ospf.observe(s);
  obs::Histogram& bgp =
      registry.histogram("massf.fault.bgp_reconverge_s", kReconvergeBounds);
  for (const BgpReconvergence& r : bgp_reconverge_) {
    if (r.settle_s >= 0) bgp.observe(r.settle_s);
  }
}

void FaultInjector::save(ckpt::Writer& w) const {
  w.u64(injected_);
  for (const std::uint64_t c : count_) w.u64(c);
  ckpt::write_f64_vec(w, ospf_reconverge_s_);
  w.u64(bgp_reconverge_.size());
  for (const BgpReconvergence& r : bgp_reconverge_) {
    w.i64(r.at);
    w.f64(r.settle_s);
  }
  w.i64(last_bgp_change_seen_);
  MASSF_CHECK(controller_ != nullptr && "save() requires arm()");
  controller_->save(w);
}

bool FaultInjector::load(ckpt::Reader& r) {
  if (controller_ == nullptr) return false;  // must be armed first
  injected_ = r.u64();
  for (std::uint64_t& c : count_) c = r.u64();
  if (!ckpt::read_f64_vec(r, ospf_reconverge_s_)) return false;
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ULL << 32)) return false;
  bgp_reconverge_.assign(static_cast<std::size_t>(n), BgpReconvergence{});
  for (BgpReconvergence& b : bgp_reconverge_) {
    b.at = r.i64();
    b.settle_s = r.f64();
  }
  last_bgp_change_seen_ = r.i64();
  if (!r.ok()) return false;
  return controller_->load(r);
}

}  // namespace massf
