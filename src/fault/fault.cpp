#include "fault/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace massf {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kRouterCrash: return "crash";
    case FaultKind::kRouterRestore: return "restore";
    case FaultKind::kLossBurst: return "loss";
    case FaultKind::kBgpReset: return "bgp_reset";
  }
  return "?";
}

FaultSchedule& FaultSchedule::link_down(SimTime at, LinkId link) {
  MASSF_CHECK(at >= 0 && link >= 0);
  events_.push_back({at, FaultKind::kLinkDown, link, -1, 0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::link_up(SimTime at, LinkId link) {
  MASSF_CHECK(at >= 0 && link >= 0);
  events_.push_back({at, FaultKind::kLinkUp, link, -1, 0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::flap_train(SimTime start, LinkId link,
                                         std::int32_t count, SimTime period,
                                         SimTime downtime) {
  MASSF_CHECK(count > 0 && period > 0 && downtime > 0 && downtime < period);
  for (std::int32_t i = 0; i < count; ++i) {
    link_down(start + period * i, link);
    link_up(start + period * i + downtime, link);
  }
  return *this;
}

FaultSchedule& FaultSchedule::router_crash(SimTime at, NodeId router) {
  MASSF_CHECK(at >= 0 && router >= 0);
  events_.push_back({at, FaultKind::kRouterCrash, router, -1, 0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::router_restore(SimTime at, NodeId router) {
  MASSF_CHECK(at >= 0 && router >= 0);
  events_.push_back({at, FaultKind::kRouterRestore, router, -1, 0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::loss_burst(SimTime at, LinkId link,
                                         SimTime duration, double rate) {
  MASSF_CHECK(at >= 0 && link >= 0 && duration > 0);
  MASSF_CHECK(rate > 0 && rate < 1.0);
  events_.push_back({at, FaultKind::kLossBurst, link, -1, duration, rate});
  return *this;
}

FaultSchedule& FaultSchedule::bgp_reset(SimTime at, AsId as, AsId peer,
                                        SimTime downtime) {
  MASSF_CHECK(at >= 0 && as >= 0 && peer >= 0 && as != peer && downtime > 0);
  events_.push_back({at, FaultKind::kBgpReset, as, peer, downtime, 0});
  return *this;
}

FaultSchedule& FaultSchedule::append(const FaultSchedule& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  return *this;
}

std::string FaultSchedule::to_text() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  std::ostringstream out;
  char buf[160];
  for (const FaultEvent& e : sorted) {
    const double at_s = to_seconds(e.at);
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        std::snprintf(buf, sizeof buf, "at %g %s link=%d", at_s,
                      fault_kind_name(e.kind), e.target);
        break;
      case FaultKind::kRouterCrash:
      case FaultKind::kRouterRestore:
        std::snprintf(buf, sizeof buf, "at %g %s router=%d", at_s,
                      fault_kind_name(e.kind), e.target);
        break;
      case FaultKind::kLossBurst:
        std::snprintf(buf, sizeof buf,
                      "at %g loss link=%d duration=%g rate=%g", at_s,
                      e.target, to_seconds(e.duration), e.rate);
        break;
      case FaultKind::kBgpReset:
        std::snprintf(buf, sizeof buf,
                      "at %g bgp_reset as=%d peer=%d downtime=%g", at_s,
                      e.target, e.peer, to_seconds(e.duration));
        break;
    }
    out << buf << '\n';
  }
  return out.str();
}

namespace {

// One parsed `key=value` argument list.
using Args = std::map<std::string, std::string, std::less<>>;

bool parse_double(std::string_view s, double* out) {
  char* end = nullptr;
  const std::string tmp(s);
  *out = std::strtod(tmp.c_str(), &end);
  return end == tmp.c_str() + tmp.size() && !tmp.empty();
}

bool parse_int(std::string_view s, std::int32_t* out) {
  double d = 0;
  if (!parse_double(s, &d)) return false;
  *out = static_cast<std::int32_t>(d);
  return static_cast<double>(*out) == d;
}

std::optional<std::string> get(const Args& args, std::string_view key) {
  const auto it = args.find(key);
  if (it == args.end()) return std::nullopt;
  return it->second;
}

bool require_int(const Args& args, std::string_view key, std::int32_t* out,
                 std::string* error) {
  const auto v = get(args, key);
  if (!v || !parse_int(*v, out)) {
    *error = "missing or malformed " + std::string(key);
    return false;
  }
  return true;
}

bool require_double(const Args& args, std::string_view key, double* out,
                    std::string* error) {
  const auto v = get(args, key);
  if (!v || !parse_double(*v, out)) {
    *error = "missing or malformed " + std::string(key);
    return false;
  }
  return true;
}

}  // namespace

std::optional<FaultSchedule> parse_fault_schedule(std::string_view text,
                                                  std::string* error) {
  FaultSchedule schedule;
  std::istringstream in{std::string(text)};
  std::string line;
  std::int32_t line_no = 0;

  const auto fail = [&](const std::string& what) {
    if (error) {
      *error = "line " + std::to_string(line_no) + ": " + what;
    }
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string word;
    std::vector<std::string> parts;
    while (tokens >> word) parts.push_back(word);
    if (parts.empty()) continue;

    if (parts.size() < 3 || parts[0] != "at") {
      return fail("expected `at <seconds> <event> key=value...`");
    }
    double at_s = 0;
    if (!parse_double(parts[1], &at_s) || at_s < 0) {
      return fail("bad time `" + parts[1] + "`");
    }
    const SimTime at = from_seconds(at_s);
    const std::string& verb = parts[2];

    Args args;
    for (std::size_t i = 3; i < parts.size(); ++i) {
      const auto eq = parts[i].find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail("bad argument `" + parts[i] + "` (want key=value)");
      }
      args[parts[i].substr(0, eq)] = parts[i].substr(eq + 1);
    }

    std::string what;
    if (verb == "link_down" || verb == "link_up") {
      std::int32_t link = -1;
      if (!require_int(args, "link", &link, &what)) return fail(what);
      if (verb == "link_down") {
        schedule.link_down(at, link);
      } else {
        schedule.link_up(at, link);
      }
    } else if (verb == "flap") {
      std::int32_t link = -1, count = 0;
      double period = 0, downtime = 0;
      if (!require_int(args, "link", &link, &what) ||
          !require_int(args, "count", &count, &what) ||
          !require_double(args, "period", &period, &what) ||
          !require_double(args, "downtime", &downtime, &what)) {
        return fail(what);
      }
      if (count <= 0 || period <= 0 || downtime <= 0 || downtime >= period) {
        return fail("flap needs count>0 and 0<downtime<period");
      }
      schedule.flap_train(at, link, count, from_seconds(period),
                          from_seconds(downtime));
    } else if (verb == "crash" || verb == "restore") {
      std::int32_t router = -1;
      if (!require_int(args, "router", &router, &what)) return fail(what);
      if (verb == "crash") {
        schedule.router_crash(at, router);
      } else {
        schedule.router_restore(at, router);
      }
    } else if (verb == "loss") {
      std::int32_t link = -1;
      double duration = 0, rate = 0;
      if (!require_int(args, "link", &link, &what) ||
          !require_double(args, "duration", &duration, &what) ||
          !require_double(args, "rate", &rate, &what)) {
        return fail(what);
      }
      if (duration <= 0 || rate <= 0 || rate >= 1.0) {
        return fail("loss needs duration>0 and 0<rate<1");
      }
      schedule.loss_burst(at, link, from_seconds(duration), rate);
    } else if (verb == "bgp_reset") {
      std::int32_t as = -1, peer = -1;
      double downtime = 0;
      if (!require_int(args, "as", &as, &what) ||
          !require_int(args, "peer", &peer, &what) ||
          !require_double(args, "downtime", &downtime, &what)) {
        return fail(what);
      }
      if (as == peer || downtime <= 0) {
        return fail("bgp_reset needs as != peer and downtime>0");
      }
      schedule.bgp_reset(at, as, peer, from_seconds(downtime));
    } else {
      return fail("unknown event `" + verb + "`");
    }
  }
  return schedule;
}

}  // namespace massf
