// Deterministic fault schedules — the "chaos scenario" input format.
//
// A FaultSchedule is a list of timed fault events: link down/up, link flap
// trains, router crash/restore, loss bursts on a link, BGP session resets.
// Schedules are built programmatically or parsed from a small line-based
// text format (one event per line, key=value arguments):
//
//   # seconds are virtual time; '#' comments run to end of line
//   at 1.0  link_down link=3
//   at 4.0  link_up   link=3
//   at 2.0  flap      link=5 count=4 period=0.5 downtime=0.2
//   at 3.0  crash     router=7
//   at 6.0  restore   router=7
//   at 2.5  loss      link=2 duration=0.5 rate=0.05
//   at 5.0  bgp_reset as=1 peer=2 downtime=1.0
//
// The schedule itself is pure data. The FaultInjector (injector.hpp)
// compiles it into simulation events before the run; because every event
// is scheduled up front through the engine's deterministic channels, a
// given (schedule, seed) pair produces bit-identical results under the
// sequential and threaded executors.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "topology/network.hpp"
#include "util/sim_time.hpp"

namespace massf {

enum class FaultKind {
  kLinkDown,       ///< target = link
  kLinkUp,         ///< target = link
  kRouterCrash,    ///< target = router
  kRouterRestore,  ///< target = router
  kLossBurst,      ///< target = link; rate in [0,1) for `duration`
  kBgpReset,       ///< target = AS, peer = neighbor AS; down for `duration`
};

/// A single fault. `duration` and `rate` are meaningful only for the kinds
/// documented above; they are zero otherwise.
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kLinkDown;
  std::int32_t target = -1;  ///< link, router, or AS id depending on kind
  std::int32_t peer = -1;    ///< kBgpReset: the neighbor AS
  SimTime duration = 0;      ///< kLossBurst: burst length; kBgpReset: downtime
  double rate = 0;           ///< kLossBurst: per-packet loss probability
};

const char* fault_kind_name(FaultKind kind);

/// Builder + container for a chaos scenario. Events may be added in any
/// order; the injector sorts by time when compiling.
class FaultSchedule {
 public:
  FaultSchedule& link_down(SimTime at, LinkId link);
  FaultSchedule& link_up(SimTime at, LinkId link);
  /// `count` down/up cycles: down at start + i*period, up `downtime` later.
  FaultSchedule& flap_train(SimTime start, LinkId link, std::int32_t count,
                            SimTime period, SimTime downtime);
  FaultSchedule& router_crash(SimTime at, NodeId router);
  FaultSchedule& router_restore(SimTime at, NodeId router);
  FaultSchedule& loss_burst(SimTime at, LinkId link, SimTime duration,
                            double rate);
  FaultSchedule& bgp_reset(SimTime at, AsId as, AsId peer, SimTime downtime);

  /// Splices another schedule's events in (scenario files may combine an
  /// included fault file with embedded event lines).
  FaultSchedule& append(const FaultSchedule& other);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Serializes to the text format above (one line per event, sorted by
  /// time); parse_fault_schedule() round-trips it.
  std::string to_text() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Parses the line-based scenario format. Returns std::nullopt on error
/// and, when `error` is non-null, a "line N: what" message (mirroring the
/// DML parser's error idiom).
std::optional<FaultSchedule> parse_fault_schedule(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace massf
