// Compiles a FaultSchedule into deterministic simulation events.
//
// The injector is armed once, before the run. Every fault is realized
// through the engine's existing deterministic channels:
//
//   link down/up    -> FailoverController (data plane immediately, OSPF
//                      reconvergence one convergence delay later, applied
//                      at a window barrier)
//   router crash    -> kEvNodeState blackhole at the router + all incident
//                      links down (router-router links go through the
//                      controller so OSPF reroutes; host access links are
//                      pure data-plane)
//   loss burst      -> kEvLossState on both directions of the link; drop
//                      decisions hash a per-slot counter with the fault
//                      seed, owned by the transmitting LP
//   bgp reset       -> BgpSpeakers::schedule_session_reset
//
// Because everything is pre-scheduled or applied at barriers, a given
// (schedule, seed) pair is bit-identical under the sequential and threaded
// executors — the property the chaos_beacon harness asserts end to end.
//
// Reconvergence accounting (the massf.fault.v1 metrics schema, DESIGN.md
// Section 5c):
//   - OSPF: per applied link-state change, barrier-apply time minus the
//     data-plane change time (observer on the FailoverController).
//   - BGP: the injector samples BgpSpeakers::last_change() at every
//     barrier; each observed route-table change is attributed to the
//     latest BGP-visible fault at or before it, and that fault's settle
//     time is the latest change attributed to it minus its start time.
#pragma once

#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "routing/bgp_dynamic.hpp"
#include "sim/failover.hpp"

namespace massf {

struct FaultInjectorOptions {
  /// OSPF detection + flooding + SPF delay applied to every link-state
  /// fault (the FailoverController's convergence delay).
  SimTime ospf_convergence_delay = milliseconds(200);
};

class FaultInjector {
 public:
  FaultInjector(const Network& net, ForwardingPlane& fp,
                const FaultInjectorOptions& options = {});

  /// Optional: enables kBgpReset events and BGP reconvergence tracking.
  void set_bgp(BgpSpeakers* speakers) { speakers_ = speakers; }

  /// Compiles `schedule` into engine events and installs the barrier
  /// hooks. Call once, before the run. Aborts on out-of-range targets or
  /// a kBgpReset without set_bgp().
  void arm(Engine& engine, NetSim& sim, const FaultSchedule& schedule);

  // ---- post-run queries ---------------------------------------------------

  std::uint64_t faults_injected() const { return injected_; }

  /// Per applied OSPF change: reconvergence time in seconds.
  const std::vector<double>& ospf_reconvergence_s() const {
    return ospf_reconverge_s_;
  }

  /// Per BGP-visible fault event: (event time, settle seconds). Settle is
  /// -1 when no route change was attributed to the event.
  struct BgpReconvergence {
    SimTime at = 0;
    double settle_s = -1;
  };
  const std::vector<BgpReconvergence>& bgp_reconvergence() const {
    return bgp_reconverge_;
  }

  /// Publishes the `massf.fault.*` metrics (schema massf.fault.v1):
  /// injection counters per kind, packets blackholed, flows abandoned, and
  /// the reconvergence histograms. Reads drop totals from the NetSim the
  /// injector was armed with.
  void publish_metrics(obs::Registry& registry) const;

  /// Checkpoint hooks (ckpt/ckpt.hpp): injection counters, reconvergence
  /// records, the BGP-change cursor, and the owned FailoverController's
  /// pending changes. The injector must be armed (with the same schedule)
  /// before load() — arming rebuilds the hooks and initial events, restore
  /// then overwrites the mutable cursors.
  void save(ckpt::Writer& writer) const;
  bool load(ckpt::Reader& reader);

 private:
  void on_barrier(Engine& engine, SimTime window_start);

  const Network* net_;
  ForwardingPlane* fp_;
  FaultInjectorOptions opts_;
  BgpSpeakers* speakers_ = nullptr;
  NetSim* sim_ = nullptr;
  std::unique_ptr<FailoverController> controller_;

  std::uint64_t injected_ = 0;
  std::uint64_t count_[6] = {};  ///< per FaultKind

  std::vector<double> ospf_reconverge_s_;
  std::vector<BgpReconvergence> bgp_reconverge_;  ///< sorted by .at
  SimTime last_bgp_change_seen_ = -1;
};

}  // namespace massf
