#include "shard/supervisor.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "guard/guarded_run.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/warn.hpp"

namespace massf::shard {
namespace {

using Clock = std::chrono::steady_clock;

double bits_double(std::uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// The failure artifact: control page + ring cursors, enough to see which
/// shard wedged on which channel (uploaded by the nightly job).
void dump_rings(const ShardShm& shm, const std::string& path,
                const std::string& reason) {
  if (path.empty()) return;
  const ShmHeader& hdr = shm.header();
  std::ostringstream out;
  out << "{\n  \"schema\": \"massf.shard.dump.v1\",\n";
  out << "  \"reason\": \"" << reason << "\",\n";
  out << "  \"num_shards\": " << hdr.num_shards << ",\n";
  out << "  \"num_lps\": " << hdr.num_lps << ",\n";
  out << "  \"slots\": [\n";
  for (std::uint32_t k = 0; k < hdr.num_shards; ++k) {
    const ControlSlot& s = shm.slot(static_cast<std::int32_t>(k));
    out << "    {\"shard\": " << k << ", \"epoch\": "
        << s.epoch.load(std::memory_order_relaxed) << ", \"state\": "
        << s.state.load(std::memory_order_relaxed) << ", \"pid\": "
        << s.pid.load(std::memory_order_relaxed) << ", \"windows\": "
        << s.heartbeat_windows.load(std::memory_order_relaxed)
        << ", \"events\": "
        << s.heartbeat_events.load(std::memory_order_relaxed)
        << ", \"ring_stalls\": "
        << s.ring_stalls.load(std::memory_order_relaxed) << "}"
        << (k + 1 < hdr.num_shards ? ",\n" : "\n");
  }
  out << "  ],\n  \"rings\": [\n";
  bool first = true;
  for (std::uint32_t i = 0; i < hdr.num_shards; ++i) {
    for (std::uint32_t j = 0; j < hdr.num_shards; ++j) {
      if (i == j) continue;
      const ShmRing ring = shm.ring(static_cast<std::int32_t>(i),
                                    static_cast<std::int32_t>(j));
      if (!first) out << ",\n";
      first = false;
      out << "    {\"from\": " << i << ", \"to\": " << j
          << ", \"used_bytes\": " << ring.used() << "}";
    }
  }
  out << "\n  ]\n}\n";
  std::ofstream f(path);
  f << out.str();
}

/// Kills what is left, reaps, and re-raises — preferring a worker's own
/// structured EngineError over the supervisor's summary.
[[noreturn]] void fail_run(const ShardShm& shm, const ShardOptions& opts,
                           std::int32_t shards, const std::vector<pid_t>& pids,
                           std::vector<bool>* exited,
                           const std::string& reason) {
  dump_rings(shm, opts.ring_dump_path, reason);
  shm.request_abort();
  for (std::int32_t k = 0; k < shards; ++k) {
    if (!(*exited)[k] && pids[k] > 0) ::kill(pids[k], SIGKILL);
  }
  for (std::int32_t k = 0; k < shards; ++k) {
    if (!(*exited)[k] && pids[k] > 0) {
      int status = 0;
      ::waitpid(pids[k], &status, 0);
      (*exited)[k] = true;
    }
  }
  for (std::int32_t k = 0; k < shards; ++k) {
    const ControlSlot& s = shm.slot(k);
    if (s.state.load(std::memory_order_acquire) ==
        static_cast<std::uint32_t>(WorkerState::kError)) {
      const auto cat = static_cast<ErrorCategory>(
          s.error_category.load(std::memory_order_relaxed));
      MASSF_THROW(cat, "shard worker " + std::to_string(k) + " failed: " +
                           std::string(s.error_message) + " (" + reason + ")");
    }
  }
  MASSF_THROW(ErrorCategory::kProtocolStall, reason);
}

std::uint64_t progress_sample(const ShardShm& shm, std::int32_t shards) {
  std::uint64_t sum = 0;
  for (std::int32_t k = 0; k < shards; ++k) {
    const ControlSlot& s = shm.slot(k);
    sum += s.epoch.load(std::memory_order_relaxed);
    sum += s.heartbeat_windows.load(std::memory_order_relaxed);
    sum += s.heartbeat_events.load(std::memory_order_relaxed);
  }
  return sum;
}

/// The per-worker watchdog: poll child liveness + shared-page progress
/// until every worker exits cleanly; any crash, nonzero exit, or frozen
/// progress counter aborts the run with diagnostics.
void supervise(const ShardShm& shm, const ShardOptions& opts,
               std::int32_t shards, const std::vector<pid_t>& pids) {
  std::vector<bool> exited(static_cast<std::size_t>(shards), false);
  std::int32_t live = shards;
  std::uint64_t last_progress = ~std::uint64_t{0};
  auto last_change = Clock::now();
  while (live > 0) {
    for (std::int32_t k = 0; k < shards; ++k) {
      if (exited[static_cast<std::size_t>(k)]) continue;
      int status = 0;
      const pid_t r = ::waitpid(pids[k], &status, WNOHANG);
      if (r == 0) continue;
      exited[static_cast<std::size_t>(k)] = true;
      --live;
      const bool clean =
          r == pids[k] && WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
          shm.slot(k).state.load(std::memory_order_acquire) ==
              static_cast<std::uint32_t>(WorkerState::kDone);
      if (!clean) {
        std::string why;
        if (r == pids[k] && WIFSIGNALED(status)) {
          why = "shard worker " + std::to_string(k) + " killed by signal " +
                std::to_string(WTERMSIG(status));
        } else if (r == pids[k] && WIFEXITED(status)) {
          why = "shard worker " + std::to_string(k) + " exited with code " +
                std::to_string(WEXITSTATUS(status));
        } else {
          why = "shard worker " + std::to_string(k) + " lost (waitpid)";
        }
        fail_run(shm, opts, shards, pids, &exited, why);
      }
    }
    if (live == 0) break;
    const std::uint64_t progress = progress_sample(shm, shards);
    if (progress != last_progress) {
      last_progress = progress;
      last_change = Clock::now();
    } else if (std::chrono::duration<double>(Clock::now() - last_change)
                   .count() > opts.stall_deadline_s) {
      fail_run(shm, opts, shards, pids, &exited,
               "no cross-shard progress for " +
                   std::to_string(opts.stall_deadline_s) +
                   "s (stall deadline)");
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts.poll_interval_s));
  }
}

ShardResult assemble(const ShardShm& shm, const Engine& engine,
                     std::int32_t shards) {
  ShardResult result;
  result.shards = shards;
  const std::int32_t n = engine.num_lps();
  RunStats& st = result.stats;
  const ControlSlot& s0 = shm.slot(0);
  st.num_windows = s0.fin_num_windows.load(std::memory_order_relaxed);
  st.modeled_wall_s =
      bits_double(s0.fin_wall_bits.load(std::memory_order_relaxed));
  st.modeled_sync_s =
      bits_double(s0.fin_sync_bits.load(std::memory_order_relaxed));
  st.modeled_migrate_s =
      bits_double(s0.fin_migrate_bits.load(std::memory_order_relaxed));
  st.end_vtime =
      std::min(static_cast<SimTime>(
                   s0.fin_floor.load(std::memory_order_relaxed)),
               engine.options().end_time);
  st.events_per_lp.assign(static_cast<std::size_t>(n), 0);
  st.busy_s.assign(static_cast<std::size_t>(n), 0.0);
  for (std::int32_t i = 0; i < n; ++i) {
    const LpCell& cell = shm.lp(i);
    const std::uint64_t events = cell.events.load(std::memory_order_relaxed);
    st.events_per_lp[static_cast<std::size_t>(i)] = events;
    st.total_events += events;
    st.busy_s[static_cast<std::size_t>(i)] =
        bits_double(cell.busy_bits.load(std::memory_order_relaxed));
    result.checksum = result.checksum * 31 +
                      cell.checksum.load(std::memory_order_relaxed);
  }
  for (std::int32_t k = 0; k < shards; ++k) {
    const ControlSlot& s = shm.slot(k);
    st.cross_lp_events += s.fin_cross_events.load(std::memory_order_relaxed);
    st.merge_batches += s.fin_merge_batches.load(std::memory_order_relaxed);
    result.metrics.cross_shard_events +=
        s.cross_shard_events.load(std::memory_order_relaxed);
    result.metrics.batch_bytes +=
        s.batch_bytes.load(std::memory_order_relaxed);
    result.metrics.frames += s.frames.load(std::memory_order_relaxed);
    result.metrics.ring_stalls +=
        s.ring_stalls.load(std::memory_order_relaxed);
    result.metrics.ring_wait_s +=
        static_cast<double>(s.ring_wait_ns.load(std::memory_order_relaxed)) *
        1e-9;
    result.metrics.control_waits +=
        s.control_waits.load(std::memory_order_relaxed);
    result.metrics.control_wait_s +=
        static_cast<double>(
            s.control_wait_ns.load(std::memory_order_relaxed)) *
        1e-9;
  }
  return result;
}

void publish_metrics(obs::Registry* registry, const ShardResult& result) {
  if (registry == nullptr) return;
  registry->counter("pdes.shard.workers")
      .inc(static_cast<std::uint64_t>(result.shards));
  registry->counter("pdes.shard.cross_events")
      .inc(result.metrics.cross_shard_events);
  registry->counter("pdes.shard.batch_bytes").inc(result.metrics.batch_bytes);
  registry->counter("pdes.shard.frames").inc(result.metrics.frames);
  registry->counter("pdes.shard.ring_stalls").inc(result.metrics.ring_stalls);
  registry->counter("pdes.shard.control_waits")
      .inc(result.metrics.control_waits);
  registry->gauge("pdes.shard.ring_wait_s").set(result.metrics.ring_wait_s);
  registry->gauge("pdes.shard.control_wait_s")
      .set(result.metrics.control_wait_s);
  registry->gauge("pdes.shard.degraded_rung")
      .set(static_cast<double>(result.degraded_rung));
}

WorkerOptions worker_options(const ShardOptions& opts, std::int32_t shard,
                             std::function<std::uint64_t(LpId)> lp_checksum) {
  WorkerOptions wo;
  wo.shard = shard;
  wo.ckpt_every = opts.ckpt_every;
  wo.ckpt_dir = opts.ckpt_dir;
  wo.migrations = opts.migrations;
  wo.lp_checksum = std::move(lp_checksum);
  if (shard == opts.kill_shard) {
    wo.kill_after_windows = opts.kill_after_windows;
    wo.kill_in_send = opts.kill_in_send;
  }
  return wo;
}

/// One sharded attempt in fork mode over the (pristine, never-run) parent
/// workload: children inherit the built engine copy-on-write.
ShardResult attempt_fork(const ShardOptions& opts, const ShardWorkload& w) {
  const std::int32_t n = w.engine->num_lps();
  ShardShm shm =
      ShardShm::create_anonymous(static_cast<std::uint32_t>(opts.shards),
                                 static_cast<std::uint32_t>(n),
                                 opts.ring_bytes);
  std::vector<pid_t> pids(static_cast<std::size_t>(opts.shards), -1);
  std::fflush(stdout);
  std::fflush(stderr);
  for (std::int32_t k = 0; k < opts.shards; ++k) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      shm.request_abort();
      std::vector<bool> exited(static_cast<std::size_t>(opts.shards), true);
      for (std::int32_t j = 0; j < k; ++j) {
        exited[static_cast<std::size_t>(j)] = false;
      }
      fail_run(shm, opts, opts.shards, pids, &exited, "fork failed");
    }
    if (pid == 0) {
      const int rc =
          run_worker(*w.engine, shm, worker_options(opts, k, w.lp_checksum));
      // _exit: no atexit/static destructors in the forked image.
      ::_exit(rc);
    }
    pids[static_cast<std::size_t>(k)] = pid;
  }
  supervise(shm, opts, opts.shards, pids);
  return assemble(shm, *w.engine, opts.shards);
}

/// The single-process rung: sequential reference executor, resuming from
/// the per-shard checkpoint set when asked and possible.
ShardResult run_single(const ShardOptions& opts, const WorkloadFn& workload,
                       ShardWorkload&& built, std::int32_t shard_count,
                       bool try_restore) {
  ShardWorkload w = std::move(built);
  if (!w.engine) w = workload();
  bool recovered = false;
  if (try_restore && !opts.ckpt_dir.empty() && opts.ckpt_every > 0) {
    std::string error;
    recovered = ShardDriver::restore_from_shards(*w.engine, opts.ckpt_dir,
                                                 shard_count, &error);
    if (!recovered) {
      std::fprintf(stderr,
                   "massf shard: no usable shard checkpoint set (%s); "
                   "falling back to a fresh run\n",
                   error.c_str());
      // A failed restore may have half-mutated the engine: rebuild.
      w = workload();
    }
  }
  ShardResult result;
  result.stats = w.engine->run();
  result.shards = 1;
  result.recovered = recovered;
  if (w.lp_checksum) {
    for (LpId i = 0; i < w.engine->num_lps(); ++i) {
      result.checksum = result.checksum * 31 + w.lp_checksum(i);
    }
  }
  return result;
}

}  // namespace

ShardResult run_sharded(const ShardOptions& options, const WorkloadFn& workload,
                        obs::Registry* registry) {
  ShardWorkload built = workload();
  MASSF_ENFORCE(built.engine != nullptr && built.engine->num_lps() > 0,
                ErrorCategory::kConfig,
                "sharded run needs a workload with at least one LP");
  ShardOptions opts = options;
  MASSF_ENFORCE(opts.shards >= 1, ErrorCategory::kConfig,
                "--shards wants a positive worker count");
  const std::int32_t n = built.engine->num_lps();
  if (opts.shards > n) {
    warn(ErrorCategory::kConfig,
         "run_sharded: " + std::to_string(opts.shards) +
             " shards requested for " + std::to_string(n) +
             " LPs; clamped to " + std::to_string(n) +
             " (an LP-less worker would only forward null messages)");
    opts.shards = n;
  }
  if (opts.shards == 1) {
    ShardResult result = run_single(opts, workload, std::move(built),
                                    opts.shards, /*try_restore=*/false);
    publish_metrics(registry, result);
    return result;
  }
  if (!opts.fallback) {
    ShardResult result = attempt_fork(opts, built);
    publish_metrics(registry, result);
    return result;
  }

  ShardResult result;
  guard::GuardedRun ladder(guard::GuardedRun::Options{opts.max_retries},
                           registry);
  // threads=2 gives the ladder its sequential rung; the attempt fn maps
  // rung 0 -> sharded, any later rung -> single-process fallback.
  const guard::GuardedRunReport report = ladder.run(
      SyncMode::kBarrier, /*threads=*/2,
      [&](const guard::AttemptPlan& plan) -> guard::AttemptOutcome {
        try {
          if (plan.rung == 0) {
            result = attempt_fork(opts, built);
          } else {
            result = run_single(opts, workload, ShardWorkload{}, opts.shards,
                                plan.restore);
            result.degraded_rung = plan.rung;
          }
          return {guard::AttemptStatus::kCompleted, ""};
        } catch (const EngineError& err) {
          return {guard::AttemptStatus::kFailed, err.what()};
        }
      });
  if (!report.completed) {
    MASSF_THROW(ErrorCategory::kProtocolStall,
                "sharded run failed after " +
                    std::to_string(report.attempts) +
                    " attempts: " + report.last_error);
  }
  result.attempts = report.attempts;
  publish_metrics(registry, result);
  return result;
}

ShardResult run_sharded_exec(const ShardOptions& options,
                             const std::string& worker_command,
                             const WorkloadFn& workload,
                             obs::Registry* registry) {
  ShardWorkload built = workload();
  MASSF_ENFORCE(built.engine != nullptr && built.engine->num_lps() > 0,
                ErrorCategory::kConfig,
                "sharded run needs a workload with at least one LP");
  ShardOptions opts = options;
  MASSF_ENFORCE(opts.shards >= 1, ErrorCategory::kConfig,
                "--shards wants a positive worker count");
  const std::int32_t n = built.engine->num_lps();
  if (opts.shards > n) {
    warn(ErrorCategory::kConfig,
         "run_sharded_exec: " + std::to_string(opts.shards) +
             " shards requested for " + std::to_string(n) +
             " LPs; clamped to " + std::to_string(n));
    opts.shards = n;
  }
  if (opts.shards == 1) {
    ShardResult result = run_single(opts, workload, std::move(built),
                                    opts.shards, /*try_restore=*/false);
    publish_metrics(registry, result);
    return result;
  }

  std::string shm_path = "/tmp/massf-shard-" + std::to_string(::getpid()) +
                         "-" + std::to_string(opts.shards) + ".shm";
  ShardShm shm = ShardShm::create_file(
      shm_path, static_cast<std::uint32_t>(opts.shards),
      static_cast<std::uint32_t>(n), opts.ring_bytes);

  // The campaign-runner idiom: one launcher thread per worker process,
  // each self-exec'ing the host binary with the worker flags appended.
  std::vector<std::thread> launchers;
  std::vector<int> rcs(static_cast<std::size_t>(opts.shards), -1);
  for (std::int32_t k = 0; k < opts.shards; ++k) {
    launchers.emplace_back([&, k] {
      const std::string cmd = worker_command + " --shard-worker=" +
                              std::to_string(k) + " --shard-shm=" + shm_path;
      rcs[static_cast<std::size_t>(k)] = std::system(cmd.c_str());
    });
  }
  // Workers report their pids through the control page; supervise() can't
  // waitpid (the launcher shell owns them), so poll pid liveness instead.
  std::vector<bool> exited(static_cast<std::size_t>(opts.shards), false);
  std::int32_t live = opts.shards;
  std::uint64_t last_progress = ~std::uint64_t{0};
  auto last_change = Clock::now();
  const auto fail_exec = [&](const std::string& reason) {
    dump_rings(shm, opts.ring_dump_path, reason);
    shm.request_abort();
    for (std::int32_t k = 0; k < opts.shards; ++k) {
      const pid_t pid = shm.slot(k).pid.load(std::memory_order_relaxed);
      if (!exited[static_cast<std::size_t>(k)] && pid > 0) {
        ::kill(pid, SIGKILL);
      }
    }
    for (auto& t : launchers) t.join();
    for (std::int32_t k = 0; k < opts.shards; ++k) {
      const ControlSlot& s = shm.slot(k);
      if (s.state.load(std::memory_order_acquire) ==
          static_cast<std::uint32_t>(WorkerState::kError)) {
        const auto cat = static_cast<ErrorCategory>(
            s.error_category.load(std::memory_order_relaxed));
        MASSF_THROW(cat, "shard worker " + std::to_string(k) + " failed: " +
                             std::string(s.error_message) + " (" + reason +
                             ")");
      }
    }
    MASSF_THROW(ErrorCategory::kProtocolStall, reason);
  };
  while (live > 0) {
    for (std::int32_t k = 0; k < opts.shards; ++k) {
      if (exited[static_cast<std::size_t>(k)]) continue;
      if (rcs[static_cast<std::size_t>(k)] < 0) continue;  // still running
      exited[static_cast<std::size_t>(k)] = true;
      --live;
      const bool clean =
          rcs[static_cast<std::size_t>(k)] == 0 &&
          shm.slot(k).state.load(std::memory_order_acquire) ==
              static_cast<std::uint32_t>(WorkerState::kDone);
      if (!clean) {
        fail_exec("shard worker " + std::to_string(k) +
                  " exited with status " +
                  std::to_string(rcs[static_cast<std::size_t>(k)]));
      }
    }
    if (live == 0) break;
    const std::uint64_t progress = progress_sample(shm, opts.shards);
    if (progress != last_progress) {
      last_progress = progress;
      last_change = Clock::now();
    } else if (std::chrono::duration<double>(Clock::now() - last_change)
                   .count() > opts.stall_deadline_s) {
      fail_exec("no cross-shard progress for " +
                std::to_string(opts.stall_deadline_s) + "s (stall deadline)");
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts.poll_interval_s));
  }
  for (auto& t : launchers) t.join();
  ShardResult result = assemble(shm, *built.engine, opts.shards);
  publish_metrics(registry, result);
  return result;
}

int exec_worker_main(const std::string& shm_path, std::int32_t shard,
                     const ShardOptions& options, const WorkloadFn& workload) {
  try {
    ShardShm shm = ShardShm::attach_file(shm_path);
    ShardWorkload w = workload();
    return run_worker(*w.engine, shm,
                      worker_options(options, shard, w.lp_checksum));
  } catch (const std::exception& err) {
    std::fprintf(stderr, "massf shard worker %d: %s\n", shard, err.what());
    return 3;
  }
}

}  // namespace massf::shard
