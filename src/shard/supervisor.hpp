// Parent side of the multi-process executor: partitions the LP set,
// launches one worker per shard (fork of the already-built workload, or
// self-exec in the campaign-runner idiom), watches their liveness through
// the shared control page, and reassembles the merged RunStats + per-LP
// results. Supervision rides the guard subsystem (DESIGN.md section 5h):
//
//   * watchdog — the parent samples each worker's slot heartbeats; a run
//     whose progress counter freezes for stall_deadline_s is killed and
//     the control page + ring cursors are dumped (ring_dump_path) for the
//     nightly artifacts;
//   * structured errors — a worker's EngineError lands in its ControlSlot
//     (category + message) and is re-raised in the parent;
//   * degradation ladder — guard::GuardedRun sequences the attempts: rung
//     0 retries the sharded run, any later rung falls back to the
//     single-process reference executor, restoring from the per-shard
//     checkpoint set when one exists (ShardDriver::restore_from_shards).
//
// Contract: a sharded run's RunStats, per-LP results, and workload
// checksum fold are bit-identical to Engine::run() on the same workload.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pdes/engine.hpp"
#include "shard/driver.hpp"

namespace massf::obs {
class Registry;
}  // namespace massf::obs

namespace massf::shard {

/// A freshly built simulation: the full engine plus an optional per-LP
/// result fold (e.g. an event-trace checksum). The builder fn must be
/// deterministic — every worker process rebuilds the identical engine.
struct ShardWorkload {
  std::unique_ptr<Engine> engine;
  std::function<std::uint64_t(LpId)> lp_checksum;
};
using WorkloadFn = std::function<ShardWorkload()>;

struct ShardOptions {
  std::int32_t shards = 2;
  /// Per-directed-pair ring capacity in bytes.
  std::uint64_t ring_bytes = 1 << 16;
  double stall_deadline_s = 30.0;
  double poll_interval_s = 0.01;
  /// Per-shard checkpointing (enables crash recovery). Empty dir = off.
  std::string ckpt_dir;
  std::uint64_t ckpt_every = 0;
  /// Ownership transfers applied at window boundaries (driver.hpp).
  std::vector<ShardMigration> migrations;
  /// Where to dump the control page + ring cursors on failure ("" = off).
  std::string ring_dump_path;
  /// Degradation ladder: false = a failed sharded run throws instead of
  /// falling back to single-process (bench/tests want the hard failure).
  bool fallback = true;
  /// Same-configuration sharded retries before degrading.
  int max_retries = 1;
  // Chaos injection (tests/nightly): worker `kill_shard` SIGKILLs itself
  // after `kill_after_windows` windows; with kill_in_send, one frame into
  // its next cross-shard batch.
  std::int32_t kill_shard = -1;
  std::uint64_t kill_after_windows = 0;
  bool kill_in_send = false;
};

struct ShardMetrics {
  std::uint64_t cross_shard_events = 0;
  std::uint64_t batch_bytes = 0;
  std::uint64_t frames = 0;
  std::uint64_t ring_stalls = 0;
  double ring_wait_s = 0;
  std::uint64_t control_waits = 0;
  double control_wait_s = 0;
};

struct ShardResult {
  RunStats stats;
  /// The workload's per-LP folds combined in LP id order
  /// (fold = fold * 31 + lp_checksum(i)), matching the golden convention.
  std::uint64_t checksum = 0;
  ShardMetrics metrics;
  std::int32_t shards = 1;  ///< shards the completing attempt ran on
  int attempts = 1;
  int degraded_rung = 0;  ///< 0 = sharded; >= 1 = single-process fallback
  bool recovered = false; ///< fallback resumed from a shard checkpoint set
};

/// Fork mode: builds the workload once, forks one worker per shard over
/// an anonymous shared mapping. Publishes pdes.shard.* metrics into
/// `registry` when given. Throws EngineError when the run fails and the
/// ladder is exhausted (or disabled).
ShardResult run_sharded(const ShardOptions& options, const WorkloadFn& workload,
                        obs::Registry* registry = nullptr);

/// Exec mode: spawns `worker_command + " --shard-worker=K --shard-shm=PATH"`
/// per shard (std::system, one launcher thread each — the campaign-runner
/// idiom) over a file-backed segment at options.ckpt_dir-independent tmp
/// path. `workload` is still needed locally for the LP count, the result
/// fold, and the single-process fallback rungs.
ShardResult run_sharded_exec(const ShardOptions& options,
                             const std::string& worker_command,
                             const WorkloadFn& workload,
                             obs::Registry* registry = nullptr);

/// Worker side of exec mode: attaches the segment at `shm_path` and runs
/// shard `shard` of the workload. Returns the process exit code.
int exec_worker_main(const std::string& shm_path, std::int32_t shard,
                     const ShardOptions& options, const WorkloadFn& workload);

}  // namespace massf::shard
