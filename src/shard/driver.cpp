#include "shard/driver.hpp"

#include <csignal>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "ckpt/ckpt.hpp"
#include "util/error.hpp"

namespace massf::shard {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point from) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - from)
          .count());
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// One event inside a kFrameBatch payload: the massf.ckpt.v1 migration
// record (engine.cpp migrate_events) — lp is the frame's dst, seq is
// assigned by the receiving merge.
constexpr std::size_t kBatchEventBytes = 8 + 4 + 4 * 8;
constexpr std::size_t kBatchHeaderBytes = 3 * 4;  // src, dst, count

std::string shard_ckpt_path(const std::string& dir, std::int32_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".ckpt";
}

}  // namespace

std::vector<std::int32_t> ShardDriver::initial_owners(
    std::int32_t num_lps, std::int32_t num_shards) {
  std::vector<std::int32_t> owners(static_cast<std::size_t>(num_lps), 0);
  for (std::int32_t k = 0; k < num_shards; ++k) {
    const std::int32_t lo = static_cast<std::int32_t>(
        static_cast<std::int64_t>(k) * num_lps / num_shards);
    const std::int32_t hi = static_cast<std::int32_t>(
        static_cast<std::int64_t>(k + 1) * num_lps / num_shards);
    for (std::int32_t i = lo; i < hi; ++i) owners[i] = k;
  }
  return owners;
}

ShardDriver::ShardDriver(Engine& engine, ShardShm& shm, WorkerOptions opts)
    : engine_(engine), shm_(shm), opts_(std::move(opts)) {
  const ShmHeader& hdr = shm_.header();
  me_ = opts_.shard;
  num_shards_ = static_cast<std::int32_t>(hdr.num_shards);
  MASSF_ENFORCE(me_ >= 0 && me_ < num_shards_, ErrorCategory::kConfig,
                "shard index " + std::to_string(me_) + " out of range for " +
                    std::to_string(num_shards_) + " shards");
  MASSF_ENFORCE(engine_.num_lps() == static_cast<LpId>(hdr.num_lps),
                ErrorCategory::kConfig,
                "workload built " + std::to_string(engine_.num_lps()) +
                    " LPs but the shard segment was sized for " +
                    std::to_string(hdr.num_lps));
  MASSF_ENFORCE(num_shards_ <= engine_.num_lps(), ErrorCategory::kConfig,
                "more shards than LPs");
  MASSF_ENFORCE(engine_.probe_ == nullptr, ErrorCategory::kConfig,
                "sharded execution does not support window probes (a probe "
                "row is a whole-engine view no single shard can fill)");
  MASSF_ENFORCE(engine_.opts_.load_bin <= 0, ErrorCategory::kConfig,
                "sharded execution does not support per-LP load tracing");
  for (const ShardMigration& m : opts_.migrations) {
    MASSF_ENFORCE(m.window > 0 && m.lp >= 0 && m.lp < engine_.num_lps() &&
                      m.to_shard >= 0 && m.to_shard < num_shards_,
                  ErrorCategory::kConfig, "invalid shard migration entry");
  }
  owners_ = initial_owners(engine_.num_lps(), num_shards_);
  owned_.clear();
  for (LpId i = 0; i < engine_.num_lps(); ++i) {
    if (owners_[static_cast<std::size_t>(i)] == me_) owned_.push_back(i);
  }
  window_done_.assign(static_cast<std::size_t>(num_shards_), 0);
}

SimTime ShardDriver::owned_floor() const {
  SimTime floor = kSimTimeMax;
  for (const LpId i : owned_) {
    floor = std::min(floor,
                     engine_.lps_[static_cast<std::size_t>(i)].queue.min_time());
  }
  return floor;
}

void ShardDriver::check_abort(const char* where) const {
  if (shm_.aborted()) {
    MASSF_THROW(ErrorCategory::kProtocolStall,
                std::string("shard worker aborted by supervisor while ") +
                    where);
  }
}

void ShardDriver::publish(std::uint64_t epoch, SimTime floor,
                          std::uint64_t max_wevents, bool stop) {
  ControlSlot& s = slot(me_);
  const std::size_t bank = epoch & 1;
  s.floor[bank].store(floor, std::memory_order_relaxed);
  s.max_window_events[bank].store(max_wevents, std::memory_order_relaxed);
  s.stop[bank].store(stop ? 1 : 0, std::memory_order_relaxed);
  s.epoch.store(epoch + 1, std::memory_order_release);
}

ShardDriver::Gather ShardDriver::gather(std::uint64_t epoch) {
  const std::uint64_t want = epoch + 1;
  const std::size_t bank = epoch & 1;
  Gather g;
  g.floor = kSimTimeMax;
  for (std::int32_t k = 0; k < num_shards_; ++k) {
    ControlSlot& s = slot(k);
    if (s.epoch.load(std::memory_order_acquire) < want) {
      ++control_waits_;
      const auto t0 = Clock::now();
      while (s.epoch.load(std::memory_order_acquire) < want) {
        check_abort("waiting on the control page");
        std::this_thread::yield();
      }
      control_wait_ns_ += elapsed_ns(t0);
    }
    g.floor = std::min(g.floor,
                       static_cast<SimTime>(
                           s.floor[bank].load(std::memory_order_relaxed)));
    g.max_window_events =
        std::max(g.max_window_events,
                 s.max_window_events[bank].load(std::memory_order_relaxed));
    g.stop = g.stop || s.stop[bank].load(std::memory_order_relaxed) != 0;
  }
  return g;
}

void ShardDriver::account_window(std::uint64_t global_max_wevents) {
  // Engine::account_window over the owned subset, with the max taken from
  // the gathered global value: cost >= 0 makes window_events -> busy
  // monotone, so max(events)*cost is bit-identical to the sequential
  // max-of-products.
  Engine& e = engine_;
  const double cost = e.opts_.cost_per_event_s;
  for (const LpId i : owned_) {
    auto& lp = e.lps_[static_cast<std::size_t>(i)];
    e.stats_.busy_s[static_cast<std::size_t>(i)] +=
        static_cast<double>(lp.window_events) * cost;
    lp.window_events = 0;
  }
  e.stats_.modeled_wall_s +=
      static_cast<double>(global_max_wevents) * cost + e.opts_.sync_cost_s;
  e.stats_.modeled_sync_s += e.opts_.sync_cost_s;
  ++e.stats_.num_windows;
  e.guard_.windows.fetch_add(1, std::memory_order_relaxed);
  maybe_kill(/*in_send=*/false);
}

void ShardDriver::maybe_kill(bool in_send) {
  if (opts_.kill_after_windows == 0) return;
  if (engine_.stats_.num_windows < opts_.kill_after_windows) return;
  if (opts_.kill_in_send != in_send) return;
  ::raise(SIGKILL);
}

void ShardDriver::push_frame(std::int32_t peer, std::uint8_t kind,
                             const void* payload, std::uint32_t size,
                             std::uint64_t epoch) {
  ShmRing ring = shm_.ring(me_, peer);
  if (!ring.try_push(kind, payload, size)) {
    ++ring_stalls_;
    const auto t0 = Clock::now();
    for (;;) {
      // Drain our own arrivals while blocked: peers may be wedged on a
      // full ring toward us, and consuming breaks the cyclic backpressure.
      drain_once(epoch);
      if (ring.try_push(kind, payload, size)) break;
      check_abort("pushing a ring frame");
      std::this_thread::yield();
    }
    ring_wait_ns_ += elapsed_ns(t0);
  }
  ++frames_;
  if (kind == kFrameBatch) {
    batch_bytes_ += size;
    maybe_kill(/*in_send=*/true);
  }
}

void ShardDriver::handle_batch(const std::vector<std::uint8_t>& payload) {
  ckpt::Reader r(payload.data(), payload.size());
  const LpId src = r.i32();
  const LpId dst = r.i32();
  const std::uint32_t count = r.u32();
  MASSF_ENFORCE(r.ok() && src >= 0 && src < engine_.num_lps() && dst >= 0 &&
                    dst < engine_.num_lps() &&
                    payload.size() ==
                        kBatchHeaderBytes + count * kBatchEventBytes,
                ErrorCategory::kInternal, "malformed cross-shard batch frame");
  // Splice into the *sending* LP's local outbox in send order: the
  // unchanged Engine::merge_lp_inbox then walks sources in the same order
  // as sequential and assigns bit-identical sequence numbers.
  Outbox& outbox = engine_.lps_[static_cast<std::size_t>(src)].outbox;
  for (std::uint32_t k = 0; k < count; ++k) {
    Event ev;
    ev.time = r.i64();
    ev.type = r.i32();
    ev.a = r.u64();
    ev.b = r.u64();
    ev.c = r.u64();
    ev.d = r.u64();
    ev.lp = dst;
    outbox.add(ev);
  }
  MASSF_CHECK(r.done());
}

bool ShardDriver::drain_once(std::uint64_t epoch) {
  bool any = false;
  std::uint8_t kind = 0;
  std::vector<std::uint8_t> payload;
  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == me_) continue;
    ShmRing ring = shm_.ring(p, me_);
    while (ring.try_pop(&kind, &payload)) {
      any = true;
      if (kind == kFrameBatch) {
        handle_batch(payload);
      } else if (kind == kFrameWindowEnd) {
        ckpt::Reader r(payload.data(), payload.size());
        const std::uint64_t peer_epoch = r.u64();
        MASSF_ENFORCE(r.done() && peer_epoch == epoch,
                      ErrorCategory::kInternal,
                      "cross-shard window-end for epoch " +
                          std::to_string(peer_epoch) + " arrived in epoch " +
                          std::to_string(epoch));
        window_done_[static_cast<std::size_t>(p)] = 1;
        // A closed channel has no frames behind the close this epoch.
        break;
      } else {
        MASSF_THROW(ErrorCategory::kInternal,
                    "unexpected ring frame kind " + std::to_string(kind) +
                        " outside a migration boundary");
      }
    }
  }
  return any;
}

std::uint64_t ShardDriver::exchange(std::uint64_t epoch) {
  Engine& e = engine_;
  std::uint64_t max_wevents = 0;
  for (const LpId i : owned_) {
    const auto& lp = e.lps_[static_cast<std::size_t>(i)];
    max_wevents = std::max(max_wevents, lp.window_events);
    processed_events_ += lp.window_events;
  }

  std::fill(window_done_.begin(), window_done_.end(), 0);
  window_done_[static_cast<std::size_t>(me_)] = 1;

  // Send: owned sources in id order, each bucket in (sorted) dst order,
  // bucket contents in send order — the same (src id, send order) the
  // merge consumes.
  ckpt::Writer w;
  for (const LpId src : owned_) {
    const Outbox& outbox = e.lps_[static_cast<std::size_t>(src)].outbox;
    if (outbox.total() == 0) continue;
    for (const LpId dst : outbox.dsts()) {
      const std::int32_t peer = owners_[static_cast<std::size_t>(dst)];
      if (peer == me_) continue;
      const std::vector<Event>& events = *outbox.find(dst);
      const std::size_t max_per_frame =
          (shm_.ring(me_, peer).max_frame_payload() - kBatchHeaderBytes) /
          kBatchEventBytes;
      std::size_t sent = 0;
      while (sent < events.size()) {
        const std::size_t n = std::min(max_per_frame, events.size() - sent);
        w = ckpt::Writer();
        w.u32(static_cast<std::uint32_t>(src));
        w.u32(static_cast<std::uint32_t>(dst));
        w.u32(static_cast<std::uint32_t>(n));
        for (std::size_t k = 0; k < n; ++k) {
          const Event& ev = events[sent + k];
          w.i64(ev.time);
          w.i32(ev.type);
          w.u64(ev.a);
          w.u64(ev.b);
          w.u64(ev.c);
          w.u64(ev.d);
        }
        push_frame(peer, kFrameBatch, w.buffer().data(),
                   static_cast<std::uint32_t>(w.size()), epoch);
        cross_shard_events_ += n;
        sent += n;
      }
    }
  }
  // Null message: close every outgoing channel for this epoch.
  for (std::int32_t p = 0; p < num_shards_; ++p) {
    if (p == me_) continue;
    w = ckpt::Writer();
    w.u64(epoch);
    push_frame(p, kFrameWindowEnd, w.buffer().data(),
               static_cast<std::uint32_t>(w.size()), epoch);
  }
  // Drain until every peer's window-end arrived.
  for (;;) {
    bool all = true;
    for (const std::uint8_t d : window_done_) all = all && d != 0;
    if (all) break;
    if (!drain_once(epoch)) {
      check_abort("draining cross-shard batches");
      std::this_thread::yield();
    }
  }
  return max_wevents;
}

void ShardDriver::send_migration(const ShardMigration& m) {
  Engine& e = engine_;
  auto& lp = e.lps_[static_cast<std::size_t>(m.lp)];
  ckpt::Writer w;
  w.u32(static_cast<std::uint32_t>(m.lp));
  w.u64(lp.next_seq);
  w.u64(lp.events);
  w.f64(e.stats_.busy_s[static_cast<std::size_t>(m.lp)]);
  const std::vector<Event> pending = lp.queue.sorted_events();
  w.u64(pending.size());
  for (const Event& ev : pending) {
    w.i64(ev.time);
    w.u64(ev.seq);
    w.i32(ev.lp);
    w.i32(ev.type);
    w.u64(ev.a);
    w.u64(ev.b);
    w.u64(ev.c);
    w.u64(ev.d);
  }
  lp.process->save(w);
  ShmRing ring = shm_.ring(me_, m.to_shard);
  MASSF_ENFORCE(w.size() <= ring.max_frame_payload(),
                ErrorCategory::kInternal,
                "migrating LP state exceeds one ring frame");
  // Between epochs the rings are quiet (exchange drains every batch
  // through the window-end), so this cannot deadlock and must not drain —
  // any incoming migration frame belongs to a later list entry.
  if (!ring.try_push(kFrameMigrate, w.buffer().data(),
                     static_cast<std::uint32_t>(w.size()))) {
    ++ring_stalls_;
    const auto t0 = Clock::now();
    while (!ring.try_push(kFrameMigrate, w.buffer().data(),
                          static_cast<std::uint32_t>(w.size()))) {
      check_abort("sending a migrating LP");
      std::this_thread::yield();
    }
    ring_wait_ns_ += elapsed_ns(t0);
  }
  ++frames_;
  batch_bytes_ += w.size();
}

void ShardDriver::recv_migration(const ShardMigration& m, std::int32_t from) {
  ShmRing ring = shm_.ring(from, me_);
  std::uint8_t kind = 0;
  std::vector<std::uint8_t> payload;
  if (!ring.try_pop(&kind, &payload)) {
    ++ring_stalls_;
    const auto t0 = Clock::now();
    while (!ring.try_pop(&kind, &payload)) {
      check_abort("waiting for a migrating LP");
      std::this_thread::yield();
    }
    ring_wait_ns_ += elapsed_ns(t0);
  }
  MASSF_ENFORCE(kind == kFrameMigrate, ErrorCategory::kInternal,
                "expected a migration frame, got kind " +
                    std::to_string(kind));
  ckpt::Reader r(payload.data(), payload.size());
  const LpId id = r.i32();
  MASSF_ENFORCE(r.ok() && id == m.lp, ErrorCategory::kInternal,
                "migration frame for the wrong LP");
  Engine& e = engine_;
  auto& lp = e.lps_[static_cast<std::size_t>(id)];
  lp.next_seq = r.u64();
  lp.events = r.u64();
  e.stats_.busy_s[static_cast<std::size_t>(id)] = r.f64();
  const std::uint64_t pending = r.u64();
  lp.queue.clear();
  for (std::uint64_t k = 0; k < pending; ++k) {
    Event ev;
    ev.time = r.i64();
    ev.seq = r.u64();
    ev.lp = r.i32();
    ev.type = r.i32();
    ev.a = r.u64();
    ev.b = r.u64();
    ev.c = r.u64();
    ev.d = r.u64();
    lp.queue.push(ev);
  }
  lp.window_events = 0;
  MASSF_ENFORCE(lp.process->load(r) && r.done(), ErrorCategory::kInternal,
                "migrating LP state failed to parse");
}

void ShardDriver::apply_migrations() {
  const std::uint64_t window = engine_.stats_.num_windows;
  for (const ShardMigration& m : opts_.migrations) {
    if (m.window != window) continue;
    const std::int32_t from = owners_[static_cast<std::size_t>(m.lp)];
    if (from == m.to_shard) continue;
    if (from == me_) {
      send_migration(m);
    } else if (m.to_shard == me_) {
      recv_migration(m, from);
    }
    owners_[static_cast<std::size_t>(m.lp)] = m.to_shard;
  }
  // Rebuild the owned set if anything moved at this boundary.
  bool mine_changed = false;
  for (const ShardMigration& m : opts_.migrations) {
    mine_changed = mine_changed || m.window == window;
  }
  if (mine_changed) {
    owned_.clear();
    for (LpId i = 0; i < engine_.num_lps(); ++i) {
      if (owners_[static_cast<std::size_t>(i)] == me_) owned_.push_back(i);
    }
  }
}

void ShardDriver::write_shard_ckpt(SimTime /*floor*/) {
  if (opts_.ckpt_dir.empty()) return;
  Engine& e = engine_;
  ckpt::Checkpoint c;
  ckpt::Writer& meta = c.add_section("shard.meta");
  meta.u32(static_cast<std::uint32_t>(num_shards_));
  meta.u32(static_cast<std::uint32_t>(me_));
  meta.u32(static_cast<std::uint32_t>(e.num_lps()));
  meta.i64(e.opts_.lookahead);
  meta.i64(e.opts_.end_time);
  meta.u64(e.stats_.num_windows);
  meta.u64(e.last_ckpt_window_);
  meta.f64(e.stats_.modeled_wall_s);
  meta.f64(e.stats_.modeled_sync_s);
  meta.f64(e.stats_.modeled_migrate_s);
  meta.u64(e.stats_.cross_lp_events);   // this shard's partial
  meta.u64(e.stats_.merge_batches);     // this shard's partial
  meta.u32(static_cast<std::uint32_t>(owned_.size()));
  for (const LpId i : owned_) meta.u32(static_cast<std::uint32_t>(i));

  ckpt::Writer& body = c.add_section("shard.lps");
  for (const LpId i : owned_) {
    const auto& lp = e.lps_[static_cast<std::size_t>(i)];
    body.u32(static_cast<std::uint32_t>(i));
    body.u64(lp.next_seq);
    body.u64(lp.events);
    body.f64(e.stats_.busy_s[static_cast<std::size_t>(i)]);
    const std::vector<Event> pending = lp.queue.sorted_events();
    body.u64(pending.size());
    for (const Event& ev : pending) {
      body.i64(ev.time);
      body.u64(ev.seq);
      body.i32(ev.lp);
      body.i32(ev.type);
      body.u64(ev.a);
      body.u64(ev.b);
      body.u64(ev.c);
      body.u64(ev.d);
    }
    lp.process->save(body);
  }
  std::string error;
  const std::string path = shard_ckpt_path(opts_.ckpt_dir, me_);
  if (!c.write_file(path, &error)) {
    MASSF_THROW(ErrorCategory::kIo,
                "cannot write shard checkpoint " + path + ": " + error);
  }
}

void ShardDriver::write_results(SimTime floor) {
  Engine& e = engine_;
  for (const LpId i : owned_) {
    LpCell& cell = shm_.lp(i);
    cell.events.store(e.lps_[static_cast<std::size_t>(i)].events,
                      std::memory_order_relaxed);
    cell.busy_bits.store(
        double_bits(e.stats_.busy_s[static_cast<std::size_t>(i)]),
        std::memory_order_relaxed);
    cell.checksum.store(opts_.lp_checksum ? opts_.lp_checksum(i) : 0,
                        std::memory_order_relaxed);
  }
  ControlSlot& s = slot(me_);
  s.fin_num_windows.store(e.stats_.num_windows, std::memory_order_relaxed);
  s.fin_wall_bits.store(double_bits(e.stats_.modeled_wall_s),
                        std::memory_order_relaxed);
  s.fin_sync_bits.store(double_bits(e.stats_.modeled_sync_s),
                        std::memory_order_relaxed);
  s.fin_migrate_bits.store(double_bits(e.stats_.modeled_migrate_s),
                           std::memory_order_relaxed);
  s.fin_floor.store(floor, std::memory_order_relaxed);
  s.fin_cross_events.store(e.stats_.cross_lp_events,
                           std::memory_order_relaxed);
  s.fin_merge_batches.store(e.stats_.merge_batches, std::memory_order_relaxed);
  s.ring_stalls.store(ring_stalls_, std::memory_order_relaxed);
  s.ring_wait_ns.store(ring_wait_ns_, std::memory_order_relaxed);
  s.control_waits.store(control_waits_, std::memory_order_relaxed);
  s.control_wait_ns.store(control_wait_ns_, std::memory_order_relaxed);
  s.batch_bytes.store(batch_bytes_, std::memory_order_relaxed);
  s.cross_shard_events.store(cross_shard_events_, std::memory_order_relaxed);
  s.frames.store(frames_, std::memory_order_relaxed);
}

void ShardDriver::run() {
  Engine& e = engine_;
  e.begin_run();
  e.run_threads_ = 0;
  if (opts_.ckpt_every > 0 && !opts_.ckpt_dir.empty()) {
    // The driver owns the ckpt stage in sharded mode: each worker writes
    // its shard file at the same boundary (num_windows advances in
    // lockstep, so maybe_checkpoint fires in every worker or none).
    e.hooks_.ckpt_every = opts_.ckpt_every;
    e.hooks_.ckpt = [this](Engine&, SimTime floor) {
      write_shard_ckpt(floor);
    };
  }
  ControlSlot& s = slot(me_);
  s.pid.store(static_cast<std::int32_t>(::getpid()),
              std::memory_order_relaxed);
  s.state.store(static_cast<std::uint32_t>(WorkerState::kRunning),
                std::memory_order_release);

  SimTime gfloor = 0;
  std::uint64_t prev_max_wevents = 0;
  try {
    for (std::uint64_t epoch = 0;; ++epoch) {
      publish(epoch, owned_floor(), prev_max_wevents, e.stop_requested());
      const Gather g = gather(epoch);
      if (epoch > 0) account_window(g.max_window_events);
      gfloor = g.floor;
      // Same order as the sequential loop top: the previous window is
      // accounted before the exit conditions are evaluated.
      if (gfloor >= e.opts_.end_time || gfloor == kSimTimeMax || g.stop) {
        break;
      }
      apply_migrations();
      if (!e.open_window_boundary(gfloor)) break;  // checkpoint-then-exit
      for (const LpId i : owned_) e.process_lp_window(i);
      prev_max_wevents = exchange(epoch);
      for (const LpId d : owned_) e.merge_lp_inbox(d);
      // Owned sources' outboxes hold *all* their sends (local and
      // cross-shard), so tallying them partitions the sequential
      // cross_lp_events/merge_batches totals exactly across shards.
      for (LpId i = 0; i < e.num_lps(); ++i) {
        auto& lp = e.lps_[static_cast<std::size_t>(i)];
        if (lp.outbox.total() == 0) continue;
        if (owners_[static_cast<std::size_t>(i)] == me_) {
          e.stats_.cross_lp_events += lp.outbox.total();
          e.stats_.merge_batches += lp.outbox.batches();
        }
        lp.outbox.clear();
      }
      s.heartbeat_windows.store(e.stats_.num_windows,
                                std::memory_order_relaxed);
      s.heartbeat_events.store(processed_events_, std::memory_order_relaxed);
    }
  } catch (...) {
    e.record_run_error();
  }
  e.finish_run(gfloor);
  e.rethrow_run_error();
  write_results(gfloor);
}

bool ShardDriver::restore_from_shards(Engine& engine, const std::string& dir,
                                      std::int32_t num_shards,
                                      std::string* error) {
  const auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  Engine& e = engine;
  std::uint64_t num_windows = 0;
  std::uint64_t last_ckpt_window = 0;
  double wall = 0, sync = 0, migrate = 0;
  std::uint64_t cross = 0, merge = 0;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(e.num_lps()), 0);

  // Stage scalars/LP state into the engine only after the whole set
  // parses? Restoring in place is fine: a failed restore returns false
  // and the caller rebuilds the workload from scratch.
  for (std::int32_t k = 0; k < num_shards; ++k) {
    const std::string path = shard_ckpt_path(dir, k);
    std::string io_error;
    auto c = ckpt::Checkpoint::read_file(path, &io_error);
    if (!c) return fail("cannot read " + path + ": " + io_error);
    auto meta = c->section("shard.meta");
    auto body = c->section("shard.lps");
    if (!meta || !body) return fail(path + ": missing shard sections");
    if (meta->u32() != static_cast<std::uint32_t>(num_shards) ||
        meta->u32() != static_cast<std::uint32_t>(k) ||
        meta->u32() != static_cast<std::uint32_t>(e.num_lps()) ||
        meta->i64() != e.opts_.lookahead || meta->i64() != e.opts_.end_time) {
      return fail(path + ": shape mismatch with this workload");
    }
    const std::uint64_t w = meta->u64();
    const std::uint64_t lw = meta->u64();
    if (k == 0) {
      num_windows = w;
      last_ckpt_window = lw;
      wall = meta->f64();
      sync = meta->f64();
      migrate = meta->f64();
    } else {
      if (w != num_windows || lw != last_ckpt_window) {
        return fail(path + ": shard files are from different boundaries");
      }
      meta->f64();
      meta->f64();
      meta->f64();
    }
    cross += meta->u64();
    merge += meta->u64();
    const std::uint32_t owned = meta->u32();
    if (!meta->ok()) return fail(path + ": truncated meta");
    for (std::uint32_t j = 0; j < owned; ++j) meta->u32();

    if (k == 0) {
      e.stats_ = RunStats{};
      e.stats_.events_per_lp.assign(e.lps_.size(), 0);
      e.stats_.busy_s.assign(e.lps_.size(), 0.0);
    }
    for (std::uint32_t j = 0; j < owned; ++j) {
      const std::uint32_t id = body->u32();
      if (!body->ok() || id >= static_cast<std::uint32_t>(e.num_lps()) ||
          seen[id] != 0) {
        return fail(path + ": bad LP record");
      }
      seen[id] = 1;
      auto& lp = e.lps_[id];
      lp.next_seq = body->u64();
      lp.events = body->u64();
      e.stats_.busy_s[id] = body->f64();
      const std::uint64_t pending = body->u64();
      if (!body->ok() || pending > (1ULL << 40)) {
        return fail(path + ": bad pending count");
      }
      lp.queue.clear();
      for (std::uint64_t p = 0; p < pending; ++p) {
        Event ev;
        ev.time = body->i64();
        ev.seq = body->u64();
        ev.lp = body->i32();
        ev.type = body->i32();
        ev.a = body->u64();
        ev.b = body->u64();
        ev.c = body->u64();
        ev.d = body->u64();
        if (!body->ok()) return fail(path + ": truncated pending events");
        lp.queue.push(ev);
      }
      lp.window_events = 0;
      lp.outbox.clear();
      if (!lp.process->load(*body)) return fail(path + ": LP state failed");
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] == 0) {
      return fail("LP " + std::to_string(i) + " missing from shard set");
    }
  }
  e.stats_.num_windows = num_windows;
  e.stats_.modeled_wall_s = wall;
  e.stats_.modeled_sync_s = sync;
  e.stats_.modeled_migrate_s = migrate;
  e.stats_.cross_lp_events = cross;
  e.stats_.merge_batches = merge;
  e.last_ckpt_window_ = last_ckpt_window;
  e.restored_ = true;
  e.skip_boundary_hooks_ = num_windows > 0;
  return true;
}

int run_worker(Engine& engine, ShardShm& shm, const WorkerOptions& opts) {
  ControlSlot& s = shm.slot(opts.shard);
  try {
    ShardDriver driver(engine, shm, opts);
    driver.run();
    s.state.store(static_cast<std::uint32_t>(WorkerState::kDone),
                  std::memory_order_release);
    return 0;
  } catch (const EngineError& err) {
    s.error_category.store(static_cast<std::uint32_t>(err.category()),
                           std::memory_order_relaxed);
    std::strncpy(s.error_message, err.what(), sizeof(s.error_message) - 1);
    s.error_message[sizeof(s.error_message) - 1] = '\0';
    s.state.store(static_cast<std::uint32_t>(WorkerState::kError),
                  std::memory_order_release);
    return 3;
  } catch (const std::exception& err) {
    s.error_category.store(
        static_cast<std::uint32_t>(ErrorCategory::kInternal),
        std::memory_order_relaxed);
    std::strncpy(s.error_message, err.what(), sizeof(s.error_message) - 1);
    s.error_message[sizeof(s.error_message) - 1] = '\0';
    s.state.store(static_cast<std::uint32_t>(WorkerState::kError),
                  std::memory_order_release);
    return 3;
  }
}

}  // namespace massf::shard
