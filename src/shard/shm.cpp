#include "shard/shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <new>
#include <utility>

#include "util/error.hpp"

namespace massf::shard {
namespace {

std::size_t slots_offset() { return sizeof(ShmHeader); }

std::size_t cells_offset(std::uint32_t num_shards) {
  return slots_offset() + sizeof(ControlSlot) * num_shards;
}

std::size_t rings_offset(std::uint32_t num_shards, std::uint32_t num_lps) {
  // Cells end unaligned to 64; rings carry alignas(64) headers, so round up.
  const std::size_t end =
      cells_offset(num_shards) + sizeof(LpCell) * num_lps;
  return (end + 63) / 64 * 64;
}

}  // namespace

std::size_t ShardShm::bytes_for(std::uint32_t num_shards,
                                std::uint32_t num_lps,
                                std::uint64_t ring_capacity) {
  // The full N*N ring grid is laid out (diagonal unused) so ring(i,j)
  // addressing stays a multiply, not a triangular index.
  return rings_offset(num_shards, num_lps) +
         static_cast<std::size_t>(num_shards) * num_shards *
             ShmRing::bytes_for(ring_capacity);
}

void ShardShm::init_layout(std::uint32_t num_shards, std::uint32_t num_lps,
                           std::uint64_t ring_capacity) {
  auto* hdr = new (mem_) ShmHeader;
  std::memset(static_cast<char*>(mem_) + sizeof(ShmHeader), 0,
              size_ - sizeof(ShmHeader));
  hdr->magic = kShmMagic;
  hdr->version = kShmVersion;
  hdr->num_shards = num_shards;
  hdr->num_lps = num_lps;
  hdr->ring_capacity = ring_capacity;
  hdr->abort.store(0, std::memory_order_relaxed);
  for (std::uint32_t k = 0; k < num_shards; ++k) {
    new (static_cast<char*>(mem_) + slots_offset() + sizeof(ControlSlot) * k)
        ControlSlot{};
  }
  for (std::uint32_t i = 0; i < num_lps; ++i) {
    new (static_cast<char*>(mem_) + cells_offset(num_shards) +
         sizeof(LpCell) * i) LpCell{};
  }
  const std::size_t base = rings_offset(num_shards, num_lps);
  for (std::uint32_t i = 0; i < num_shards; ++i) {
    for (std::uint32_t j = 0; j < num_shards; ++j) {
      ShmRing::create(static_cast<char*>(mem_) + base +
                          (static_cast<std::size_t>(i) * num_shards + j) *
                              ShmRing::bytes_for(ring_capacity),
                      ring_capacity);
    }
  }
}

ShardShm ShardShm::create_anonymous(std::uint32_t num_shards,
                                    std::uint32_t num_lps,
                                    std::uint64_t ring_capacity) {
  ShardShm s;
  s.size_ = bytes_for(num_shards, num_lps, ring_capacity);
  s.mem_ = ::mmap(nullptr, s.size_, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (s.mem_ == MAP_FAILED) {
    s.mem_ = nullptr;
    MASSF_THROW(ErrorCategory::kIo, "mmap(MAP_ANONYMOUS|MAP_SHARED) failed "
                                    "for shard control segment");
  }
  s.init_layout(num_shards, num_lps, ring_capacity);
  return s;
}

ShardShm ShardShm::create_file(const std::string& path,
                               std::uint32_t num_shards, std::uint32_t num_lps,
                               std::uint64_t ring_capacity) {
  ShardShm s;
  s.size_ = bytes_for(num_shards, num_lps, ring_capacity);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) {
    MASSF_THROW(ErrorCategory::kIo, "cannot create shard shm file " + path);
  }
  if (::ftruncate(fd, static_cast<off_t>(s.size_)) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    MASSF_THROW(ErrorCategory::kIo, "cannot size shard shm file " + path);
  }
  s.mem_ = ::mmap(nullptr, s.size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (s.mem_ == MAP_FAILED) {
    s.mem_ = nullptr;
    ::unlink(path.c_str());
    MASSF_THROW(ErrorCategory::kIo, "cannot map shard shm file " + path);
  }
  s.path_ = path;
  s.owner_ = true;
  s.init_layout(num_shards, num_lps, ring_capacity);
  return s;
}

ShardShm ShardShm::attach_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    MASSF_THROW(ErrorCategory::kIo, "cannot open shard shm file " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < static_cast<off_t>(sizeof(ShmHeader))) {
    ::close(fd);
    MASSF_THROW(ErrorCategory::kIo, "shard shm file too small: " + path);
  }
  ShardShm s;
  s.size_ = static_cast<std::size_t>(st.st_size);
  s.mem_ = ::mmap(nullptr, s.size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (s.mem_ == MAP_FAILED) {
    s.mem_ = nullptr;
    MASSF_THROW(ErrorCategory::kIo, "cannot map shard shm file " + path);
  }
  const ShmHeader& hdr = s.header();
  if (hdr.magic != kShmMagic || hdr.version != kShmVersion ||
      s.size_ != bytes_for(hdr.num_shards, hdr.num_lps, hdr.ring_capacity)) {
    MASSF_THROW(ErrorCategory::kIo,
                "shard shm file " + path + " has a mismatched header");
  }
  return s;
}

ShardShm::~ShardShm() {
  if (mem_ != nullptr) ::munmap(mem_, size_);
  if (owner_ && !path_.empty()) ::unlink(path_.c_str());
}

ShardShm::ShardShm(ShardShm&& other) noexcept { *this = std::move(other); }

ShardShm& ShardShm::operator=(ShardShm&& other) noexcept {
  if (this != &other) {
    if (mem_ != nullptr) ::munmap(mem_, size_);
    if (owner_ && !path_.empty()) ::unlink(path_.c_str());
    mem_ = std::exchange(other.mem_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::exchange(other.path_, std::string());
    owner_ = std::exchange(other.owner_, false);
  }
  return *this;
}

ShmHeader& ShardShm::header() const { return *static_cast<ShmHeader*>(mem_); }

ControlSlot& ShardShm::slot(std::int32_t shard) const {
  return *reinterpret_cast<ControlSlot*>(static_cast<char*>(mem_) +
                                         slots_offset() +
                                         sizeof(ControlSlot) * shard);
}

LpCell& ShardShm::lp(std::int32_t lp) const {
  return *reinterpret_cast<LpCell*>(static_cast<char*>(mem_) +
                                    cells_offset(header().num_shards) +
                                    sizeof(LpCell) * lp);
}

ShmRing ShardShm::ring(std::int32_t from, std::int32_t to) const {
  const ShmHeader& hdr = header();
  const std::size_t base = rings_offset(hdr.num_shards, hdr.num_lps);
  return ShmRing::attach(
      static_cast<char*>(mem_) + base +
      (static_cast<std::size_t>(from) * hdr.num_shards + to) *
          ShmRing::bytes_for(hdr.ring_capacity));
}

bool ShardShm::aborted() const {
  return header().abort.load(std::memory_order_acquire) != 0;
}

void ShardShm::request_abort() const {
  header().abort.store(1, std::memory_order_release);
}

}  // namespace massf::shard
