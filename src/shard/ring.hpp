// Lock-free SPSC byte ring over shared memory — the cross-shard wire.
//
// One ring per directed shard pair (shm.hpp lays them out), each with
// exactly one producer (the source shard) and one consumer (the
// destination shard), so a pair of monotone cursors is the whole
// synchronization story: `tail` counts bytes published (producer-owned),
// `head` counts bytes consumed (consumer-owned). The producer writes the
// frame bytes first and advances `tail` with a release store; the
// consumer's acquire load of `tail` therefore never exposes a torn or
// half-written frame. Symmetrically the consumer releases `head` only
// after copying the frame out, so the producer never overwrites bytes
// still being read.
//
// Frame format (little-endian, byte-addressed, wraps freely across the
// ring end via two-part memcpy):
//
//   u32 payload_size | u8 kind | payload bytes
//
// Kinds (driver.cpp): kFrameBatch — one (src,dst) outbox bucket chunk,
// payload framed as massf.ckpt.v1 event records; kFrameWindowEnd — the
// null message closing an epoch on this channel; kFrameMigrate — an LP's
// checkpoint-serialized state moving between shards.
//
// Frames are capped at half the capacity so a single frame can never
// deadlock an empty ring; callers chunk larger batches.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

#include "util/check.hpp"

namespace massf::shard {

inline constexpr std::uint8_t kFrameBatch = 1;
inline constexpr std::uint8_t kFrameWindowEnd = 2;
inline constexpr std::uint8_t kFrameMigrate = 3;

struct alignas(64) RingHeader {
  std::atomic<std::uint64_t> head;  // bytes consumed (consumer-owned)
  char pad0[56];
  std::atomic<std::uint64_t> tail;  // bytes published (producer-owned)
  char pad1[56];
  std::uint64_t capacity;  // data bytes, fixed at create
  char pad2[56];
};
static_assert(sizeof(RingHeader) == 192, "cursors must not share a line");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory cursors must be lock-free across processes");

/// Non-owning view; the memory lives in the ShardShm mapping.
class ShmRing {
 public:
  static constexpr std::size_t kFrameOverhead = 5;  // u32 size + u8 kind

  static std::size_t bytes_for(std::size_t capacity) {
    return sizeof(RingHeader) + capacity;
  }

  /// Initializes a fresh ring in `mem` (bytes_for(capacity) bytes).
  static ShmRing create(void* mem, std::size_t capacity) {
    auto* hdr = new (mem) RingHeader;
    hdr->head.store(0, std::memory_order_relaxed);
    hdr->tail.store(0, std::memory_order_relaxed);
    hdr->capacity = capacity;
    return attach(mem);
  }

  /// Views a ring previously initialized by create() (same or another
  /// process — RingHeader is standard-layout and position-independent).
  static ShmRing attach(void* mem) {
    ShmRing r;
    r.hdr_ = static_cast<RingHeader*>(mem);
    r.data_ = static_cast<std::uint8_t*>(mem) + sizeof(RingHeader);
    return r;
  }

  std::size_t capacity() const { return hdr_->capacity; }

  std::size_t used() const {
    return hdr_->tail.load(std::memory_order_relaxed) -
           hdr_->head.load(std::memory_order_relaxed);
  }

  /// Largest payload a single frame may carry on this ring.
  std::size_t max_frame_payload() const {
    return hdr_->capacity / 2 - kFrameOverhead;
  }

  /// Producer side. False when the frame does not currently fit.
  bool try_push(std::uint8_t kind, const void* payload, std::uint32_t size) {
    const std::uint64_t cap = hdr_->capacity;
    const std::uint64_t need = kFrameOverhead + size;
    MASSF_CHECK(need <= cap / 2);
    const std::uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = hdr_->head.load(std::memory_order_acquire);
    if (cap - (tail - head) < need) return false;
    copy_in(tail, &size, sizeof(size));
    copy_in(tail + sizeof(size), &kind, 1);
    if (size > 0) copy_in(tail + kFrameOverhead, payload, size);
    hdr_->tail.store(tail + need, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool try_pop(std::uint8_t* kind, std::vector<std::uint8_t>* payload) {
    const std::uint64_t head = hdr_->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
    if (tail == head) return false;
    std::uint32_t size = 0;
    copy_out(head, &size, sizeof(size));
    copy_out(head + sizeof(size), kind, 1);
    payload->resize(size);
    if (size > 0) copy_out(head + kFrameOverhead, payload->data(), size);
    hdr_->head.store(head + kFrameOverhead + size, std::memory_order_release);
    return true;
  }

 private:
  void copy_in(std::uint64_t pos, const void* src, std::size_t n) {
    const std::uint64_t cap = hdr_->capacity;
    const std::uint64_t off = pos % cap;
    const std::size_t first = std::min<std::size_t>(n, cap - off);
    std::memcpy(data_ + off, src, first);
    if (n > first) {
      std::memcpy(data_, static_cast<const std::uint8_t*>(src) + first,
                  n - first);
    }
  }

  void copy_out(std::uint64_t pos, void* dst, std::size_t n) const {
    const std::uint64_t cap = hdr_->capacity;
    const std::uint64_t off = pos % cap;
    const std::size_t first = std::min<std::size_t>(n, cap - off);
    std::memcpy(dst, data_ + off, first);
    if (n > first) {
      std::memcpy(static_cast<std::uint8_t*>(dst) + first, data_, n - first);
    }
  }

  RingHeader* hdr_ = nullptr;
  std::uint8_t* data_ = nullptr;
};

}  // namespace massf::shard
