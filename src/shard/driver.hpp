// Per-worker side of the multi-process executor: drives the engine's own
// window protocol (Engine is a friend) over this shard's LP subset, with
// the cross-shard legs of the protocol carried by shm.hpp:
//
//   publish   this shard's local event floor, previous window's max
//             per-LP event count, and stop flag into its ControlSlot
//             (the per-epoch channel clock);
//   gather    wait for every shard's slot to reach the epoch, fold the
//             global floor / global max / global stop;
//   account   the previous window, using the *global* max — bit-identical
//             modeled time to the sequential account_window();
//   migrate   apply any ownership transfers due at this boundary (LP
//             state travels as a kFrameMigrate checkpoint record);
//   boundary  Engine::open_window_boundary — barrier hooks, rebalance,
//             ckpt fire at this cross-process quiescent point, in every
//             worker, on identical state;
//   process   owned LPs only (Engine::process_lp_window);
//   exchange  stream each owned (src,dst) outbox bucket whose dst is
//             remote as kFrameBatch frames, close every peer ring with a
//             kFrameWindowEnd null message, then drain incoming rings
//             until every peer's window-end arrives — remote arrivals are
//             spliced into the *sending LP's* local outbox in send order,
//             so the unchanged merge assigns bit-identical seqs;
//   merge     owned destinations only (Engine::merge_lp_inbox).
//
// Determinism: every worker builds the full engine (same LPs, channels,
// hooks) from the same workload fn, so injected events, hook firings and
// stop decisions replay identically everywhere; only the owned subset is
// ever processed, and each LP is owned by exactly one shard per window.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pdes/engine.hpp"
#include "shard/shm.hpp"

namespace massf::shard {

/// One scheduled ownership transfer: after `window` completed windows,
/// `lp` moves to `to_shard`. Part of the shared run configuration — every
/// worker applies the same list at the same boundary.
struct ShardMigration {
  std::uint64_t window = 0;
  LpId lp = 0;
  std::int32_t to_shard = 0;
};

struct WorkerOptions {
  std::int32_t shard = 0;
  /// Per-shard checkpointing: every `ckpt_every` windows each worker
  /// writes <ckpt_dir>/shard-<k>.ckpt (restore_from_shards() reassembles
  /// a single-process engine from the set — the guard ladder's recovery
  /// path). 0 = off.
  std::uint64_t ckpt_every = 0;
  std::string ckpt_dir;
  std::vector<ShardMigration> migrations;
  /// Per-LP result fold published to the shm cells at finish (e.g. the
  /// golden ring's event-trace checksum). Null = cells stay 0.
  std::function<std::uint64_t(LpId)> lp_checksum;
  // Chaos hooks for the crash-recovery tests: after `kill_after_windows`
  // accounted windows this worker SIGKILLs itself — immediately, or (with
  // kill_in_send) one frame into its next batch exchange, leaving a
  // half-streamed window in the ring.
  std::uint64_t kill_after_windows = 0;
  bool kill_in_send = false;
};

class ShardDriver {
 public:
  /// The engine must be fully built (all LPs), unstarted, with no window
  /// probe and no load tracing (both are whole-engine views a shard
  /// cannot fill). Throws EngineError(kConfig) otherwise.
  ShardDriver(Engine& engine, ShardShm& shm, WorkerOptions opts);

  /// Runs this worker's share to completion and publishes results into
  /// the shm cells/slot. Throws EngineError on failure (the caller —
  /// run_worker — records it into the slot).
  void run();

  /// Initial contiguous block partition: owners[lp] for every LP.
  static std::vector<std::int32_t> initial_owners(std::int32_t num_lps,
                                                  std::int32_t num_shards);

  /// Reassembles a full engine from the per-shard checkpoint set written
  /// by the workers' ckpt stage. The engine must be freshly built from
  /// the same workload. Returns false (with *error) when files are
  /// missing, inconsistent, or shaped wrong; on success the next run()
  /// resumes from the checkpointed boundary.
  static bool restore_from_shards(Engine& engine, const std::string& dir,
                                  std::int32_t num_shards, std::string* error);

 private:
  struct Gather {
    SimTime floor = 0;
    std::uint64_t max_window_events = 0;
    bool stop = false;
  };

  ControlSlot& slot(std::int32_t k) const { return shm_.slot(k); }
  SimTime owned_floor() const;
  void publish(std::uint64_t epoch, SimTime floor, std::uint64_t max_wevents,
               bool stop);
  Gather gather(std::uint64_t epoch);
  void account_window(std::uint64_t global_max_wevents);
  void apply_migrations();
  void send_migration(const ShardMigration& m);
  void recv_migration(const ShardMigration& m, std::int32_t from);
  std::uint64_t exchange(std::uint64_t epoch);  // returns max owned wevents
  void push_frame(std::int32_t peer, std::uint8_t kind, const void* payload,
                  std::uint32_t size, std::uint64_t epoch);
  bool drain_once(std::uint64_t epoch);
  void handle_batch(const std::vector<std::uint8_t>& payload);
  void write_shard_ckpt(SimTime floor);
  void write_results(SimTime floor);
  void check_abort(const char* where) const;
  void maybe_kill(bool in_send);

  Engine& engine_;
  ShardShm& shm_;
  WorkerOptions opts_;
  std::int32_t me_ = 0;
  std::int32_t num_shards_ = 1;
  std::vector<std::int32_t> owners_;
  std::vector<LpId> owned_;
  std::vector<std::uint8_t> window_done_;  // per-peer, this epoch
  // Transport tallies, flushed to the slot at finish.
  std::uint64_t ring_stalls_ = 0;
  std::uint64_t ring_wait_ns_ = 0;
  std::uint64_t control_waits_ = 0;
  std::uint64_t control_wait_ns_ = 0;
  std::uint64_t batch_bytes_ = 0;
  std::uint64_t cross_shard_events_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t processed_events_ = 0;
};

/// Worker-process entry (fork or exec mode): runs the driver and records
/// structured errors into the control slot. Returns the process exit
/// code (0 ok, 3 EngineError).
int run_worker(Engine& engine, ShardShm& shm, const WorkerOptions& opts);

}  // namespace massf::shard
