// The shared-memory segment behind a sharded run: one control page
// (per-shard ControlSlots — the cross-process channel clocks), per-LP
// result cells, and the N*(N-1) directed SPSC rings (ring.hpp).
//
// Two mapping modes, one layout:
//   * create_anonymous() — MAP_SHARED|MAP_ANONYMOUS, inherited across
//     fork(). The in-process path: tests and the campaign golden rows.
//   * create_file()/attach_file() — file-backed, so self-exec'd worker
//     processes (the campaign-runner idiom: the CLI re-invokes itself
//     with --shard-worker=K --shard-shm=PATH) can attach by path.
//
// ControlSlot is the per-shard "channel clock" page entry: each epoch a
// worker publishes its local event floor, its previous window's max
// per-LP event count, and its stop flag, then releases `epoch`. The
// floor/max/stop words are double-buffered by epoch parity — the
// quiescence protocol bounds inter-worker skew to one epoch (driver.cpp),
// so bank e%2 cannot be overwritten before every peer has read it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "shard/ring.hpp"

namespace massf::shard {

inline constexpr std::uint64_t kShmMagic = 0x3176'6d68'7366'7368ULL;
inline constexpr std::uint32_t kShmVersion = 1;

enum class WorkerState : std::uint32_t {
  kInit = 0,
  kRunning = 1,
  kDone = 2,
  kError = 3,
};

struct alignas(64) ControlSlot {
  /// Last published epoch + 1 (0 = nothing yet), release-stored after the
  /// banked values below; monotone, so an acquire load observing e+1 (or
  /// anything later) sees the bank e%2 values of epoch e.
  std::atomic<std::uint64_t> epoch;
  std::atomic<std::int64_t> floor[2];              ///< local event floor
  std::atomic<std::uint64_t> max_window_events[2]; ///< prev window's max
  std::atomic<std::uint32_t> stop[2];              ///< local stop flag
  std::atomic<std::uint32_t> state;                ///< WorkerState
  std::atomic<std::int32_t> pid;
  std::atomic<std::uint32_t> error_category;       ///< ErrorCategory
  /// Liveness heartbeats for the supervisor's progress sample.
  std::atomic<std::uint64_t> heartbeat_windows;
  std::atomic<std::uint64_t> heartbeat_events;
  // Final run scalars, valid once state == kDone. The window/clock values
  // are identical across shards by construction; cross/merge are this
  // shard's partial tallies (they sum to the sequential totals).
  std::atomic<std::uint64_t> fin_num_windows;
  std::atomic<std::uint64_t> fin_wall_bits;     ///< modeled_wall_s bits
  std::atomic<std::uint64_t> fin_sync_bits;     ///< modeled_sync_s bits
  std::atomic<std::uint64_t> fin_migrate_bits;  ///< modeled_migrate_s bits
  std::atomic<std::int64_t> fin_floor;          ///< floor at loop exit
  std::atomic<std::uint64_t> fin_cross_events;
  std::atomic<std::uint64_t> fin_merge_batches;
  // pdes.shard.* transport counters (obs registry, bench_pdes --shards).
  std::atomic<std::uint64_t> ring_stalls;
  std::atomic<std::uint64_t> ring_wait_ns;
  std::atomic<std::uint64_t> control_waits;
  std::atomic<std::uint64_t> control_wait_ns;
  std::atomic<std::uint64_t> batch_bytes;
  std::atomic<std::uint64_t> cross_shard_events;
  std::atomic<std::uint64_t> frames;
  /// Structured EngineError propagation: message written (NUL-terminated)
  /// before state release-stores kError.
  char error_message[256];
};

/// Per-LP results, written by the LP's final owner at finish.
struct LpCell {
  std::atomic<std::uint64_t> events;
  std::atomic<std::uint64_t> checksum;   ///< workload's per-LP fold
  std::atomic<std::uint64_t> busy_bits;  ///< stats_.busy_s[lp] bits
};

struct ShmHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t num_shards;
  std::uint32_t num_lps;
  std::uint32_t pad0;
  std::uint64_t ring_capacity;
  /// Supervisor -> workers: stop spinning and die (set on stall/crash).
  std::atomic<std::uint32_t> abort;
  char pad1[28];
};
static_assert(sizeof(ShmHeader) == 64, "header is one cache line");

/// Owns (or views) the mapping. Move-only; the creating side unlinks a
/// file-backed segment on destruction.
class ShardShm {
 public:
  ShardShm() = default;
  ~ShardShm();
  ShardShm(ShardShm&& other) noexcept;
  ShardShm& operator=(ShardShm&& other) noexcept;
  ShardShm(const ShardShm&) = delete;
  ShardShm& operator=(const ShardShm&) = delete;

  static std::size_t bytes_for(std::uint32_t num_shards, std::uint32_t num_lps,
                               std::uint64_t ring_capacity);

  /// Fork mode: anonymous shared mapping, inherited by children.
  static ShardShm create_anonymous(std::uint32_t num_shards,
                                   std::uint32_t num_lps,
                                   std::uint64_t ring_capacity);
  /// Exec mode: file-backed segment at `path` (created/truncated). The
  /// returned object owns the file and unlinks it on destruction.
  static ShardShm create_file(const std::string& path,
                              std::uint32_t num_shards, std::uint32_t num_lps,
                              std::uint64_t ring_capacity);
  /// Worker side of exec mode. Throws EngineError(kIo) on open/validate
  /// failure.
  static ShardShm attach_file(const std::string& path);

  bool valid() const { return mem_ != nullptr; }
  ShmHeader& header() const;
  ControlSlot& slot(std::int32_t shard) const;
  LpCell& lp(std::int32_t lp) const;
  /// The directed ring carrying frames from shard `from` to shard `to`.
  ShmRing ring(std::int32_t from, std::int32_t to) const;

  bool aborted() const;
  void request_abort() const;

 private:
  void init_layout(std::uint32_t num_shards, std::uint32_t num_lps,
                   std::uint64_t ring_capacity);

  void* mem_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;   // non-empty = file-backed
  bool owner_ = false; // creator: unlink path_ at destruction
};

}  // namespace massf::shard
