// Long-lived background-flow workload: each source runs a think/transfer
// loop pushing one-way bulk transfers to a randomly chosen server. Flows
// are issued through NetSim::start_background_flow, so under the hybrid
// link model they ride the analytic fluid fast path (no per-packet
// events); under the packet model the same scenario falls back to packet
// TCP — that pairing is the fidelity-comparison knob the bench uses.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/manager.hpp"
#include "util/rng.hpp"

namespace massf {

struct BackgroundOptions {
  double think_time_mean_s = 5.0;
  /// Mean transfer size (exponential). Background flows are meant to be
  /// long-lived, so the default is 20x the HTTP file mean.
  double flow_mean_bytes = 1e6;
  /// When true, flows request flow-level fidelity (fluid under the hybrid
  /// model, automatic packet fallback otherwise); when false they are
  /// forced to packet TCP even under the hybrid model.
  bool flow_fidelity = true;
  std::uint64_t seed = 1;
  /// First transfers are staggered over [0, think_time_mean_s).
  bool staggered_start = true;
};

class BackgroundWorkload final : public TrafficComponent {
 public:
  BackgroundWorkload(std::vector<NodeId> sources, std::vector<NodeId> servers,
                     const BackgroundOptions& options);

  void start(Engine& engine, NetSim& sim) override;
  void on_flow_complete(Engine& engine, NetSim& sim, FlowId flow,
                        NodeId src_host, NodeId dst_host,
                        std::uint32_t tag) override;
  void on_flow_failed(Engine& engine, NetSim& sim, FlowId flow,
                      NodeId src_host, NodeId dst_host,
                      std::uint32_t tag) override;
  void on_timer(Engine& engine, NetSim& sim, NodeId host,
                std::uint64_t payload, std::uint64_t c) override;

  std::uint64_t flows_issued() const;
  std::uint64_t flows_completed() const;
  std::uint64_t flows_failed() const;
  /// Flows the link model carried analytically (vs packet fallback).
  std::uint64_t fluid_carried() const;

  /// Publishes `traffic.bg.*` counters into `registry`.
  void publish_metrics(obs::Registry& registry) const override;

  /// Checkpoint hooks: per-source RNG positions and counters.
  void save(ckpt::Writer& writer) const override;
  bool load(ckpt::Reader& reader) override;

 private:
  struct Source {
    NodeId host;
    Rng rng;  ///< owned by the source's LP: touched only in on_timer/start
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t fluid = 0;
  };

  // Completion and failure handlers run on foreign LPs (the receiver's,
  // or a window-boundary hook for fluid flows), so they must not touch
  // per-source state. They only schedule a timer back to the source host
  // carrying one of these outcome bits; the source's own LP does the
  // counting and issues the next transfer.
  static constexpr std::uint64_t kTimerCompletedBit = 1ULL << 32;
  static constexpr std::uint64_t kTimerFailedBit = 1ULL << 33;

  void issue_flow(Engine& engine, NetSim& sim, std::uint32_t source_idx);

  std::vector<Source> sources_;
  std::vector<NodeId> servers_;
  BackgroundOptions opts_;
  Rng base_rng_;
};

}  // namespace massf
