#include "traffic/http.hpp"

#include <algorithm>

#include "ckpt/ckpt.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace massf {
namespace {

// Tag payload layout: request/response bit (bit 27) | client index.
constexpr std::uint32_t kResponseBit = 1u << 27;

}  // namespace

HttpWorkload::HttpWorkload(std::vector<NodeId> clients,
                           std::vector<NodeId> servers,
                           const HttpOptions& options)
    : servers_(std::move(servers)),
      opts_(options),
      base_rng_(options.seed),
      server_popularity_(std::max<std::size_t>(servers_.size(), 1),
                         options.zipf_exponent) {
  MASSF_CHECK(!clients.empty() && !servers_.empty());
  clients_.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    clients_.push_back(Client{clients[i], base_rng_.fork(i), 0, 0});
  }
}

void HttpWorkload::start(Engine& engine, NetSim& sim) {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    Client& c = clients_[i];
    const double delay =
        opts_.staggered_start
            ? c.rng.uniform_real(0.0, opts_.think_time_mean_s)
            : c.rng.exponential(opts_.think_time_mean_s);
    sim.schedule_app_timer(engine, c.host, from_seconds(delay),
                           make_timer(TrafficKind::kHttp, i));
  }
}

void HttpWorkload::on_timer(Engine& engine, NetSim& sim, NodeId host,
                            std::uint64_t payload, std::uint64_t) {
  const auto idx = static_cast<std::uint32_t>(payload);
  MASSF_CHECK(idx < clients_.size());
  MASSF_CHECK(clients_[idx].host == host);
  issue_request(engine, sim, idx);
}

void HttpWorkload::issue_request(Engine& engine, NetSim& sim,
                                 std::uint32_t client_idx) {
  Client& c = clients_[client_idx];
  const NodeId server = servers_[server_popularity_.sample(c.rng)];
  if (!sim.forwarding().reachable(c.host, server) ||
      !sim.forwarding().reachable(server, c.host)) {
    // Policy-unreachable pair (possible under BGP): back off and retry.
    sim.schedule_app_timer(
        engine, c.host,
        engine.now() + from_seconds(c.rng.exponential(opts_.think_time_mean_s)),
        make_timer(TrafficKind::kHttp, client_idx));
    return;
  }
  ++c.requests;
  sim.start_flow(engine, engine.now(), c.host, server, opts_.request_bytes,
                 make_tag(TrafficKind::kHttp, client_idx));
}

void HttpWorkload::on_flow_complete(Engine& engine, NetSim& sim, FlowId flow,
                                    NodeId src_host, NodeId dst_host,
                                    std::uint32_t tag) {
  const std::uint32_t payload = tag_payload(tag);
  const auto client_idx = payload & ~kResponseBit;
  MASSF_CHECK(client_idx < clients_.size());
  Client& c = clients_[client_idx];

  if ((payload & kResponseBit) == 0) {
    // Request arrived at the server (we are on the server's LP): send the
    // response. The size is a pure function of the request's flow id so it
    // is deterministic under any executor.
    Rng resp_rng = base_rng_.fork(flow ^ 0x9e3779b97f4a7c15ULL);
    const double bytes = resp_rng.exponential(opts_.file_mean_bytes);
    const auto size = static_cast<std::uint32_t>(
        std::clamp(bytes, 1.0, 64.0 * 1024 * 1024));
    sim.start_flow(engine, engine.now(), dst_host, src_host, size,
                   make_tag(TrafficKind::kHttp, client_idx | kResponseBit));
    return;
  }

  // Response fully received (we are on the client's LP): think, then next
  // request.
  MASSF_CHECK(dst_host == c.host);
  ++c.responses;
  sim.schedule_app_timer(
      engine, c.host,
      engine.now() + from_seconds(c.rng.exponential(opts_.think_time_mean_s)),
      make_timer(TrafficKind::kHttp, client_idx));
}

void HttpWorkload::on_flow_failed(Engine& engine, NetSim& sim, FlowId,
                                  NodeId, NodeId, std::uint32_t tag) {
  // This runs on the *sender's* LP — the server's for a failed response —
  // so the client's Rng must not be touched; use a fixed backoff instead.
  // The lookahead floor keeps the cross-LP schedule contract satisfied.
  const auto client_idx = tag_payload(tag) & ~kResponseBit;
  MASSF_CHECK(client_idx < clients_.size());
  const SimTime backoff = std::max(from_seconds(opts_.think_time_mean_s),
                                   engine.options().lookahead);
  sim.schedule_app_timer(engine, clients_[client_idx].host,
                         engine.now() + backoff,
                         make_timer(TrafficKind::kHttp, client_idx));
}

std::uint64_t HttpWorkload::requests_issued() const {
  std::uint64_t total = 0;
  for (const Client& c : clients_) total += c.requests;
  return total;
}

std::uint64_t HttpWorkload::responses_completed() const {
  std::uint64_t total = 0;
  for (const Client& c : clients_) total += c.responses;
  return total;
}

void HttpWorkload::publish_metrics(obs::Registry& registry) const {
  registry.counter("traffic.http.requests").inc(requests_issued());
  registry.counter("traffic.http.responses").inc(responses_completed());
}

void HttpWorkload::save(ckpt::Writer& w) const {
  // base_rng_ only forks (const), so it never diverges from construction;
  // the per-client streams are the only RNG state that advances.
  w.u64(clients_.size());
  for (const Client& c : clients_) {
    for (const std::uint64_t s : c.rng.state()) w.u64(s);
    w.u64(c.requests);
    w.u64(c.responses);
  }
}

bool HttpWorkload::load(ckpt::Reader& r) {
  if (r.u64() != clients_.size()) return false;
  for (Client& c : clients_) {
    std::array<std::uint64_t, 4> s;
    for (std::uint64_t& x : s) x = r.u64();
    c.rng.set_state(s);
    c.requests = r.u64();
    c.responses = r.u64();
  }
  return r.ok();
}

}  // namespace massf
