// Background HTTP workload (paper Section 4.2): clients continuously
// request files from servers over TCP; think times are exponential (mean
// 5 s in the paper) and file sizes exponential with a 50 KB mean. Server
// popularity follows a Zipf distribution, as measured for real web traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/manager.hpp"
#include "util/rng.hpp"

namespace massf {

struct HttpOptions {
  double think_time_mean_s = 5.0;
  double file_mean_bytes = 50e3;
  std::uint32_t request_bytes = 300;
  double zipf_exponent = 0.8;
  std::uint64_t seed = 1;
  /// Flows outstanding at t=0 are staggered over [0, think_time_mean_s).
  bool staggered_start = true;
};

class HttpWorkload final : public TrafficComponent {
 public:
  HttpWorkload(std::vector<NodeId> clients, std::vector<NodeId> servers,
               const HttpOptions& options);

  void start(Engine& engine, NetSim& sim) override;
  void on_flow_complete(Engine& engine, NetSim& sim, FlowId flow,
                        NodeId src_host, NodeId dst_host,
                        std::uint32_t tag) override;
  /// Graceful degradation: a failed request or response restarts the
  /// client's think cycle instead of wedging it forever.
  void on_flow_failed(Engine& engine, NetSim& sim, FlowId flow,
                      NodeId src_host, NodeId dst_host,
                      std::uint32_t tag) override;
  void on_timer(Engine& engine, NetSim& sim, NodeId host,
                std::uint64_t payload, std::uint64_t c) override;

  std::uint64_t requests_issued() const;
  std::uint64_t responses_completed() const;

  /// Publishes `traffic.http.*` counters (requests issued / responses
  /// completed) into `registry`.
  void publish_metrics(obs::Registry& registry) const override;

  /// Checkpoint hooks: per-client RNG positions and request/response
  /// counters (hosts, servers, and the Zipf CDF are construction-time).
  void save(ckpt::Writer& writer) const override;
  bool load(ckpt::Reader& reader) override;

 private:
  struct Client {
    NodeId host;
    Rng rng;                 ///< owned by the client's LP
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
  };

  void issue_request(Engine& engine, NetSim& sim, std::uint32_t client_idx);

  std::vector<Client> clients_;
  std::vector<NodeId> servers_;
  HttpOptions opts_;
  Rng base_rng_;
  ZipfSampler server_popularity_;
};

}  // namespace massf
