#include "traffic/dataflow.hpp"

#include "ckpt/ckpt.hpp"
#include "traffic/vm.hpp"
#include "util/check.hpp"

namespace massf {

DataflowApp::DataflowApp(DataflowGraph graph, SimTime start_at)
    : graph_(std::move(graph)), start_at_(start_at) {
  const auto nt = graph_.tasks.size();
  MASSF_CHECK(nt > 0);
  in_degree_.assign(nt, 0);
  for (const DataflowEdge& e : graph_.edges) {
    MASSF_CHECK(e.src_task >= 0 &&
                static_cast<std::size_t>(e.src_task) < nt);
    MASSF_CHECK(e.dst_task >= 0 &&
                static_cast<std::size_t>(e.dst_task) < nt);
    MASSF_CHECK(e.bytes > 0);
    ++in_degree_[static_cast<std::size_t>(e.dst_task)];
  }
  received_.assign(nt, 0);
  in_compute_.assign(nt, 0);
  fired_.assign(nt, 0);
}

void DataflowApp::use_vm(VmHosts* vm) {
  MASSF_CHECK(vm != nullptr);
  vm_ = vm;
  vm_->set_task_done([this](Engine& engine, NetSim& sim, NodeId host,
                            std::uint64_t cookie) {
    const auto task = static_cast<std::int32_t>(cookie);
    MASSF_CHECK(graph_.tasks[static_cast<std::size_t>(task)].host == host);
    fire(engine, sim, task);
  });
}

void DataflowApp::start(Engine& engine, NetSim& sim) {
  bool any_initial = false;
  for (std::size_t t = 0; t < graph_.tasks.size(); ++t) {
    if (graph_.tasks[t].initial) {
      any_initial = true;
      sim.schedule_app_timer(engine, graph_.tasks[t].host,
                             start_at_ + graph_.tasks[t].compute,
                             make_timer(TrafficKind::kApp, t));
    }
  }
  MASSF_CHECK(any_initial && "dataflow graph needs at least one initial task");
}

void DataflowApp::on_timer(Engine& engine, NetSim& sim, NodeId host,
                           std::uint64_t payload, std::uint64_t) {
  const auto task = static_cast<std::int32_t>(payload);
  MASSF_CHECK(graph_.tasks[static_cast<std::size_t>(task)].host == host);
  fire(engine, sim, task);
}

void DataflowApp::fire(Engine& engine, NetSim& sim, std::int32_t task) {
  ++fired_[static_cast<std::size_t>(task)];
  in_compute_[static_cast<std::size_t>(task)] = 0;
  const NodeId src_host = graph_.tasks[static_cast<std::size_t>(task)].host;
  for (std::size_t e = 0; e < graph_.edges.size(); ++e) {
    const DataflowEdge& edge = graph_.edges[e];
    if (edge.src_task != task) continue;
    const NodeId dst_host =
        graph_.tasks[static_cast<std::size_t>(edge.dst_task)].host;
    if (dst_host == src_host) {
      // Local edge: deliver instantly via a timer-less shortcut — count it
      // as an immediately-satisfied input on the same LP.
      on_flow_complete(engine, sim, /*flow=*/0, src_host, dst_host,
                       make_tag(TrafficKind::kApp,
                                static_cast<std::uint32_t>(e)));
      continue;
    }
    sim.start_flow(engine, engine.now(), src_host, dst_host, edge.bytes,
                   make_tag(TrafficKind::kApp, static_cast<std::uint32_t>(e)));
  }
  // Inputs for the next iteration may already be buffered.
  maybe_schedule_compute(engine, sim, task);
}

void DataflowApp::maybe_schedule_compute(Engine& engine, NetSim& sim,
                                         std::int32_t task) {
  const auto t = static_cast<std::size_t>(task);
  if (in_compute_[t] || in_degree_[t] == 0) return;
  if (received_[t] < in_degree_[t]) return;
  received_[t] -= in_degree_[t];
  in_compute_[t] = 1;
  if (vm_ != nullptr) {
    // Processor-sharing compute: `compute` is the duration on an otherwise
    // idle host, so the work is compute_seconds * capacity operations.
    vm_->submit(engine, sim, graph_.tasks[t].host,
                to_seconds(graph_.tasks[t].compute) * vm_->capacity_ops(),
                static_cast<std::uint64_t>(task));
    return;
  }
  sim.schedule_app_timer(engine, graph_.tasks[t].host,
                         engine.now() + graph_.tasks[t].compute,
                         make_timer(TrafficKind::kApp,
                                    static_cast<std::uint64_t>(task)));
}

void DataflowApp::on_flow_complete(Engine& engine, NetSim& sim, FlowId,
                                   NodeId, NodeId dst_host,
                                   std::uint32_t tag) {
  const std::uint32_t e = tag_payload(tag);
  MASSF_CHECK(e < graph_.edges.size());
  const std::int32_t task = graph_.edges[e].dst_task;
  const DataflowTask& t = graph_.tasks[static_cast<std::size_t>(task)];
  MASSF_CHECK(t.host == dst_host);

  ++received_[static_cast<std::size_t>(task)];
  maybe_schedule_compute(engine, sim, task);
}

std::uint64_t DataflowApp::firings() const {
  std::uint64_t total = 0;
  for (std::uint64_t f : fired_) total += f;
  return total;
}

void DataflowApp::save(ckpt::Writer& w) const {
  w.u8(vm_ != nullptr ? 1 : 0);
  ckpt::write_u64_vec(w, received_);
  ckpt::write_char_vec(w, in_compute_);
  ckpt::write_u64_vec(w, fired_);
}

bool DataflowApp::load(ckpt::Reader& r) {
  // VM compute queues are outside the checkpoint's capture set; restoring
  // a VM-backed app would silently drop in-flight task computations.
  if (r.u8() != 0 || vm_ != nullptr) return false;
  const std::size_t nt = graph_.tasks.size();
  if (!ckpt::read_u64_vec(r, received_) || received_.size() != nt)
    return false;
  if (!ckpt::read_char_vec(r, in_compute_) || in_compute_.size() != nt)
    return false;
  if (!ckpt::read_u64_vec(r, fired_) || fired_.size() != nt) return false;
  return r.ok();
}

}  // namespace massf
