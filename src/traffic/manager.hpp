// Traffic component multiplexing.
//
// NetSim exposes a single set of callbacks; the TrafficManager owns them
// and dispatches to registered components (background HTTP, foreground
// application skeletons, the online agent) by a component-kind field packed
// into the high bits of flow tags and timer payloads.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "net/netsim.hpp"

namespace massf {

namespace obs {
class Registry;
}  // namespace obs

/// Component-kind ids (4 bits in flow tags, 8 bits in timer payloads).
enum class TrafficKind : std::uint32_t {
  kNone = 0,
  kHttp = 1,
  kApp = 2,     ///< foreground dataflow application
  kOnline = 3,  ///< live-traffic agent
  kBgp = 4,     ///< dynamic BGP4 session layer
  kVm = 5,      ///< virtual-host CPU scheduler
  kPing = 6,    ///< echo-style latency probe
  kCbr = 7,     ///< constant-bit-rate UDP streams
  kBackground = 8,  ///< long-lived background flows (flow-level fast path)
  kMax = 15,
};

/// Packs/unpacks the component kind into flow tags and timer payloads.
constexpr std::uint32_t make_tag(TrafficKind kind, std::uint32_t payload) {
  return (static_cast<std::uint32_t>(kind) << 28) | (payload & 0x0fffffffu);
}
constexpr TrafficKind tag_kind(std::uint32_t tag) {
  return static_cast<TrafficKind>(tag >> 28);
}
constexpr std::uint32_t tag_payload(std::uint32_t tag) {
  return tag & 0x0fffffffu;
}

constexpr std::uint64_t make_timer(TrafficKind kind, std::uint64_t payload) {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (payload & 0x00ffffffffffffffULL);
}
constexpr TrafficKind timer_kind(std::uint64_t b) {
  return static_cast<TrafficKind>(b >> 56);
}
constexpr std::uint64_t timer_payload(std::uint64_t b) {
  return b & 0x00ffffffffffffffULL;
}

/// A traffic source/sink. Handlers run on the LP owning the relevant host;
/// implementations must keep all mutable state per-host (or per-entity
/// owned by a single host) to stay race-free under the threaded executor.
class TrafficComponent {
 public:
  virtual ~TrafficComponent() = default;

  /// Called once before the run to create initial events.
  virtual void start(Engine& engine, NetSim& sim) = 0;

  virtual void on_flow_complete(Engine& engine, NetSim& sim, FlowId flow,
                                NodeId src_host, NodeId dst_host,
                                std::uint32_t tag);
  /// The sender abandoned the flow (path dead past the TCP retry bound).
  /// Runs on the *sender's* LP — implementations must only touch state
  /// owned by that LP, or defer to a timer/barrier. Default: ignore.
  virtual void on_flow_failed(Engine& engine, NetSim& sim, FlowId flow,
                              NodeId src_host, NodeId dst_host,
                              std::uint32_t tag);
  virtual void on_timer(Engine& engine, NetSim& sim, NodeId host,
                        std::uint64_t payload, std::uint64_t c);
  virtual void on_udp(Engine& engine, NetSim& sim, const Packet& packet);

  /// Publishes this component's counters into `registry` (called after the
  /// run, outside any handler). Default publishes nothing — the null-sink
  /// contract of the telemetry layer.
  virtual void publish_metrics(obs::Registry& registry) const;

  /// Checkpoint hooks (ckpt/ckpt.hpp): serialize every member that can
  /// diverge from construction (RNG positions, counters, per-entity
  /// cursors). Called at a window boundary. The defaults are correct only
  /// for stateless components; load() returns false on a shape mismatch.
  virtual void save(ckpt::Writer& writer) const;
  virtual bool load(ckpt::Reader& reader);
};

class TrafficManager {
 public:
  /// Installs the dispatch callbacks on `sim`.
  explicit TrafficManager(NetSim& sim);

  /// Registers a component under `kind` (one component per kind).
  void add(TrafficKind kind, std::unique_ptr<TrafficComponent> component);

  /// Calls start() on every registered component.
  void start(Engine& engine, NetSim& sim);

  /// Publishes every registered component's metrics into `registry`.
  void publish_metrics(obs::Registry& registry) const;

  TrafficComponent* component(TrafficKind kind) const;

  /// Checkpoint hooks: delegates to every registered component, each
  /// prefixed with its kind marker; load() requires the same kinds to be
  /// registered in the restoring run.
  void save(ckpt::Writer& writer) const;
  bool load(ckpt::Reader& reader);

 private:
  std::array<std::unique_ptr<TrafficComponent>, 16> components_;
};

}  // namespace massf
