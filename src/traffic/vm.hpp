// Virtual compute resources: a proportional-share CPU model per host.
//
// The MicroGrid "soft real-time scheduler ... emulate[s] virtual computer
// resources, allocating CPU proportionately" (paper Section 2.1): an
// application task's computation takes longer when it shares its host with
// other tasks. This module models each virtual host as a processor-sharing
// queue: a task submitted with W operations on a host of capacity C
// ops/sec progresses at C/n while n tasks are resident. Completion order
// and times are exact (event-driven, no discretization).
//
// All per-host state lives on the host's LP; the module reschedules its
// own completion timers with an epoch counter (stale timers are ignored),
// the same pattern the TCP RTO uses.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "traffic/manager.hpp"

namespace massf {

class VmHosts final : public TrafficComponent {
 public:
  /// Invoked on the host's LP when a task's work is done.
  using TaskDoneFn = std::function<void(Engine&, NetSim&, NodeId host,
                                        std::uint64_t cookie)>;

  /// All `hosts` get the same capacity in operations per second.
  VmHosts(std::span<const NodeId> hosts, double ops_per_second);

  /// Submits a task of `ops` operations to `host` (must be registered).
  /// Callable before the run or from a handler on the host's LP.
  void submit(Engine& engine, NetSim& sim, NodeId host, double ops,
              std::uint64_t cookie);

  void set_task_done(TaskDoneFn fn) { on_done_ = std::move(fn); }

  /// Number of tasks currently resident on `host`.
  std::size_t load(NodeId host) const;

  double capacity_ops() const { return capacity_; }

  // ---- TrafficComponent ---------------------------------------------------
  void start(Engine& engine, NetSim& sim) override {}
  void on_timer(Engine& engine, NetSim& sim, NodeId host,
                std::uint64_t payload, std::uint64_t c) override;

 private:
  struct Task {
    double remaining_ops;
    std::uint64_t cookie;
  };
  struct HostState {
    std::vector<Task> tasks;
    SimTime last_update = 0;
    std::uint64_t timer_epoch = 0;
  };

  HostState& state(NodeId host);
  /// Advances all resident tasks to `now` under processor sharing.
  void advance(HostState& hs, SimTime now);
  /// Completes finished tasks and re-arms the next completion timer.
  void settle(Engine& engine, NetSim& sim, NodeId host, HostState& hs);

  double capacity_;
  std::unordered_map<NodeId, HostState> hosts_;
  TaskDoneFn on_done_;
};

}  // namespace massf
