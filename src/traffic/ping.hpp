// Latency probing: an ICMP-echo-style ping over simulated UDP.
//
// A PingProbe sends a small datagram from a source host; the probe's echo
// responder on the destination host reflects it; the round-trip time is
// recorded. Used by examples and tests to validate the latency model
// end to end (RTT must equal twice the one-way path latency plus
// serialization, in an unloaded network).
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/manager.hpp"

namespace massf {

class PingProbe final : public TrafficComponent {
 public:
  struct Result {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    SimTime sent_at = 0;
    SimTime rtt = -1;  ///< -1: no reply (lost or still in flight)
  };

  PingProbe() = default;

  /// Schedules one echo request of `payload_bytes` at virtual time `when`.
  /// Returns the probe index into results().
  std::size_t ping(Engine& engine, NetSim& sim, NodeId src, NodeId dst,
                   SimTime when, std::uint32_t payload_bytes = 64);

  const std::vector<Result>& results() const { return results_; }

  /// Completed round trips.
  std::size_t replies() const;

  // ---- TrafficComponent ---------------------------------------------------
  void start(Engine& engine, NetSim& sim) override {}
  void on_timer(Engine& engine, NetSim& sim, NodeId host,
                std::uint64_t payload, std::uint64_t c) override;
  void on_udp(Engine& engine, NetSim& sim, const Packet& packet) override;

  /// Checkpoint hooks: the probe results issued so far.
  void save(ckpt::Writer& writer) const override;
  bool load(ckpt::Reader& reader) override;

 private:
  // Tag payload: probe index (27 bits) | reply bit (bit 27).
  static constexpr std::uint32_t kReplyBit = 1u << 27;

  std::vector<Result> results_;
};

}  // namespace massf
