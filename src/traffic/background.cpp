#include "traffic/background.hpp"

#include <algorithm>

#include "ckpt/ckpt.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace massf {

BackgroundWorkload::BackgroundWorkload(std::vector<NodeId> sources,
                                       std::vector<NodeId> servers,
                                       const BackgroundOptions& options)
    : servers_(std::move(servers)), opts_(options), base_rng_(options.seed) {
  MASSF_CHECK(!sources.empty() && !servers_.empty());
  sources_.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    sources_.push_back(Source{sources[i], base_rng_.fork(i), 0, 0, 0, 0});
  }
}

void BackgroundWorkload::start(Engine& engine, NetSim& sim) {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    Source& s = sources_[i];
    const double delay =
        opts_.staggered_start
            ? s.rng.uniform_real(0.0, opts_.think_time_mean_s)
            : s.rng.exponential(opts_.think_time_mean_s);
    sim.schedule_app_timer(engine, s.host, from_seconds(delay),
                           make_timer(TrafficKind::kBackground, i));
  }
}

void BackgroundWorkload::on_timer(Engine& engine, NetSim& sim, NodeId host,
                                  std::uint64_t payload, std::uint64_t) {
  const auto idx = static_cast<std::uint32_t>(payload);
  MASSF_CHECK(idx < sources_.size());
  Source& s = sources_[idx];
  MASSF_CHECK(s.host == host);
  // Outcome bits carried back from the completion/failure handlers: the
  // source's own LP does the counting (see header).
  if (payload & kTimerCompletedBit) ++s.completed;
  if (payload & kTimerFailedBit) ++s.failed;
  issue_flow(engine, sim, idx);
}

void BackgroundWorkload::issue_flow(Engine& engine, NetSim& sim,
                                    std::uint32_t source_idx) {
  Source& s = sources_[source_idx];
  const NodeId server = servers_[s.rng.uniform(servers_.size())];
  if (!sim.forwarding().reachable(s.host, server) ||
      !sim.forwarding().reachable(server, s.host)) {
    sim.schedule_app_timer(
        engine, s.host,
        engine.now() + from_seconds(s.rng.exponential(opts_.think_time_mean_s)),
        make_timer(TrafficKind::kBackground, source_idx));
    return;
  }
  const double raw = s.rng.exponential(opts_.flow_mean_bytes);
  const auto bytes =
      static_cast<std::uint32_t>(std::clamp(raw, 1.0, 1024.0 * 1024 * 1024));
  ++s.issued;
  const std::uint32_t tag = make_tag(TrafficKind::kBackground, source_idx);
  if (opts_.flow_fidelity) {
    if (sim.start_background_flow(engine, engine.now(), s.host, server, bytes,
                                  tag)) {
      ++s.fluid;
    }
  } else {
    sim.start_flow(engine, engine.now(), s.host, server, bytes, tag);
  }
}

void BackgroundWorkload::on_flow_complete(Engine& engine, NetSim& sim,
                                          FlowId flow, NodeId src_host,
                                          NodeId, std::uint32_t tag) {
  // Runs on the receiver's LP (packet) or a window boundary (fluid): the
  // think time must not consume the source's RNG, so it is a pure function
  // of the flow id — deterministic under any executor, same idiom as the
  // HTTP response size.
  const auto idx = tag_payload(tag);
  MASSF_CHECK(idx < sources_.size());
  Rng think_rng = base_rng_.fork(flow ^ 0xd1b54a32d192ed03ULL);
  const SimTime delay = std::max(
      from_seconds(think_rng.exponential(opts_.think_time_mean_s)),
      engine.options().lookahead);
  sim.schedule_app_timer(
      engine, src_host, engine.now() + delay,
      make_timer(TrafficKind::kBackground, idx | kTimerCompletedBit));
}

void BackgroundWorkload::on_flow_failed(Engine& engine, NetSim& sim, FlowId,
                                        NodeId src_host, NodeId,
                                        std::uint32_t tag) {
  // Fixed backoff (no RNG on a foreign LP); the lookahead floor keeps the
  // cross-LP schedule contract satisfied from handlers and boundaries.
  const auto idx = tag_payload(tag);
  MASSF_CHECK(idx < sources_.size());
  const SimTime backoff = std::max(from_seconds(opts_.think_time_mean_s),
                                   engine.options().lookahead);
  sim.schedule_app_timer(
      engine, src_host, engine.now() + backoff,
      make_timer(TrafficKind::kBackground, idx | kTimerFailedBit));
}

std::uint64_t BackgroundWorkload::flows_issued() const {
  std::uint64_t total = 0;
  for (const Source& s : sources_) total += s.issued;
  return total;
}

std::uint64_t BackgroundWorkload::flows_completed() const {
  std::uint64_t total = 0;
  for (const Source& s : sources_) total += s.completed;
  return total;
}

std::uint64_t BackgroundWorkload::flows_failed() const {
  std::uint64_t total = 0;
  for (const Source& s : sources_) total += s.failed;
  return total;
}

std::uint64_t BackgroundWorkload::fluid_carried() const {
  std::uint64_t total = 0;
  for (const Source& s : sources_) total += s.fluid;
  return total;
}

void BackgroundWorkload::publish_metrics(obs::Registry& registry) const {
  registry.counter("traffic.bg.flows").inc(flows_issued());
  registry.counter("traffic.bg.completed").inc(flows_completed());
  registry.counter("traffic.bg.failed").inc(flows_failed());
  registry.counter("traffic.bg.fluid").inc(fluid_carried());
}

void BackgroundWorkload::save(ckpt::Writer& w) const {
  w.u64(sources_.size());
  for (const Source& s : sources_) {
    for (const std::uint64_t x : s.rng.state()) w.u64(x);
    w.u64(s.issued);
    w.u64(s.completed);
    w.u64(s.failed);
    w.u64(s.fluid);
  }
}

bool BackgroundWorkload::load(ckpt::Reader& r) {
  if (r.u64() != sources_.size()) return false;
  for (Source& s : sources_) {
    std::array<std::uint64_t, 4> st;
    for (std::uint64_t& x : st) x = r.u64();
    s.rng.set_state(st);
    s.issued = r.u64();
    s.completed = r.u64();
    s.failed = r.u64();
    s.fluid = r.u64();
  }
  return r.ok();
}

}  // namespace massf
