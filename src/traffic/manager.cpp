#include "traffic/manager.hpp"

#include "ckpt/ckpt.hpp"
#include "util/check.hpp"

namespace massf {

void TrafficComponent::on_flow_complete(Engine&, NetSim&, FlowId, NodeId,
                                        NodeId, std::uint32_t) {}
void TrafficComponent::on_flow_failed(Engine&, NetSim&, FlowId, NodeId,
                                      NodeId, std::uint32_t) {}
void TrafficComponent::on_timer(Engine&, NetSim&, NodeId, std::uint64_t,
                                std::uint64_t) {}
void TrafficComponent::on_udp(Engine&, NetSim&, const Packet&) {}
void TrafficComponent::publish_metrics(obs::Registry&) const {}
void TrafficComponent::save(ckpt::Writer&) const {}
bool TrafficComponent::load(ckpt::Reader&) { return true; }

TrafficManager::TrafficManager(NetSim& sim) {
  sim.set_flow_complete([this](Engine& engine, NetSim& s, FlowId flow,
                               NodeId src, NodeId dst, std::uint32_t tag,
                               bool failed) {
    if (auto* c = component(tag_kind(tag))) {
      if (failed) {
        c->on_flow_failed(engine, s, flow, src, dst, tag);
      } else {
        c->on_flow_complete(engine, s, flow, src, dst, tag);
      }
    }
  });
  sim.set_app_timer([this](Engine& engine, NetSim& s, NodeId host,
                           std::uint64_t b, std::uint64_t c) {
    if (auto* comp = component(timer_kind(b))) {
      comp->on_timer(engine, s, host, timer_payload(b), c);
    }
  });
  sim.set_udp_receive([this](Engine& engine, NetSim& s, const Packet& p) {
    if (auto* c = component(tag_kind(p.ack))) {
      c->on_udp(engine, s, p);
    }
  });
}

void TrafficManager::add(TrafficKind kind,
                         std::unique_ptr<TrafficComponent> component) {
  const auto idx = static_cast<std::size_t>(kind);
  MASSF_CHECK(idx > 0 && idx < components_.size());
  MASSF_CHECK(components_[idx] == nullptr);
  components_[idx] = std::move(component);
}

void TrafficManager::start(Engine& engine, NetSim& sim) {
  for (auto& c : components_) {
    if (c) c->start(engine, sim);
  }
}

void TrafficManager::publish_metrics(obs::Registry& registry) const {
  for (const auto& c : components_) {
    if (c) c->publish_metrics(registry);
  }
}

void TrafficManager::save(ckpt::Writer& w) const {
  std::uint32_t count = 0;
  for (const auto& c : components_)
    if (c) ++count;
  w.u32(count);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (!components_[i]) continue;
    w.u32(static_cast<std::uint32_t>(i));
    components_[i]->save(w);
  }
}

bool TrafficManager::load(ckpt::Reader& r) {
  std::uint32_t expected = 0;
  for (const auto& c : components_)
    if (c) ++expected;
  if (r.u32() != expected) return false;
  for (std::uint32_t n = 0; n < expected; ++n) {
    const std::uint32_t idx = r.u32();
    if (!r.ok() || idx >= components_.size() || !components_[idx])
      return false;
    if (!components_[idx]->load(r)) return false;
  }
  return r.ok();
}

TrafficComponent* TrafficManager::component(TrafficKind kind) const {
  const auto idx = static_cast<std::size_t>(kind);
  if (idx >= components_.size()) return nullptr;
  return components_[idx].get();
}

}  // namespace massf
