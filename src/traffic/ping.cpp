#include "traffic/ping.hpp"

#include "ckpt/ckpt.hpp"
#include "util/check.hpp"

namespace massf {

std::size_t PingProbe::ping(Engine& engine, NetSim& sim, NodeId src,
                            NodeId dst, SimTime when,
                            std::uint32_t payload_bytes) {
  const std::size_t idx = results_.size();
  MASSF_CHECK(idx < kReplyBit);
  Result r;
  r.src = src;
  r.dst = dst;
  r.sent_at = when;
  results_.push_back(r);
  // The request is launched by a timer on the source host so probes can be
  // created before the run regardless of LP ownership.
  sim.schedule_app_timer(
      engine, src, when,
      make_timer(TrafficKind::kPing, static_cast<std::uint64_t>(idx)),
      payload_bytes);
  return idx;
}

void PingProbe::on_timer(Engine& engine, NetSim& sim, NodeId host,
                         std::uint64_t payload, std::uint64_t c) {
  const auto idx = static_cast<std::size_t>(payload);
  MASSF_CHECK(idx < results_.size());
  const Result& r = results_[idx];
  MASSF_CHECK(r.src == host);
  sim.send_udp(engine, engine.now(), r.src, r.dst,
               static_cast<std::uint32_t>(c),
               make_tag(TrafficKind::kPing,
                        static_cast<std::uint32_t>(idx)));
}

void PingProbe::on_udp(Engine& engine, NetSim& sim, const Packet& packet) {
  const std::uint32_t payload = tag_payload(packet.ack);
  const auto idx = static_cast<std::size_t>(payload & ~kReplyBit);
  MASSF_CHECK(idx < results_.size());
  Result& r = results_[idx];
  if ((payload & kReplyBit) == 0) {
    // Echo request arrived at the destination: reflect it.
    MASSF_CHECK(packet.dst == r.dst);
    sim.send_udp(engine, engine.now(), r.dst, r.src, packet.len,
                 make_tag(TrafficKind::kPing,
                          static_cast<std::uint32_t>(idx) | kReplyBit));
    return;
  }
  // Reply back at the source: record the round trip.
  MASSF_CHECK(packet.dst == r.src);
  if (r.rtt < 0) r.rtt = engine.now() - r.sent_at;
}

std::size_t PingProbe::replies() const {
  std::size_t n = 0;
  for (const Result& r : results_) n += r.rtt >= 0;
  return n;
}

void PingProbe::save(ckpt::Writer& w) const {
  w.u64(results_.size());
  for (const Result& res : results_) {
    w.i32(res.src);
    w.i32(res.dst);
    w.i64(res.sent_at);
    w.i64(res.rtt);
  }
}

bool PingProbe::load(ckpt::Reader& r) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ULL << 32)) return false;
  results_.assign(static_cast<std::size_t>(n), Result{});
  for (Result& res : results_) {
    res.src = r.i32();
    res.dst = r.i32();
    res.sent_at = r.i64();
    res.rtt = r.i64();
  }
  return r.ok();
}

}  // namespace massf
