// Constant-bit-rate UDP streams — the other classic background-traffic
// model (alongside request/response HTTP): each stream pushes fixed-size
// datagrams at a fixed rate from a source host to a sink, loading links
// without any congestion response.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/manager.hpp"

namespace massf {

struct CbrOptions {
  double rate_bps = 1e6;              ///< per stream
  std::uint32_t packet_bytes = 1000;  ///< datagram payload
  /// Streams start staggered over one packet interval to avoid phase
  /// alignment.
  SimTime start_at = milliseconds(1);
};

class CbrWorkload final : public TrafficComponent {
 public:
  struct Stream {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
  };

  CbrWorkload(std::vector<Stream> streams, const CbrOptions& options);

  void start(Engine& engine, NetSim& sim) override;
  void on_timer(Engine& engine, NetSim& sim, NodeId host,
                std::uint64_t payload, std::uint64_t c) override;
  void on_udp(Engine& engine, NetSim& sim, const Packet& packet) override;

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_received() const;

  /// Per-stream delivered datagram counts.
  const std::vector<std::uint64_t>& received_per_stream() const {
    return received_;
  }

  /// Checkpoint hooks: send/receive counters (streams are construction-
  /// time; the periodic send timers live in the engine's event queues).
  void save(ckpt::Writer& writer) const override;
  bool load(ckpt::Reader& reader) override;

 private:
  SimTime interval() const;

  std::vector<Stream> streams_;
  CbrOptions opts_;
  std::uint64_t sent_ = 0;
  std::vector<std::uint64_t> received_;
};

}  // namespace massf
