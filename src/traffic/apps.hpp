// Concrete dataflow shapes for the paper's foreground applications.
//
// ScaLapack: processes in an r x c grid; every iteration each process
// exchanges panel/update blocks with its row and column peers — a
// communication-heavy BSP pattern (the paper notes ScaLapack benefits most
// from better mappings because of its communication volume).
//
// GridNPB 3.0 (class S, as in the paper): workflow compositions of NPB
// tasks exchanging initialization data —
//   HC (Helical Chain): tasks in a single cycle, one transfer per step;
//   VP (Visualization Pipeline): staged pipeline with fan-out between
//      stages;
//   MB (Mixed Bag): heterogeneous independent branches joining at a
//      collector.
// All are lighter on communication than ScaLapack.
#pragma once

#include <span>

#include "traffic/dataflow.hpp"

namespace massf {

struct ScaLapackOptions {
  std::uint32_t block_bytes = 200 * 1024;  ///< panel/update block size
  SimTime compute = milliseconds(50);      ///< per-iteration local work
};

/// Builds the ScaLapack pattern over `hosts` arranged in the most square
/// grid that fits (requires >= 4 hosts).
DataflowGraph make_scalapack(std::span<const NodeId> hosts,
                             const ScaLapackOptions& opts);

struct GridNpbOptions {
  std::uint32_t data_bytes = 100 * 1024;  ///< inter-task transfer size
  SimTime compute = milliseconds(200);    ///< per-task computation (class S)
};

/// Helical Chain over all hosts.
DataflowGraph make_gridnpb_hc(std::span<const NodeId> hosts,
                              const GridNpbOptions& opts);

/// Visualization Pipeline: 3 stages; hosts are split evenly across stages
/// (requires >= 3 hosts).
DataflowGraph make_gridnpb_vp(std::span<const NodeId> hosts,
                              const GridNpbOptions& opts);

/// Mixed Bag: independent worker branches with varied sizes feeding a
/// collector on the last host (requires >= 2 hosts).
DataflowGraph make_gridnpb_mb(std::span<const NodeId> hosts,
                              const GridNpbOptions& opts);

/// The paper's GridNPB workload: the combination of HC, VP and MB running
/// concurrently, each over a third of `hosts` (requires >= 9 hosts).
std::vector<DataflowGraph> make_gridnpb_mix(std::span<const NodeId> hosts,
                                            const GridNpbOptions& opts);

/// Disjoint union of several dataflow graphs, so a combination of
/// applications runs as one TrafficComponent.
DataflowGraph merge_graphs(std::span<const DataflowGraph> graphs);

}  // namespace massf
