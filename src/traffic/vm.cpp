#include "traffic/vm.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace massf {

VmHosts::VmHosts(std::span<const NodeId> hosts, double ops_per_second)
    : capacity_(ops_per_second) {
  MASSF_CHECK(ops_per_second > 0);
  for (const NodeId h : hosts) {
    hosts_.emplace(h, HostState{});
  }
}

VmHosts::HostState& VmHosts::state(NodeId host) {
  auto it = hosts_.find(host);
  MASSF_CHECK(it != hosts_.end() && "host not registered with VmHosts");
  return it->second;
}

std::size_t VmHosts::load(NodeId host) const {
  auto it = hosts_.find(host);
  MASSF_CHECK(it != hosts_.end());
  return it->second.tasks.size();
}

void VmHosts::advance(HostState& hs, SimTime now) {
  if (hs.tasks.empty() || now <= hs.last_update) {
    hs.last_update = std::max(hs.last_update, now);
    return;
  }
  const double elapsed = to_seconds(now - hs.last_update);
  const double per_task =
      elapsed * capacity_ / static_cast<double>(hs.tasks.size());
  for (Task& t : hs.tasks) {
    t.remaining_ops = std::max(0.0, t.remaining_ops - per_task);
  }
  hs.last_update = now;
}

void VmHosts::settle(Engine& engine, NetSim& sim, NodeId host,
                     HostState& hs) {
  // Collect every task whose work has reached zero (floating-point work
  // accounting: treat anything below half an op as done).
  constexpr double kDoneEps = 0.5;
  std::vector<std::uint64_t> done;
  for (std::size_t i = 0; i < hs.tasks.size();) {
    if (hs.tasks[i].remaining_ops <= kDoneEps) {
      done.push_back(hs.tasks[i].cookie);
      hs.tasks.erase(hs.tasks.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // Invalidate any outstanding timer and, if work remains, arm a timer for
  // the earliest possible completion under the current sharing level.
  ++hs.timer_epoch;
  if (!hs.tasks.empty()) {
    double min_ops = hs.tasks[0].remaining_ops;
    for (const Task& t : hs.tasks) {
      min_ops = std::min(min_ops, t.remaining_ops);
    }
    const double rate = capacity_ / static_cast<double>(hs.tasks.size());
    const SimTime eta = std::max<SimTime>(1, from_seconds(min_ops / rate));
    sim.schedule_app_timer(engine, host, engine.now() + eta,
                           make_timer(TrafficKind::kVm, hs.timer_epoch));
  }

  // Callbacks run last: they may submit() again (re-entrantly), which
  // re-settles with a fresh epoch and supersedes the timer armed above.
  for (const std::uint64_t cookie : done) {
    if (on_done_) on_done_(engine, sim, host, cookie);
  }
}

void VmHosts::submit(Engine& engine, NetSim& sim, NodeId host, double ops,
                     std::uint64_t cookie) {
  MASSF_CHECK(ops > 0);
  HostState& hs = state(host);
  advance(hs, engine.now());
  hs.tasks.push_back(Task{ops, cookie});
  settle(engine, sim, host, hs);
}

void VmHosts::on_timer(Engine& engine, NetSim& sim, NodeId host,
                       std::uint64_t payload, std::uint64_t) {
  HostState& hs = state(host);
  if (payload != hs.timer_epoch) return;  // stale timer
  advance(hs, engine.now());
  settle(engine, sim, host, hs);
}

}  // namespace massf
