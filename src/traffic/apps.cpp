#include "traffic/apps.hpp"

#include <cmath>

#include "util/check.hpp"

namespace massf {

DataflowGraph make_scalapack(std::span<const NodeId> hosts,
                             const ScaLapackOptions& opts) {
  MASSF_CHECK(hosts.size() >= 4);
  // Most square grid r x c with r*c <= hosts.size().
  auto r = static_cast<std::int32_t>(std::sqrt(
      static_cast<double>(hosts.size())));
  const std::int32_t c = static_cast<std::int32_t>(hosts.size()) / r;
  const std::int32_t np = r * c;

  DataflowGraph g;
  g.name = "ScaLapack";
  g.tasks.reserve(static_cast<std::size_t>(np));
  for (std::int32_t i = 0; i < np; ++i) {
    DataflowTask t;
    t.host = hosts[static_cast<std::size_t>(i)];
    t.compute = opts.compute;
    t.initial = true;  // all processes start iterating immediately
    g.tasks.push_back(t);
  }
  // Row and column exchanges: (i,j) sends a block to every process in its
  // row and its column each iteration (panel broadcast + trailing update).
  const auto id = [&](std::int32_t i, std::int32_t j) { return i * c + j; };
  for (std::int32_t i = 0; i < r; ++i) {
    for (std::int32_t j = 0; j < c; ++j) {
      for (std::int32_t jj = 0; jj < c; ++jj) {
        if (jj != j) {
          g.edges.push_back({id(i, j), id(i, jj), opts.block_bytes});
        }
      }
      for (std::int32_t ii = 0; ii < r; ++ii) {
        if (ii != i) {
          g.edges.push_back({id(i, j), id(ii, j), opts.block_bytes});
        }
      }
    }
  }
  return g;
}

DataflowGraph make_gridnpb_hc(std::span<const NodeId> hosts,
                              const GridNpbOptions& opts) {
  MASSF_CHECK(hosts.size() >= 2);
  DataflowGraph g;
  g.name = "GridNPB-HC";
  const auto n = static_cast<std::int32_t>(hosts.size());
  for (std::int32_t i = 0; i < n; ++i) {
    DataflowTask t;
    t.host = hosts[static_cast<std::size_t>(i)];
    t.compute = opts.compute;
    t.initial = i == 0;
    g.tasks.push_back(t);
  }
  for (std::int32_t i = 0; i < n; ++i) {
    g.edges.push_back({i, (i + 1) % n, opts.data_bytes});
  }
  return g;
}

DataflowGraph make_gridnpb_vp(std::span<const NodeId> hosts,
                              const GridNpbOptions& opts) {
  MASSF_CHECK(hosts.size() >= 3);
  DataflowGraph g;
  g.name = "GridNPB-VP";
  const auto n = static_cast<std::int32_t>(hosts.size());
  const std::int32_t per_stage = n / 3;
  // Stage s task k lives at host s*per_stage + k.
  const auto id = [&](std::int32_t s, std::int32_t k) {
    return s * per_stage + k;
  };
  for (std::int32_t i = 0; i < 3 * per_stage; ++i) {
    DataflowTask t;
    t.host = hosts[static_cast<std::size_t>(i)];
    t.compute = opts.compute;
    t.initial = i < per_stage;  // the generator stage
    g.tasks.push_back(t);
  }
  for (std::int32_t s = 0; s < 2; ++s) {
    for (std::int32_t k = 0; k < per_stage; ++k) {
      g.edges.push_back({id(s, k), id(s + 1, k), opts.data_bytes});
      if (per_stage > 1) {
        g.edges.push_back(
            {id(s, k), id(s + 1, (k + 1) % per_stage), opts.data_bytes / 2});
      }
    }
  }
  // Feedback from the render stage to the generator stage closes the cycle.
  for (std::int32_t k = 0; k < per_stage; ++k) {
    g.edges.push_back({id(2, k), id(0, k), opts.data_bytes / 4});
  }
  return g;
}

DataflowGraph make_gridnpb_mb(std::span<const NodeId> hosts,
                              const GridNpbOptions& opts) {
  MASSF_CHECK(hosts.size() >= 2);
  DataflowGraph g;
  g.name = "GridNPB-MB";
  const auto n = static_cast<std::int32_t>(hosts.size());
  const std::int32_t collector = n - 1;
  for (std::int32_t i = 0; i < n; ++i) {
    DataflowTask t;
    t.host = hosts[static_cast<std::size_t>(i)];
    // Heterogeneous compute: "mixed bag" of task sizes.
    t.compute = opts.compute * (1 + i % 3);
    t.initial = i != collector;
    g.tasks.push_back(t);
  }
  for (std::int32_t i = 0; i < collector; ++i) {
    // Varied transfer sizes, workers feed the collector and get fresh
    // assignments back.
    const std::uint32_t bytes = opts.data_bytes / (1 + i % 4);
    g.edges.push_back({i, collector, bytes});
    g.edges.push_back({collector, i, opts.data_bytes / 8});
  }
  return g;
}

DataflowGraph merge_graphs(std::span<const DataflowGraph> graphs) {
  DataflowGraph merged;
  for (const DataflowGraph& g : graphs) {
    if (!merged.name.empty()) merged.name += "+";
    merged.name += g.name;
    const auto offset = static_cast<std::int32_t>(merged.tasks.size());
    merged.tasks.insert(merged.tasks.end(), g.tasks.begin(), g.tasks.end());
    for (DataflowEdge e : g.edges) {
      e.src_task += offset;
      e.dst_task += offset;
      merged.edges.push_back(e);
    }
  }
  return merged;
}

std::vector<DataflowGraph> make_gridnpb_mix(std::span<const NodeId> hosts,
                                            const GridNpbOptions& opts) {
  MASSF_CHECK(hosts.size() >= 9);
  const std::size_t third = hosts.size() / 3;
  std::vector<DataflowGraph> graphs;
  graphs.push_back(make_gridnpb_hc(hosts.subspan(0, third), opts));
  graphs.push_back(make_gridnpb_vp(hosts.subspan(third, third), opts));
  graphs.push_back(
      make_gridnpb_mb(hosts.subspan(2 * third, hosts.size() - 2 * third),
                      opts));
  return graphs;
}

}  // namespace massf
