#include "traffic/cbr.hpp"

#include "ckpt/ckpt.hpp"
#include "util/check.hpp"

namespace massf {

CbrWorkload::CbrWorkload(std::vector<Stream> streams,
                         const CbrOptions& options)
    : streams_(std::move(streams)), opts_(options) {
  MASSF_CHECK(!streams_.empty());
  MASSF_CHECK(opts_.rate_bps > 0);
  MASSF_CHECK(opts_.packet_bytes > 0 && opts_.packet_bytes <= kMss);
  received_.assign(streams_.size(), 0);
}

SimTime CbrWorkload::interval() const {
  return from_seconds(static_cast<double>(opts_.packet_bytes) * 8 /
                      opts_.rate_bps);
}

void CbrWorkload::start(Engine& engine, NetSim& sim) {
  const SimTime step = interval();
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    // Deterministic stagger: stream i starts i/n of the way into the first
    // interval.
    const SimTime offset =
        step * static_cast<SimTime>(i) /
        static_cast<SimTime>(streams_.size());
    sim.schedule_app_timer(engine, streams_[i].src,
                           opts_.start_at + offset,
                           make_timer(TrafficKind::kCbr, i));
  }
}

void CbrWorkload::on_timer(Engine& engine, NetSim& sim, NodeId host,
                           std::uint64_t payload, std::uint64_t) {
  const auto idx = static_cast<std::size_t>(payload);
  MASSF_CHECK(idx < streams_.size());
  const Stream& s = streams_[idx];
  MASSF_CHECK(s.src == host);
  sim.send_udp(engine, engine.now(), s.src, s.dst, opts_.packet_bytes,
               make_tag(TrafficKind::kCbr, static_cast<std::uint32_t>(idx)));
  ++sent_;
  sim.schedule_app_timer(engine, s.src, engine.now() + interval(),
                         make_timer(TrafficKind::kCbr, payload));
}

void CbrWorkload::on_udp(Engine&, NetSim&, const Packet& packet) {
  const std::uint32_t idx = tag_payload(packet.ack);
  MASSF_CHECK(idx < streams_.size());
  ++received_[idx];
}

std::uint64_t CbrWorkload::packets_received() const {
  std::uint64_t total = 0;
  for (const std::uint64_t r : received_) total += r;
  return total;
}

void CbrWorkload::save(ckpt::Writer& w) const {
  w.u64(sent_);
  ckpt::write_u64_vec(w, received_);
}

bool CbrWorkload::load(ckpt::Reader& r) {
  sent_ = r.u64();
  if (!ckpt::read_u64_vec(r, received_) ||
      received_.size() != streams_.size())
    return false;
  return r.ok();
}

}  // namespace massf
