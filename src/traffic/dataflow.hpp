// Generic cyclic-dataflow application skeleton.
//
// The paper's foreground workloads are real Grid applications (ScaLapack
// and the GridNPB 3.0 workflow benchmarks HC/VP/MB). The simulator observes
// applications only through the traffic they inject, so we model each as a
// cyclic dataflow graph: tasks pinned to hosts, each firing when all its
// input transfers arrive, spending a compute delay, then starting its
// output transfers. GridNPB itself is defined as exactly such a dataflow
// composition, and ScaLapack's block-cyclic communication maps onto a
// row/column exchange pattern (see apps.hpp for the concrete shapes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/manager.hpp"
#include "util/sim_time.hpp"

namespace massf {

struct DataflowTask {
  NodeId host = kInvalidNode;
  SimTime compute = 0;     ///< delay between inputs-ready and outputs-sent
  bool initial = false;    ///< fires unconditionally at t = start_at
};

struct DataflowEdge {
  std::int32_t src_task = 0;
  std::int32_t dst_task = 0;
  std::uint32_t bytes = 0;
};

struct DataflowGraph {
  std::string name;
  std::vector<DataflowTask> tasks;
  std::vector<DataflowEdge> edges;
};

class VmHosts;

class DataflowApp final : public TrafficComponent {
 public:
  DataflowApp(DataflowGraph graph, SimTime start_at);

  /// Optional: route task computation through a virtual-host CPU scheduler
  /// instead of fixed delays — a task's compute then stretches when it
  /// shares its host. The VmHosts must be registered with the same
  /// TrafficManager (kind kVm), cover every task host, and must not be
  /// shared with another component (this app installs its done callback).
  /// Call before start().
  void use_vm(VmHosts* vm);

  void start(Engine& engine, NetSim& sim) override;
  void on_flow_complete(Engine& engine, NetSim& sim, FlowId flow,
                        NodeId src_host, NodeId dst_host,
                        std::uint32_t tag) override;
  void on_timer(Engine& engine, NetSim& sim, NodeId host,
                std::uint64_t payload, std::uint64_t c) override;

  /// Total task firings so far (progress indicator).
  std::uint64_t firings() const;
  const DataflowGraph& graph() const { return graph_; }

  /// Checkpoint hooks: input credits, in-compute flags, and firing counts.
  /// A VM-backed app (use_vm) is not checkpointable — the VM compute queues
  /// are not captured — so load() rejects it (DESIGN.md section 5e).
  void save(ckpt::Writer& writer) const override;
  bool load(ckpt::Reader& reader) override;

 private:
  void fire(Engine& engine, NetSim& sim, std::int32_t task);
  void maybe_schedule_compute(Engine& engine, NetSim& sim, std::int32_t task);

  DataflowGraph graph_;
  SimTime start_at_;
  VmHosts* vm_ = nullptr;
  std::vector<std::int32_t> in_degree_;
  /// Input transfers received and not yet consumed by a firing. Inputs from
  /// a future iteration can land while the current compute delay is still
  /// pending, so this is a credit counter, not a countdown. All per-task
  /// state is owned by the LP of the task's host (flow completions and
  /// timers both land there).
  std::vector<std::int32_t> received_;
  std::vector<char> in_compute_;
  std::vector<std::uint64_t> fired_;
};

}  // namespace massf
