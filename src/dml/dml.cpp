#include "dml/dml.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"
#include "util/error.hpp"

namespace massf {
namespace {

struct Token {
  enum Kind { kAtom, kOpen, kClose, kEnd } kind = kEnd;
  std::string text;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) {
      t.kind = Token::kEnd;
      return t;
    }
    const char c = text_[pos_];
    if (c == '[') {
      ++pos_;
      t.kind = Token::kOpen;
      return t;
    }
    if (c == ']') {
      ++pos_;
      t.kind = Token::kClose;
      return t;
    }
    t.kind = Token::kAtom;
    if (c == '"') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\n') ++line_;
        t.text.push_back(text_[pos_++]);
      }
      if (pos_ < text_.size()) ++pos_;  // closing quote
      return t;
    }
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != '[' && text_[pos_] != ']' && text_[pos_] != '#') {
      t.text.push_back(text_[pos_++]);
    }
    return t;
  }

  int line() const { return line_; }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#' || (c == '/' && pos_ + 1 < text_.size() &&
                              text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// Parses the body of a list (after '['), or the whole document when
// `top_level`. Returns false on error.
bool parse_list(Lexer& lex, DmlNode& node, bool top_level,
                DmlParseError* error) {
  for (;;) {
    Token key = lex.next();
    if (key.kind == Token::kEnd) {
      if (top_level) return true;
      if (error) *error = {"unexpected end of input inside [ ]", key.line};
      return false;
    }
    if (key.kind == Token::kClose) {
      if (top_level) {
        if (error) *error = {"unbalanced ']'", key.line};
        return false;
      }
      return true;
    }
    if (key.kind != Token::kAtom) {
      if (error) *error = {"expected a key", key.line};
      return false;
    }
    Token value = lex.next();
    if (value.kind == Token::kAtom) {
      DmlAttribute attr;
      attr.key = std::move(key.text);
      attr.atom = std::move(value.text);
      attr.line = key.line;
      node.attributes.push_back(std::move(attr));
    } else if (value.kind == Token::kOpen) {
      DmlAttribute attr;
      attr.key = std::move(key.text);
      attr.child = std::make_unique<DmlNode>();
      attr.line = key.line;
      if (!parse_list(lex, *attr.child, false, error)) return false;
      node.attributes.push_back(std::move(attr));
    } else {
      if (error) {
        *error = {"key '" + key.text + "' has no value", value.line};
      }
      return false;
    }
  }
}

[[noreturn]] void config_error(std::string_view key, const char* what) {
  // Thrown rather than aborted: a bad attribute in a scenario file is a
  // user input error the CLI / guard harness reports and survives.
  std::string msg = "DML attribute '";
  msg.append(key.data(), key.size());
  msg += "' ";
  msg += what;
  MASSF_THROW(ErrorCategory::kConfig, msg);
}

void write_node(const DmlNode& node, std::ostringstream& os, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  for (const DmlAttribute& attr : node.attributes) {
    if (attr.child) {
      os << indent << attr.key << " [\n";
      write_node(*attr.child, os, depth + 1);
      os << indent << "]\n";
    } else {
      // Quote atoms containing whitespace or special characters.
      const bool needs_quotes =
          attr.atom.empty() ||
          attr.atom.find_first_of(" \t\n[]#\"") != std::string::npos;
      os << indent << attr.key << ' ';
      if (needs_quotes) {
        os << '"' << attr.atom << '"';
      } else {
        os << attr.atom;
      }
      os << '\n';
    }
  }
}

}  // namespace

const DmlNode* DmlNode::find(std::string_view key) const {
  for (const DmlAttribute& attr : attributes) {
    if (attr.key == key && attr.child) return attr.child.get();
  }
  return nullptr;
}

std::vector<const DmlNode*> DmlNode::find_all(std::string_view key) const {
  std::vector<const DmlNode*> result;
  for (const DmlAttribute& attr : attributes) {
    if (attr.key == key && attr.child) result.push_back(attr.child.get());
  }
  return result;
}

std::optional<std::string> DmlNode::atom(std::string_view key) const {
  for (const DmlAttribute& attr : attributes) {
    if (attr.key == key && !attr.child) return attr.atom;
  }
  return std::nullopt;
}

std::string DmlNode::require_string(std::string_view key) const {
  auto v = atom(key);
  if (!v) config_error(key, "is missing");
  return *v;
}

std::int64_t DmlNode::require_int(std::string_view key) const {
  const std::string v = require_string(key);
  char* end = nullptr;
  const std::int64_t result = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    config_error(key, "is not an integer");
  }
  return result;
}

double DmlNode::require_double(std::string_view key) const {
  const std::string v = require_string(key);
  char* end = nullptr;
  const double result = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    config_error(key, "is not a number");
  }
  return result;
}

std::int64_t DmlNode::get_int(std::string_view key,
                              std::int64_t fallback) const {
  return atom(key) ? require_int(key) : fallback;
}

double DmlNode::get_double(std::string_view key, double fallback) const {
  return atom(key) ? require_double(key) : fallback;
}

std::string DmlNode::get_string(std::string_view key,
                                std::string fallback) const {
  auto v = atom(key);
  return v ? *v : std::move(fallback);
}

void DmlNode::add_atom(std::string key, std::string value) {
  DmlAttribute attr;
  attr.key = std::move(key);
  attr.atom = std::move(value);
  attributes.push_back(std::move(attr));
}

void DmlNode::add_atom(std::string key, std::int64_t value) {
  add_atom(std::move(key), std::to_string(value));
}

void DmlNode::add_atom(std::string key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  add_atom(std::move(key), std::string(buf));
}

DmlNode& DmlNode::add_child(std::string key) {
  DmlAttribute attr;
  attr.key = std::move(key);
  attr.child = std::make_unique<DmlNode>();
  attributes.push_back(std::move(attr));
  return *attributes.back().child;
}

std::optional<DmlNode> parse_dml(std::string_view text,
                                 DmlParseError* error) {
  Lexer lex(text);
  DmlNode root;
  if (!parse_list(lex, root, /*top_level=*/true, error)) return std::nullopt;
  return root;
}

std::string write_dml(const DmlNode& root) {
  std::ostringstream os;
  write_node(root, os, 0);
  return os.str();
}

}  // namespace massf
