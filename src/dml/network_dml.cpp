#include "dml/network_dml.hpp"

#include <cstdio>

namespace massf {
namespace {

const char* class_name(AsClass c) {
  switch (c) {
    case AsClass::kCore:
      return "core";
    case AsClass::kRegional:
      return "regional";
    case AsClass::kStub:
      return "stub";
  }
  return "?";
}

std::optional<AsClass> class_from(const std::string& s) {
  if (s == "core") return AsClass::kCore;
  if (s == "regional") return AsClass::kRegional;
  if (s == "stub") return AsClass::kStub;
  return std::nullopt;
}

const char* rel_name(AsRel r) {
  switch (r) {
    case AsRel::kProvider:
      return "provider";
    case AsRel::kCustomer:
      return "customer";
    case AsRel::kPeer:
      return "peer";
  }
  return "?";
}

std::optional<AsRel> rel_from(const std::string& s) {
  if (s == "provider") return AsRel::kProvider;
  if (s == "customer") return AsRel::kCustomer;
  if (s == "peer") return AsRel::kPeer;
  return std::nullopt;
}

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

}  // namespace

DmlNode network_to_dml(const Network& net) {
  DmlNode root;
  DmlNode& n = root.add_child("Net");

  for (NodeId id = 0; id < static_cast<NodeId>(net.nodes.size()); ++id) {
    const NetNode& node = net.nodes[static_cast<std::size_t>(id)];
    DmlNode& e = n.add_child(net.is_router(id) ? "router" : "host");
    e.add_atom("id", static_cast<std::int64_t>(id));
    e.add_atom("as", static_cast<std::int64_t>(node.as_id));
    if (net.is_host(id)) {
      e.add_atom("attach", static_cast<std::int64_t>(node.attach_router));
    }
    e.add_atom("x", node.x);
    e.add_atom("y", node.y);
  }

  for (const NetLink& l : net.links) {
    DmlNode& e = n.add_child("link");
    e.add_atom("a", static_cast<std::int64_t>(l.a));
    e.add_atom("b", static_cast<std::int64_t>(l.b));
    e.add_atom("latency_ns", static_cast<std::int64_t>(l.latency));
    e.add_atom("bandwidth_bps", l.bandwidth_bps);
    e.add_atom("inter_as", static_cast<std::int64_t>(l.inter_as ? 1 : 0));
  }

  for (std::size_t a = 0; a < net.as_info.size(); ++a) {
    const AsInfo& info = net.as_info[a];
    DmlNode& e = n.add_child("as");
    e.add_atom("id", static_cast<std::int64_t>(a));
    e.add_atom("class", std::string(class_name(info.cls)));
    e.add_atom("first_router", static_cast<std::int64_t>(info.first_router));
    e.add_atom("num_routers", static_cast<std::int64_t>(info.num_routers));
    e.add_atom("cx", info.center_x);
    e.add_atom("cy", info.center_y);
  }

  for (const AsAdjacency& adj : net.as_adjacency) {
    DmlNode& e = n.add_child("adjacency");
    e.add_atom("a", static_cast<std::int64_t>(adj.as_a));
    e.add_atom("b", static_cast<std::int64_t>(adj.as_b));
    e.add_atom("rel", std::string(rel_name(adj.rel_ab)));
    e.add_atom("link", static_cast<std::int64_t>(adj.link));
  }
  return root;
}

std::optional<Network> network_from_dml(const DmlNode& root,
                                        std::string* error) {
  const DmlNode* n = root.find("Net");
  if (n == nullptr) {
    fail(error, "missing top-level Net [ ] block");
    return std::nullopt;
  }

  Network net;
  const auto routers = n->find_all("router");
  const auto hosts = n->find_all("host");
  net.nodes.resize(routers.size() + hosts.size());
  net.num_routers = static_cast<std::int32_t>(routers.size());

  for (const DmlNode* r : routers) {
    const auto id = static_cast<NodeId>(r->require_int("id"));
    if (id < 0 || id >= net.num_routers) {
      fail(error, "router id " + std::to_string(id) +
                      " outside the contiguous router range");
      return std::nullopt;
    }
    NetNode& node = net.nodes[static_cast<std::size_t>(id)];
    node.kind = NodeKind::kRouter;
    node.as_id = static_cast<AsId>(r->get_int("as", 0));
    node.x = r->get_double("x", 0);
    node.y = r->get_double("y", 0);
  }
  for (const DmlNode* h : hosts) {
    const auto id = static_cast<NodeId>(h->require_int("id"));
    if (id < net.num_routers ||
        id >= static_cast<NodeId>(net.nodes.size())) {
      fail(error, "host id " + std::to_string(id) +
                      " outside the contiguous host range");
      return std::nullopt;
    }
    NetNode& node = net.nodes[static_cast<std::size_t>(id)];
    node.kind = NodeKind::kHost;
    node.as_id = static_cast<AsId>(h->get_int("as", 0));
    node.attach_router = static_cast<NodeId>(h->require_int("attach"));
    node.x = h->get_double("x", 0);
    node.y = h->get_double("y", 0);
  }

  for (const DmlNode* l : n->find_all("link")) {
    NetLink link;
    link.a = static_cast<NodeId>(l->require_int("a"));
    link.b = static_cast<NodeId>(l->require_int("b"));
    link.latency = l->require_int("latency_ns");
    link.bandwidth_bps = l->require_double("bandwidth_bps");
    link.inter_as = l->get_int("inter_as", 0) != 0;
    net.links.push_back(link);
  }

  const auto as_blocks = n->find_all("as");
  net.as_info.resize(as_blocks.size());
  for (const DmlNode* a : as_blocks) {
    const auto id = static_cast<std::size_t>(a->require_int("id"));
    if (id >= net.as_info.size()) {
      fail(error, "as id out of range");
      return std::nullopt;
    }
    AsInfo& info = net.as_info[id];
    const auto cls = class_from(a->require_string("class"));
    if (!cls) {
      fail(error, "unknown AS class '" + a->require_string("class") + "'");
      return std::nullopt;
    }
    info.cls = *cls;
    info.first_router = static_cast<NodeId>(a->require_int("first_router"));
    info.num_routers =
        static_cast<std::int32_t>(a->require_int("num_routers"));
    info.center_x = a->get_double("cx", 0);
    info.center_y = a->get_double("cy", 0);
  }

  for (const DmlNode* adj : n->find_all("adjacency")) {
    AsAdjacency e;
    e.as_a = static_cast<AsId>(adj->require_int("a"));
    e.as_b = static_cast<AsId>(adj->require_int("b"));
    const auto rel = rel_from(adj->require_string("rel"));
    if (!rel) {
      fail(error, "unknown relationship '" + adj->require_string("rel") + "'");
      return std::nullopt;
    }
    e.rel_ab = *rel;
    e.link = static_cast<LinkId>(adj->require_int("link"));
    net.as_adjacency.push_back(e);
  }

  net.build_adjacency();
  const std::string problem = net.validate();
  if (!problem.empty()) {
    fail(error, "invalid network: " + problem);
    return std::nullopt;
  }
  return net;
}

std::string network_to_dml_text(const Network& net) {
  return write_dml(network_to_dml(net));
}

std::optional<Network> network_from_dml_text(std::string_view text,
                                             std::string* error) {
  DmlParseError perr;
  auto root = parse_dml(text, &perr);
  if (!root) {
    if (error) {
      *error = "parse error at line " + std::to_string(perr.line) + ": " +
               perr.message;
    }
    return std::nullopt;
  }
  return network_from_dml(*root, error);
}

}  // namespace massf
