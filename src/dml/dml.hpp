// DML (Domain Model Language) — the configuration format of SSF-family
// simulators. MaSSF "use[s] a network configuration interface similar to
// ... SSFNet" and expresses BGP policies "in the simulator input Domain
// Model Language (DML) file" (paper Sections 2.1 and 5.1.2); this module
// provides the format.
//
// DML is a nested list of key-value pairs:
//
//   Net [
//     frequency 1000000000
//     router [ id 3  interface [ id 0 bitrate 1e8 latency 0.0001 ] ]
//     # comments run to end of line
//   ]
//
// A value is either an atom (bare word, number, or "quoted string") or a
// bracketed child list. Keys repeat freely (e.g. many `router` entries).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace massf {

class DmlNode;

/// One key-value attribute; the value is an atom xor a child node.
struct DmlAttribute {
  std::string key;
  std::string atom;                    ///< valid when child == nullptr
  std::unique_ptr<DmlNode> child;      ///< valid when non-null
  /// Source line of the key (1-based); 0 for programmatically built trees.
  /// Consumers use it for fault-parser-style "line N: what" diagnostics.
  int line = 0;
};

class DmlNode {
 public:
  DmlNode() = default;
  DmlNode(DmlNode&&) = default;
  DmlNode& operator=(DmlNode&&) = default;

  std::vector<DmlAttribute> attributes;

  /// First child list under `key`, or nullptr.
  const DmlNode* find(std::string_view key) const;

  /// All child lists under `key`, in document order.
  std::vector<const DmlNode*> find_all(std::string_view key) const;

  /// First atom under `key`.
  std::optional<std::string> atom(std::string_view key) const;

  /// Typed accessors; abort with a parse-style error message when the key
  /// is missing or malformed (configuration errors must be loud).
  std::string require_string(std::string_view key) const;
  std::int64_t require_int(std::string_view key) const;
  double require_double(std::string_view key) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  std::string get_string(std::string_view key, std::string fallback) const;

  // -- construction helpers (for writers) ---------------------------------
  void add_atom(std::string key, std::string value);
  void add_atom(std::string key, std::int64_t value);
  void add_atom(std::string key, double value);
  DmlNode& add_child(std::string key);
};

struct DmlParseError {
  std::string message;
  int line = 0;
};

/// Parses a DML document. On success returns the root node (the document's
/// top-level attribute list); on failure returns the error via `error` and
/// nullopt.
std::optional<DmlNode> parse_dml(std::string_view text,
                                 DmlParseError* error = nullptr);

/// Serializes a node tree back to DML text (stable formatting; output
/// re-parses to an identical tree).
std::string write_dml(const DmlNode& root);

}  // namespace massf
