// Engine-integrated window telemetry.
//
// A WindowProbe attached to the PDES engine (Engine::set_probe) records,
// for every synchronization window: the per-LP events processed, pending
// queue depths and outbox sizes at the barrier, and the *real* (not
// modeled) wall-clock split into the protocol's phases — barrier hooks,
// LP processing, barrier wait, and the outbox merge. This is the
// observable counterpart of the modeled cost accounting in RunStats: the
// paper's load-variation and sync-cost studies (Figures 3 and 5) read
// directly off these records.
//
// The probe is deliberately decoupled from the engine types: the engine
// feeds it plain scalars, so obs depends only on util and everything above
// pdes can consume the records. All recording happens on the coordinator
// thread between barriers — no synchronization needed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace massf::ckpt {
class Reader;
class Writer;
}  // namespace massf::ckpt

namespace massf::obs {

class Registry;

class WindowProbe {
 public:
  struct Window {
    std::uint64_t index = 0;
    double start_vtime_s = 0;  ///< window floor (virtual seconds)
    std::uint64_t events = 0;  ///< events processed this window, all LPs
    std::uint64_t max_lp_events = 0;  ///< busiest LP this window
    /// Pending events across all LP queues at the barrier (before the
    /// outbox exchange), and the deepest single queue.
    std::uint64_t queue_depth = 0;
    std::uint64_t max_queue_depth = 0;
    std::uint64_t outbox = 0;  ///< cross-LP events exchanged at the barrier
    /// Non-empty (src,dst) outbox buffers merged at the barrier — the
    /// batch count of the scheduler's grouped exchange (pdes.sched.*).
    std::uint64_t outbox_batches = 0;
    // Real wall-clock per phase (seconds).
    double hook_s = 0;     ///< barrier hooks (online injection, failover)
    double process_s = 0;  ///< LP event processing (span, all workers)
    /// Thread-seconds spent blocked on synchronization, summed over
    /// workers. Under barrier sync this is the idle formula
    /// num_threads * span - sum(per-worker busy); under channel sync
    /// (DESIGN.md section 5g) it is the measured protocol wait: stalls
    /// with no claimable work plus parks for the next epoch publish.
    /// Zero under the sequential executor. This is the real analog of
    /// the modeled imbalance cost; divide by the thread count for a
    /// per-worker mean comparable against span.
    double barrier_wait_s = 0;
    double merge_s = 0;  ///< outbox delivery + window accounting
  };

  /// Number of per-window records kept verbatim; beyond it the probe keeps
  /// aggregating into the summary but stops appending rows (long online
  /// runs would otherwise grow without bound). 0 = unlimited.
  explicit WindowProbe(std::size_t max_windows = 0)
      : max_windows_(max_windows) {}

  // ---- engine-side recording (coordinator thread, between barriers) ------

  void begin_window(std::uint64_t index, double start_vtime_s);
  void record_lp(std::int32_t lp, std::uint64_t events,
                 std::uint64_t queue_depth, std::uint64_t outbox,
                 std::uint64_t outbox_batches = 0);
  void end_window(double hook_s, double process_s, double barrier_wait_s,
                  double merge_s);

  // ---- consumer side -----------------------------------------------------

  const std::vector<Window>& windows() const { return windows_; }
  std::size_t num_lps() const { return lp_events_.size(); }
  /// Cumulative events per LP over all recorded windows.
  const std::vector<std::uint64_t>& lp_events() const { return lp_events_; }

  struct Summary {
    std::uint64_t windows = 0;
    std::uint64_t events = 0;
    double hook_s = 0;
    double process_s = 0;
    double barrier_wait_s = 0;
    double merge_s = 0;
    std::uint64_t max_queue_depth = 0;
    std::uint64_t outbox_events = 0;
    std::uint64_t outbox_batches = 0;
  };
  Summary summary() const { return summary_; }

  /// Publishes the summary into `registry` as `<prefix>.*` counters and
  /// gauges (schema documented in DESIGN.md).
  void publish(Registry& registry, std::string_view prefix = "pdes.probe") const;

  /// One CSV row per recorded window, with a fixed header (DESIGN.md).
  std::string to_csv() const;

  /// Checkpoint hooks (ckpt/ckpt.hpp): probe rows are part of a run's
  /// output, so a restored run resumes with the rows recorded up to the
  /// boundary — its final CSV equals the uninterrupted run's. Must be
  /// called between windows (no window open).
  void save(ckpt::Writer& writer) const;
  bool load(ckpt::Reader& reader);

 private:
  std::size_t max_windows_;
  Window current_;
  bool open_ = false;
  std::vector<Window> windows_;
  std::vector<std::uint64_t> lp_events_;
  Summary summary_;
};

}  // namespace massf::obs
