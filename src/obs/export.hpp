// Registry exporters with a stable, golden-testable schema.
//
// JSON layout (schema id "massf.metrics.v1", full field reference in
// DESIGN.md §"Telemetry"):
//
//   {
//     "schema": "massf.metrics.v1",
//     "counters": { "<name>": <uint>, ... },          // name-ordered
//     "gauges":   { "<name>": <double>, ... },
//     "histograms": {
//       "<name>": { "bounds": [..], "counts": [..],   // counts = bounds+1
//                    "count": <uint>, "sum": <double> }
//     }
//   }
//
// CSV layout: header "kind,name,field,value"; counters/gauges emit one
// `value` row, histograms emit `count`, `sum`, then one `le_<bound>` row
// per bucket and a final `le_inf` overflow row.
//
// Doubles are rendered with std::to_chars shortest round-trip form, so
// output is byte-stable across runs and platforms with IEEE doubles.
#pragma once

#include <span>
#include <string>
#include <string_view>

namespace massf::obs {

class Registry;

/// Shortest round-trip decimal rendering of `v`; non-finite values clamp
/// to 0 / +-1e308 so the output stays valid JSON.
std::string format_double(double v);

std::string to_json(const Registry& registry);

/// to_json minus the metrics whose name matches an `exclude` entry: an
/// entry ending in '.' excludes by prefix, anything else exactly. The
/// campaign runner uses this to emit canonical per-run metrics with the
/// wall-clock/executor-identity fields stripped, so two executions of the
/// same run compare byte-identical.
std::string to_json_excluding(const Registry& registry,
                              std::span<const std::string_view> exclude);
std::string to_csv(const Registry& registry);

/// Writes `content` to `path` (truncating); returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace massf::obs
