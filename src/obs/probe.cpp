#include "obs/probe.hpp"

#include <algorithm>

#include "ckpt/ckpt.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace massf::obs {

void WindowProbe::begin_window(std::uint64_t index, double start_vtime_s) {
  MASSF_CHECK(!open_);
  open_ = true;
  current_ = Window{};
  current_.index = index;
  current_.start_vtime_s = start_vtime_s;
}

void WindowProbe::record_lp(std::int32_t lp, std::uint64_t events,
                            std::uint64_t queue_depth, std::uint64_t outbox,
                            std::uint64_t outbox_batches) {
  MASSF_CHECK(open_ && lp >= 0);
  if (static_cast<std::size_t>(lp) >= lp_events_.size()) {
    lp_events_.resize(static_cast<std::size_t>(lp) + 1, 0);
  }
  lp_events_[static_cast<std::size_t>(lp)] += events;
  current_.events += events;
  current_.max_lp_events = std::max(current_.max_lp_events, events);
  current_.queue_depth += queue_depth;
  current_.max_queue_depth = std::max(current_.max_queue_depth, queue_depth);
  current_.outbox += outbox;
  current_.outbox_batches += outbox_batches;
}

void WindowProbe::end_window(double hook_s, double process_s,
                             double barrier_wait_s, double merge_s) {
  MASSF_CHECK(open_);
  open_ = false;
  current_.hook_s = hook_s;
  current_.process_s = process_s;
  current_.barrier_wait_s = barrier_wait_s;
  current_.merge_s = merge_s;

  ++summary_.windows;
  summary_.events += current_.events;
  summary_.hook_s += hook_s;
  summary_.process_s += process_s;
  summary_.barrier_wait_s += barrier_wait_s;
  summary_.merge_s += merge_s;
  summary_.max_queue_depth =
      std::max(summary_.max_queue_depth, current_.max_queue_depth);
  summary_.outbox_events += current_.outbox;
  summary_.outbox_batches += current_.outbox_batches;

  if (max_windows_ == 0 || windows_.size() < max_windows_) {
    windows_.push_back(current_);
  }
}

void WindowProbe::publish(Registry& registry, std::string_view prefix) const {
  const std::string p(prefix);
  registry.counter(p + ".windows").inc(summary_.windows);
  registry.counter(p + ".events").inc(summary_.events);
  registry.counter(p + ".outbox_events").inc(summary_.outbox_events);
  registry.counter(p + ".outbox_batches").inc(summary_.outbox_batches);
  registry.counter(p + ".max_queue_depth").inc(summary_.max_queue_depth);
  registry.gauge(p + ".hook_s").add(summary_.hook_s);
  registry.gauge(p + ".process_s").add(summary_.process_s);
  registry.gauge(p + ".barrier_wait_s").add(summary_.barrier_wait_s);
  registry.gauge(p + ".merge_s").add(summary_.merge_s);
}

void WindowProbe::save(ckpt::Writer& w) const {
  MASSF_CHECK(!open_);
  w.u64(max_windows_);
  ckpt::write_u64_vec(w, lp_events_);
  w.u64(summary_.windows);
  w.u64(summary_.events);
  w.f64(summary_.hook_s);
  w.f64(summary_.process_s);
  w.f64(summary_.barrier_wait_s);
  w.f64(summary_.merge_s);
  w.u64(summary_.max_queue_depth);
  w.u64(summary_.outbox_events);
  w.u64(summary_.outbox_batches);
  w.u64(windows_.size());
  for (const Window& win : windows_) {
    w.u64(win.index);
    w.f64(win.start_vtime_s);
    w.u64(win.events);
    w.u64(win.max_lp_events);
    w.u64(win.queue_depth);
    w.u64(win.max_queue_depth);
    w.u64(win.outbox);
    w.u64(win.outbox_batches);
    w.f64(win.hook_s);
    w.f64(win.process_s);
    w.f64(win.barrier_wait_s);
    w.f64(win.merge_s);
  }
}

bool WindowProbe::load(ckpt::Reader& r) {
  MASSF_CHECK(!open_);
  if (r.u64() != max_windows_) return false;
  if (!ckpt::read_u64_vec(r, lp_events_)) return false;
  summary_.windows = r.u64();
  summary_.events = r.u64();
  summary_.hook_s = r.f64();
  summary_.process_s = r.f64();
  summary_.barrier_wait_s = r.f64();
  summary_.merge_s = r.f64();
  summary_.max_queue_depth = r.u64();
  summary_.outbox_events = r.u64();
  summary_.outbox_batches = r.u64();
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ULL << 32)) return false;
  windows_.assign(static_cast<std::size_t>(n), Window{});
  for (Window& win : windows_) {
    win.index = r.u64();
    win.start_vtime_s = r.f64();
    win.events = r.u64();
    win.max_lp_events = r.u64();
    win.queue_depth = r.u64();
    win.max_queue_depth = r.u64();
    win.outbox = r.u64();
    win.outbox_batches = r.u64();
    win.hook_s = r.f64();
    win.process_s = r.f64();
    win.barrier_wait_s = r.f64();
    win.merge_s = r.f64();
  }
  return r.ok();
}

std::string WindowProbe::to_csv() const {
  std::string out =
      "window,start_vtime_s,events,max_lp_events,queue_depth,"
      "max_queue_depth,outbox,hook_s,process_s,barrier_wait_s,merge_s\n";
  for (const Window& w : windows_) {
    out += std::to_string(w.index);
    out += ',';
    out += format_double(w.start_vtime_s);
    out += ',';
    out += std::to_string(w.events);
    out += ',';
    out += std::to_string(w.max_lp_events);
    out += ',';
    out += std::to_string(w.queue_depth);
    out += ',';
    out += std::to_string(w.max_queue_depth);
    out += ',';
    out += std::to_string(w.outbox);
    out += ',';
    out += format_double(w.hook_s);
    out += ',';
    out += format_double(w.process_s);
    out += ',';
    out += format_double(w.barrier_wait_s);
    out += ',';
    out += format_double(w.merge_s);
    out += '\n';
  }
  return out;
}

}  // namespace massf::obs
