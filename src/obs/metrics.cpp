#include "obs/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace massf::obs {

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]()) {
  MASSF_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  MASSF_CHECK(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
              bounds_.end());
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<Registry::HistogramSnapshot> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.bounds = h->bounds();
    snap.counts = h->counts();
    snap.count = h->count();
    snap.sum = h->sum();
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace massf::obs
