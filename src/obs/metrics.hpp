// Telemetry primitives for the simulator: a registry of named counters,
// gauges, and fixed-bucket histograms.
//
// The paper's whole evaluation (Figures 3-13) is built on measuring event
// rates, load imbalance, and synchronization cost per window; this module
// is the first-class home for those measurements. Design constraints:
//
//  * Null-sink default. Every producer (engine, netsim, routing, traffic)
//    takes an optional `Registry*` and publishes nothing when it is null;
//    the per-packet event path stays allocation-free and branchless apart
//    from pointer checks that sit outside the hot loops.
//  * Stable export schema. Metrics iterate in name order so the JSON/CSV
//    exporters (export.hpp) produce byte-stable output for golden tests
//    and for diffing BENCH_*.json across PRs.
//  * Thread-safe increments. Counters/gauges/histogram buckets are atomics
//    with relaxed ordering — safe to bump from threaded-executor workers;
//    registration (name lookup) takes a mutex and must happen outside
//    handler hot paths (cache the returned reference).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace massf::obs {

/// Monotonic event count. Relaxed atomics: totals are read after the run
/// (or at barriers), never used for synchronization.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written double (e.g. modeled wall clock, convergence instant).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations x <= bounds[i]
/// (Prometheus `le` convention); one implicit overflow bucket follows the
/// last bound. Bounds are fixed at creation — no allocation on observe().
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metric store. References returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime; look them up once at setup and
/// cache the reference — lookups take a mutex.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Creates (or returns the existing) histogram; `bounds` must be strictly
  /// ascending. Bounds of an existing histogram are not changed.
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  // ---- snapshot accessors (used by the exporters; name-ordered) ----------

  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;

  struct HistogramSnapshot {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< size bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0;
  };
  std::vector<HistogramSnapshot> histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace massf::obs
