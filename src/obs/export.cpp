#include "obs/export.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"

namespace massf::obs {
namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool excluded(std::string_view name,
              std::span<const std::string_view> exclude) {
  for (const std::string_view e : exclude) {
    if (e.empty()) continue;
    if (e.back() == '.' ? name.substr(0, e.size()) == e : name == e) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string format_double(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

std::string to_json(const Registry& registry) {
  return to_json_excluding(registry, {});
}

std::string to_json_excluding(const Registry& registry,
                              std::span<const std::string_view> exclude) {
  std::string out = "{\n  \"schema\": \"massf.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : registry.counters()) {
    if (excluded(name, exclude)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + escape_json(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : registry.gauges()) {
    if (excluded(name, exclude)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + escape_json(name) + "\": " + format_double(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : registry.histograms()) {
    if (excluded(h.name, exclude)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + escape_json(h.name) + "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ", ";
      out += format_double(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + format_double(h.sum) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string to_csv(const Registry& registry) {
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, value] : registry.counters()) {
    out += "counter," + name + ",value," + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : registry.gauges()) {
    out += "gauge," + name + ",value," + format_double(value) + "\n";
  }
  for (const auto& h : registry.histograms()) {
    out += "histogram," + h.name + ",count," + std::to_string(h.count) + "\n";
    out += "histogram," + h.name + ",sum," + format_double(h.sum) + "\n";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string le =
          i < h.bounds.size() ? "le_" + format_double(h.bounds[i]) : "le_inf";
      out += "histogram," + h.name + "," + le + "," +
             std::to_string(h.counts[i]) + "\n";
    }
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (written != content.size()) std::fclose(f);
  return ok;
}

}  // namespace massf::obs
