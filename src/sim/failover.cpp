#include "sim/failover.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace massf {

FailoverController::FailoverController(ForwardingPlane& fp,
                                       SimTime convergence_delay)
    : fp_(&fp), delay_(convergence_delay) {
  MASSF_CHECK(convergence_delay >= 0);
}

void FailoverController::attach(Engine& engine) {
  engine.add_barrier_hook([this](Engine& eng, SimTime window_start) {
    on_barrier(eng, window_start);
  });
}

void FailoverController::schedule(Engine& engine, NetSim& sim, LinkId link,
                                  SimTime when, bool up) {
  sim.schedule_link_state(engine, link, when, up);
  pending_.push_back({when + delay_, link, up, when});
  std::sort(pending_.begin(), pending_.end(),
            [](const Pending& a, const Pending& b) { return a.at < b.at; });
}

void FailoverController::fail_link(Engine& engine, NetSim& sim, LinkId link,
                                   SimTime when) {
  schedule(engine, sim, link, when, /*up=*/false);
}

void FailoverController::restore_link(Engine& engine, NetSim& sim,
                                      LinkId link, SimTime when) {
  schedule(engine, sim, link, when, /*up=*/true);
}

void FailoverController::on_barrier(Engine&, SimTime window_start) {
  bool any = false;
  while (!pending_.empty() && pending_.front().at <= window_start) {
    const Pending p = pending_.front();
    fp_->set_link_state(p.link, p.up);
    pending_.erase(pending_.begin());
    if (observer_) observer_(window_start, p.link, p.up, p.requested_at);
    any = true;
  }
  if (any) {
    fp_->reconverge();
    ++reconvergences_;
  }
}

}  // namespace massf
