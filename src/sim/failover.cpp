#include "sim/failover.hpp"

#include <algorithm>

#include "ckpt/ckpt.hpp"
#include "util/check.hpp"

namespace massf {

FailoverController::FailoverController(ForwardingPlane& fp,
                                       SimTime convergence_delay)
    : fp_(&fp), delay_(convergence_delay) {
  MASSF_CHECK(convergence_delay >= 0);
}

void FailoverController::attach(Engine& engine) {
  engine.hooks().barrier.push_back([this](Engine& eng, SimTime window_start) {
    on_barrier(eng, window_start);
  });
}

void FailoverController::schedule(Engine& engine, NetSim& sim, LinkId link,
                                  SimTime when, bool up) {
  sim.link_model().schedule_link_state(engine, link, when, up);
  pending_.push_back({when + delay_, link, up, when});
  std::sort(pending_.begin(), pending_.end(),
            [](const Pending& a, const Pending& b) { return a.at < b.at; });
}

void FailoverController::fail_link(Engine& engine, NetSim& sim, LinkId link,
                                   SimTime when) {
  schedule(engine, sim, link, when, /*up=*/false);
}

void FailoverController::restore_link(Engine& engine, NetSim& sim,
                                      LinkId link, SimTime when) {
  schedule(engine, sim, link, when, /*up=*/true);
}

void FailoverController::on_barrier(Engine&, SimTime window_start) {
  bool any = false;
  while (!pending_.empty() && pending_.front().at <= window_start) {
    const Pending p = pending_.front();
    fp_->set_link_state(p.link, p.up);
    pending_.erase(pending_.begin());
    if (observer_) observer_(window_start, p.link, p.up, p.requested_at);
    any = true;
  }
  if (any) {
    fp_->reconverge();
    ++reconvergences_;
  }
}

void FailoverController::save(ckpt::Writer& w) const {
  w.u64(pending_.size());
  for (const Pending& p : pending_) {
    w.i64(p.at);
    w.i32(p.link);
    w.u8(p.up ? 1 : 0);
    w.i64(p.requested_at);
  }
  w.i32(reconvergences_);
}

bool FailoverController::load(ckpt::Reader& r) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ULL << 32)) return false;
  pending_.assign(static_cast<std::size_t>(n), Pending{});
  for (Pending& p : pending_) {
    p.at = r.i64();
    p.link = r.i32();
    p.up = r.u8() != 0;
    p.requested_at = r.i64();
  }
  reconvergences_ = r.i32();
  return r.ok();
}

}  // namespace massf
