// Textual reporting helpers shared by the figure harnesses: each bench
// prints one self-describing block per paper figure, with one row per
// (application, mapping) combination, matching the series of the original
// charts.
#pragma once

#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace massf {

struct FigureRow {
  std::string application;
  std::string mapping;
  double value = 0;
};

/// Formats a figure block:
///   # <title> (<unit>)
///   <application>\t<mapping>\t<value>
std::string format_figure(const std::string& title, const std::string& unit,
                          const std::vector<FigureRow>& rows);

/// One-line experiment summary for logs and examples.
std::string summarize(const ExperimentResult& result);

}  // namespace massf
