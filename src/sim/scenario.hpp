// The experiment facade: one object owning the full pipeline
//   topology generation -> routing -> (profiling run) -> mapping ->
//   packet-level simulation -> metrics,
// exactly the loop the paper's evaluation executes for every combination
// of {network, application, mapping approach}. All benches and most
// examples drive this class.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/metrics.hpp"
#include "guard/options.hpp"
#include "lb/mapping.hpp"
#include "lb/profile.hpp"
#include "lb/rebalance.hpp"
#include "net/netsim.hpp"
#include "routing/forwarding.hpp"
#include "topology/brite.hpp"
#include "topology/mabrite.hpp"
#include "traffic/apps.hpp"
#include "traffic/background.hpp"
#include "traffic/http.hpp"

namespace massf {

namespace obs {
class Registry;
class WindowProbe;
}  // namespace obs

enum class AppKind { kNone, kScaLapack, kGridNpb };

const char* app_kind_name(AppKind kind);

/// Checkpoint/restore orchestration for the measured run (format
/// massf.ckpt.v1, DESIGN.md section 5e). With `every_windows > 0` the run
/// writes the full simulation state to `path` every that many
/// synchronization windows (optionally stopping at the first write); with
/// `restore_path` set the run rebuilds the stack as usual, then overwrites
/// the mutable state from the file before executing — resuming the
/// interrupted run with a bit-identical event trace and final statistics.
struct CkptOptions {
  std::uint64_t every_windows = 0;  ///< 0 = checkpointing off
  std::string path;                 ///< file written at each firing
  bool stop_after = false;          ///< clean stop once the file is written
  std::string restore_path;         ///< when set, restore before running
};

struct ScenarioOptions {
  bool multi_as = false;

  // ---- scale -------------------------------------------------------------
  std::int32_t num_routers = 2000;  ///< total routers (paper full: 20000)
  std::int32_t num_hosts = 1000;    ///< total hosts (paper full: 10000)
  std::int32_t num_as = 20;         ///< multi-AS only (paper full: 100)

  // ---- traffic -----------------------------------------------------------
  std::int32_t num_clients = 400;  ///< HTTP clients (paper full: 8000)
  std::int32_t num_servers = 100;  ///< HTTP servers (paper full: 2000)
  HttpOptions http;
  /// Long-lived background flows toward the HTTP servers (0 = none). With
  /// netsim.link_model.kind == kHybrid these ride the analytic fluid fast
  /// path; under the packet model they fall back to packet TCP.
  std::int32_t num_bg_sources = 0;
  BackgroundOptions background;
  AppKind app = AppKind::kNone;
  std::int32_t num_app_hosts = 16;
  ScaLapackOptions scalapack;
  GridNpbOptions gridnpb;

  // ---- simulated cluster ---------------------------------------------------
  std::int32_t num_engines = 16;  ///< paper full: 90
  ClusterModel cluster;           ///< num_engine_nodes is overridden

  // ---- run control ---------------------------------------------------------
  /// 0 = sequential reference executor; > 0 = threaded executor with that
  /// many workers (identical simulation results, different wall clock).
  std::int32_t executor_threads = 0;
  /// Threaded synchronization protocol (ignored when executor_threads <=
  /// 1): global barriers or per-channel clocks (DESIGN.md section 5g).
  /// Either way the simulation results are bit-identical to sequential.
  SyncMode sync = default_sync_mode();
  /// Multi-process executor width (DESIGN.md section 5j). Scenario runs
  /// accept the knob for campaign sweeps but execute single-process for
  /// now (sharding a NetSim workload needs a deterministic workload
  /// builder — tracked in ROADMAP.md); > 1 warns (config category) and
  /// falls back. The sharded golden/bench paths use it for real.
  std::int32_t executor_shards = 1;
  SimTime end_time = seconds(10);
  SimTime profile_end_time = seconds(3);
  /// Virtual-time bin for per-engine load traces (0 = off).
  SimTime load_bin = 0;
  std::uint64_t seed = 42;
  NetSimOptions netsim;
  MappingOptions mapping;  ///< kind/num_engines/cluster are overridden
  CkptOptions ckpt;        ///< measured-run checkpointing (off by default)
  /// Supervision for the measured run (DESIGN.md section 5h): when
  /// enabled, a guard::Watchdog is armed around the engine run and the
  /// engine maintains liveness telemetry. Off by default; MASSF_GUARD
  /// flips the process default.
  guard::GuardOptions guard = guard::default_guard_options();
  /// Online LP rebalancing during the measured run (off by default; forces
  /// collect_node_profile on when enabled). DESIGN.md section 5f.
  RebalanceOptions rebalance;

  /// Invoked on the measured run after traffic installation and before
  /// rebalance/checkpoint arming. The place for callers to attach extra
  /// machinery (e.g. a FaultInjector, which lives in a layer above this
  /// one) to the engine/NetSim pair the run is about to execute.
  std::function<void(Engine&, NetSim&)> pre_run;

  // ---- telemetry (obs/) ----------------------------------------------------
  /// When set, the measured run publishes engine/net/traffic/sim metrics
  /// into this registry (null-sink default: no telemetry, no overhead).
  obs::Registry* registry = nullptr;
  /// When set, attached to the measured run's engine for per-window records.
  obs::WindowProbe* probe = nullptr;
};

/// Paper-scale option presets.
ScenarioOptions paper_full_scale_single_as();
ScenarioOptions paper_full_scale_multi_as();

struct ExperimentResult {
  Mapping mapping;
  RunStats stats;
  SimulationMetrics metrics;
  NetSim::Counters counters;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioOptions& options);

  const ScenarioOptions& options() const { return opts_; }
  const Network& network() const { return net_; }
  const ForwardingPlane& forwarding() const { return *fp_; }

  std::span<const NodeId> client_hosts() const { return clients_; }
  std::span<const NodeId> server_hosts() const { return servers_; }
  std::span<const NodeId> app_hosts() const { return app_hosts_; }
  std::span<const NodeId> background_sources() const { return bg_sources_; }

  /// Traffic profile from the (cached) profiling run with the naive
  /// mapping.
  const TrafficProfile& profile();

  /// Mapping under the given approach; PROF-family mappings trigger the
  /// profiling run on first use.
  Mapping mapping_for(MappingKind kind);

  /// Full simulation under a mapping.
  ExperimentResult run(const Mapping& mapping);
  ExperimentResult run(MappingKind kind) { return run(mapping_for(kind)); }

  /// Replaces the checkpoint options for subsequent run() calls, so one
  /// Scenario can execute the interrupted phase and the restored phase
  /// (same topology, host selection, and cached profile) back to back.
  void set_ckpt(const CkptOptions& ckpt) { opts_.ckpt = ckpt; }

  /// Run-control mutators for subsequent run() calls — the degradation
  /// ladder (guard/guarded_run.hpp) re-runs one Scenario under
  /// progressively safer configurations without rebuilding the topology.
  void set_sync(SyncMode sync) { opts_.sync = sync; }
  void set_executor_threads(std::int32_t threads) {
    opts_.executor_threads = threads;
  }
  void set_guard(const guard::GuardOptions& guard) { opts_.guard = guard; }

  /// True when the last run() was cancelled by the watchdog (stall).
  bool last_run_cancelled() const { return last_run_cancelled_; }
  /// True when the watchdog fired during the last run().
  bool last_guard_fired() const { return last_guard_fired_; }

  /// Replaces the pre-run callback (ScenarioOptions::pre_run) for
  /// subsequent run() calls — needed by callers whose attachments (e.g. a
  /// FaultInjector) require the constructed network/forwarding plane.
  void set_pre_run(std::function<void(Engine&, NetSim&)> fn) {
    opts_.pre_run = std::move(fn);
  }

  /// Mutable forwarding plane, for machinery that rewires routes during
  /// the run (FailoverController behind a FaultInjector).
  ForwardingPlane& forwarding_mut() { return *fp_; }

  /// Conservative lookahead of a router->engine assignment: the minimum
  /// latency over links whose endpoints land on different engines (host
  /// links never do). Falls back to 10 ms when nothing crosses.
  SimTime lookahead_for(std::span<const LpId> router_lp) const;

 private:
  void select_hosts();
  void install_traffic(Engine& engine, NetSim& sim, TrafficManager& manager,
                       bool profiling) const;

  ScenarioOptions opts_;
  bool last_run_cancelled_ = false;
  bool last_guard_fired_ = false;
  Network net_;
  std::unique_ptr<ForwardingPlane> fp_;
  std::vector<NodeId> clients_, servers_, app_hosts_, bg_sources_;
  std::optional<TrafficProfile> profile_;
};

}  // namespace massf
