// Failure injection with routing re-convergence.
//
// A link failure has two timescales: the data plane loses the link
// immediately (packets offered to it are dropped), while the control plane
// reroutes only after detection + LSA flooding + SPF — the convergence
// delay. The FailoverController models both: it schedules the physical
// state change in the packet simulation and, one convergence delay later,
// applies the withdrawal to the ForwardingPlane and recomputes routes.
// Routing tables are shared by every logical process, so mutation happens
// exclusively at a window barrier (the engine hook), where all workers are
// quiescent — the same discipline a real conservative engine would use for
// global state updates.
#pragma once

#include <functional>
#include <vector>

#include "net/netsim.hpp"
#include "routing/forwarding.hpp"

namespace massf {

class FailoverController {
 public:
  /// `convergence_delay` models detection + flooding + SPF (tens of
  /// milliseconds to seconds in real deployments).
  FailoverController(ForwardingPlane& fp, SimTime convergence_delay);

  /// Installs the barrier hook. Call once before the run.
  void attach(Engine& engine);

  /// Schedules a failure (or restoration) at virtual time `when`: the data
  /// plane changes at `when`, routing reconverges at `when` + delay. Call
  /// before the run.
  void fail_link(Engine& engine, NetSim& sim, LinkId link, SimTime when);
  void restore_link(Engine& engine, NetSim& sim, LinkId link, SimTime when);

  /// Number of reconvergence (table-rebuild) events applied so far.
  std::int32_t reconvergences() const { return reconvergences_; }

  /// Observer invoked (from the barrier hook) once per applied change:
  /// `applied_at` is the window start at which the tables were rebuilt,
  /// `requested_at` the data-plane change time — their difference is the
  /// per-event routing reconvergence time the fault injector reports.
  using ObserverFn = std::function<void(SimTime applied_at, LinkId link,
                                        bool up, SimTime requested_at)>;
  void set_observer(ObserverFn fn) { observer_ = std::move(fn); }

  /// Checkpoint hooks (ckpt/ckpt.hpp): the not-yet-applied control-plane
  /// changes and the reconvergence count. The ForwardingPlane itself is a
  /// separate participant.
  void save(ckpt::Writer& writer) const;
  bool load(ckpt::Reader& reader);

 private:
  struct Pending {
    SimTime at;
    LinkId link;
    bool up;
    SimTime requested_at;
  };

  void schedule(Engine& engine, NetSim& sim, LinkId link, SimTime when,
                bool up);
  void on_barrier(Engine& engine, SimTime window_start);

  ForwardingPlane* fp_;
  SimTime delay_;
  std::vector<Pending> pending_;  ///< touched pre-run and from the hook only
  std::int32_t reconvergences_ = 0;
  ObserverFn observer_;
};

}  // namespace massf
