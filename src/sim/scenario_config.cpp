#include "sim/scenario_config.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/flags.hpp"

namespace massf {
namespace {

// ---- schema table -----------------------------------------------------------
//
// Emission order. Every atom the parser accepts (and only those) appears
// here; the strict parser, the serializer, and the flag cross-check test
// all read this table, so a knob added in one place shows up everywhere
// or the tests fail.
constexpr ScenarioSchemaKey kSchema[] = {
    {"", "name", nullptr},
    {"", "multi_as", nullptr},
    {"", "routers", nullptr},
    {"", "hosts", nullptr},
    {"", "as", nullptr},
    {"", "clients", nullptr},
    {"", "servers", nullptr},
    {"", "app", nullptr},
    {"", "app_hosts", nullptr},
    {"", "engines", nullptr},
    {"", "seconds", nullptr},
    {"", "profile_seconds", nullptr},
    {"", "think_time_s", nullptr},
    {"", "file_mean_bytes", nullptr},
    {"", "executor_threads", nullptr},
    {"", "executor_shards", nullptr},
    {"", "sync", nullptr},
    {"", "load_bin_s", nullptr},
    {"", "seed", nullptr},
    {"", "link_model", "link-model"},
    {"", "mapping", "mapping"},
    {"background_flows", "sources", nullptr},
    {"background_flows", "think_time_s", nullptr},
    {"background_flows", "mean_bytes", nullptr},
    {"background_flows", "fidelity", nullptr},
    {"background_flows", "recompute_every", nullptr},
    {"background_flows", "stall_timeout_s", nullptr},
    {"background_flows", "rate_cap_bps", nullptr},
    {"rebalance", "enabled", "rebalance"},
    {"rebalance", "threshold", "rebalance-threshold"},
    {"rebalance", "every", "rebalance-every"},
    {"rebalance", "sustain", "rebalance-sustain"},
    {"rebalance", "max_moves", "rebalance-max-moves"},
    {"rebalance", "fm_tolerance", nullptr},
    {"rebalance", "fm_passes", nullptr},
    {"ckpt", "every", "ckpt-every"},
    {"ckpt", "path", "ckpt-path"},
    {"ckpt", "stop_after", "ckpt-stop"},
    {"ckpt", "restore", "restore"},
    {"guard", "enabled", "guard"},
    {"guard", "deadline_s", "guard-deadline"},
    {"guard", "poll_s", nullptr},
    {"guard", "dump", "guard-dump"},
    {"guard", "policy", "guard-policy"},
    {"guard", "retries", "guard-retries"},
    {"faults", "file", "faults"},
    {"faults", "event", nullptr},
};

std::string line_err(int line, const std::string& what) {
  return "line " + std::to_string(line) + ": " + what;
}

bool parse_i64(const std::string& s, std::int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return !s.empty() && end == s.c_str() + s.size();
}

bool parse_f64(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return !s.empty() && end == s.c_str() + s.size();
}

bool ignored_key(const std::string& key) {
  // The forward-compatibility escape hatch: x_-prefixed keys parse (and
  // are dropped) everywhere, so a file can carry knobs for newer binaries.
  return key.rfind("x_", 0) == 0;
}

// Fetches a typed atom value, or fails with the attribute's source line.
bool atom_int(const DmlAttribute& a, std::int64_t* out, std::string* error) {
  if (!parse_i64(a.atom, out)) {
    if (error) {
      *error = line_err(a.line,
                        "'" + a.key + "' wants an integer, got '" + a.atom +
                            "'");
    }
    return false;
  }
  return true;
}

bool atom_double(const DmlAttribute& a, double* out, std::string* error) {
  if (!parse_f64(a.atom, out)) {
    if (error) {
      *error = line_err(a.line,
                        "'" + a.key + "' wants a number, got '" + a.atom +
                            "'");
    }
    return false;
  }
  return true;
}

bool unknown_key(const DmlAttribute& a, const char* where,
                 std::string* error) {
  if (error) {
    *error = line_err(a.line, std::string("unknown key '") + a.key +
                                  "' in " + where +
                                  " (prefix with x_ to ignore)");
  }
  return false;
}

std::string resolve_include(const std::string& include_dir,
                            const std::string& path) {
  if (include_dir.empty() || path.empty() || path.front() == '/') return path;
  return include_dir + "/" + path;
}

std::string dirname_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool parse_background(const DmlNode& node, ScenarioOptions* o,
                      std::string* error) {
  for (const DmlAttribute& a : node.attributes) {
    if (ignored_key(a.key)) continue;
    if (a.child) return unknown_key(a, "background_flows [ ]", error);
    std::int64_t i = 0;
    double d = 0;
    if (a.key == "sources") {
      if (!atom_int(a, &i, error)) return false;
      if (i < 0) {
        if (error) *error = line_err(a.line, "'sources' must be >= 0");
        return false;
      }
      o->num_bg_sources = static_cast<std::int32_t>(i);
    } else if (a.key == "think_time_s") {
      if (!atom_double(a, &d, error)) return false;
      if (d <= 0) {
        if (error) *error = line_err(a.line, "'think_time_s' must be > 0");
        return false;
      }
      o->background.think_time_mean_s = d;
    } else if (a.key == "mean_bytes") {
      if (!atom_double(a, &d, error)) return false;
      if (d < 1) {
        if (error) *error = line_err(a.line, "'mean_bytes' must be >= 1");
        return false;
      }
      o->background.flow_mean_bytes = d;
    } else if (a.key == "fidelity") {
      if (a.atom == "flow") {
        o->background.flow_fidelity = true;
      } else if (a.atom == "packet") {
        o->background.flow_fidelity = false;
      } else {
        if (error) {
          *error = line_err(a.line, "unknown fidelity '" + a.atom +
                                        "' (flow|packet)");
        }
        return false;
      }
    } else if (a.key == "recompute_every") {
      if (!atom_int(a, &i, error)) return false;
      if (i < 1) {
        if (error) *error = line_err(a.line, "'recompute_every' must be >= 1");
        return false;
      }
      o->netsim.link_model.fluid_recompute_every = static_cast<std::int32_t>(i);
    } else if (a.key == "stall_timeout_s") {
      if (!atom_double(a, &d, error)) return false;
      if (d <= 0) {
        if (error) *error = line_err(a.line, "'stall_timeout_s' must be > 0");
        return false;
      }
      o->netsim.link_model.fluid_stall_timeout_s = d;
    } else if (a.key == "rate_cap_bps") {
      if (!atom_double(a, &d, error)) return false;
      if (d < 0) {
        if (error) *error = line_err(a.line, "'rate_cap_bps' must be >= 0");
        return false;
      }
      o->netsim.link_model.fluid_flow_rate_cap_bps = d;
    } else {
      return unknown_key(a, "background_flows [ ]", error);
    }
  }
  return true;
}

bool parse_rebalance(const DmlNode& node, RebalanceOptions* o,
                     std::string* error) {
  for (const DmlAttribute& a : node.attributes) {
    if (ignored_key(a.key)) continue;
    if (a.child) return unknown_key(a, "rebalance [ ]", error);
    std::int64_t i = 0;
    double d = 0;
    if (a.key == "enabled") {
      if (!atom_int(a, &i, error)) return false;
      o->enabled = i != 0;
    } else if (a.key == "threshold") {
      if (!atom_double(a, &d, error)) return false;
      if (d < 1.0) {
        if (error) *error = line_err(a.line, "'threshold' must be >= 1.0");
        return false;
      }
      o->threshold = d;
    } else if (a.key == "every") {
      if (!atom_int(a, &i, error)) return false;
      if (i < 1) {
        if (error) *error = line_err(a.line, "'every' must be >= 1");
        return false;
      }
      o->every_windows = static_cast<std::uint64_t>(i);
    } else if (a.key == "sustain") {
      if (!atom_int(a, &i, error)) return false;
      if (i < 1) {
        if (error) *error = line_err(a.line, "'sustain' must be >= 1");
        return false;
      }
      o->sustain = static_cast<std::int32_t>(i);
    } else if (a.key == "max_moves") {
      if (!atom_int(a, &i, error)) return false;
      if (i < 1) {
        if (error) *error = line_err(a.line, "'max_moves' must be >= 1");
        return false;
      }
      o->max_moves = static_cast<std::int32_t>(i);
    } else if (a.key == "fm_tolerance") {
      if (!atom_double(a, &d, error)) return false;
      o->fm_tolerance = d;
    } else if (a.key == "fm_passes") {
      if (!atom_int(a, &i, error)) return false;
      o->fm_passes = static_cast<std::int32_t>(i);
    } else {
      return unknown_key(a, "rebalance [ ]", error);
    }
  }
  return true;
}

bool parse_ckpt(const DmlNode& node, int block_line, CkptOptions* o,
                std::string* error) {
  for (const DmlAttribute& a : node.attributes) {
    if (ignored_key(a.key)) continue;
    if (a.child) return unknown_key(a, "ckpt [ ]", error);
    if (a.key == "every") {
      std::int64_t i = 0;
      if (!atom_int(a, &i, error)) return false;
      if (i < 0) {
        if (error) *error = line_err(a.line, "'every' must be >= 0");
        return false;
      }
      o->every_windows = static_cast<std::uint64_t>(i);
    } else if (a.key == "path") {
      o->path = a.atom;
    } else if (a.key == "stop_after") {
      std::int64_t i = 0;
      if (!atom_int(a, &i, error)) return false;
      o->stop_after = i != 0;
    } else if (a.key == "restore") {
      o->restore_path = a.atom;
    } else {
      return unknown_key(a, "ckpt [ ]", error);
    }
  }
  if (o->every_windows > 0 && o->path.empty()) {
    if (error) {
      *error = line_err(block_line, "ckpt [ every > 0 ] requires a path");
    }
    return false;
  }
  return true;
}

bool parse_guard(const DmlNode& node, guard::GuardOptions* o,
                 std::int32_t* retries, std::string* error) {
  for (const DmlAttribute& a : node.attributes) {
    if (ignored_key(a.key)) continue;
    if (a.child) return unknown_key(a, "guard [ ]", error);
    std::int64_t i = 0;
    double d = 0;
    if (a.key == "enabled") {
      if (!atom_int(a, &i, error)) return false;
      o->enabled = i != 0;
    } else if (a.key == "deadline_s") {
      if (!atom_double(a, &d, error)) return false;
      if (d <= 0) {
        if (error) *error = line_err(a.line, "'deadline_s' must be > 0");
        return false;
      }
      o->stall_deadline_s = d;
    } else if (a.key == "poll_s") {
      if (!atom_double(a, &d, error)) return false;
      o->poll_interval_s = d;
    } else if (a.key == "dump") {
      o->dump_path = a.atom;
    } else if (a.key == "policy") {
      if (a.atom == "recover") {
        o->on_stall = guard::OnStall::kCancel;
      } else if (a.atom == "abort") {
        o->on_stall = guard::OnStall::kAbort;
      } else {
        if (error) {
          *error = line_err(a.line, "unknown guard policy '" + a.atom +
                                        "' (recover|abort)");
        }
        return false;
      }
    } else if (a.key == "retries") {
      if (!atom_int(a, &i, error)) return false;
      if (i < 0) {
        if (error) *error = line_err(a.line, "'retries' must be >= 0");
        return false;
      }
      *retries = static_cast<std::int32_t>(i);
    } else {
      return unknown_key(a, "guard [ ]", error);
    }
  }
  return true;
}

bool parse_faults(const DmlNode& node, const std::string& include_dir,
                  FaultSchedule* out, std::string* error) {
  for (const DmlAttribute& a : node.attributes) {
    if (ignored_key(a.key)) continue;
    if (a.child) return unknown_key(a, "faults [ ]", error);
    if (a.key == "file") {
      const std::string path = resolve_include(include_dir, a.atom);
      std::ifstream in(path);
      if (!in) {
        if (error) {
          *error = line_err(a.line,
                            "cannot open fault file '" + a.atom + "'");
        }
        return false;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string what;
      const auto parsed = parse_fault_schedule(buf.str(), &what);
      if (!parsed) {
        // `what` carries the fault parser's own "line N: ..." for the
        // included file; keep both coordinates.
        if (error) {
          *error = line_err(a.line,
                            "fault file '" + a.atom + "': " + what);
        }
        return false;
      }
      out->append(*parsed);
    } else if (a.key == "event") {
      std::string what;
      const auto parsed = parse_fault_schedule(a.atom, &what);
      if (!parsed) {
        // One embedded line: strip the fault parser's "line 1: " so the
        // message points at the scenario file's line instead.
        const std::string prefix = "line 1: ";
        if (what.rfind(prefix, 0) == 0) what.erase(0, prefix.size());
        if (error) {
          *error = line_err(a.line, "fault event: " + what);
        }
        return false;
      }
      out->append(*parsed);
    } else {
      return unknown_key(a, "faults [ ]", error);
    }
  }
  return true;
}

}  // namespace

std::span<const ScenarioSchemaKey> scenario_schema() { return kSchema; }

std::optional<MappingKind> mapping_kind_from_name(const std::string& name) {
  for (const MappingKind k :
       {MappingKind::kTop, MappingKind::kTop2, MappingKind::kProf,
        MappingKind::kProf2, MappingKind::kHTop, MappingKind::kHProf,
        MappingKind::kPlace, MappingKind::kGreedy}) {
    if (name == mapping_kind_name(k)) return k;
  }
  return std::nullopt;
}

DmlNode scenario_spec_to_dml(const ScenarioSpec& spec) {
  const ScenarioOptions& o = spec.options;
  DmlNode root;
  DmlNode& e = root.add_child("Experiment");
  if (!spec.name.empty()) e.add_atom("name", spec.name);
  e.add_atom("multi_as", static_cast<std::int64_t>(o.multi_as ? 1 : 0));
  e.add_atom("routers", static_cast<std::int64_t>(o.num_routers));
  e.add_atom("hosts", static_cast<std::int64_t>(o.num_hosts));
  e.add_atom("as", static_cast<std::int64_t>(o.num_as));
  e.add_atom("clients", static_cast<std::int64_t>(o.num_clients));
  e.add_atom("servers", static_cast<std::int64_t>(o.num_servers));
  e.add_atom("app", std::string(o.app == AppKind::kScaLapack ? "scalapack"
                                : o.app == AppKind::kGridNpb ? "gridnpb"
                                                             : "none"));
  e.add_atom("app_hosts", static_cast<std::int64_t>(o.num_app_hosts));
  e.add_atom("engines", static_cast<std::int64_t>(o.num_engines));
  e.add_atom("seconds", to_seconds(o.end_time));
  e.add_atom("profile_seconds", to_seconds(o.profile_end_time));
  e.add_atom("think_time_s", o.http.think_time_mean_s);
  e.add_atom("file_mean_bytes", o.http.file_mean_bytes);
  e.add_atom("executor_threads",
             static_cast<std::int64_t>(o.executor_threads));
  e.add_atom("executor_shards",
             static_cast<std::int64_t>(o.executor_shards));
  e.add_atom("sync", std::string(sync_mode_name(o.sync)));
  e.add_atom("load_bin_s", to_seconds(o.load_bin));
  e.add_atom("seed", static_cast<std::int64_t>(o.seed));
  e.add_atom("link_model",
             std::string(link_model_kind_name(o.netsim.link_model.kind)));
  for (const MappingKind k : spec.mappings) {
    e.add_atom("mapping", std::string(mapping_kind_name(k)));
  }

  DmlNode& bg = e.add_child("background_flows");
  bg.add_atom("sources", static_cast<std::int64_t>(o.num_bg_sources));
  bg.add_atom("think_time_s", o.background.think_time_mean_s);
  bg.add_atom("mean_bytes", o.background.flow_mean_bytes);
  bg.add_atom("fidelity",
              std::string(o.background.flow_fidelity ? "flow" : "packet"));
  bg.add_atom("recompute_every",
              static_cast<std::int64_t>(o.netsim.link_model.fluid_recompute_every));
  bg.add_atom("stall_timeout_s", o.netsim.link_model.fluid_stall_timeout_s);
  bg.add_atom("rate_cap_bps", o.netsim.link_model.fluid_flow_rate_cap_bps);

  DmlNode& rb = e.add_child("rebalance");
  rb.add_atom("enabled",
              static_cast<std::int64_t>(o.rebalance.enabled ? 1 : 0));
  rb.add_atom("threshold", o.rebalance.threshold);
  rb.add_atom("every", static_cast<std::int64_t>(o.rebalance.every_windows));
  rb.add_atom("sustain", static_cast<std::int64_t>(o.rebalance.sustain));
  rb.add_atom("max_moves", static_cast<std::int64_t>(o.rebalance.max_moves));
  rb.add_atom("fm_tolerance", o.rebalance.fm_tolerance);
  rb.add_atom("fm_passes", static_cast<std::int64_t>(o.rebalance.fm_passes));

  DmlNode& ck = e.add_child("ckpt");
  ck.add_atom("every", static_cast<std::int64_t>(o.ckpt.every_windows));
  ck.add_atom("path", o.ckpt.path);
  ck.add_atom("stop_after", static_cast<std::int64_t>(o.ckpt.stop_after));
  ck.add_atom("restore", o.ckpt.restore_path);

  DmlNode& g = e.add_child("guard");
  g.add_atom("enabled", static_cast<std::int64_t>(o.guard.enabled ? 1 : 0));
  g.add_atom("deadline_s", o.guard.stall_deadline_s);
  g.add_atom("poll_s", o.guard.poll_interval_s);
  g.add_atom("dump", o.guard.dump_path);
  g.add_atom("policy", std::string(o.guard.on_stall == guard::OnStall::kAbort
                                       ? "abort"
                                       : "recover"));
  g.add_atom("retries", static_cast<std::int64_t>(spec.guard_retries));

  if (!spec.faults.empty()) {
    DmlNode& f = e.add_child("faults");
    // One `event` atom per schedule line; to_text sorts by time, so the
    // emission is canonical and parse -> to_dml is a fixed point.
    std::istringstream lines(spec.faults.to_text());
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) f.add_atom("event", line);
    }
  }
  return root;
}

DmlNode scenario_options_to_dml(const ScenarioOptions& options) {
  ScenarioSpec spec;
  spec.options = options;
  return scenario_spec_to_dml(spec);
}

std::optional<ScenarioSpec> scenario_spec_from_dml(
    const DmlNode& root, std::string* error,
    const std::string& include_dir) {
  const DmlNode* e = root.find("Experiment");
  if (e == nullptr) {
    if (error) *error = "missing top-level Experiment [ ] block";
    return std::nullopt;
  }
  ScenarioSpec spec;
  ScenarioOptions& o = spec.options;
  spec.mappings.clear();

  for (const DmlAttribute& a : e->attributes) {
    if (ignored_key(a.key)) continue;
    if (a.child) {
      if (a.key == "background_flows") {
        if (!parse_background(*a.child, &o, error)) {
          return std::nullopt;
        }
      } else if (a.key == "rebalance") {
        if (!parse_rebalance(*a.child, &o.rebalance, error)) {
          return std::nullopt;
        }
      } else if (a.key == "ckpt") {
        if (!parse_ckpt(*a.child, a.line, &o.ckpt, error)) {
          return std::nullopt;
        }
      } else if (a.key == "guard") {
        if (!parse_guard(*a.child, &o.guard, &spec.guard_retries, error)) {
          return std::nullopt;
        }
      } else if (a.key == "faults") {
        if (!parse_faults(*a.child, include_dir, &spec.faults, error)) {
          return std::nullopt;
        }
      } else {
        unknown_key(a, "Experiment", error);
        return std::nullopt;
      }
      continue;
    }

    std::int64_t i = 0;
    double d = 0;
    if (a.key == "name") {
      spec.name = a.atom;
    } else if (a.key == "multi_as") {
      if (!atom_int(a, &i, error)) return std::nullopt;
      o.multi_as = i != 0;
    } else if (a.key == "routers") {
      if (!atom_int(a, &i, error)) return std::nullopt;
      o.num_routers = static_cast<std::int32_t>(i);
    } else if (a.key == "hosts") {
      if (!atom_int(a, &i, error)) return std::nullopt;
      o.num_hosts = static_cast<std::int32_t>(i);
    } else if (a.key == "as") {
      if (!atom_int(a, &i, error)) return std::nullopt;
      o.num_as = static_cast<std::int32_t>(i);
    } else if (a.key == "clients") {
      if (!atom_int(a, &i, error)) return std::nullopt;
      o.num_clients = static_cast<std::int32_t>(i);
    } else if (a.key == "servers") {
      if (!atom_int(a, &i, error)) return std::nullopt;
      o.num_servers = static_cast<std::int32_t>(i);
    } else if (a.key == "app") {
      if (a.atom == "scalapack" || a.atom == "ScaLapack") {
        o.app = AppKind::kScaLapack;
      } else if (a.atom == "gridnpb" || a.atom == "GridNPB") {
        o.app = AppKind::kGridNpb;
      } else if (a.atom == "none") {
        o.app = AppKind::kNone;
      } else {
        if (error) {
          *error = line_err(a.line, "unknown app '" + a.atom +
                                        "' (scalapack|gridnpb|none)");
        }
        return std::nullopt;
      }
    } else if (a.key == "app_hosts") {
      if (!atom_int(a, &i, error)) return std::nullopt;
      o.num_app_hosts = static_cast<std::int32_t>(i);
    } else if (a.key == "engines") {
      if (!atom_int(a, &i, error)) return std::nullopt;
      o.num_engines = static_cast<std::int32_t>(i);
    } else if (a.key == "seconds") {
      if (!atom_double(a, &d, error)) return std::nullopt;
      o.end_time = from_seconds(d);
    } else if (a.key == "profile_seconds") {
      if (!atom_double(a, &d, error)) return std::nullopt;
      o.profile_end_time = from_seconds(d);
    } else if (a.key == "think_time_s") {
      if (!atom_double(a, &d, error)) return std::nullopt;
      o.http.think_time_mean_s = d;
    } else if (a.key == "file_mean_bytes") {
      if (!atom_double(a, &d, error)) return std::nullopt;
      o.http.file_mean_bytes = d;
    } else if (a.key == "executor_threads") {
      if (!atom_int(a, &i, error)) return std::nullopt;
      o.executor_threads = static_cast<std::int32_t>(i);
    } else if (a.key == "executor_shards") {
      if (!atom_int(a, &i, error) || i < 1) {
        if (error && i < 1) {
          *error = line_err(a.line, "'executor_shards' wants an integer "
                                    ">= 1, got '" + a.atom + "'");
        }
        return std::nullopt;
      }
      o.executor_shards = static_cast<std::int32_t>(i);
    } else if (a.key == "sync") {
      if (a.atom == "barrier") {
        o.sync = SyncMode::kBarrier;
      } else if (a.atom == "channel") {
        o.sync = SyncMode::kChannel;
      } else {
        if (error) {
          *error = line_err(a.line, "unknown sync '" + a.atom +
                                        "' (barrier|channel)");
        }
        return std::nullopt;
      }
    } else if (a.key == "load_bin_s") {
      if (!atom_double(a, &d, error)) return std::nullopt;
      o.load_bin = from_seconds(d);
    } else if (a.key == "seed") {
      if (!atom_int(a, &i, error)) return std::nullopt;
      o.seed = static_cast<std::uint64_t>(i);
    } else if (a.key == "link_model") {
      if (!parse_link_model_kind(a.atom, &o.netsim.link_model.kind)) {
        if (error) {
          *error = line_err(a.line, "unknown link_model '" + a.atom +
                                        "' (packet|hybrid)");
        }
        return std::nullopt;
      }
    } else if (a.key == "mapping") {
      const auto k = mapping_kind_from_name(a.atom);
      if (!k) {
        if (error) {
          *error = line_err(a.line, "unknown mapping '" + a.atom + "'");
        }
        return std::nullopt;
      }
      spec.mappings.push_back(*k);
    } else {
      unknown_key(a, "Experiment", error);
      return std::nullopt;
    }
  }

  if (spec.mappings.empty()) spec.mappings = {MappingKind::kHProf};
  if (o.num_routers < 2 || o.num_hosts < 1 || o.num_engines < 1) {
    if (error) *error = "routers/hosts/engines out of range";
    return std::nullopt;
  }
  return spec;
}

std::optional<ScenarioOptions> scenario_options_from_dml(
    const DmlNode& root, std::string* error) {
  const auto spec = scenario_spec_from_dml(root, error);
  if (!spec) return std::nullopt;
  return spec->options;
}

std::optional<ScenarioSpec> parse_scenario(std::string_view text,
                                           std::string* error,
                                           const std::string& include_dir) {
  DmlParseError perr;
  const auto root = parse_dml(text, &perr);
  if (!root) {
    if (error) *error = line_err(perr.line, perr.message);
    return std::nullopt;
  }
  return scenario_spec_from_dml(*root, error, include_dir);
}

std::optional<ScenarioSpec> load_scenario_file(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario(buf.str(), error, dirname_of(path));
}

void add_run_control_flags(FlagTable& flags) {
  flags.add_string("mapping", "",
                   "comma-separated mapping kinds overriding the scenario's "
                   "`mapping` list");
  flags.add_int("ckpt-every", 0,
                "checkpoint every N sync windows (0 = off)",
                [](std::int64_t v) {
                  return v >= 0 ? "" : "must be >= 0";
                });
  flags.add_string("ckpt-path", "", "checkpoint file to write");
  flags.add_bool("ckpt-stop", false, "stop after the first checkpoint");
  flags.add_string("restore", "", "checkpoint file to resume from");
  flags.add_string("faults", "",
                   "fault schedule file (link flaps, crashes, loss bursts); "
                   "replaces the scenario's faults [ ] block");
  flags.add_string("link-model", "packet",
                   "network fidelity: 'packet' (per-packet events only) or "
                   "'hybrid' (analytic fluid background flows)",
                   [](const std::string& v) {
                     LinkModelKind k;
                     return parse_link_model_kind(v, &k)
                                ? ""
                                : "must be 'packet' or 'hybrid'";
                   });
  flags.add_bool("rebalance", false,
                 "enable online LP rebalancing at window boundaries");
  flags.add_double("rebalance-threshold", 1.25,
                   "trigger when max/avg engine load exceeds this",
                   [](double v) {
                     return v >= 1.0 ? "" : "must be >= 1.0";
                   });
  flags.add_int("rebalance-every", 64,
                "check imbalance every N sync windows",
                [](std::int64_t v) {
                  return v >= 1 ? "" : "must be >= 1";
                });
  flags.add_int("rebalance-sustain", 2,
                "consecutive over-threshold checks before migrating",
                [](std::int64_t v) {
                  return v >= 1 ? "" : "must be >= 1";
                });
  flags.add_int("rebalance-max-moves", 8,
                "max routers migrated per trigger",
                [](std::int64_t v) {
                  return v >= 1 ? "" : "must be >= 1";
                });
  flags.add_bool("guard", guard::default_guard_options().enabled,
                 "arm the liveness watchdog over every run (MASSF_GUARD=1 "
                 "flips this default)");
  flags.add_double("guard-deadline",
                   guard::default_guard_options().stall_deadline_s,
                   "seconds without progress before declaring a stall",
                   [](double v) { return v > 0 ? "" : "must be > 0"; });
  flags.add_string("guard-dump", "guard_stall.json",
                   "stall diagnostic JSON file (empty = stderr only)");
  flags.add_string("guard-policy", "recover",
                   "on stall: 'recover' (cancel + retry ladder) or 'abort'",
                   [](const std::string& v) {
                     return v == "recover" || v == "abort"
                                ? ""
                                : "must be 'recover' or 'abort'";
                   });
  flags.add_int("guard-retries", 1,
                "same-configuration retries before degrading",
                [](std::int64_t v) {
                  return v >= 0 ? "" : "must be >= 0";
                });
}

bool apply_run_control_flags(const FlagTable& flags, ScenarioSpec* spec,
                             std::string* error) {
  ScenarioOptions& o = spec->options;
  if (flags.set("mapping")) {
    spec->mappings.clear();
    std::stringstream ss(flags.get_string("mapping"));
    std::string name;
    while (std::getline(ss, name, ',')) {
      const auto k = mapping_kind_from_name(name);
      if (!k) {
        if (error) *error = "unknown mapping '" + name + "'";
        return false;
      }
      spec->mappings.push_back(*k);
    }
    if (spec->mappings.empty()) {
      if (error) *error = "--mapping lists no mapping";
      return false;
    }
  }

  if (flags.set("ckpt-every")) {
    o.ckpt.every_windows =
        static_cast<std::uint64_t>(flags.get_int("ckpt-every"));
  }
  if (flags.set("ckpt-path")) o.ckpt.path = flags.get_string("ckpt-path");
  if (flags.set("ckpt-stop")) o.ckpt.stop_after = flags.get_bool("ckpt-stop");
  if (flags.set("restore")) o.ckpt.restore_path = flags.get_string("restore");
  if (o.ckpt.every_windows > 0 && o.ckpt.path.empty()) {
    if (error) {
      *error = "checkpointing every N windows requires a checkpoint path "
               "(--ckpt-path / ckpt [ path ])";
    }
    return false;
  }

  if (flags.set("faults")) {
    const std::string path = flags.get_string("faults");
    std::ifstream in(path);
    if (!in) {
      if (error) *error = "cannot open '" + path + "'";
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string what;
    const auto parsed = parse_fault_schedule(buf.str(), &what);
    if (!parsed) {
      if (error) *error = "fault schedule '" + path + "': " + what;
      return false;
    }
    spec->faults = *parsed;  // the flag replaces the file's faults block
  }

  if (flags.set("link-model")) {
    // Validated by the flag's own validator; parse cannot fail here.
    parse_link_model_kind(flags.get_string("link-model"),
                          &o.netsim.link_model.kind);
  }

  if (flags.set("rebalance")) o.rebalance.enabled = flags.get_bool("rebalance");
  if (flags.set("rebalance-threshold")) {
    o.rebalance.threshold = flags.get_double("rebalance-threshold");
  }
  if (flags.set("rebalance-every")) {
    o.rebalance.every_windows =
        static_cast<std::uint64_t>(flags.get_int("rebalance-every"));
  }
  if (flags.set("rebalance-sustain")) {
    o.rebalance.sustain =
        static_cast<std::int32_t>(flags.get_int("rebalance-sustain"));
  }
  if (flags.set("rebalance-max-moves")) {
    o.rebalance.max_moves =
        static_cast<std::int32_t>(flags.get_int("rebalance-max-moves"));
  }

  if (flags.set("guard")) o.guard.enabled = flags.get_bool("guard");
  if (flags.set("guard-deadline")) {
    o.guard.stall_deadline_s = flags.get_double("guard-deadline");
  }
  if (flags.set("guard-dump")) o.guard.dump_path = flags.get_string("guard-dump");
  if (flags.set("guard-policy")) {
    o.guard.on_stall = flags.get_string("guard-policy") == "abort"
                           ? guard::OnStall::kAbort
                           : guard::OnStall::kCancel;
  }
  if (flags.set("guard-retries")) {
    spec->guard_retries =
        static_cast<std::int32_t>(flags.get_int("guard-retries"));
  }
  return true;
}

}  // namespace massf
