#include "sim/scenario_config.hpp"

namespace massf {

DmlNode scenario_options_to_dml(const ScenarioOptions& o) {
  DmlNode root;
  DmlNode& e = root.add_child("Experiment");
  e.add_atom("multi_as", static_cast<std::int64_t>(o.multi_as ? 1 : 0));
  e.add_atom("routers", static_cast<std::int64_t>(o.num_routers));
  e.add_atom("hosts", static_cast<std::int64_t>(o.num_hosts));
  e.add_atom("as", static_cast<std::int64_t>(o.num_as));
  e.add_atom("clients", static_cast<std::int64_t>(o.num_clients));
  e.add_atom("servers", static_cast<std::int64_t>(o.num_servers));
  e.add_atom("app", std::string(app_kind_name(o.app)));
  e.add_atom("app_hosts", static_cast<std::int64_t>(o.num_app_hosts));
  e.add_atom("engines", static_cast<std::int64_t>(o.num_engines));
  e.add_atom("seconds", to_seconds(o.end_time));
  e.add_atom("profile_seconds", to_seconds(o.profile_end_time));
  e.add_atom("think_time_s", o.http.think_time_mean_s);
  e.add_atom("file_mean_bytes", o.http.file_mean_bytes);
  e.add_atom("executor_threads",
             static_cast<std::int64_t>(o.executor_threads));
  e.add_atom("sync", std::string(sync_mode_name(o.sync)));
  e.add_atom("seed", static_cast<std::int64_t>(o.seed));
  return root;
}

std::optional<MappingKind> mapping_kind_from_name(const std::string& name) {
  for (const MappingKind k :
       {MappingKind::kTop, MappingKind::kTop2, MappingKind::kProf,
        MappingKind::kProf2, MappingKind::kHTop, MappingKind::kHProf,
        MappingKind::kPlace, MappingKind::kGreedy}) {
    if (name == mapping_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::optional<ScenarioOptions> scenario_options_from_dml(
    const DmlNode& root, std::string* error) {
  const DmlNode* e = root.find("Experiment");
  if (e == nullptr) {
    if (error) *error = "missing top-level Experiment [ ] block";
    return std::nullopt;
  }
  ScenarioOptions o;
  o.multi_as = e->get_int("multi_as", 0) != 0;
  o.num_routers = static_cast<std::int32_t>(
      e->get_int("routers", o.num_routers));
  o.num_hosts =
      static_cast<std::int32_t>(e->get_int("hosts", o.num_hosts));
  o.num_as = static_cast<std::int32_t>(e->get_int("as", o.num_as));
  o.num_clients =
      static_cast<std::int32_t>(e->get_int("clients", o.num_clients));
  o.num_servers =
      static_cast<std::int32_t>(e->get_int("servers", o.num_servers));
  const std::string app = e->get_string("app", "none");
  if (app == "scalapack" || app == "ScaLapack") {
    o.app = AppKind::kScaLapack;
  } else if (app == "gridnpb" || app == "GridNPB") {
    o.app = AppKind::kGridNpb;
  } else if (app == "none") {
    o.app = AppKind::kNone;
  } else {
    if (error) *error = "unknown app '" + app + "'";
    return std::nullopt;
  }
  o.num_app_hosts =
      static_cast<std::int32_t>(e->get_int("app_hosts", o.num_app_hosts));
  o.num_engines =
      static_cast<std::int32_t>(e->get_int("engines", o.num_engines));
  o.end_time = from_seconds(e->get_double("seconds", to_seconds(o.end_time)));
  o.profile_end_time = from_seconds(
      e->get_double("profile_seconds", to_seconds(o.profile_end_time)));
  o.http.think_time_mean_s =
      e->get_double("think_time_s", o.http.think_time_mean_s);
  o.http.file_mean_bytes =
      e->get_double("file_mean_bytes", o.http.file_mean_bytes);
  o.executor_threads = static_cast<std::int32_t>(
      e->get_int("executor_threads", o.executor_threads));
  const std::string sync = e->get_string("sync", sync_mode_name(o.sync));
  if (sync == "barrier") {
    o.sync = SyncMode::kBarrier;
  } else if (sync == "channel") {
    o.sync = SyncMode::kChannel;
  } else {
    if (error) *error = "unknown sync '" + sync + "' (barrier|channel)";
    return std::nullopt;
  }
  o.seed = static_cast<std::uint64_t>(e->get_int("seed", 42));

  if (o.num_routers < 2 || o.num_hosts < 1 || o.num_engines < 1) {
    if (error) *error = "routers/hosts/engines out of range";
    return std::nullopt;
  }
  return o;
}

}  // namespace massf
