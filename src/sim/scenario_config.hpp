// The declarative scenario format: the whole experiment — topology scale,
// traffic mix, simulated cluster, run control, fault schedule, rebalance /
// checkpoint / guard policy, and the mapping run list — round-trips
// through one DML file, so experiments are reproducible from a single
// checked-in file (the MicroGrid workflow). Everything massf_cli can be
// told with a run-control flag has an atom here; a test cross-checks the
// two surfaces so no knob can exist on one side only.
//
// Schema (scenario_spec_to_dml emits every key; all are optional on input
// and default to the ScenarioOptions defaults):
//
//   Experiment [
//     name quickstart       # optional label (run directories, reports)
//     multi_as 0            # 1 = maBrite multi-AS, 0 = flat single-AS
//     routers 2000  hosts 1000  as 20
//     clients 400   servers 100
//     app scalapack         # scalapack | gridnpb | none
//     app_hosts 16
//     engines 24
//     seconds 8  profile_seconds 3
//     think_time_s 1.0  file_mean_bytes 12000
//     executor_threads 0    # 0 = sequential reference executor
//     sync barrier          # barrier | channel (threaded protocol)
//     load_bin_s 0          # per-engine load-trace bin (0 = off)
//     seed 42
//     link_model packet     # packet | hybrid (fluid background fast path)
//     mapping HPROF         # repeatable: the run list (default HPROF)
//     background_flows [    # long-lived flows toward the server pool
//       sources 0           # 0 = no background-flow workload
//       think_time_s 5.0  mean_bytes 1000000
//       fidelity flow       # flow (fluid under hybrid) | packet (force TCP)
//       recompute_every 8   # fluid rate-recompute cadence (boundaries)
//       stall_timeout_s 60  # fail flows stalled at zero rate this long
//       rate_cap_bps 0      # per-flow TCP window/RTT ceiling (0 = off)
//     ]
//     rebalance [ enabled 0  threshold 1.25  every 64  sustain 2
//                 max_moves 8  fm_tolerance 1.05  fm_passes 4 ]
//     ckpt [ every 0  path ""  stop_after 0  restore "" ]
//     guard [ enabled 0  deadline_s 30  poll_s 0  dump "guard_stall.json"
//             policy recover  retries 1 ]
//     faults [              # chaos schedule: embedded lines and/or a file
//       file "chaos.txt"    # include, relative to the scenario file
//       event "at 1.0 link_down link=3"   # one fault-format line each
//     ]
//   ]
//
// Parsing is strict: an unknown key anywhere in the Experiment tree is a
// line-numbered error (a typo'd knob must not silently no-op). Keys
// prefixed `x_` are ignored everywhere — the forward-compatibility escape
// hatch for files that must also parse under older binaries.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dml/dml.hpp"
#include "fault/fault.hpp"
#include "sim/scenario.hpp"

namespace massf {

class FlagTable;

/// A fully-specified experiment: ScenarioOptions plus the layers that live
/// above the Scenario object (fault schedule, mapping run list, supervised
/// retry budget). This is the unit a scenario file describes and the unit
/// the campaign runner sweeps.
struct ScenarioSpec {
  std::string name;            ///< optional label ("" = unnamed)
  ScenarioOptions options;     ///< everything Scenario consumes
  FaultSchedule faults;        ///< chaos schedule (empty = no injector)
  /// Mappings to run, in order (massf_cli runs all; a campaign run uses
  /// the first — the campaign sweeps mappings as an axis instead).
  std::vector<MappingKind> mappings{MappingKind::kHProf};
  /// Same-configuration retries before the guarded runner degrades
  /// (guard::GuardedRun::Options::max_retries).
  std::int32_t guard_retries = 1;
};

/// One row of the scenario-file schema: where the atom lives and which
/// massf_cli run-control flag (if any) sets the same knob. The table is
/// the single source of truth for strict parsing, the emitted template,
/// and the no-orphan-knobs cross-check test.
struct ScenarioSchemaKey {
  const char* block;  ///< "" = Experiment top level, else sub-block key
  const char* key;    ///< atom key inside the block
  const char* flag;   ///< equivalent run-control flag, or nullptr
};

/// The full scenario-file schema, in emission order.
std::span<const ScenarioSchemaKey> scenario_schema();

/// Serializes the options alone (a ScenarioSpec with defaults elsewhere).
DmlNode scenario_options_to_dml(const ScenarioOptions& options);

/// Parses an Experiment block into options; missing keys keep their
/// defaults, unknown keys are line-numbered errors (see ScenarioSpec
/// parsing below). Returns nullopt with `error` set on failure.
std::optional<ScenarioOptions> scenario_options_from_dml(
    const DmlNode& root, std::string* error = nullptr);

/// Serializes the complete spec; the output re-parses to an equal spec
/// (parse -> to_dml -> parse is a fixed point, which the corpus test
/// asserts for every checked-in scenario).
DmlNode scenario_spec_to_dml(const ScenarioSpec& spec);

/// Parses an Experiment block into a full spec. Strict: unknown keys and
/// malformed values fail with "line N: what" via `error` (the fault
/// parser's idiom); keys prefixed `x_` are ignored. `include_dir` anchors
/// relative `faults [ file ... ]` includes ("" = process CWD).
std::optional<ScenarioSpec> scenario_spec_from_dml(
    const DmlNode& root, std::string* error = nullptr,
    const std::string& include_dir = "");

/// parse_dml + scenario_spec_from_dml in one call; DML syntax errors are
/// reported in the same "line N: what" form.
std::optional<ScenarioSpec> parse_scenario(std::string_view text,
                                           std::string* error = nullptr,
                                           const std::string& include_dir = "");

/// Reads and parses a scenario file; relative fault includes resolve
/// against the file's directory.
std::optional<ScenarioSpec> load_scenario_file(const std::string& path,
                                               std::string* error = nullptr);

/// Mapping-kind name round trip ("HPROF" <-> MappingKind::kHProf, etc.).
std::optional<MappingKind> mapping_kind_from_name(const std::string& name);

/// Registers every run-control flag (the scenario-file override surface)
/// on `flags`, exactly as massf_cli and massf_campaign expose them. Kept
/// next to the schema table so the two cannot drift.
void add_run_control_flags(FlagTable& flags);

/// Applies explicitly-set run-control flags over `spec` (file values keep
/// precedence for flags the user did not pass). Returns false with
/// `error` set on a malformed value or an inconsistent combination.
bool apply_run_control_flags(const FlagTable& flags, ScenarioSpec* spec,
                             std::string* error);

}  // namespace massf
