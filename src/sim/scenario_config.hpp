// Experiment configuration in DML: the whole Scenario (topology scale,
// traffic, simulated cluster, run control) round-trips through the
// simulator's configuration format, so experiments are reproducible from a
// single checked-in file — the MicroGrid workflow.
//
// Schema:
//   Experiment [
//     multi_as 0          # 1 = maBrite multi-AS, 0 = flat single-AS
//     routers 2000  hosts 1000  as 20
//     clients 400   servers 100
//     app scalapack       # scalapack | gridnpb | none
//     app_hosts 16
//     engines 24
//     seconds 8  profile_seconds 3
//     think_time_s 1.0
//     seed 42
//     mapping HPROF       # optional; used by the CLI driver
//   ]
#pragma once

#include <optional>
#include <string>

#include "dml/dml.hpp"
#include "sim/scenario.hpp"

namespace massf {

/// Serializes the options (mapping kind excluded — it is per-run).
DmlNode scenario_options_to_dml(const ScenarioOptions& options);

/// Parses an Experiment block; unknown keys are ignored, missing keys keep
/// their defaults. Returns nullopt with `error` set on malformed values.
std::optional<ScenarioOptions> scenario_options_from_dml(
    const DmlNode& root, std::string* error = nullptr);

/// Mapping-kind name round trip ("HPROF" <-> MappingKind::kHProf, etc.).
std::optional<MappingKind> mapping_kind_from_name(const std::string& name);

}  // namespace massf
