#include "sim/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "ckpt/ckpt.hpp"
#include "guard/watchdog.hpp"
#include "util/error.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "traffic/dataflow.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/warn.hpp"

namespace massf {

const char* app_kind_name(AppKind kind) {
  switch (kind) {
    case AppKind::kNone:
      return "none";
    case AppKind::kScaLapack:
      return "ScaLapack";
    case AppKind::kGridNpb:
      return "GridNPB";
  }
  return "?";
}

ScenarioOptions paper_full_scale_single_as() {
  ScenarioOptions o;
  o.multi_as = false;
  o.num_routers = 20000;
  o.num_hosts = 10000;
  // The paper's 8000 clients + 2000 servers saturate its 10,000 hosts; we
  // carve the application hosts out of the client pool (the paper ran
  // applications on separate physical nodes outside the virtual network).
  o.num_clients = 7950;
  o.num_servers = 2000;
  o.num_engines = 90;
  o.num_app_hosts = 32;
  return o;
}

ScenarioOptions paper_full_scale_multi_as() {
  ScenarioOptions o = paper_full_scale_single_as();
  o.multi_as = true;
  o.num_as = 100;  // 100 ASes x 200 routers
  return o;
}

Scenario::Scenario(const ScenarioOptions& options) : opts_(options) {
  MASSF_CHECK(opts_.num_engines >= 1);
  opts_.cluster.num_engine_nodes = opts_.num_engines;
  opts_.mapping.num_engines = opts_.num_engines;
  opts_.mapping.cluster = opts_.cluster;

  if (opts_.multi_as) {
    MaBriteOptions mo;
    mo.num_as = opts_.num_as;
    mo.routers_per_as = opts_.num_routers / opts_.num_as;
    mo.num_hosts = opts_.num_hosts;
    mo.seed = opts_.seed;
    net_ = generate_multi_as(mo);
  } else {
    BriteOptions bo;
    bo.num_routers = opts_.num_routers;
    bo.num_hosts = opts_.num_hosts;
    bo.seed = opts_.seed;
    net_ = generate_flat(bo);
  }
  const std::string problem = net_.validate();
  MASSF_CHECK(problem.empty());

  select_hosts();

  // Destination routers: the attachment points of every traffic endpoint
  // (acks and responses need the reverse direction too, which the same set
  // covers).
  std::vector<NodeId> dests;
  const auto add_dests = [&](std::span<const NodeId> hosts) {
    for (NodeId h : hosts) {
      dests.push_back(net_.nodes[static_cast<std::size_t>(h)].attach_router);
    }
  };
  add_dests(clients_);
  add_dests(servers_);
  add_dests(app_hosts_);
  add_dests(bg_sources_);
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());

  if (opts_.multi_as) {
    fp_ = std::make_unique<ForwardingPlane>(
        ForwardingPlane::build_multi_as(net_, dests));
  } else {
    fp_ = std::make_unique<ForwardingPlane>(
        ForwardingPlane::build_flat(net_, dests));
  }
}

void Scenario::select_hosts() {
  const std::int32_t needed =
      opts_.num_clients + opts_.num_servers + opts_.num_bg_sources +
      (opts_.app == AppKind::kNone ? 0 : opts_.num_app_hosts);
  MASSF_CHECK(needed <= net_.num_hosts());
  // Background flows target the server pool, so sources need servers.
  MASSF_CHECK(opts_.num_bg_sources == 0 || opts_.num_servers > 0);

  std::vector<NodeId> hosts(static_cast<std::size_t>(net_.num_hosts()));
  std::iota(hosts.begin(), hosts.end(), net_.num_routers);
  Rng rng = Rng(opts_.seed).fork("host-selection");
  rng.shuffle(hosts);

  auto it = hosts.begin();
  clients_.assign(it, it + opts_.num_clients);
  it += opts_.num_clients;
  servers_.assign(it, it + opts_.num_servers);
  it += opts_.num_servers;
  if (opts_.app != AppKind::kNone) {
    app_hosts_.assign(it, it + opts_.num_app_hosts);
    it += opts_.num_app_hosts;
  }
  bg_sources_.assign(it, it + opts_.num_bg_sources);
}

void Scenario::install_traffic(Engine& engine, NetSim& sim,
                               TrafficManager& manager,
                               bool profiling) const {
  (void)engine;
  HttpOptions http = opts_.http;
  http.seed = opts_.seed ^ 0x48545450;  // "HTTP"
  // The profiling run draws different traffic randomness than the measured
  // run: profiles must predict a *future* execution (paper Section 3.3),
  // not replay the identical one.
  if (profiling) http.seed ^= 0x50524F46;  // "PROF"
  if (opts_.num_clients > 0) {
    manager.add(TrafficKind::kHttp,
                std::make_unique<HttpWorkload>(clients_, servers_, http));
  }

  if (opts_.num_bg_sources > 0) {
    BackgroundOptions bg = opts_.background;
    bg.seed = opts_.seed ^ 0x42474644;  // "BGFD"
    if (profiling) bg.seed ^= 0x50524F46;  // "PROF"
    manager.add(TrafficKind::kBackground, std::make_unique<BackgroundWorkload>(
                                              bg_sources_, servers_, bg));
  }

  if (opts_.app == AppKind::kScaLapack) {
    manager.add(TrafficKind::kApp,
                std::make_unique<DataflowApp>(
                    make_scalapack(app_hosts_, opts_.scalapack),
                    /*start_at=*/milliseconds(10)));
  } else if (opts_.app == AppKind::kGridNpb) {
    const auto graphs = make_gridnpb_mix(app_hosts_, opts_.gridnpb);
    manager.add(TrafficKind::kApp,
                std::make_unique<DataflowApp>(merge_graphs(graphs),
                                              /*start_at=*/milliseconds(10)));
  }
  (void)sim;
}

SimTime Scenario::lookahead_for(std::span<const LpId> router_lp) const {
  MASSF_CHECK(static_cast<NodeId>(router_lp.size()) == net_.num_routers);
  SimTime mll = kSimTimeMax;
  for (const NetLink& l : net_.links) {
    if (!net_.is_router(l.a) || !net_.is_router(l.b)) continue;
    if (router_lp[static_cast<std::size_t>(l.a)] !=
        router_lp[static_cast<std::size_t>(l.b)]) {
      mll = std::min(mll, l.latency);
    }
  }
  if (mll == kSimTimeMax) mll = milliseconds(10);
  return mll;
}

const TrafficProfile& Scenario::profile() {
  if (profile_) return *profile_;

  const std::vector<LpId> naive = naive_mapping(net_, opts_.num_engines);

  EngineOptions eo;
  eo.lookahead = lookahead_for(naive);
  eo.cost_per_event_s = opts_.cluster.cost_per_event_s;
  eo.sync_cost_s = opts_.cluster.sync_cost_s();
  eo.end_time = opts_.profile_end_time;
  Engine engine(eo);

  NetSimOptions no = opts_.netsim;
  no.collect_node_profile = true;
  NetSim sim(net_, *fp_, naive, engine, no);
  TrafficManager manager(sim);
  install_traffic(engine, sim, manager, /*profiling=*/true);
  manager.start(engine, sim);
  engine.run();

  profile_ = fold_profile(net_, sim.node_profile());
  MASSF_LOG(kDebug) << "profiling run complete";
  return *profile_;
}

Mapping Scenario::mapping_for(MappingKind kind) {
  MappingOptions mo = opts_.mapping;
  mo.kind = kind;
  mo.seed = opts_.seed ^ 0x4d415050;  // "MAPP"
  const TrafficProfile* prof =
      mapping_uses_profile(kind) ? &profile() : nullptr;
  std::vector<NodeId> placement;
  if (kind == MappingKind::kPlace) {
    placement.insert(placement.end(), clients_.begin(), clients_.end());
    placement.insert(placement.end(), servers_.begin(), servers_.end());
    placement.insert(placement.end(), app_hosts_.begin(), app_hosts_.end());
  }
  return compute_mapping(net_, mo, prof, placement);
}

ExperimentResult Scenario::run(const Mapping& mapping) {
  MASSF_CHECK(static_cast<NodeId>(mapping.router_lp.size()) ==
              net_.num_routers);

  EngineOptions eo;
  eo.lookahead = lookahead_for(mapping.router_lp);
  eo.cost_per_event_s = opts_.cluster.cost_per_event_s;
  eo.sync_cost_s = opts_.cluster.sync_cost_s();
  eo.end_time = opts_.end_time;
  eo.load_bin = opts_.load_bin;
  eo.sync = opts_.sync;
  eo.guard = opts_.guard;
  Engine engine(eo);

  NetSimOptions no = opts_.netsim;
  if (opts_.rebalance.enabled) no.collect_node_profile = true;
  NetSim sim(net_, *fp_, mapping.router_lp, engine, no);
  TrafficManager manager(sim);
  install_traffic(engine, sim, manager, /*profiling=*/false);
  manager.start(engine, sim);

  // Telemetry attaches to the measured run only (never the profiling run,
  // whose purpose is producing the mapping input, not observations).
  engine.set_registry(opts_.registry);
  engine.set_probe(opts_.probe);

  if (opts_.pre_run) opts_.pre_run(engine, sim);

  // Online rebalancing (DESIGN.md section 5f): the controller installs
  // itself as the engine's rebalance stage (barrier -> rebalance -> ckpt).
  std::unique_ptr<RebalanceController> rebalancer;
  if (opts_.rebalance.enabled) {
    rebalancer = std::make_unique<RebalanceController>(sim, opts_.cluster,
                                                       opts_.rebalance);
    rebalancer->arm(engine);
  }

  // Checkpoint/restore (DESIGN.md section 5e): the participants list is the
  // full inventory of state that can diverge from construction. The engine
  // section restores first — it rebuilds the pending queues the other
  // sections' cursors refer to.
  ckpt::Participants parts;
  if (opts_.ckpt.every_windows > 0 || !opts_.ckpt.restore_path.empty()) {
    Engine* eng = &engine;
    NetSim* net_sim = &sim;
    TrafficManager* mgr = &manager;
    parts.add(
        "engine", [eng](ckpt::Writer& w) { eng->save_state(w); },
        [eng](ckpt::Reader& r) { return eng->restore_state(r); });
    parts.add(
        "net", [net_sim](ckpt::Writer& w) { net_sim->save(w); },
        [net_sim](ckpt::Reader& r) { return net_sim->load(r); });
    parts.add(
        "traffic", [mgr](ckpt::Writer& w) { mgr->save(w); },
        [mgr](ckpt::Reader& r) { return mgr->load(r); });
    parts.add(
        "routing.fp", [this](ckpt::Writer& w) { fp_->save(w); },
        [this](ckpt::Reader& r) { return fp_->load(r); });
    if (rebalancer != nullptr) {
      RebalanceController* rc = rebalancer.get();
      parts.add(
          "lb.rebalance", [rc](ckpt::Writer& w) { rc->save(w); },
          [rc](ckpt::Reader& r) { return rc->load(r); });
    }
    if (opts_.probe != nullptr) {
      obs::WindowProbe* probe = opts_.probe;
      parts.add(
          "obs.probe", [probe](ckpt::Writer& w) { probe->save(w); },
          [probe](ckpt::Reader& r) { return probe->load(r); });
    }
  }
  if (opts_.ckpt.every_windows > 0) {
    MASSF_CHECK(!opts_.ckpt.path.empty() &&
                "CkptOptions::every_windows requires a path");
    engine.hooks().ckpt_every = opts_.ckpt.every_windows;
    engine.hooks().ckpt = [this, &parts](Engine& eng, SimTime) {
          const auto t0 = std::chrono::steady_clock::now();
          ckpt::Checkpoint ck;
          parts.save(ck);
          const std::vector<std::uint8_t> image = ck.serialize();
          std::string error;
          if (!ckpt::Checkpoint::write_bytes(opts_.ckpt.path, image, &error)) {
            MASSF_LOG(kError) << "checkpoint write failed: " << error;
            MASSF_THROW(ErrorCategory::kIo,
                        "checkpoint write to '" + opts_.ckpt.path +
                            "' failed: " + error);
          }
          const double write_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          if (opts_.registry != nullptr) {
            opts_.registry->counter("ckpt.writes").inc();
            opts_.registry->counter("ckpt.bytes")
                .inc(static_cast<std::uint64_t>(image.size()));
            opts_.registry->gauge("ckpt.write_ms").set(write_ms);
          }
          if (opts_.ckpt.stop_after) eng.request_stop();
        };
  }
  if (!opts_.ckpt.restore_path.empty()) {
    std::string error;
    const auto ck = ckpt::Checkpoint::read_file(opts_.ckpt.restore_path,
                                                &error);
    if (!ck) {
      MASSF_LOG(kError) << "checkpoint read failed: " << error;
      MASSF_THROW(ErrorCategory::kIo,
                  "cannot read checkpoint '" + opts_.ckpt.restore_path +
                      "': " + error);
    }
    if (!parts.restore(*ck, &error)) {
      MASSF_LOG(kError) << "checkpoint restore failed: " << error;
      MASSF_THROW(ErrorCategory::kIo,
                  "checkpoint restore from '" + opts_.ckpt.restore_path +
                      "' failed: " + error);
    }
  }

  ExperimentResult result;
  result.mapping = mapping;
  // Supervision (DESIGN.md section 5h): the watchdog samples the engine's
  // liveness telemetry for the duration of the run and applies the stall
  // policy — under kCancel a wedged run comes back with
  // last_run_cancelled() set instead of hanging the process.
  if (opts_.executor_shards > 1) {
    warn(ErrorCategory::kConfig,
         "executor_shards=" + std::to_string(opts_.executor_shards) +
             " requested, but scenario runs execute single-process for now: "
             "this is the ROADMAP.md \"Multi-process sharded execution\" "
             "follow-up (wiring NetSim-backed scenarios through "
             "shard::run_sharded needs the workload-rebuild closure over "
             "full scenario construction) — running unsharded; see also "
             "README \"Sharded runs\"");
  }
  {
    guard::Watchdog watchdog(engine, opts_.guard, opts_.registry);
    watchdog.arm();
    result.stats = opts_.executor_threads > 0
                       ? engine.run_threaded(opts_.executor_threads)
                       : engine.run();
    watchdog.disarm();
    last_guard_fired_ = watchdog.fired();
    last_run_cancelled_ = engine.run_cancelled();
  }
  result.metrics = compute_metrics(result.stats, opts_.cluster);
  result.counters = sim.totals();
  if (opts_.registry != nullptr) {
    sim.publish_metrics(*opts_.registry);
    manager.publish_metrics(*opts_.registry);
    if (opts_.probe != nullptr) opts_.probe->publish(*opts_.registry);
    opts_.registry->gauge("sim.load_imbalance")
        .set(result.metrics.load_imbalance);
    opts_.registry->gauge("sim.parallel_efficiency")
        .set(result.metrics.parallel_efficiency);
    if (rebalancer != nullptr) rebalancer->publish_metrics(*opts_.registry);
  }
  return result;
}

}  // namespace massf
