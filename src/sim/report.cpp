#include "sim/report.hpp"

#include <sstream>

namespace massf {

std::string format_figure(const std::string& title, const std::string& unit,
                          const std::vector<FigureRow>& rows) {
  std::ostringstream os;
  os << "# " << title << " (" << unit << ")\n";
  for (const FigureRow& r : rows) {
    os << r.application << "\t" << r.mapping << "\t" << r.value << "\n";
  }
  return os.str();
}

std::string summarize(const ExperimentResult& r) {
  std::ostringstream os;
  os << mapping_kind_name(r.mapping.kind) << ": T=" << r.metrics.simulation_time_s
     << "s events=" << r.metrics.total_events
     << " windows=" << r.metrics.num_windows
     << " MLL=" << to_milliseconds(r.mapping.achieved_mll) << "ms"
     << " imbalance=" << r.metrics.load_imbalance
     << " PE=" << r.metrics.parallel_efficiency
     << " sync_frac=" << r.metrics.sync_fraction;
  return os.str();
}

}  // namespace massf
