#include "lb/hierarchical.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/union_find.hpp"
#include "partition/partition.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace massf {

std::optional<HierarchicalResult> hierarchical_partition(
    const Graph& g, std::span<const std::int64_t> latencies,
    const MappingOptions& opts) {
  MASSF_CHECK(static_cast<EdgeId>(latencies.size()) == g.num_edges());
  MASSF_CHECK(opts.num_engines >= 1);

  const SimTime sync = opts.cluster.sync_cost_time(opts.num_engines);
  // First admissible threshold: smallest multiple of the step strictly
  // greater than the synchronization cost (Tmll must exceed C_N or all time
  // goes to synchronization).
  SimTime tmll = (sync / opts.tmll_step + 1) * opts.tmll_step;

  // Edges sorted by latency so the contraction grows incrementally as the
  // threshold rises.
  std::vector<EdgeId> order(static_cast<std::size_t>(g.num_edges()));
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return latencies[static_cast<std::size_t>(a)] <
           latencies[static_cast<std::size_t>(b)];
  });

  UnionFind uf(g.num_vertices());
  std::size_t cursor = 0;

  std::optional<HierarchicalResult> best;
  std::int32_t tried = 0;
  for (; tmll <= opts.tmll_max; tmll += opts.tmll_step) {
    while (cursor < order.size() &&
           latencies[static_cast<std::size_t>(order[cursor])] < tmll) {
      const EdgeId e = order[cursor++];
      uf.unite(g.edge_u(e), g.edge_v(e));
    }
    if (uf.num_sets() < opts.num_engines) break;  // not enough parallelism

    const std::vector<VertexId> cluster = uf.compress();
    std::vector<EdgeId> origin;
    const Graph dumped =
        contract(g, cluster, uf.num_sets(), latencies, &origin);
    std::vector<std::int64_t> dumped_lat(origin.size());
    for (std::size_t i = 0; i < origin.size(); ++i) {
      dumped_lat[i] = latencies[static_cast<std::size_t>(origin[i])];
    }

    PartitionOptions popt;
    popt.num_parts = opts.num_engines;
    popt.imbalance_tolerance = opts.imbalance_tolerance;
    popt.seed = opts.seed;
    PartitionResult pr = partition_graph(dumped, popt);
    ++tried;

    SimTime mll = min_cut_edge_aux(dumped, pr.part, dumped_lat);
    if (mll == std::numeric_limits<std::int64_t>::max()) {
      // Nothing cut (can only happen for num_engines == 1): the partition
      // is fully decoupled; treat the window as the sweep ceiling.
      mll = opts.tmll_max;
    }
    const PartitionScore score = score_partition(mll, sync, pr.part_weights);

    if (!best || score.e > best->score.e) {
      HierarchicalResult r;
      r.part.resize(static_cast<std::size_t>(g.num_vertices()));
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        r.part[static_cast<std::size_t>(v)] =
            pr.part[static_cast<std::size_t>(
                cluster[static_cast<std::size_t>(v)])];
      }
      r.tmll = tmll;
      r.achieved_mll = mll;
      r.score = score;
      r.edge_cut = pr.edge_cut;
      r.balance = pr.balance(dumped.total_vertex_weight());
      best = std::move(r);
    }
  }
  if (best) {
    best->candidates_tried = tried;
    MASSF_LOG(kDebug) << "hierarchical sweep: " << tried
                      << " candidates, chose Tmll="
                      << to_milliseconds(best->tmll) << "ms E="
                      << best->score.e;
  }
  return best;
}

}  // namespace massf
