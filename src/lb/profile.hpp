// Traffic-profile collection (paper Section 3.3, PROF): a profiling run —
// typically with a naive initial partition — records per-network-node
// kernel event counts; these become the vertex weights of the next
// partitioning round.
#pragma once

#include <span>

#include "lb/mapping.hpp"
#include "topology/network.hpp"

namespace massf {

/// Folds per-node event counts (routers and hosts, as produced by
/// NetSim::node_profile) into a per-router profile: a host's events are
/// charged to its attachment router, which is where they execute.
TrafficProfile fold_profile(const Network& net,
                            std::span<const std::uint64_t> node_events);

/// A naive round-robin router mapping used for the initial profiling run.
std::vector<LpId> naive_mapping(const Network& net, std::int32_t num_engines);

}  // namespace massf
