#include "lb/mapping.hpp"

#include <limits>

#include "lb/graph_prep.hpp"
#include "lb/hierarchical.hpp"
#include "partition/greedy_kcluster.hpp"
#include "partition/partition.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace massf {

const char* mapping_kind_name(MappingKind kind) {
  switch (kind) {
    case MappingKind::kTop:
      return "TOP";
    case MappingKind::kTop2:
      return "TOP2";
    case MappingKind::kProf:
      return "PROF";
    case MappingKind::kProf2:
      return "PROF2";
    case MappingKind::kHTop:
      return "HTOP";
    case MappingKind::kHProf:
      return "HPROF";
    case MappingKind::kPlace:
      return "PLACE";
    case MappingKind::kGreedy:
      return "GREEDY";
  }
  return "?";
}

bool mapping_uses_profile(MappingKind kind) {
  return kind == MappingKind::kProf || kind == MappingKind::kProf2 ||
         kind == MappingKind::kHProf;
}

bool mapping_is_hierarchical(MappingKind kind) {
  return kind == MappingKind::kHTop || kind == MappingKind::kHProf;
}

PartitionScore score_partition(SimTime achieved_mll, SimTime sync_cost,
                               std::span<const Weight> part_loads) {
  PartitionScore s;
  if (achieved_mll > 0) {
    s.es = static_cast<double>(achieved_mll - sync_cost) /
           static_cast<double>(achieved_mll);
  }
  std::vector<double> loads(part_loads.begin(), part_loads.end());
  s.ec = avg_over_max(loads);
  s.e = std::max(0.0, s.es) * s.ec;
  return s;
}

Mapping compute_mapping(const Network& net, const MappingOptions& opts,
                        const TrafficProfile* profile,
                        std::span<const NodeId> placement) {
  MASSF_CHECK(opts.num_engines >= 1);
  MASSF_CHECK(opts.kind != MappingKind::kPlace || !placement.empty());
  std::vector<std::int64_t> latencies;
  const Graph g =
      prepare_graph(net, opts.kind, profile, opts, &latencies, placement);

  Mapping m;
  m.kind = opts.kind;
  m.num_engines = opts.num_engines;

  if (opts.kind == MappingKind::kGreedy) {
    Rng rng(opts.seed);
    const std::vector<VertexId> part =
        greedy_k_cluster(g, opts.num_engines, rng);
    m.router_lp.assign(part.begin(), part.end());
    SimTime mll = min_cut_edge_aux(g, part, latencies);
    if (mll == std::numeric_limits<std::int64_t>::max()) mll = opts.tmll_max;
    m.achieved_mll = mll;
    m.edge_cut = compute_edge_cut(g, part);
    m.balance = PartitionResult{part, m.edge_cut,
                                compute_part_weights(g, part,
                                                     opts.num_engines)}
                    .balance(g.total_vertex_weight());
    const PartitionScore score = score_partition(
        m.achieved_mll, opts.cluster.sync_cost_time(opts.num_engines),
        compute_part_weights(g, part, opts.num_engines));
    m.predicted_efficiency = score.e;
    return m;
  }

  if (mapping_is_hierarchical(opts.kind)) {
    if (auto h = hierarchical_partition(g, latencies, opts)) {
      m.router_lp.assign(h->part.begin(), h->part.end());
      m.achieved_mll = h->achieved_mll;
      m.tmll = h->tmll;
      m.predicted_efficiency = h->score.e;
      m.edge_cut = h->edge_cut;
      m.balance = h->balance;
      return m;
    }
    // Fall back to flat partitioning when no admissible threshold exists.
  }

  PartitionOptions popt;
  popt.num_parts = opts.num_engines;
  popt.imbalance_tolerance = opts.imbalance_tolerance;
  popt.seed = opts.seed;

  const auto partition_once = [&](const Graph& graph) {
    PartitionResult pr = partition_graph(graph, popt);
    SimTime mll = min_cut_edge_aux(graph, pr.part, latencies);
    if (mll == std::numeric_limits<std::int64_t>::max()) {
      mll = opts.tmll_max;  // single part: fully decoupled
    }
    return std::make_pair(std::move(pr), mll);
  };

  auto [pr, mll] = partition_once(g);

  // TOP2/PROF2 reproduce the paper's manual per-topology tuning ("we
  // adjusted the link latency to edge weight converting algorithm... It is
  // not a general solution and has to be done according different
  // topologies manually"): if the tuned conversion still cuts a link whose
  // latency cannot amortize the synchronization cost, escalate the
  // exponent — the automated stand-in for the authors' hand adjustment.
  if (opts.kind == MappingKind::kTop2 || opts.kind == MappingKind::kProf2) {
    // Escalate until the window is a few sync costs wide — the operating
    // point the paper reports for its tuned variants (~0.6 ms MLL against
    // a ~0.58 ms sync cost would barely break even; their runs behave like
    // a window of a few sync costs at our engine counts).
    const SimTime target =
        3 * opts.cluster.sync_cost_time(opts.num_engines);
    double exponent = opts.tuned_exponent;
    Graph tuned = g;
    while (mll <= target && exponent < 4.1) {
      exponent += 0.6;
      tuned.set_edge_weights(edge_weights_tuned(latencies, exponent));
      auto [pr2, mll2] = partition_once(tuned);
      if (mll2 > mll) {
        pr = std::move(pr2);
        mll = mll2;
      }
    }
  }

  m.router_lp.assign(pr.part.begin(), pr.part.end());
  m.achieved_mll = mll;
  m.edge_cut = pr.edge_cut;
  m.balance = pr.balance(g.total_vertex_weight());
  const PartitionScore score = score_partition(
      m.achieved_mll, opts.cluster.sync_cost_time(opts.num_engines),
      pr.part_weights);
  m.predicted_efficiency = score.e;
  return m;
}

}  // namespace massf
