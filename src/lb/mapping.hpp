// The load-balance mappings studied in the paper: the flat topology-based
// (TOP) and profile-based (PROF) approaches, their manually-tuned variants
// (TOP2, PROF2), and the hierarchical variants (HTOP, HPROF) that contract
// sub-threshold-latency links before partitioning and sweep the threshold
// Tmll, selecting the candidate maximizing E = Es * Ec
// (paper Section 3.4.3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/cost_model.hpp"
#include "graph/graph.hpp"
#include "pdes/event.hpp"
#include "topology/network.hpp"

namespace massf {

enum class MappingKind {
  kTop,    ///< static: vertex weight = incident bandwidth, plain edge weights
  kTop2,   ///< TOP with the hand-tuned latency->weight conversion
  kProf,   ///< traffic profile vertex weights, plain edge weights
  kProf2,  ///< PROF with the hand-tuned conversion
  kHTop,   ///< hierarchical TOP
  kHProf,  ///< hierarchical PROF
  /// Topology + static application placement (the authors' earlier middle
  /// ground between TOP and PROF): routers attaching traffic endpoints get
  /// their weights boosted by the endpoints' access bandwidth.
  kPlace,
  /// ModelNet's greedy k-cluster (paper Section 6) — an unweighted
  /// region-growing baseline.
  kGreedy,
};

const char* mapping_kind_name(MappingKind kind);
bool mapping_uses_profile(MappingKind kind);
bool mapping_is_hierarchical(MappingKind kind);

/// Per-network-node kernel-event counts from a profiling run; host counts
/// are folded into their attachment router (hosts are co-located with it).
struct TrafficProfile {
  std::vector<std::uint64_t> router_events;  ///< size = num_routers
};

struct MappingOptions {
  MappingKind kind = MappingKind::kHProf;
  std::int32_t num_engines = 90;
  ClusterModel cluster;  ///< provides C(N) for the Tmll sweep and Es
  std::uint64_t seed = 1;
  double imbalance_tolerance = 1.10;
  /// Exponent applied to the inverse-latency edge weight by the tuned
  /// (TOP2/PROF2) conversion; > 1 makes small-latency links
  /// disproportionately expensive to cut.
  double tuned_exponent = 1.6;
  /// Tmll sweep step (paper: 0.1 ms).
  SimTime tmll_step = microseconds(100);
  /// Upper bound of the sweep (safety stop; the sweep also stops when the
  /// contracted graph has fewer clusters than engines).
  SimTime tmll_max = milliseconds(20);
};

struct Mapping {
  MappingKind kind = MappingKind::kTop;
  std::vector<LpId> router_lp;  ///< router -> engine node
  /// Minimum cross-partition link latency (the partition's lookahead).
  SimTime achieved_mll = 0;
  /// Chosen latency threshold (hierarchical mappings only, else 0).
  SimTime tmll = 0;
  /// E = Es * Ec of the chosen partition (hierarchical mappings only).
  double predicted_efficiency = 0;
  Weight edge_cut = 0;
  double balance = 0;  ///< max part weight / ideal
  std::int32_t num_engines = 0;
};

/// Computes the mapping. `profile` is required for PROF/PROF2/HPROF;
/// `placement` (routers attaching active traffic endpoints, any order,
/// duplicates allowed) is required for PLACE.
Mapping compute_mapping(const Network& net, const MappingOptions& opts,
                        const TrafficProfile* profile,
                        std::span<const NodeId> placement = {});

/// The partition evaluator of the hierarchical scheme:
///   Es = (MLL - C_N) / MLL   (<= 0 when the window cannot amortize sync)
///   Ec = average / maximum estimated per-engine load
/// Exposed for tests and the ablation benches.
struct PartitionScore {
  double es = 0;
  double ec = 0;
  double e = 0;
};
PartitionScore score_partition(SimTime achieved_mll, SimTime sync_cost,
                               std::span<const Weight> part_loads);

}  // namespace massf
