// The hierarchical partitioning algorithm (paper Section 3.4.3).
//
// For each candidate threshold Tmll (starting just above the
// synchronization cost C_N, stepping by tmll_step): contract every edge
// with latency < Tmll (guaranteeing achieved MLL >= Tmll), partition the
// contracted ("dumped") graph, and score the result with E = Es * Ec.
// The best-scoring candidate is expanded back to the original graph.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "lb/mapping.hpp"

namespace massf {

struct HierarchicalResult {
  std::vector<VertexId> part;  ///< per original vertex
  SimTime tmll = 0;
  SimTime achieved_mll = 0;
  PartitionScore score;
  Weight edge_cut = 0;
  double balance = 0;
  std::int32_t candidates_tried = 0;
};

/// Runs the Tmll sweep. `latencies` align with g's edge ids. Returns
/// nullopt when even the smallest admissible threshold leaves fewer
/// clusters than engines (the caller falls back to a flat partition).
std::optional<HierarchicalResult> hierarchical_partition(
    const Graph& g, std::span<const std::int64_t> latencies,
    const MappingOptions& opts);

}  // namespace massf
