#include "lb/profile.hpp"

#include "util/check.hpp"

namespace massf {

TrafficProfile fold_profile(const Network& net,
                            std::span<const std::uint64_t> node_events) {
  MASSF_CHECK(node_events.size() == net.nodes.size());
  TrafficProfile p;
  p.router_events.assign(static_cast<std::size_t>(net.num_routers), 0);
  for (NodeId n = 0; n < static_cast<NodeId>(net.nodes.size()); ++n) {
    const NodeId r = net.is_host(n)
                         ? net.nodes[static_cast<std::size_t>(n)].attach_router
                         : n;
    p.router_events[static_cast<std::size_t>(r)] +=
        node_events[static_cast<std::size_t>(n)];
  }
  return p;
}

std::vector<LpId> naive_mapping(const Network& net,
                                std::int32_t num_engines) {
  MASSF_CHECK(num_engines >= 1);
  std::vector<LpId> m(static_cast<std::size_t>(net.num_routers));
  // Contiguous blocks (not modulo round-robin): keeps geographically close
  // routers together so the profiling run itself has a usable lookahead.
  const auto n = static_cast<std::int64_t>(net.num_routers);
  for (std::int64_t r = 0; r < n; ++r) {
    m[static_cast<std::size_t>(r)] =
        static_cast<LpId>(r * num_engines / std::max<std::int64_t>(n, 1));
  }
  return m;
}

}  // namespace massf
