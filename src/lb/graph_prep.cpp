#include "lb/graph_prep.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace massf {

std::vector<Weight> top_vertex_weights(const Network& net) {
  std::vector<Weight> w(static_cast<std::size_t>(net.num_routers), 0);
  for (const NetLink& l : net.links) {
    const auto mbps = static_cast<Weight>(l.bandwidth_bps / 1e6);
    if (net.is_router(l.a)) w[static_cast<std::size_t>(l.a)] += mbps;
    if (net.is_router(l.b)) w[static_cast<std::size_t>(l.b)] += mbps;
  }
  for (auto& x : w) x = std::max<Weight>(x, 1);
  return w;
}

std::vector<Weight> prof_vertex_weights(const Network& net,
                                        const TrafficProfile& profile) {
  MASSF_CHECK(static_cast<NodeId>(profile.router_events.size()) ==
              net.num_routers);
  std::vector<Weight> w(static_cast<std::size_t>(net.num_routers));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<Weight>(profile.router_events[i]) + 1;
  }
  return w;
}

std::vector<Weight> place_vertex_weights(const Network& net,
                                         std::span<const NodeId> placement) {
  std::vector<Weight> w = top_vertex_weights(net);
  for (const NodeId endpoint : placement) {
    const NodeId router =
        net.is_host(endpoint)
            ? net.nodes[static_cast<std::size_t>(endpoint)].attach_router
            : endpoint;
    // Boost by a multiple of the endpoint's access bandwidth: an active
    // endpoint concentrates far more simulation work on its attachment
    // router than an idle backbone link of the same capacity, so the boost
    // must be commensurate with typical backbone incident weights or the
    // placement information drowns in the TOP term.
    constexpr Weight kEndpointFactor = 20;
    Weight boost = 100 * kEndpointFactor;  // flat boost for bare routers
    if (net.is_host(endpoint)) {
      const auto inc = net.incident(endpoint);
      MASSF_CHECK(inc.size() == 1);
      boost = kEndpointFactor *
              static_cast<Weight>(
                  net.links[static_cast<std::size_t>(inc[0].link)]
                      .bandwidth_bps /
                  1e6);
    }
    w[static_cast<std::size_t>(router)] += boost;
  }
  return w;
}

Weight edge_weight_plain(std::int64_t latency_ns) {
  MASSF_CHECK(latency_ns > 0);
  const Weight w = static_cast<Weight>(1'000'000'000 / latency_ns);
  return std::clamp<Weight>(w, 1, 1'000'000'000);
}

std::vector<Weight> edge_weights_tuned(
    std::span<const std::int64_t> latencies, double tuned_exponent) {
  MASSF_CHECK(tuned_exponent >= 1.0);
  std::vector<double> raw(latencies.size());
  double max_raw = 0;
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    raw[i] = std::pow(static_cast<double>(edge_weight_plain(latencies[i])),
                      tuned_exponent);
    max_raw = std::max(max_raw, raw[i]);
  }
  std::vector<Weight> w(latencies.size(), 1);
  if (max_raw <= 0) return w;
  const double scale = 1e9 / max_raw;
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    w[i] = std::max<Weight>(1, static_cast<Weight>(raw[i] * scale));
  }
  return w;
}

Graph prepare_graph(const Network& net, MappingKind kind,
                    const TrafficProfile* profile,
                    const MappingOptions& opts,
                    std::vector<std::int64_t>* latencies_out,
                    std::span<const NodeId> placement) {
  std::vector<std::int64_t> latencies;
  Graph g = net.router_graph(&latencies);

  if (mapping_uses_profile(kind)) {
    MASSF_CHECK(profile != nullptr);
    g.set_vertex_weights(prof_vertex_weights(net, *profile));
  } else if (kind == MappingKind::kPlace) {
    g.set_vertex_weights(place_vertex_weights(net, placement));
  } else {
    g.set_vertex_weights(top_vertex_weights(net));
  }

  const bool tuned =
      kind == MappingKind::kTop2 || kind == MappingKind::kProf2;
  if (tuned) {
    g.set_edge_weights(edge_weights_tuned(latencies, opts.tuned_exponent));
  } else {
    std::vector<Weight> w(latencies.size());
    for (std::size_t i = 0; i < latencies.size(); ++i) {
      w[i] = edge_weight_plain(latencies[i]);
    }
    g.set_edge_weights(std::move(w));
  }

  if (latencies_out != nullptr) *latencies_out = std::move(latencies);
  return g;
}

}  // namespace massf
