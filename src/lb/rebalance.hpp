// Online load rebalancing: the closed control loop that turns the static
// mapping pipeline into an adaptive runtime (DESIGN.md section 5f).
//
// The controller runs as the engine's rebalance stage (EngineHooks firing
// order: barrier → rebalance → ckpt). At each firing it diffs the kernel's
// cumulative per-node event profile against the previous check — the same
// "prof" signal the offline PROF/HPROF mappings consume, but windowed to
// the recent past — measures per-engine load imbalance (max over average),
// and when the imbalance stays above a threshold for `sustain` consecutive
// checks, computes an *incremental* remap: a bounded-move FM refinement
// (partition/fm.hpp) of the hottest/coldest engine pair over the live
// vertex weights, with immobile routers pinned. The chosen routers are
// rehomed through NetSim::migrate_router, which serializes their pending
// events through the massf.ckpt.v1 record format, and the modeled cost of
// the transfer is charged to the run via the cluster cost model — so the
// reported speedup is honest.
//
// Determinism: every input (profile counts, ownership table, link
// latencies) is a deterministic function of the event stream, and the hook
// runs coordinator-only at a quiescent boundary, so sequential and
// threaded executors make identical decisions and stay bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cost_model.hpp"
#include "net/netsim.hpp"

namespace massf {

namespace obs {
class Registry;
}  // namespace obs

struct RebalanceOptions {
  bool enabled = false;
  /// Check cadence in synchronization windows (EngineHooks::rebalance_every).
  std::uint64_t every_windows = 64;
  /// Trigger when max-engine-load / avg-engine-load exceeds this.
  double threshold = 1.25;
  /// Consecutive over-threshold checks required before acting (debounce:
  /// one bursty window must not trigger a migration storm).
  std::int32_t sustain = 2;
  /// Bound on routers moved per trigger (FmOptions::max_moves).
  std::int32_t max_moves = 8;
  /// FM refinement knobs for the incremental remap.
  double fm_tolerance = 1.05;
  std::int32_t fm_passes = 4;
};

class RebalanceController {
 public:
  /// `sim` must have been built with NetSimOptions::collect_node_profile —
  /// the profile is the controller's only load signal.
  RebalanceController(NetSim& sim, const ClusterModel& cluster,
                      const RebalanceOptions& opts);

  /// Installs the controller as `engine`'s rebalance stage.
  void arm(Engine& engine);

  /// The rebalance stage body (public so tests can fire checks directly).
  void on_rebalance(Engine& engine, SimTime floor);

  struct Totals {
    std::uint64_t checks = 0;    ///< stage firings
    std::uint64_t triggers = 0;  ///< firings that migrated something
    std::uint64_t moves = 0;     ///< routers rehomed
    std::uint64_t events_moved = 0;
    std::uint64_t bytes_moved = 0;  ///< massf.ckpt.v1 record bytes
    double imbalance_before = 0;    ///< at the last trigger
    double imbalance_after = 0;
    double modeled_cost_s = 0;  ///< total migration cost charged
  };
  const Totals& totals() const { return totals_; }

  /// Publishes `lb.rebalance.*` metrics (schema in DESIGN.md section 5b).
  void publish_metrics(obs::Registry& registry) const;

  /// Checkpoint hooks (ckpt/ckpt.hpp): the profile snapshot, debounce
  /// counter, and tallies — everything a resumed run needs to keep making
  /// the decisions the uninterrupted run would have made.
  void save(ckpt::Writer& writer) const;
  bool load(ckpt::Reader& reader);

 private:
  /// Per-engine recent load (host events folded onto attach routers) from
  /// `router_w`, under the current ownership table.
  std::vector<double> engine_load(
      const std::vector<std::uint64_t>& router_w) const;

  NetSim* sim_;
  ClusterModel cluster_;
  RebalanceOptions opts_;
  /// Cumulative node profile at the previous check (diff base).
  std::vector<std::uint64_t> snapshot_;
  std::int32_t sustain_count_ = 0;
  Totals totals_;
};

}  // namespace massf
