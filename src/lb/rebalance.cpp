#include "lb/rebalance.hpp"

#include <algorithm>

#include "ckpt/ckpt.hpp"
#include "graph/graph.hpp"
#include "lb/graph_prep.hpp"
#include "obs/metrics.hpp"
#include "partition/fm.hpp"
#include "util/check.hpp"

namespace massf {

RebalanceController::RebalanceController(NetSim& sim,
                                         const ClusterModel& cluster,
                                         const RebalanceOptions& opts)
    : sim_(&sim), cluster_(cluster), opts_(opts) {
  MASSF_CHECK(opts_.every_windows > 0);
  MASSF_CHECK(opts_.threshold >= 1.0);
  MASSF_CHECK(opts_.sustain >= 1);
  MASSF_CHECK(opts_.max_moves >= 1);
  // The node profile is the load signal; without collect_node_profile the
  // controller would see an all-zero network forever.
  MASSF_CHECK(!sim.node_profile().empty());
  snapshot_.assign(sim.node_profile().size(), 0);
}

void RebalanceController::arm(Engine& engine) {
  engine.hooks().rebalance_every = opts_.every_windows;
  engine.hooks().rebalance = [this](Engine& eng, SimTime floor) {
    on_rebalance(eng, floor);
  };
}

std::vector<double> RebalanceController::engine_load(
    const std::vector<std::uint64_t>& router_w) const {
  std::vector<double> load(static_cast<std::size_t>(sim_->num_lps()), 0);
  for (std::size_t r = 0; r < router_w.size(); ++r) {
    load[static_cast<std::size_t>(sim_->lp_of(static_cast<NodeId>(r)))] +=
        static_cast<double>(router_w[r]);
  }
  return load;
}

void RebalanceController::on_rebalance(Engine& engine, SimTime floor) {
  (void)floor;
  ++totals_.checks;
  if (sim_->num_lps() < 2) return;

  // Recent load per node: cumulative profile minus the previous check's
  // snapshot. Host events are folded onto the attachment router, mirroring
  // the offline PROF pipeline (the kernel charges host work to the LP of
  // the attachment router anyway).
  const std::vector<std::uint64_t>& cum = sim_->node_profile();
  MASSF_CHECK(cum.size() == snapshot_.size());
  const Network& net = sim_->network();
  std::vector<std::uint64_t> router_w(
      static_cast<std::size_t>(net.num_routers), 0);
  for (std::size_t i = 0; i < cum.size(); ++i) {
    const std::uint64_t recent = cum[i] - snapshot_[i];
    snapshot_[i] = cum[i];
    if (recent == 0) continue;
    const NodeId node = static_cast<NodeId>(i);
    const NodeId router =
        net.is_host(node) ? net.nodes[i].attach_router : node;
    router_w[static_cast<std::size_t>(router)] += recent;
  }

  std::vector<double> load = engine_load(router_w);
  double total = 0;
  for (double l : load) total += l;
  if (total <= 0) {
    sustain_count_ = 0;
    return;
  }
  const double avg = total / static_cast<double>(load.size());
  const auto hot_it = std::max_element(load.begin(), load.end());
  const double imbalance = *hot_it / avg;
  if (imbalance < opts_.threshold) {
    sustain_count_ = 0;
    return;
  }
  if (++sustain_count_ < opts_.sustain) return;
  sustain_count_ = 0;

  // Incremental remap: refine only the hottest/coldest engine pair.
  // max_element/min_element both take the lowest index on ties, so the
  // pair choice is deterministic.
  const LpId hot = static_cast<LpId>(hot_it - load.begin());
  const LpId cold = static_cast<LpId>(
      std::min_element(load.begin(), load.end()) - load.begin());
  if (hot == cold) return;

  // Subgraph over the routers the pair owns, in ascending NodeId order so
  // vertex ids (and thus FM tie-breaks) are deterministic.
  std::vector<NodeId> verts;
  for (NodeId r = 0; r < net.num_routers; ++r) {
    const LpId lp = sim_->lp_of(r);
    if (lp == hot || lp == cold) verts.push_back(r);
  }
  std::vector<VertexId> vid(static_cast<std::size_t>(net.num_routers), -1);
  for (std::size_t i = 0; i < verts.size(); ++i) {
    vid[static_cast<std::size_t>(verts[i])] = static_cast<VertexId>(i);
  }

  GraphBuilder gb(static_cast<VertexId>(verts.size()));
  for (std::size_t i = 0; i < verts.size(); ++i) {
    gb.set_vertex_weight(
        static_cast<VertexId>(i),
        static_cast<Weight>(router_w[static_cast<std::size_t>(verts[i])]) +
            1);
  }
  for (const NetLink& l : net.links) {
    if (!net.is_router(l.a) || !net.is_router(l.b)) continue;
    const VertexId va = vid[static_cast<std::size_t>(l.a)];
    const VertexId vb = vid[static_cast<std::size_t>(l.b)];
    if (va < 0 || vb < 0) continue;
    gb.add_edge(va, vb, edge_weight_plain(l.latency));
  }
  const Graph g = gb.build();

  // Side 0 = hot engine, side 1 = cold. Pin everything that cannot move;
  // FM may then only trade the mobile routers, bounded by max_moves.
  std::vector<VertexId> part(verts.size());
  std::vector<char> pinned(verts.size());
  const SimTime lookahead = engine.options().lookahead;
  for (std::size_t i = 0; i < verts.size(); ++i) {
    part[i] = sim_->lp_of(verts[i]) == hot ? 0 : 1;
    pinned[i] = sim_->router_mobile(verts[i], lookahead) ? 0 : 1;
  }

  FmOptions fm;
  fm.target0 = g.total_vertex_weight() / 2;
  fm.tolerance = opts_.fm_tolerance;
  fm.max_passes = opts_.fm_passes;
  fm.pinned = pinned;
  fm.max_moves = opts_.max_moves;
  fm_refine_bisection(g, part, fm);

  // Apply the remap in ascending router id order (deterministic migration
  // sequence → deterministic destination seq assignment).
  std::uint64_t moves = 0;
  std::uint64_t events = 0;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < verts.size(); ++i) {
    const LpId want = part[i] == 0 ? hot : cold;
    if (want == sim_->lp_of(verts[i])) continue;
    const MigrationStats ms = sim_->migrate_router(engine, verts[i], want);
    ++moves;
    events += ms.events;
    bytes += ms.bytes;
  }
  if (moves == 0) return;

  ++totals_.triggers;
  totals_.moves += moves;
  totals_.events_moved += events;
  totals_.bytes_moved += bytes;
  totals_.imbalance_before = imbalance;
  const double cost = cluster_.migration_cost_s(bytes);
  totals_.modeled_cost_s += cost;
  engine.charge_modeled_cost(cost);

  std::vector<double> after = engine_load(router_w);
  const double peak = *std::max_element(after.begin(), after.end());
  totals_.imbalance_after = peak / avg;
}

void RebalanceController::publish_metrics(obs::Registry& registry) const {
  registry.counter("lb.rebalance.checks").inc(totals_.checks);
  registry.counter("lb.rebalance.triggers").inc(totals_.triggers);
  registry.counter("lb.rebalance.moves").inc(totals_.moves);
  registry.counter("lb.rebalance.events_moved").inc(totals_.events_moved);
  registry.counter("lb.rebalance.bytes_moved").inc(totals_.bytes_moved);
  registry.gauge("lb.rebalance.imbalance_before")
      .set(totals_.imbalance_before);
  registry.gauge("lb.rebalance.imbalance_after").set(totals_.imbalance_after);
  registry.gauge("lb.rebalance.modeled_cost_s").set(totals_.modeled_cost_s);
}

void RebalanceController::save(ckpt::Writer& w) const {
  ckpt::write_u64_vec(w, snapshot_);
  w.i32(sustain_count_);
  w.u64(totals_.checks);
  w.u64(totals_.triggers);
  w.u64(totals_.moves);
  w.u64(totals_.events_moved);
  w.u64(totals_.bytes_moved);
  w.f64(totals_.imbalance_before);
  w.f64(totals_.imbalance_after);
  w.f64(totals_.modeled_cost_s);
}

bool RebalanceController::load(ckpt::Reader& r) {
  std::vector<std::uint64_t> snap;
  if (!ckpt::read_u64_vec(r, snap) || snap.size() != snapshot_.size()) {
    return false;
  }
  snapshot_ = std::move(snap);
  sustain_count_ = r.i32();
  totals_.checks = r.u64();
  totals_.triggers = r.u64();
  totals_.moves = r.u64();
  totals_.events_moved = r.u64();
  totals_.bytes_moved = r.u64();
  totals_.imbalance_before = r.f64();
  totals_.imbalance_after = r.f64();
  totals_.modeled_cost_s = r.f64();
  return r.done();
}

}  // namespace massf
