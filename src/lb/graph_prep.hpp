// Construction of the partitioner input graph from the network and traffic
// information (paper Section 3.2 / Figure 4): vertex weights estimate the
// simulation load per router, edge weights encode the cost of cutting a
// link (derived from its latency — smaller latency, larger weight).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "lb/mapping.hpp"
#include "topology/network.hpp"

namespace massf {

/// TOP vertex weights: total bandwidth in and out of the router, in Mbps
/// (includes access links of attached hosts).
std::vector<Weight> top_vertex_weights(const Network& net);

/// PROF vertex weights: profiled kernel event counts per router (hosts
/// folded in); all entries get +1 so no vertex is weightless.
std::vector<Weight> prof_vertex_weights(const Network& net,
                                        const TrafficProfile& profile);

/// PLACE vertex weights: the TOP weights plus, for every traffic endpoint
/// in `placement`, an extra boost of the endpoint's access-link bandwidth
/// on its attachment router — static knowledge of where the application
/// and background endpoints live, without any profiling run.
std::vector<Weight> place_vertex_weights(const Network& net,
                                         std::span<const NodeId> placement);

/// Plain latency -> edge weight conversion: w = 1e9 / latency_ns, clamped
/// to [1, 1e9] (1 ms -> 1000, 10 us -> 100000).
Weight edge_weight_plain(std::int64_t latency_ns);

/// Tuned (TOP2/PROF2) conversion: the plain weight raised to
/// `tuned_exponent` and renormalized so the maximum stays ~1e9. Makes
/// cutting small-latency links prohibitively expensive — the manual fix
/// the paper applied to run TOP/PROF at large scale at all.
std::vector<Weight> edge_weights_tuned(std::span<const std::int64_t> latencies,
                                       double tuned_exponent);

/// Assembles the partitioner input: router graph with the chosen vertex
/// weights and per-edge weights. `latencies` must align with the graph's
/// edge ids (as produced by Network::router_graph).
Graph prepare_graph(const Network& net, MappingKind kind,
                    const TrafficProfile* profile,
                    const MappingOptions& opts,
                    std::vector<std::int64_t>* latencies_out,
                    std::span<const NodeId> placement = {});

}  // namespace massf
