// Disjoint-set forest with path compression and union by size. Used by the
// hierarchical load balancer to cluster vertices connected by
// sub-threshold-latency links, and by connectivity checks.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace massf {

class UnionFind {
 public:
  explicit UnionFind(VertexId n);

  VertexId find(VertexId v);

  /// Returns true if the sets were distinct (a merge happened).
  bool unite(VertexId a, VertexId b);

  VertexId num_sets() const { return num_sets_; }

  /// Produces a dense relabeling: result[v] in [0, num_sets), with set ids
  /// assigned in order of first appearance (so the labeling is
  /// deterministic).
  std::vector<VertexId> compress();

 private:
  std::vector<VertexId> parent_;
  std::vector<VertexId> size_;
  VertexId num_sets_;
};

}  // namespace massf
