#include "graph/union_find.hpp"

#include <numeric>

#include "util/check.hpp"

namespace massf {

UnionFind::UnionFind(VertexId n)
    : parent_(static_cast<std::size_t>(n)),
      size_(static_cast<std::size_t>(n), 1),
      num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), VertexId{0});
}

VertexId UnionFind::find(VertexId v) {
  MASSF_DCHECK(v >= 0 && static_cast<std::size_t>(v) < parent_.size());
  VertexId root = v;
  while (parent_[static_cast<std::size_t>(root)] != root) {
    root = parent_[static_cast<std::size_t>(root)];
  }
  while (parent_[static_cast<std::size_t>(v)] != root) {
    VertexId next = parent_[static_cast<std::size_t>(v)];
    parent_[static_cast<std::size_t>(v)] = root;
    v = next;
  }
  return root;
}

bool UnionFind::unite(VertexId a, VertexId b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) {
    std::swap(a, b);
  }
  parent_[static_cast<std::size_t>(b)] = a;
  size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
  --num_sets_;
  return true;
}

std::vector<VertexId> UnionFind::compress() {
  std::vector<VertexId> label(parent_.size(), kInvalidVertex);
  std::vector<VertexId> result(parent_.size());
  VertexId next = 0;
  for (VertexId v = 0; v < static_cast<VertexId>(parent_.size()); ++v) {
    const VertexId root = find(v);
    auto& l = label[static_cast<std::size_t>(root)];
    if (l == kInvalidVertex) l = next++;
    result[static_cast<std::size_t>(v)] = l;
  }
  MASSF_CHECK(next == num_sets_);
  return result;
}

}  // namespace massf
