#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace massf {

Weight Graph::incident_weight(VertexId v) const {
  Weight total = 0;
  for (Weight w : arc_weights(v)) total += w;
  return total;
}

void Graph::set_vertex_weights(std::vector<Weight> w) {
  MASSF_CHECK(static_cast<VertexId>(w.size()) == num_vertices());
  vwgt_ = std::move(w);
  total_vwgt_ = std::accumulate(vwgt_.begin(), vwgt_.end(), Weight{0});
}

void Graph::set_edge_weights(std::vector<Weight> w) {
  MASSF_CHECK(static_cast<EdgeId>(w.size()) == num_edges());
  edge_w_ = std::move(w);
  for (std::size_t arc = 0; arc < adjwgt_.size(); ++arc) {
    adjwgt_[arc] = edge_w_[static_cast<std::size_t>(arc_edge_[arc])];
  }
}

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : nv_(num_vertices), vwgt_(static_cast<std::size_t>(num_vertices), 1) {
  MASSF_CHECK(num_vertices >= 0);
}

void GraphBuilder::set_vertex_weight(VertexId v, Weight w) {
  MASSF_CHECK(v >= 0 && v < nv_);
  MASSF_CHECK(w >= 0);
  vwgt_[v] = w;
}

void GraphBuilder::add_edge(VertexId u, VertexId v, Weight w) {
  MASSF_CHECK(u >= 0 && u < nv_ && v >= 0 && v < nv_);
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v, w});
}

Graph GraphBuilder::build() {
  // Merge duplicate edges.
  std::sort(edges_.begin(), edges_.end(), [](const RawEdge& a, const RawEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::vector<RawEdge> merged;
  merged.reserve(edges_.size());
  for (const RawEdge& e : edges_) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().w += e.w;
    } else {
      merged.push_back(e);
    }
  }

  Graph g;
  g.vwgt_ = std::move(vwgt_);
  g.total_vwgt_ = std::accumulate(g.vwgt_.begin(), g.vwgt_.end(), Weight{0});
  g.num_edges_ = static_cast<EdgeId>(merged.size());
  g.edge_u_.reserve(merged.size());
  g.edge_v_.reserve(merged.size());
  g.edge_w_.reserve(merged.size());
  for (const RawEdge& e : merged) {
    g.edge_u_.push_back(e.u);
    g.edge_v_.push_back(e.v);
    g.edge_w_.push_back(e.w);
  }

  // CSR over both arc directions.
  g.xadj_.assign(static_cast<std::size_t>(nv_) + 1, 0);
  for (const RawEdge& e : merged) {
    ++g.xadj_[static_cast<std::size_t>(e.u) + 1];
    ++g.xadj_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < g.xadj_.size(); ++i) g.xadj_[i] += g.xadj_[i - 1];

  const std::size_t narcs = merged.size() * 2;
  g.adjncy_.resize(narcs);
  g.adjwgt_.resize(narcs);
  g.arc_edge_.resize(narcs);
  std::vector<std::int32_t> cursor(g.xadj_.begin(), g.xadj_.end() - 1);
  for (EdgeId e = 0; e < g.num_edges_; ++e) {
    const VertexId u = g.edge_u_[e], v = g.edge_v_[e];
    const Weight w = g.edge_w_[e];
    auto& cu = cursor[static_cast<std::size_t>(u)];
    g.adjncy_[static_cast<std::size_t>(cu)] = v;
    g.adjwgt_[static_cast<std::size_t>(cu)] = w;
    g.arc_edge_[static_cast<std::size_t>(cu)] = e;
    ++cu;
    auto& cv = cursor[static_cast<std::size_t>(v)];
    g.adjncy_[static_cast<std::size_t>(cv)] = u;
    g.adjwgt_[static_cast<std::size_t>(cv)] = w;
    g.arc_edge_[static_cast<std::size_t>(cv)] = e;
    ++cv;
  }
  edges_.clear();
  return g;
}

Graph contract(const Graph& g, std::span<const VertexId> cluster,
               VertexId num_clusters, std::span<const std::int64_t> edge_aux,
               std::vector<EdgeId>* edge_origin) {
  MASSF_CHECK(static_cast<VertexId>(cluster.size()) == g.num_vertices());
  GraphBuilder builder(num_clusters);

  std::vector<Weight> cw(static_cast<std::size_t>(num_clusters), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId c = cluster[static_cast<std::size_t>(v)];
    MASSF_CHECK(c >= 0 && c < num_clusters);
    cw[static_cast<std::size_t>(c)] += g.vertex_weight(v);
  }
  for (VertexId c = 0; c < num_clusters; ++c) {
    builder.set_vertex_weight(c, cw[static_cast<std::size_t>(c)]);
  }

  // Track, per contracted (cu, cv) pair, the representative original edge:
  // the one with the minimum auxiliary value (e.g. smallest link latency),
  // so the achieved-MLL of the contracted partition can be traced back.
  struct PairInfo {
    EdgeId rep;
    std::int64_t aux;
  };
  std::vector<std::pair<std::uint64_t, PairInfo>> pairs;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    VertexId cu = cluster[static_cast<std::size_t>(g.edge_u(e))];
    VertexId cv = cluster[static_cast<std::size_t>(g.edge_v(e))];
    if (cu == cv) continue;
    if (cu > cv) std::swap(cu, cv);
    builder.add_edge(cu, cv, g.edge_weight(e));
    if (edge_origin != nullptr) {
      const std::int64_t aux =
          edge_aux.empty() ? 0 : edge_aux[static_cast<std::size_t>(e)];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cu)) << 32) |
          static_cast<std::uint32_t>(cv);
      pairs.push_back({key, {e, aux}});
    }
  }

  Graph out = builder.build();

  if (edge_origin != nullptr) {
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second.aux < b.second.aux;
              });
    edge_origin->assign(static_cast<std::size_t>(out.num_edges()),
                        EdgeId{-1});
    // Contracted edges are sorted by (u, v) in build(); pairs are sorted by
    // the same key, so walk them in lockstep taking the first (min-aux)
    // entry of each group.
    std::size_t p = 0;
    for (EdgeId e = 0; e < out.num_edges(); ++e) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(
               static_cast<std::uint32_t>(out.edge_u(e)))
           << 32) |
          static_cast<std::uint32_t>(out.edge_v(e));
      while (p < pairs.size() && pairs[p].first < key) ++p;
      MASSF_CHECK(p < pairs.size() && pairs[p].first == key);
      (*edge_origin)[static_cast<std::size_t>(e)] = pairs[p].second.rep;
    }
  }
  return out;
}

}  // namespace massf
