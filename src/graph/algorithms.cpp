#include "graph/algorithms.hpp"

#include <cmath>
#include <queue>

#include "util/check.hpp"

namespace massf {

std::vector<VertexId> connected_components(const Graph& g,
                                           VertexId* num_components) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> comp(static_cast<std::size_t>(n), kInvalidVertex);
  VertexId next = 0;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (comp[static_cast<std::size_t>(s)] != kInvalidVertex) continue;
    const VertexId c = next++;
    comp[static_cast<std::size_t>(s)] = c;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.neighbors(v)) {
        if (comp[static_cast<std::size_t>(u)] == kInvalidVertex) {
          comp[static_cast<std::size_t>(u)] = c;
          stack.push_back(u);
        }
      }
    }
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  VertexId nc = 0;
  connected_components(g, &nc);
  return nc == 1;
}

std::vector<std::int32_t> bfs_distances(const Graph& g, VertexId source) {
  MASSF_CHECK(source >= 0 && source < g.num_vertices());
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_vertices()),
                                 -1);
  std::queue<VertexId> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (VertexId u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] == -1) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

std::vector<std::int64_t> degree_histogram(const Graph& g) {
  std::vector<std::int64_t> hist;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto d = static_cast<std::size_t>(g.degree(v));
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

double power_law_exponent(const Graph& g, std::int32_t min_degree) {
  const auto hist = degree_histogram(g);
  std::vector<std::pair<double, double>> pts;  // (log d, log count)
  for (std::size_t d = static_cast<std::size_t>(std::max(min_degree, 1));
       d < hist.size(); ++d) {
    if (hist[d] > 0) {
      pts.emplace_back(std::log(static_cast<double>(d)),
                       std::log(static_cast<double>(hist[d])));
    }
  }
  if (pts.size() < 3) return 0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (auto [x, y] : pts) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(pts.size());
  const double denom = n * sxx - sx * sx;
  if (denom == 0) return 0;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace massf
