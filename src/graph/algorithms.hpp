// Basic graph algorithms shared across modules.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace massf {

/// Connected components; returns component id per vertex (dense, in order of
/// first appearance) and sets *num_components when non-null.
std::vector<VertexId> connected_components(const Graph& g,
                                           VertexId* num_components = nullptr);

bool is_connected(const Graph& g);

/// BFS hop distance from source; unreachable vertices get -1.
std::vector<std::int32_t> bfs_distances(const Graph& g, VertexId source);

/// Degree histogram: result[d] = number of vertices with degree d.
std::vector<std::int64_t> degree_histogram(const Graph& g);

/// Least-squares slope of log(count) vs log(degree) over non-empty degree
/// bins >= min_degree; a power-law graph shows a negative slope around
/// -2..-3 (Faloutsos et al.). Returns 0 when fewer than 3 bins.
double power_law_exponent(const Graph& g, std::int32_t min_degree = 1);

}  // namespace massf
