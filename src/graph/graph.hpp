// Weighted undirected graph in CSR form.
//
// This is the exchange format between the topology layer, the load-balance
// graph preparation, and the partitioner: vertices carry a load weight
// (estimated simulation work), arcs carry a cut weight (cost of splitting)
// and an undirected edge id through which auxiliary per-edge data (link
// latency) is looked up.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace massf {

using VertexId = std::int32_t;
using EdgeId = std::int32_t;
using Weight = std::int64_t;

constexpr VertexId kInvalidVertex = -1;

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  VertexId num_vertices() const { return static_cast<VertexId>(vwgt_.size()); }
  EdgeId num_edges() const { return num_edges_; }  ///< undirected edge count

  Weight vertex_weight(VertexId v) const { return vwgt_[v]; }
  Weight total_vertex_weight() const { return total_vwgt_; }

  std::int32_t degree(VertexId v) const { return xadj_[v + 1] - xadj_[v]; }

  /// Neighbors of v (one entry per incident undirected edge).
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjncy_.data() + xadj_[v],
            static_cast<std::size_t>(xadj_[v + 1] - xadj_[v])};
  }

  /// Arc weights aligned with neighbors(v).
  std::span<const Weight> arc_weights(VertexId v) const {
    return {adjwgt_.data() + xadj_[v],
            static_cast<std::size_t>(xadj_[v + 1] - xadj_[v])};
  }

  /// Undirected edge ids aligned with neighbors(v).
  std::span<const EdgeId> arc_edge_ids(VertexId v) const {
    return {arc_edge_.data() + xadj_[v],
            static_cast<std::size_t>(xadj_[v + 1] - xadj_[v])};
  }

  /// Endpoints of undirected edge e (u < v ordering is not guaranteed).
  VertexId edge_u(EdgeId e) const { return edge_u_[e]; }
  VertexId edge_v(EdgeId e) const { return edge_v_[e]; }
  Weight edge_weight(EdgeId e) const { return edge_w_[e]; }

  /// Sum of arc weights incident to v.
  Weight incident_weight(VertexId v) const;

  /// Replaces all vertex weights (size must equal num_vertices()).
  void set_vertex_weights(std::vector<Weight> w);

  /// Replaces all edge weights (size must equal num_edges()); arc weights
  /// are updated consistently.
  void set_edge_weights(std::vector<Weight> w);

 private:
  friend class GraphBuilder;

  std::vector<std::int32_t> xadj_;  // size nv+1
  std::vector<VertexId> adjncy_;
  std::vector<Weight> adjwgt_;
  std::vector<EdgeId> arc_edge_;
  std::vector<Weight> vwgt_;
  std::vector<VertexId> edge_u_, edge_v_;
  std::vector<Weight> edge_w_;
  EdgeId num_edges_ = 0;
  Weight total_vwgt_ = 0;
};

/// Accumulates edges, merges duplicates (summing weights), drops self loops,
/// and produces a CSR Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices);

  void set_vertex_weight(VertexId v, Weight w);

  /// Adds an undirected edge. Duplicate (u,v) pairs are merged with weights
  /// summed; self loops are ignored.
  void add_edge(VertexId u, VertexId v, Weight w = 1);

  Graph build();

 private:
  VertexId nv_;
  std::vector<Weight> vwgt_;
  struct RawEdge {
    VertexId u, v;
    Weight w;
  };
  std::vector<RawEdge> edges_;
};

/// Builds the contracted ("dumped" in the paper's terms) graph: vertex i of
/// the result is cluster i, with vertex weight the sum of member weights and
/// inter-cluster edges merged with weights summed. `cluster[v]` must be in
/// [0, num_clusters). Returns the contracted graph; `edge_origin`, if
/// non-null, receives for each contracted edge one representative original
/// edge id with the minimum... (see .cpp) — representative chosen as the
/// original edge of minimum auxiliary value via `edge_aux` when provided.
Graph contract(const Graph& g, std::span<const VertexId> cluster,
               VertexId num_clusters,
               std::span<const std::int64_t> edge_aux = {},
               std::vector<EdgeId>* edge_origin = nullptr);

}  // namespace massf
