#include "routing/forwarding.hpp"

#include <algorithm>

#include "ckpt/ckpt.hpp"
#include "util/check.hpp"

namespace massf {

ForwardingPlane::ForwardingPlane(const Network& net) : net_(&net) {
  // Every host has exactly one (access) link.
  host_link_.assign(static_cast<std::size_t>(net.num_hosts()), kInvalidLink);
  for (NodeId h = net.num_routers;
       h < static_cast<NodeId>(net.nodes.size()); ++h) {
    const auto inc = net.incident(h);
    MASSF_CHECK(inc.size() == 1);
    host_link_[static_cast<std::size_t>(h - net.num_routers)] = inc[0].link;
  }
}

NodeId ForwardingPlane::dest_router(NodeId dest) const {
  if (net_->is_host(dest)) {
    return net_->nodes[static_cast<std::size_t>(dest)].attach_router;
  }
  return dest;
}

ForwardingPlane ForwardingPlane::build_flat(
    const Network& net, std::span<const NodeId> dest_routers) {
  ForwardingPlane fp(net);
  std::vector<NodeId> all(static_cast<std::size_t>(net.num_routers));
  for (NodeId r = 0; r < net.num_routers; ++r) {
    all[static_cast<std::size_t>(r)] = r;
  }
  // Flat domains can register thousands of destinations over tens of
  // thousands of routers; keeping distances would multiply table memory.
  fp.flat_.emplace(net, all, /*use_inter_as_links=*/true,
                   /*keep_distances=*/false);
  for (NodeId d : dest_routers) fp.register_destination(d);
  return fp;
}

ForwardingPlane ForwardingPlane::build_multi_as(
    const Network& net, std::span<const NodeId> dest_routers,
    const Options& opts) {
  MASSF_CHECK(!net.as_info.empty());
  ForwardingPlane fp(net);
  fp.opts_ = opts;

  const auto num_as = static_cast<std::size_t>(net.num_as());
  fp.domains_.reserve(num_as);
  for (const AsInfo& info : net.as_info) {
    std::vector<NodeId> members(static_cast<std::size_t>(info.num_routers));
    for (std::int32_t i = 0; i < info.num_routers; ++i) {
      members[static_cast<std::size_t>(i)] = info.first_router + i;
    }
    fp.domains_.emplace_back(net, members, /*use_inter_as_links=*/false);
  }

  fp.bgp_.emplace(net.num_as(), net.as_adjacency);
  fp.bgp_->solve();

  fp.egress_.resize(num_as);
  fp.select_egress();

  for (NodeId d : dest_routers) fp.register_destination(d);
  return fp;
}

void ForwardingPlane::select_egress() {
  const Network& net = *net_;
  const auto num_as = static_cast<std::size_t>(net.num_as());

  // Deterministic egress selection: for each (AS, neighbor AS) pair keep
  // the lowest *up* border link id; register its local endpoint as an OSPF
  // destination inside the AS. Pairs whose every border link is down keep
  // no entry (next_link then drops the packet).
  for (auto& m : egress_) m.clear();
  for (const AsAdjacency& adj : net.as_adjacency) {
    if (down_links_.count(adj.link) > 0) continue;
    const AsId as_a = adj.as_a, as_b = adj.as_b;
    auto& ma = egress_[static_cast<std::size_t>(as_a)];
    auto ita = ma.find(as_b);
    if (ita == ma.end() || adj.link < ita->second) ma[as_b] = adj.link;
    auto& mb = egress_[static_cast<std::size_t>(as_b)];
    auto itb = mb.find(as_a);
    if (itb == mb.end() || adj.link < itb->second) mb[as_a] = adj.link;
  }
  for (std::size_t a = 0; a < num_as; ++a) {
    for (const auto& [nbr, link] : egress_[a]) {
      const NetLink& l = net.links[static_cast<std::size_t>(link)];
      const NodeId local = net.nodes[static_cast<std::size_t>(l.a)].as_id ==
                                   static_cast<AsId>(a)
                               ? l.a
                               : l.b;
      domains_[a].add_destination(net, local);
    }
  }

  // Default routes for stub ASes: primary provider = adjacent provider
  // with the lowest AS id whose border link is up (deterministic "pick
  // default/backup routers" of step 6d — backups engage on failure).
  default_egress_.assign(num_as, kInvalidLink);
  if (opts_.stub_default_routing) {
    for (AsId a = 0; a < net.num_as(); ++a) {
      if (net.as_info[static_cast<std::size_t>(a)].cls != AsClass::kStub) {
        continue;
      }
      AsId best_provider = -1;
      for (const AsAdjacency& adj : net.as_adjacency) {
        AsId other = -1;
        if (adj.as_a == a && adj.rel_ab == AsRel::kProvider) other = adj.as_b;
        if (adj.as_b == a && adj.rel_ab == AsRel::kCustomer) other = adj.as_a;
        if (other >= 0 &&
            egress_[static_cast<std::size_t>(a)].count(other) > 0 &&
            (best_provider < 0 || other < best_provider)) {
          best_provider = other;
        }
      }
      if (best_provider >= 0) {
        default_egress_[static_cast<std::size_t>(a)] =
            egress_[static_cast<std::size_t>(a)].at(best_provider);
      }
    }
  }
}

void ForwardingPlane::set_link_state(LinkId link, bool up) {
  MASSF_CHECK(link >= 0 &&
              link < static_cast<LinkId>(net_->links.size()));
  if (up) {
    down_links_.erase(link);
  } else {
    down_links_.insert(link);
  }
  const NetLink& l = net_->links[static_cast<std::size_t>(link)];
  if (!net_->is_router(l.a) || !net_->is_router(l.b)) return;  // access link
  if (flat_) {
    flat_->set_link_excluded(link, !up);
    return;
  }
  const AsId aa = net_->nodes[static_cast<std::size_t>(l.a)].as_id;
  const AsId ab = net_->nodes[static_cast<std::size_t>(l.b)].as_id;
  if (aa == ab) {
    domains_[static_cast<std::size_t>(aa)].set_link_excluded(link, !up);
  }
  // Border links are handled by select_egress() during reconverge().
}

void ForwardingPlane::reconverge() {
  if (flat_) {
    flat_->recompute(*net_);
    return;
  }
  select_egress();
  for (OspfDomain& d : domains_) d.recompute(*net_);
}

void ForwardingPlane::register_destination(NodeId dest) {
  MASSF_CHECK(net_->is_router(dest));
  if (flat_) {
    flat_->add_destination(*net_, dest);
  } else {
    const AsId a = net_->nodes[static_cast<std::size_t>(dest)].as_id;
    domains_[static_cast<std::size_t>(a)].add_destination(*net_, dest);
  }
}

LinkId ForwardingPlane::next_link(NodeId from, NodeId dest) const {
  MASSF_CHECK(net_->is_router(from));
  const NodeId droute = dest_router(dest);

  // Arrived at the destination's attachment router: hand to the host (or
  // terminate for router destinations).
  if (from == droute) {
    if (net_->is_host(dest)) {
      return host_link_[static_cast<std::size_t>(dest - net_->num_routers)];
    }
    return kInvalidLink;
  }

  if (flat_) return flat_->next_link(from, droute);

  const AsId my_as = net_->nodes[static_cast<std::size_t>(from)].as_id;
  const AsId dest_as = net_->nodes[static_cast<std::size_t>(droute)].as_id;

  if (my_as == dest_as) {
    return domains_[static_cast<std::size_t>(my_as)].next_link(from, droute);
  }

  // Inter-AS: pick the egress border link, default-routed for stubs.
  LinkId egress = kInvalidLink;
  if (opts_.stub_default_routing &&
      net_->as_info[static_cast<std::size_t>(my_as)].cls == AsClass::kStub &&
      default_egress_[static_cast<std::size_t>(my_as)] != kInvalidLink) {
    egress = default_egress_[static_cast<std::size_t>(my_as)];
  } else {
    const BgpRoute& r = bgp_->route(my_as, dest_as);
    if (r.next_hop_as < 0) return kInvalidLink;  // policy-unreachable
    const auto& m = egress_[static_cast<std::size_t>(my_as)];
    const auto it = m.find(r.next_hop_as);
    // Every border link toward the BGP next hop may be down (the control
    // plane has not re-learned a path yet): blackhole, as in real life.
    if (it == m.end()) return kInvalidLink;
    egress = it->second;
  }

  const NetLink& l = net_->links[static_cast<std::size_t>(egress)];
  const NodeId local_end =
      net_->nodes[static_cast<std::size_t>(l.a)].as_id == my_as ? l.a : l.b;
  if (from == local_end) return egress;  // cross the border
  return domains_[static_cast<std::size_t>(my_as)].next_link(from, local_end);
}

bool ForwardingPlane::reachable(NodeId from, NodeId dest) const {
  if (flat_) return true;  // connected flat network: OSPF reaches everything
  NodeId from_router = net_->is_host(from)
                           ? net_->nodes[static_cast<std::size_t>(from)]
                                 .attach_router
                           : from;
  const AsId a = net_->nodes[static_cast<std::size_t>(from_router)].as_id;
  const AsId b =
      net_->nodes[static_cast<std::size_t>(dest_router(dest))].as_id;
  if (a == b) return true;
  if (bgp_->reachable(a, b)) return true;
  // A default-routed stub can still emit traffic upward; it is deliverable
  // iff its primary provider has a route.
  if (opts_.stub_default_routing &&
      net_->as_info[static_cast<std::size_t>(a)].cls == AsClass::kStub &&
      default_egress_[static_cast<std::size_t>(a)] != kInvalidLink) {
    const NetLink& l = net_->links[static_cast<std::size_t>(
        default_egress_[static_cast<std::size_t>(a)])];
    const AsId provider =
        net_->nodes[static_cast<std::size_t>(l.a)].as_id == a
            ? net_->nodes[static_cast<std::size_t>(l.b)].as_id
            : net_->nodes[static_cast<std::size_t>(l.a)].as_id;
    return bgp_->reachable(provider, b);
  }
  return false;
}

void ForwardingPlane::save(ckpt::Writer& w) const {
  // Sorted so the checkpoint bytes are a deterministic function of the
  // down-set (unordered_set iteration order is not).
  std::vector<LinkId> down(down_links_.begin(), down_links_.end());
  std::sort(down.begin(), down.end());
  w.u64(down.size());
  for (const LinkId l : down) w.i32(l);
}

bool ForwardingPlane::load(ckpt::Reader& r) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > net_->links.size()) return false;
  std::vector<LinkId> down(static_cast<std::size_t>(n));
  for (LinkId& l : down) {
    l = r.i32();
    if (l < 0 || static_cast<std::size_t>(l) >= net_->links.size())
      return false;
  }
  if (!r.ok()) return false;
  const std::unordered_set<LinkId> want(down.begin(), down.end());
  if (want == down_links_) return true;  // tables already match
  // Replay the delta, then one SPF pass: the tables and egress choices are
  // pure functions of (topology, down-set), so this reproduces the
  // interrupted run's forwarding state exactly.
  const std::vector<LinkId> current(down_links_.begin(), down_links_.end());
  for (const LinkId l : current)
    if (want.find(l) == want.end()) set_link_state(l, true);
  for (const LinkId l : down)
    if (down_links_.find(l) == down_links_.end()) set_link_state(l, false);
  reconverge();
  return true;
}

}  // namespace massf
