#include "routing/bgp.hpp"

#include <algorithm>
#include <tuple>

#include "util/check.hpp"

namespace massf {
namespace {

AsRel invert(AsRel r) { return invert_rel(r); }

bool exportable(bool is_local, AsRel learned_from, AsRel to_rel) {
  return bgp_exportable(is_local, learned_from, to_rel);
}

}  // namespace

AsRel invert_rel(AsRel r) {
  switch (r) {
    case AsRel::kProvider:
      return AsRel::kCustomer;
    case AsRel::kCustomer:
      return AsRel::kProvider;
    case AsRel::kPeer:
      return AsRel::kPeer;
  }
  return AsRel::kPeer;
}

bool bgp_exportable(bool is_local, AsRel learned_from, AsRel to_rel) {
  if (to_rel == AsRel::kCustomer) return true;
  return is_local || learned_from == AsRel::kCustomer;
}

std::vector<std::vector<AsNeighbor>> build_as_neighbor_lists(
    std::int32_t num_as, std::span<const AsAdjacency> adjacency) {
  std::vector<std::vector<AsNeighbor>> lists(
      static_cast<std::size_t>(num_as));
  for (const AsAdjacency& adj : adjacency) {
    MASSF_CHECK(adj.as_a >= 0 && adj.as_a < num_as);
    MASSF_CHECK(adj.as_b >= 0 && adj.as_b < num_as);
    auto& na = lists[static_cast<std::size_t>(adj.as_a)];
    if (std::none_of(na.begin(), na.end(), [&](const AsNeighbor& n) {
          return n.as == adj.as_b;
        })) {
      na.push_back({adj.as_b, adj.rel_ab});
      lists[static_cast<std::size_t>(adj.as_b)].push_back(
          {adj.as_a, invert_rel(adj.rel_ab)});
    }
  }
  for (auto& ns : lists) {
    std::sort(ns.begin(), ns.end(), [](const AsNeighbor& a, const AsNeighbor& b) {
      return a.as < b.as;
    });
  }
  return lists;
}

std::int16_t local_pref_for(AsRel learned_from) {
  switch (learned_from) {
    case AsRel::kCustomer:
      return 120;
    case AsRel::kPeer:
      return 110;
    case AsRel::kProvider:
      return 100;
  }
  return 0;
}

BgpSolver::BgpSolver(std::int32_t num_as,
                     std::span<const AsAdjacency> adjacency)
    : num_as_(num_as),
      neighbors_(static_cast<std::size_t>(num_as)),
      routes_(static_cast<std::size_t>(num_as) *
              static_cast<std::size_t>(num_as)),
      paths_(static_cast<std::size_t>(num_as) *
             static_cast<std::size_t>(num_as)) {
  neighbors_ = build_as_neighbor_lists(num_as, adjacency);
}

AsRel BgpSolver::relationship(AsId from, AsId neighbor) const {
  for (const Neighbor& n : neighbors_[static_cast<std::size_t>(from)]) {
    if (n.as == neighbor) return n.rel;
  }
  MASSF_CHECK(false && "not adjacent");
  return AsRel::kPeer;
}

void BgpSolver::solve() {
  // Per-destination best-response iteration (Gauss-Seidel): every round,
  // each AS recomputes its best policy-compliant route from its neighbors'
  // *current* routes, exactly as if every neighbor had just re-announced.
  // Gao-Rexford relationship structure has no dispute wheel, so this
  // converges regardless of activation order; the round guard below turns a
  // policy bug into a loud failure instead of a hang.
  for (AsId dest = 0; dest < num_as_; ++dest) {
    bool changed = true;
    std::int32_t rounds = 0;
    while (changed) {
      changed = false;
      ++rounds;
      MASSF_CHECK(rounds <= 10 * num_as_ + 50);
      for (AsId u = 0; u < num_as_; ++u) {
        if (u == dest) continue;
        // Compute u's best response.
        BgpRoute best;
        const std::vector<AsId>* best_tail = nullptr;
        static const std::vector<AsId> kEmpty;
        for (const Neighbor& n : neighbors_[static_cast<std::size_t>(u)]) {
          const AsId v = n.as;
          const std::vector<AsId>* tail;
          std::int16_t cand_len;
          if (v == dest) {
            tail = &kEmpty;
            cand_len = 1;
          } else {
            const BgpRoute& theirs = route_ref(v, dest);
            if (theirs.next_hop_as < 0) continue;
            // v applies its export policy toward u; from v's point of view
            // u's relationship is the inverse of n.rel.
            if (!exportable(/*is_local=*/false, theirs.learned_from,
                            invert(n.rel))) {
              continue;
            }
            tail = &path_ref(v, dest);
            // AS-path loop rejection.
            if (std::find(tail->begin(), tail->end(), u) != tail->end()) {
              continue;
            }
            cand_len = static_cast<std::int16_t>(theirs.path_len + 1);
          }
          const std::int16_t pref = local_pref_for(n.rel);
          const auto cand_key = std::make_tuple(-pref, cand_len, v);
          const auto best_key = std::make_tuple(
              static_cast<std::int16_t>(-best.local_pref), best.path_len,
              best.next_hop_as);
          if (best.next_hop_as >= 0 && cand_key >= best_key) continue;
          best.next_hop_as = v;
          best.path_len = cand_len;
          best.local_pref = pref;
          best.learned_from = n.rel;
          best_tail = tail;
        }

        BgpRoute& mine = route_ref(u, dest);
        std::vector<AsId>& my_path = path_ref(u, dest);
        std::vector<AsId> new_path;
        if (best.next_hop_as >= 0) {
          new_path.reserve(best_tail->size() + 1);
          new_path.push_back(best.next_hop_as);
          new_path.insert(new_path.end(), best_tail->begin(),
                          best_tail->end());
          // Tails stored for v already end at dest; only the v==dest case
          // (empty tail) needs the terminal appended.
          if (new_path.back() != dest) new_path.push_back(dest);
        }
        if (mine.next_hop_as != best.next_hop_as ||
            mine.path_len != best.path_len ||
            mine.local_pref != best.local_pref || my_path != new_path) {
          mine = best;
          my_path = std::move(new_path);
          changed = true;
        }
      }
    }
    iterations_ = std::max(iterations_, rounds);
  }
}

const BgpRoute& BgpSolver::route(AsId from, AsId dest) const {
  MASSF_CHECK(from >= 0 && from < num_as_ && dest >= 0 && dest < num_as_);
  return route_ref(from, dest);
}

bool BgpSolver::reachable(AsId from, AsId dest) const {
  if (from == dest) return true;
  return route(from, dest).next_hop_as >= 0;
}

std::vector<AsId> BgpSolver::as_path(AsId from, AsId dest) const {
  std::vector<AsId> path;
  if (from == dest) {
    path.push_back(from);
    return path;
  }
  if (!reachable(from, dest)) return path;
  path.push_back(from);
  const std::vector<AsId>& tail = path_ref(from, dest);
  path.insert(path.end(), tail.begin(), tail.end());
  MASSF_CHECK(path.back() == dest);
  return path;
}

bool BgpSolver::path_is_valley_free(AsId from, AsId dest) const {
  const std::vector<AsId> path = as_path(from, dest);
  if (path.size() < 2) return true;
  // Phases: 0 = climbing (via providers), 1 = just crossed a peer link,
  // 2 = descending (via customers).
  int phase = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const AsRel step = relationship(path[i], path[i + 1]);
    switch (step) {
      case AsRel::kProvider:  // up
        if (phase != 0) return false;
        break;
      case AsRel::kPeer:
        if (phase >= 1) return false;
        phase = 1;
        break;
      case AsRel::kCustomer:  // down
        phase = 2;
        break;
    }
  }
  return true;
}

}  // namespace massf
