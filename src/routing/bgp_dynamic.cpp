#include "routing/bgp_dynamic.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "ckpt/ckpt.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace massf {
namespace {

// Flow-tag payload (28 bits): sender AS (12 bits) | batch index (16 bits).
constexpr std::uint32_t kAsBits = 12;
constexpr std::uint32_t kIdxBits = 16;

std::uint32_t batch_tag_payload(AsId sender, std::size_t index) {
  MASSF_CHECK(sender < (1 << kAsBits));
  MASSF_CHECK(index < (1u << kIdxBits));
  return (static_cast<std::uint32_t>(sender) << kIdxBits) |
         static_cast<std::uint32_t>(index);
}

// Timer payload: code (high 8 of the 56 payload bits) | AS id.
constexpr std::uint64_t kTimerOriginate = 1;
constexpr std::uint64_t kTimerBeacon = 2;
constexpr std::uint64_t kTimerMrai = 3;         // c = neighbor index
constexpr std::uint64_t kTimerSessionDown = 4;  // c = peer AS
constexpr std::uint64_t kTimerSessionUp = 5;    // c = peer AS

std::uint64_t timer_code(std::uint64_t code, AsId as) {
  return (code << 32) | static_cast<std::uint32_t>(as);
}

}  // namespace

std::vector<NodeId> add_bgp_speaker_hosts(Network& net,
                                          double access_bandwidth_bps) {
  std::vector<NodeId> speakers;
  speakers.reserve(net.as_info.size());
  MASSF_CHECK(!net.as_info.empty());
  for (const AsInfo& info : net.as_info) {
    const NodeId router = info.first_router;
    NetNode h;
    h.kind = NodeKind::kHost;
    h.as_id = net.nodes[static_cast<std::size_t>(router)].as_id;
    h.x = net.nodes[static_cast<std::size_t>(router)].x;
    h.y = net.nodes[static_cast<std::size_t>(router)].y;
    h.attach_router = router;
    const auto hid = static_cast<NodeId>(net.nodes.size());
    net.nodes.push_back(h);
    NetLink l;
    l.a = router;
    l.b = hid;
    l.latency = microseconds(10);
    l.bandwidth_bps = access_bandwidth_bps;
    net.links.push_back(l);
    speakers.push_back(hid);
  }
  net.build_adjacency();
  return speakers;
}

BgpSpeakers::BgpSpeakers(const Network& net, std::vector<NodeId> speaker_hosts,
                         const BgpDynamicOptions& options)
    : net_(&net),
      speaker_hosts_(std::move(speaker_hosts)),
      opts_(options),
      num_as_(net.num_as()) {
  MASSF_CHECK(static_cast<std::int32_t>(speaker_hosts_.size()) == num_as_);
  const auto lists = build_as_neighbor_lists(num_as_, net.as_adjacency);
  speakers_.resize(static_cast<std::size_t>(num_as_));
  channels_.resize(static_cast<std::size_t>(num_as_));
  host_as_.resize(static_cast<std::size_t>(num_as_));
  for (AsId a = 0; a < num_as_; ++a) {
    Speaker& s = speakers_[static_cast<std::size_t>(a)];
    s.neighbors = lists[static_cast<std::size_t>(a)];
    const std::size_t nn = s.neighbors.size();
    const auto nd = static_cast<std::size_t>(num_as_);
    s.rib_in.assign(nd * nn, Candidate{});
    s.best.assign(nd, -1);
    s.best_path.assign(nd, {});
    s.rib_out.assign(nd * nn, 0);
    s.last_change_for.assign(nd, -1);
    s.pending.resize(nn);
    s.next_send_ok.assign(nn, 0);
    s.mrai_timer_armed.assign(nn, 0);
    s.session_up.assign(nn, 1);
    s.session_epoch.assign(nn, 0);
    channels_[static_cast<std::size_t>(a)] = std::make_unique<Channel>();
    host_as_[static_cast<std::size_t>(a)] = a;
  }
}

std::int32_t BgpSpeakers::neighbor_index(AsId as, AsId neighbor) const {
  const auto& ns = speakers_[static_cast<std::size_t>(as)].neighbors;
  const auto it = std::lower_bound(
      ns.begin(), ns.end(), neighbor,
      [](const AsNeighbor& n, AsId v) { return n.as < v; });
  MASSF_CHECK(it != ns.end() && it->as == neighbor);
  return static_cast<std::int32_t>(it - ns.begin());
}

void BgpSpeakers::start(Engine& engine, NetSim& sim) {
  // Stagger originations deterministically so convergence traffic does not
  // arrive as one synchronized burst.
  for (AsId a = 0; a < num_as_; ++a) {
    sim.schedule_app_timer(
        engine, speaker_hosts_[static_cast<std::size_t>(a)],
        opts_.originate_at + microseconds(10) * a,
        make_timer(TrafficKind::kBgp, timer_code(kTimerOriginate, a)));
  }
}

void BgpSpeakers::on_timer(Engine& engine, NetSim& sim, NodeId host,
                           std::uint64_t payload, std::uint64_t c) {
  const auto code = payload >> 32;
  const auto as = static_cast<AsId>(payload & 0xffffffffu);
  MASSF_CHECK(speaker_hosts_[static_cast<std::size_t>(as)] == host);
  if (code == kTimerOriginate) {
    originate(engine, sim, as);
  } else if (code == kTimerBeacon) {
    if (c == 0) {
      withdraw_own(engine, sim, as);
    } else {
      originate(engine, sim, as);
    }
  } else if (code == kTimerMrai) {
    Speaker& s = speakers_[static_cast<std::size_t>(as)];
    const auto ni = static_cast<std::size_t>(c);
    MASSF_CHECK(ni < s.neighbors.size());
    s.mrai_timer_armed[ni] = 0;
    flush(engine, sim, as);
  } else if (code == kTimerSessionDown) {
    session_down(engine, sim, as, static_cast<AsId>(c));
  } else if (code == kTimerSessionUp) {
    session_restore(engine, sim, as, static_cast<AsId>(c));
  } else {
    MASSF_CHECK(false && "unknown BGP timer");
  }
}

void BgpSpeakers::originate(Engine& engine, NetSim& sim, AsId as) {
  Speaker& s = speakers_[static_cast<std::size_t>(as)];
  if (s.originated) return;
  s.originated = true;
  s.last_change = std::max(s.last_change, engine.now());
  s.last_change_for[static_cast<std::size_t>(as)] = engine.now();
  queue_export(as, as);
  flush(engine, sim, as);
}

void BgpSpeakers::withdraw_own(Engine& engine, NetSim& sim, AsId as) {
  Speaker& s = speakers_[static_cast<std::size_t>(as)];
  if (!s.originated) return;
  s.originated = false;
  s.last_change = std::max(s.last_change, engine.now());
  s.last_change_for[static_cast<std::size_t>(as)] = engine.now();
  queue_export(as, as);
  flush(engine, sim, as);
}

void BgpSpeakers::on_flow_complete(Engine& engine, NetSim& sim, FlowId,
                                   NodeId, NodeId dst_host,
                                   std::uint32_t tag) {
  const std::uint32_t payload = tag_payload(tag);
  const auto sender = static_cast<AsId>(payload >> kIdxBits);
  const std::size_t index = payload & ((1u << kIdxBits) - 1);

  // Identify the receiving AS from the speaker host.
  const auto it = std::find(speaker_hosts_.begin(), speaker_hosts_.end(),
                            dst_host);
  MASSF_CHECK(it != speaker_hosts_.end());
  const auto me = static_cast<AsId>(it - speaker_hosts_.begin());

  Batch batch;
  {
    Channel& ch = *channels_[static_cast<std::size_t>(sender)];
    std::lock_guard<std::mutex> lock(ch.mu);
    MASSF_CHECK(index < ch.batches.size());
    batch = ch.batches[index];  // copy under the lock
  }

  // Session-epoch filter: a batch sent before a session teardown may still
  // be in flight when the session comes back — it belongs to the previous
  // incarnation and must not pollute the fresh adj-RIB-in. Both endpoints
  // bump their epoch at the same virtual teardown instant, so the sender's
  // stamp and the receiver's expectation agree exactly when no reset
  // happened in between. Batches arriving while the session is down are
  // likewise discarded.
  Speaker& s = speakers_[static_cast<std::size_t>(me)];
  const auto ni = static_cast<std::size_t>(neighbor_index(me, sender));
  if (!s.session_up[ni] || batch.epoch != s.session_epoch[ni]) {
    ++s.stale_batches;
    return;
  }
  process_batch(engine, sim, me, sender, batch.updates);
}

void BgpSpeakers::on_flow_failed(Engine&, NetSim&, FlowId, NodeId src_host,
                                 NodeId, std::uint32_t) {
  // The batch never arrived; TCP gave up (path dead longer than its
  // patience). Runs on the sender's LP, so the sender's counter is safe.
  const auto it = std::find(speaker_hosts_.begin(), speaker_hosts_.end(),
                            src_host);
  MASSF_CHECK(it != speaker_hosts_.end());
  const auto me = static_cast<AsId>(it - speaker_hosts_.begin());
  ++speakers_[static_cast<std::size_t>(me)].update_flows_failed;
}

void BgpSpeakers::process_batch(Engine& engine, NetSim& sim, AsId me,
                                AsId from,
                                const std::vector<BgpDynUpdate>& batch) {
  Speaker& s = speakers_[static_cast<std::size_t>(me)];
  const std::int32_t ni = neighbor_index(me, from);
  const std::size_t nn = s.neighbors.size();

  std::set<AsId> touched;
  for (const BgpDynUpdate& u : batch) {
    MASSF_CHECK(u.dest >= 0 && u.dest < num_as_);
    Candidate& cand =
        s.rib_in[static_cast<std::size_t>(u.dest) * nn +
                 static_cast<std::size_t>(ni)];
    if (u.withdraw) {
      ++s.withdraw_rx;
      cand.valid = false;
      cand.path.clear();
    } else if (std::find(u.path.begin(), u.path.end(), me) != u.path.end()) {
      // AS-path loop: BGP silently discards — and any previously held
      // candidate from this neighbor is replaced, i.e. implicitly
      // withdrawn by the new (unusable) announcement.
      ++s.withdraw_rx;
      cand.valid = false;
      cand.path.clear();
    } else {
      ++s.announce_rx;
      cand.valid = true;
      cand.path = u.path;
    }
    touched.insert(u.dest);
  }
  for (AsId dest : touched) reselect(engine, sim, me, dest);
  flush(engine, sim, me);
}

void BgpSpeakers::reselect(Engine& engine, NetSim& sim, AsId me, AsId dest) {
  (void)sim;
  if (dest == me) return;  // own prefix handled by originate/withdraw_own
  Speaker& s = speakers_[static_cast<std::size_t>(me)];
  const std::size_t nn = s.neighbors.size();

  std::int32_t best = -1;
  std::tuple<std::int16_t, std::size_t, AsId> best_key{};
  for (std::size_t i = 0; i < nn; ++i) {
    const Candidate& cand =
        s.rib_in[static_cast<std::size_t>(dest) * nn + i];
    if (!cand.valid) continue;
    const auto key = std::make_tuple(
        static_cast<std::int16_t>(-local_pref_for(s.neighbors[i].rel)),
        cand.path.size(), s.neighbors[i].as);
    if (best < 0 || key < best_key) {
      best = static_cast<std::int32_t>(i);
      best_key = key;
    }
  }

  std::vector<AsId> new_path;
  if (best >= 0) {
    const Candidate& cand =
        s.rib_in[static_cast<std::size_t>(dest) * nn +
                 static_cast<std::size_t>(best)];
    new_path.reserve(cand.path.size() + 1);
    new_path.push_back(me);
    new_path.insert(new_path.end(), cand.path.begin(), cand.path.end());
  }

  auto& cur = s.best[static_cast<std::size_t>(dest)];
  auto& cur_path = s.best_path[static_cast<std::size_t>(dest)];
  if (cur == best && cur_path == new_path) return;
  cur = best;
  cur_path = std::move(new_path);
  ++s.route_changes;
  s.last_change = std::max(s.last_change, engine.now());
  s.last_change_for[static_cast<std::size_t>(dest)] = engine.now();
  queue_export(me, dest);
}

void BgpSpeakers::queue_export(AsId me, AsId dest) {
  Speaker& s = speakers_[static_cast<std::size_t>(me)];
  const std::size_t nn = s.neighbors.size();

  const bool is_local = dest == me;
  const bool have_route =
      is_local ? s.originated : s.best[static_cast<std::size_t>(dest)] >= 0;
  AsRel learned_from = AsRel::kCustomer;  // unused when is_local
  if (!is_local && have_route) {
    learned_from =
        s.neighbors[static_cast<std::size_t>(
                        s.best[static_cast<std::size_t>(dest)])]
            .rel;
  }

  for (std::size_t i = 0; i < nn; ++i) {
    char& out = s.rib_out[static_cast<std::size_t>(dest) * nn + i];
    const bool export_ok =
        have_route &&
        bgp_exportable(is_local, learned_from, s.neighbors[i].rel);
    // Implicit replacement: a newer update for the same prefix supersedes
    // any still-pending one (matters under MRAI batching).
    auto& q = s.pending[i];
    q.erase(std::remove_if(q.begin(), q.end(),
                           [dest](const BgpDynUpdate& u) {
                             return u.dest == dest;
                           }),
            q.end());
    if (export_ok) {
      BgpDynUpdate u;
      u.dest = dest;
      u.withdraw = false;
      if (is_local) {
        u.path = {me};
      } else {
        u.path = s.best_path[static_cast<std::size_t>(dest)];
      }
      s.pending[i].push_back(std::move(u));
      out = 1;
    } else if (out != 0) {
      BgpDynUpdate u;
      u.dest = dest;
      u.withdraw = true;
      s.pending[i].push_back(std::move(u));
      out = 0;
    }
  }
}

void BgpSpeakers::flush(Engine& engine, NetSim& sim, AsId me) {
  Speaker& s = speakers_[static_cast<std::size_t>(me)];
  for (std::size_t i = 0; i < s.neighbors.size(); ++i) {
    if (s.pending[i].empty()) continue;
    // No transport while the session is down; pending updates keep
    // batching and are superseded by the full refresh at re-establishment.
    if (!s.session_up[i]) continue;
    // MRAI: within the hold-down, defer (and batch further updates) until
    // the per-session timer fires.
    if (opts_.mrai > 0 && engine.now() < s.next_send_ok[i]) {
      if (!s.mrai_timer_armed[i]) {
        s.mrai_timer_armed[i] = 1;
        sim.schedule_app_timer(
            engine, speaker_hosts_[static_cast<std::size_t>(me)],
            s.next_send_ok[i],
            make_timer(TrafficKind::kBgp, timer_code(kTimerMrai, me)),
            /*c=*/static_cast<std::uint64_t>(i));
      }
      continue;
    }
    s.next_send_ok[i] = engine.now() + opts_.mrai;
    Batch batch;
    batch.epoch = s.session_epoch[i];
    batch.updates.swap(s.pending[i]);
    const std::size_t count = batch.updates.size();
    s.updates_sent += count;
    ++s.batches_sent;

    std::size_t index;
    {
      Channel& ch = *channels_[static_cast<std::size_t>(me)];
      std::lock_guard<std::mutex> lock(ch.mu);
      index = ch.batches.size();
      ch.batches.push_back(std::move(batch));
    }
    const auto bytes =
        static_cast<std::uint32_t>(40 + opts_.bytes_per_update * count);
    sim.start_flow(engine, engine.now(),
                   speaker_hosts_[static_cast<std::size_t>(me)],
                   speaker_hosts_[static_cast<std::size_t>(
                       s.neighbors[i].as)],
                   bytes, make_tag(TrafficKind::kBgp,
                                   batch_tag_payload(me, index)));
  }
}

void BgpSpeakers::session_down(Engine& engine, NetSim& sim, AsId me,
                               AsId peer) {
  Speaker& s = speakers_[static_cast<std::size_t>(me)];
  const auto ni = static_cast<std::size_t>(neighbor_index(me, peer));
  const std::size_t nn = s.neighbors.size();
  ++s.session_resets;
  s.session_up[ni] = 0;
  ++s.session_epoch[ni];
  // Everything we had queued or announced toward the peer is void — its
  // RIB from us dies with the session (it performs the same teardown).
  s.pending[ni].clear();
  // Flush the adj-RIB-in learned from the peer and reselect the prefixes
  // it carried; resulting withdrawals propagate to the other neighbors.
  std::vector<AsId> touched;
  for (AsId dest = 0; dest < num_as_; ++dest) {
    s.rib_out[static_cast<std::size_t>(dest) * nn + ni] = 0;
    Candidate& cand = s.rib_in[static_cast<std::size_t>(dest) * nn + ni];
    if (!cand.valid) continue;
    cand.valid = false;
    cand.path.clear();
    touched.push_back(dest);
  }
  for (AsId dest : touched) reselect(engine, sim, me, dest);
  flush(engine, sim, me);
}

void BgpSpeakers::session_restore(Engine& engine, NetSim& sim, AsId me,
                                  AsId peer) {
  Speaker& s = speakers_[static_cast<std::size_t>(me)];
  const auto ni = static_cast<std::size_t>(neighbor_index(me, peer));
  const std::size_t nn = s.neighbors.size();
  s.session_up[ni] = 1;
  // Full-table re-advertisement toward the peer, as a real speaker does
  // after session establishment: re-derive the export decision for every
  // prefix from the current best routes, superseding whatever batched up
  // while the session was down.
  s.pending[ni].clear();
  for (AsId dest = 0; dest < num_as_; ++dest) {
    const bool is_local = dest == me;
    const bool have_route =
        is_local ? s.originated : s.best[static_cast<std::size_t>(dest)] >= 0;
    AsRel learned_from = AsRel::kCustomer;
    if (!is_local && have_route) {
      learned_from =
          s.neighbors[static_cast<std::size_t>(
                          s.best[static_cast<std::size_t>(dest)])]
              .rel;
    }
    char& out = s.rib_out[static_cast<std::size_t>(dest) * nn + ni];
    if (have_route &&
        bgp_exportable(is_local, learned_from, s.neighbors[ni].rel)) {
      BgpDynUpdate u;
      u.dest = dest;
      u.withdraw = false;
      if (is_local) {
        u.path = {me};
      } else {
        u.path = s.best_path[static_cast<std::size_t>(dest)];
      }
      s.pending[ni].push_back(std::move(u));
      out = 1;
    } else {
      out = 0;
    }
  }
  flush(engine, sim, me);
}

void BgpSpeakers::schedule_session_reset(Engine& engine, NetSim& sim,
                                         AsId as, AsId peer, SimTime when,
                                         SimTime reestablish_after) {
  MASSF_CHECK(as >= 0 && as < num_as_ && peer >= 0 && peer < num_as_);
  MASSF_CHECK(reestablish_after > 0);
  neighbor_index(as, peer);  // CHECKs AS adjacency in both directions
  neighbor_index(peer, as);
  const AsId ends[2][2] = {{as, peer}, {peer, as}};
  for (const auto& e : ends) {
    sim.schedule_app_timer(
        engine, speaker_hosts_[static_cast<std::size_t>(e[0])], when,
        make_timer(TrafficKind::kBgp, timer_code(kTimerSessionDown, e[0])),
        /*c=*/static_cast<std::uint64_t>(e[1]));
    sim.schedule_app_timer(
        engine, speaker_hosts_[static_cast<std::size_t>(e[0])],
        when + reestablish_after,
        make_timer(TrafficKind::kBgp, timer_code(kTimerSessionUp, e[0])),
        /*c=*/static_cast<std::uint64_t>(e[1]));
  }
}

BgpRoute BgpSpeakers::best_route(AsId as, AsId dest) const {
  MASSF_CHECK(as >= 0 && as < num_as_ && dest >= 0 && dest < num_as_);
  BgpRoute r;
  if (as == dest) return r;
  const Speaker& s = speakers_[static_cast<std::size_t>(as)];
  const std::int32_t best = s.best[static_cast<std::size_t>(dest)];
  if (best < 0) return r;
  const AsNeighbor& n = s.neighbors[static_cast<std::size_t>(best)];
  r.next_hop_as = n.as;
  r.learned_from = n.rel;
  r.local_pref = local_pref_for(n.rel);
  r.path_len = static_cast<std::int16_t>(
      s.best_path[static_cast<std::size_t>(dest)].size() - 1);
  return r;
}

std::vector<AsId> BgpSpeakers::as_path(AsId as, AsId dest) const {
  if (as == dest) return {as};
  const Speaker& s = speakers_[static_cast<std::size_t>(as)];
  return s.best_path[static_cast<std::size_t>(dest)];
}

std::uint64_t BgpSpeakers::updates_sent() const {
  std::uint64_t total = 0;
  for (const Speaker& s : speakers_) total += s.updates_sent;
  return total;
}

std::uint64_t BgpSpeakers::batches_sent() const {
  std::uint64_t total = 0;
  for (const Speaker& s : speakers_) total += s.batches_sent;
  return total;
}

std::uint64_t BgpSpeakers::announcements_received() const {
  std::uint64_t total = 0;
  for (const Speaker& s : speakers_) total += s.announce_rx;
  return total;
}

std::uint64_t BgpSpeakers::withdrawals_received() const {
  std::uint64_t total = 0;
  for (const Speaker& s : speakers_) total += s.withdraw_rx;
  return total;
}

std::uint64_t BgpSpeakers::route_changes() const {
  std::uint64_t total = 0;
  for (const Speaker& s : speakers_) total += s.route_changes;
  return total;
}

std::uint64_t BgpSpeakers::session_resets() const {
  std::uint64_t total = 0;
  for (const Speaker& s : speakers_) total += s.session_resets;
  return total;
}

std::uint64_t BgpSpeakers::stale_batches_dropped() const {
  std::uint64_t total = 0;
  for (const Speaker& s : speakers_) total += s.stale_batches;
  return total;
}

std::uint64_t BgpSpeakers::update_flows_failed() const {
  std::uint64_t total = 0;
  for (const Speaker& s : speakers_) total += s.update_flows_failed;
  return total;
}

void BgpSpeakers::publish_metrics(obs::Registry& registry) const {
  registry.counter("bgp.updates_sent").inc(updates_sent());
  registry.counter("bgp.batches_sent").inc(batches_sent());
  registry.counter("bgp.announcements_rx").inc(announcements_received());
  registry.counter("bgp.withdrawals_rx").inc(withdrawals_received());
  registry.counter("bgp.route_changes").inc(route_changes());
  registry.counter("bgp.session_resets").inc(session_resets());
  registry.counter("bgp.stale_batches").inc(stale_batches_dropped());
  registry.counter("bgp.update_flows_failed").inc(update_flows_failed());
  registry.gauge("bgp.last_change_vtime_s").set(to_seconds(last_change()));
}

SimTime BgpSpeakers::last_change() const {
  SimTime latest = -1;
  for (const Speaker& s : speakers_) latest = std::max(latest, s.last_change);
  return latest;
}

SimTime BgpSpeakers::last_change_for(AsId as, AsId dest) const {
  return speakers_[static_cast<std::size_t>(as)]
      .last_change_for[static_cast<std::size_t>(dest)];
}

namespace {

void save_as_path(ckpt::Writer& w, const std::vector<AsId>& path) {
  w.u32(static_cast<std::uint32_t>(path.size()));
  for (const AsId a : path) w.i32(a);
}

bool load_as_path(ckpt::Reader& r, std::vector<AsId>& path) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 24)) return false;
  path.resize(n);
  for (AsId& a : path) a = r.i32();
  return r.ok();
}

void save_update(ckpt::Writer& w, const BgpDynUpdate& u) {
  w.i32(u.dest);
  w.u8(u.withdraw ? 1 : 0);
  save_as_path(w, u.path);
}

bool load_update(ckpt::Reader& r, BgpDynUpdate& u) {
  u.dest = r.i32();
  u.withdraw = r.u8() != 0;
  return load_as_path(r, u.path);
}

}  // namespace

void BgpSpeakers::save(ckpt::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(num_as_));
  for (const Speaker& s : speakers_) {
    w.u32(static_cast<std::uint32_t>(s.neighbors.size()));
    w.u8(s.originated ? 1 : 0);
    w.u64(s.rib_in.size());
    for (const Candidate& c : s.rib_in) {
      w.u8(c.valid ? 1 : 0);
      save_as_path(w, c.path);
    }
    ckpt::write_u64_vec(w, s.best);
    w.u64(s.best_path.size());
    for (const auto& p : s.best_path) save_as_path(w, p);
    ckpt::write_char_vec(w, s.rib_out);
    ckpt::write_u64_vec(w, s.last_change_for);
    w.u64(s.pending.size());
    for (const auto& pn : s.pending) {
      w.u64(pn.size());
      for (const BgpDynUpdate& u : pn) save_update(w, u);
    }
    ckpt::write_u64_vec(w, s.next_send_ok);
    ckpt::write_char_vec(w, s.mrai_timer_armed);
    ckpt::write_char_vec(w, s.session_up);
    ckpt::write_u64_vec(w, s.session_epoch);
    w.u64(s.updates_sent);
    w.u64(s.batches_sent);
    w.u64(s.announce_rx);
    w.u64(s.withdraw_rx);
    w.u64(s.route_changes);
    w.u64(s.session_resets);
    w.u64(s.stale_batches);
    w.u64(s.update_flows_failed);
    w.i64(s.last_change);
  }
  for (const auto& ch : channels_) {
    w.u64(ch->batches.size());
    for (const Batch& b : ch->batches) {
      w.u32(b.epoch);
      w.u64(b.updates.size());
      for (const BgpDynUpdate& u : b.updates) save_update(w, u);
    }
    w.u64(ch->consumed);
  }
}

bool BgpSpeakers::load(ckpt::Reader& r) {
  if (r.u32() != static_cast<std::uint32_t>(num_as_)) return false;
  for (Speaker& s : speakers_) {
    if (r.u32() != s.neighbors.size()) return false;
    s.originated = r.u8() != 0;
    if (r.u64() != s.rib_in.size()) return false;
    for (Candidate& c : s.rib_in) {
      c.valid = r.u8() != 0;
      if (!load_as_path(r, c.path)) return false;
    }
    if (!ckpt::read_u64_vec(r, s.best) ||
        s.best.size() != static_cast<std::size_t>(num_as_))
      return false;
    if (r.u64() != s.best_path.size()) return false;
    for (auto& p : s.best_path)
      if (!load_as_path(r, p)) return false;
    const std::size_t nn = s.neighbors.size();
    if (!ckpt::read_char_vec(r, s.rib_out) || s.rib_out.size() != s.rib_in.size())
      return false;
    if (!ckpt::read_u64_vec(r, s.last_change_for) ||
        s.last_change_for.size() != static_cast<std::size_t>(num_as_))
      return false;
    if (r.u64() != s.pending.size()) return false;
    for (auto& pn : s.pending) {
      const std::uint64_t n = r.u64();
      if (!r.ok() || n > (1ULL << 32)) return false;
      pn.resize(static_cast<std::size_t>(n));
      for (BgpDynUpdate& u : pn)
        if (!load_update(r, u)) return false;
    }
    if (!ckpt::read_u64_vec(r, s.next_send_ok) || s.next_send_ok.size() != nn)
      return false;
    if (!ckpt::read_char_vec(r, s.mrai_timer_armed) ||
        s.mrai_timer_armed.size() != nn)
      return false;
    if (!ckpt::read_char_vec(r, s.session_up) || s.session_up.size() != nn)
      return false;
    if (!ckpt::read_u64_vec(r, s.session_epoch) ||
        s.session_epoch.size() != nn)
      return false;
    s.updates_sent = r.u64();
    s.batches_sent = r.u64();
    s.announce_rx = r.u64();
    s.withdraw_rx = r.u64();
    s.route_changes = r.u64();
    s.session_resets = r.u64();
    s.stale_batches = r.u64();
    s.update_flows_failed = r.u64();
    s.last_change = r.i64();
  }
  for (auto& ch : channels_) {
    const std::uint64_t n = r.u64();
    if (!r.ok() || n > (1ULL << 32)) return false;
    ch->batches.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      Batch b;
      b.epoch = r.u32();
      const std::uint64_t nu = r.u64();
      if (!r.ok() || nu > (1ULL << 32)) return false;
      b.updates.resize(static_cast<std::size_t>(nu));
      for (BgpDynUpdate& u : b.updates)
        if (!load_update(r, u)) return false;
      ch->batches.push_back(std::move(b));
    }
    ch->consumed = r.u64();
  }
  return r.ok();
}

void BgpSpeakers::schedule_beacon(Engine& engine, NetSim& sim, AsId beacon_as,
                                  SimTime start, SimTime period,
                                  std::int32_t toggles) {
  MASSF_CHECK(beacon_as >= 0 && beacon_as < num_as_);
  for (std::int32_t i = 0; i < toggles; ++i) {
    // Even toggles withdraw, odd toggles re-announce (the beacon starts
    // after normal origination, so the prefix is up when it begins).
    sim.schedule_app_timer(
        engine, speaker_hosts_[static_cast<std::size_t>(beacon_as)],
        start + period * i,
        make_timer(TrafficKind::kBgp, timer_code(kTimerBeacon, beacon_as)),
        /*c=*/static_cast<std::uint64_t>(i % 2));
  }
}

}  // namespace massf
