// The unified router-level forwarding plane the packet simulation queries.
//
// Flat (single-AS) networks: one OSPF domain over all routers.
// Multi-AS networks: per-AS OSPF domains for intra-AS hops, a BGP policy
// solver for the AS-level next hop, deterministic egress (border link)
// selection per (AS, next-AS) pair, and — per the paper's Section 5.1.2
// step 6 — default routing in Stub ASes: stub routers forward any non-local
// destination toward the border link of their primary provider instead of
// carrying full BGP tables.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "routing/bgp.hpp"
#include "routing/ospf.hpp"
#include "topology/network.hpp"

namespace massf::ckpt {
class Reader;
class Writer;
}  // namespace massf::ckpt

namespace massf {

class ForwardingPlane {
 public:
  struct Options {
    /// Stub ASes use a default route toward their primary provider instead
    /// of per-destination BGP lookups (paper Section 5.1.2 step 6c/6d).
    bool stub_default_routing = true;
  };

  /// Flat network: OSPF shortest path everywhere. `dest_routers` are the
  /// routers that will terminate traffic (attachment points of active
  /// hosts); only those get routing tables.
  static ForwardingPlane build_flat(const Network& net,
                                    std::span<const NodeId> dest_routers);

  /// Multi-AS network with BGP inter-domain routing.
  static ForwardingPlane build_multi_as(const Network& net,
                                        std::span<const NodeId> dest_routers,
                                        const Options& opts);
  static ForwardingPlane build_multi_as(const Network& net,
                                        std::span<const NodeId> dest_routers) {
    return build_multi_as(net, dest_routers, Options{});
  }

  /// The link a packet at router `from` takes toward `dest` (host or
  /// router). Returns the host access link when dest is a host attached to
  /// `from`; kInvalidLink when the packet has arrived (from == dest) or no
  /// policy-compliant route exists (caller drops the packet).
  LinkId next_link(NodeId from, NodeId dest) const;

  /// Whether policy routing admits a path (connectivity != reachability in
  /// multi-AS networks).
  bool reachable(NodeId from, NodeId dest) const;

  /// Router terminating traffic for `dest` (the host's attachment router,
  /// or the router itself).
  NodeId dest_router(NodeId dest) const;

  const BgpSolver* bgp() const { return bgp_ ? &*bgp_ : nullptr; }

  bool is_multi_as() const { return bgp_.has_value(); }

  /// Control-plane view of a link failure/restoration. Takes effect at the
  /// next reconverge(). Intra-domain links are withdrawn from their OSPF
  /// domain; border links trigger egress re-selection among the remaining
  /// up links of the AS pair. Host access links are ignored (no routing
  /// choice exists). NOT thread-safe against concurrent next_link lookups
  /// — mutate only at a window barrier.
  void set_link_state(LinkId link, bool up);

  /// Recomputes every routing table under the current link states (the
  /// SPF run after the flooding delay). Mutate-at-barrier only.
  void reconverge();

  /// Checkpoint hooks (ckpt/ckpt.hpp): only the failed-link set is
  /// serialized. Restore replays it through set_link_state + reconverge,
  /// which rebuilds every OSPF table and egress selection — the tables are
  /// pure functions of (topology, down-set), so replay reproduces them
  /// exactly without serializing them wholesale.
  void save(ckpt::Writer& writer) const;
  bool load(ckpt::Reader& reader);

 private:
  explicit ForwardingPlane(const Network& net);

  void register_destination(NodeId dest_router);

  const Network* net_;
  std::vector<LinkId> host_link_;  // per host index (id - num_routers)

  // Flat mode.
  std::optional<OspfDomain> flat_;

  void select_egress();

  // Multi-AS mode.
  std::vector<OspfDomain> domains_;  // one per AS
  std::optional<BgpSolver> bgp_;
  std::vector<std::unordered_map<AsId, LinkId>> egress_;  // per AS
  std::vector<LinkId> default_egress_;                    // per AS, stubs only
  Options opts_;
  std::unordered_set<LinkId> down_links_;
};

}  // namespace massf
