// Dynamic BGP4: the protocol itself running inside the packet simulation.
//
// The static solver (bgp.hpp) computes the fixed point the protocol
// converges to; this layer actually runs the protocol: one BGP speaker per
// AS originates its prefix and exchanges UPDATE messages (announcements
// and withdrawals) with its neighbors as TCP flows through the simulated
// network, applying the same import/export policies. This is what the
// paper means by "detailed BGP4 routing protocol" support, and it enables
// the validation studies proposed in the paper's future work — e.g. the
// BGP Beacon experiment (periodically announce/withdraw a prefix and watch
// the announcement propagate), provided here via schedule_beacon().
//
// Tests verify that after convergence the dynamic tables equal the static
// solver's — protocol dynamics and fixed-point computation agree.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "routing/bgp.hpp"
#include "traffic/manager.hpp"

namespace massf {

/// Appends one "route server" host per AS (attached to the AS's first
/// router) to carry BGP sessions, returns the speaker host ids indexed by
/// AS, and rebuilds adjacency. Call before constructing the ForwardingPlane.
std::vector<NodeId> add_bgp_speaker_hosts(Network& net,
                                          double access_bandwidth_bps = 1e9);

struct BgpDynamicOptions {
  /// Wire bytes charged per update in a batch (BGP UPDATE messages are
  /// small; batches model TCP segment coalescing).
  std::uint32_t bytes_per_update = 64;
  /// Virtual time at which speakers originate their own prefixes.
  SimTime originate_at = milliseconds(5);
  /// Min Route Advertisement Interval per session (RFC 4271 suggests 30 s
  /// for eBGP; simulators typically use much less). 0 disables: every
  /// trigger flushes immediately. With MRAI on, updates within the
  /// interval batch into one deferred announcement — fewer messages,
  /// slower convergence.
  SimTime mrai = 0;
};

struct BgpDynUpdate {
  AsId dest = -1;            ///< the prefix (one per AS)
  bool withdraw = false;
  std::vector<AsId> path;    ///< announced path [sender, ..., dest]
};

class BgpSpeakers final : public TrafficComponent {
 public:
  /// `speaker_hosts[as]` carries AS `as`'s BGP sessions. Policies derive
  /// from net.as_adjacency exactly as in the static solver.
  BgpSpeakers(const Network& net, std::vector<NodeId> speaker_hosts,
              const BgpDynamicOptions& options);

  // ---- TrafficComponent ---------------------------------------------------
  void start(Engine& engine, NetSim& sim) override;
  void on_flow_complete(Engine& engine, NetSim& sim, FlowId flow,
                        NodeId src_host, NodeId dst_host,
                        std::uint32_t tag) override;
  /// An UPDATE batch flow abandoned by TCP (possible under fault
  /// injection). The batch is lost; the session-reset machinery is the
  /// mechanism for recovering the lost state.
  void on_flow_failed(Engine& engine, NetSim& sim, FlowId flow,
                      NodeId src_host, NodeId dst_host,
                      std::uint32_t tag) override;
  void on_timer(Engine& engine, NetSim& sim, NodeId host,
                std::uint64_t payload, std::uint64_t c) override;

  // ---- post-run queries ---------------------------------------------------

  /// Best route adopted by `as` toward `dest`; next_hop_as == -1 when no
  /// route (or as == dest).
  BgpRoute best_route(AsId as, AsId dest) const;

  /// Adopted AS path [as, ..., dest]; empty when unreachable.
  std::vector<AsId> as_path(AsId as, AsId dest) const;

  std::uint64_t updates_sent() const;
  std::uint64_t batches_sent() const;

  // ---- churn counters (summed over speakers) ------------------------------

  /// Announcements received and accepted into adj-RIB-in (loop-rejected
  /// announcements count as withdrawals, matching RFC treat-as-withdraw).
  std::uint64_t announcements_received() const;
  /// Withdrawals received (explicit or implicit via loop rejection).
  std::uint64_t withdrawals_received() const;
  /// Best-route changes across all (speaker, prefix) pairs — the BGP churn
  /// a route-view monitor would observe.
  std::uint64_t route_changes() const;

  /// Publishes churn counters and the convergence instant into `registry`
  /// as `bgp.*` metrics (schema in DESIGN.md).
  void publish_metrics(obs::Registry& registry) const override;

  /// Virtual time of the last routing-table change anywhere — the
  /// convergence instant (-1 if nothing ever changed).
  SimTime last_change() const;

  /// Per-AS virtual time of the last change affecting `dest`'s prefix
  /// (what a beacon observation point measures); -1 if never changed.
  SimTime last_change_for(AsId as, AsId dest) const;

  // ---- experiments ----------------------------------------------------------

  /// Beacon (paper Section 7): AS `beacon_as` withdraws and re-announces
  /// its prefix `toggles` times, `period` apart, starting at `start`.
  /// Mirrors the real-world RIPE/PSG BGP Beacons.
  void schedule_beacon(Engine& engine, NetSim& sim, AsId beacon_as,
                       SimTime start, SimTime period, std::int32_t toggles);

  /// BGP session reset between `as` and `peer` (must be AS-adjacent): at
  /// `when` both endpoints tear the session down — each flushes the
  /// adj-RIB-in learned from the other (withdrawing routes through it and
  /// propagating the withdrawals), clears pending/adj-RIB-out state toward
  /// it, and bumps the per-session epoch so in-flight UPDATE batches from
  /// the old incarnation are discarded on arrival. At
  /// `when + reestablish_after` the session comes back and each side
  /// re-advertises its full table to the other, as a real speaker does
  /// after session establishment. Call before the run.
  void schedule_session_reset(Engine& engine, NetSim& sim, AsId as,
                              AsId peer, SimTime when,
                              SimTime reestablish_after);

  // ---- fault counters (summed over speakers) ------------------------------

  /// Session endpoint teardowns (2 per schedule_session_reset call).
  std::uint64_t session_resets() const;
  /// UPDATE batches discarded because their session epoch was stale.
  std::uint64_t stale_batches_dropped() const;
  /// UPDATE batch flows abandoned by TCP.
  std::uint64_t update_flows_failed() const;

  /// Checkpoint hooks: full per-speaker state (adj-RIB-in/out, best routes,
  /// MRAI and session state, churn counters) plus the in-flight update
  /// channels. Channel batches are referenced by absolute index from flow
  /// tags, so the whole batch history is preserved verbatim — in-flight
  /// UPDATE flows captured in the engine's event queues find their payloads
  /// again after restore.
  void save(ckpt::Writer& writer) const override;
  bool load(ckpt::Reader& reader) override;

 private:
  struct Candidate {
    bool valid = false;
    std::vector<AsId> path;  ///< [neighbor, ..., dest]
  };

  struct Speaker {
    std::vector<AsNeighbor> neighbors;
    /// adj-rib-in: candidates_[dest * num_neighbors + neighbor_index].
    std::vector<Candidate> rib_in;
    /// Best route per dest (next-hop index into `neighbors`, -1 = none).
    std::vector<std::int32_t> best;
    std::vector<std::vector<AsId>> best_path;  ///< per dest, [me,...,dest]
    /// adj-rib-out: announced_[dest * num_neighbors + n] — whether we last
    /// sent an announcement (vs nothing/withdrawal) to that neighbor.
    std::vector<char> rib_out;
    bool originated = false;
    std::vector<SimTime> last_change_for;  ///< per dest prefix
    /// Pending updates per neighbor, flushed into one batch per trigger.
    std::vector<std::vector<BgpDynUpdate>> pending;
    /// MRAI state per neighbor: when we may send next, and whether a
    /// deferred-flush timer is outstanding.
    std::vector<SimTime> next_send_ok;
    std::vector<char> mrai_timer_armed;
    /// Session state per neighbor: up/down, plus an epoch bumped on every
    /// teardown. Batches are stamped with the sender's epoch; the receiver
    /// drops batches whose epoch predates its own — in-flight updates from
    /// a torn-down session incarnation must not pollute the new one.
    std::vector<char> session_up;
    std::vector<std::uint32_t> session_epoch;
    // Statistics, owned by this speaker's LP (summed by the getters).
    std::uint64_t updates_sent = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t announce_rx = 0;
    std::uint64_t withdraw_rx = 0;
    std::uint64_t route_changes = 0;
    std::uint64_t session_resets = 0;
    std::uint64_t stale_batches = 0;
    std::uint64_t update_flows_failed = 0;
    SimTime last_change = -1;
  };

  // Batches in flight between speakers. Written by the sender's LP, read
  // by the receiver's LP after the window barrier; the mutex makes the
  // cross-thread access well-defined under the threaded executor.
  struct Batch {
    std::uint32_t epoch = 0;  ///< sender's session epoch at send time
    std::vector<BgpDynUpdate> updates;
  };
  struct Channel {
    std::mutex mu;
    std::deque<Batch> batches;
    std::size_t consumed = 0;
  };

  std::int32_t neighbor_index(AsId as, AsId neighbor) const;
  void originate(Engine& engine, NetSim& sim, AsId as);
  void withdraw_own(Engine& engine, NetSim& sim, AsId as);
  void process_batch(Engine& engine, NetSim& sim, AsId me, AsId from,
                     const std::vector<BgpDynUpdate>& batch);
  /// Recomputes the best route for (me, dest); if changed, records the
  /// change and queues export updates.
  void reselect(Engine& engine, NetSim& sim, AsId me, AsId dest);
  void queue_export(AsId me, AsId dest);
  void flush(Engine& engine, NetSim& sim, AsId me);
  /// Session teardown at `me`'s end: drop RIB-in from `peer`, reselect.
  void session_down(Engine& engine, NetSim& sim, AsId me, AsId peer);
  /// Session re-establishment at `me`'s end: full-table re-advertisement.
  void session_restore(Engine& engine, NetSim& sim, AsId me, AsId peer);

  const Network* net_;
  std::vector<NodeId> speaker_hosts_;
  BgpDynamicOptions opts_;
  std::int32_t num_as_;
  std::vector<Speaker> speakers_;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< per sender AS
  std::vector<AsId> host_as_;  ///< speaker host -> AS (dense by host order)
};

}  // namespace massf
