#include "routing/ospf.hpp"

#include <queue>

#include "util/check.hpp"

namespace massf {

OspfDomain::OspfDomain(const Network& net, std::span<const NodeId> members,
                       bool use_inter_as_links, bool keep_distances)
    : members_(members.begin(), members.end()),
      keep_distances_(keep_distances) {
  local_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    MASSF_CHECK(net.is_router(members_[i]));
    const bool inserted =
        local_.emplace(members_[i], static_cast<std::int32_t>(i)).second;
    MASSF_CHECK(inserted);
  }
  arcs_.resize(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    for (const auto& inc : net.incident(members_[i])) {
      const NetLink& l = net.links[static_cast<std::size_t>(inc.link)];
      if (l.inter_as && !use_inter_as_links) continue;
      auto it = local_.find(inc.peer);
      if (it == local_.end()) continue;
      arcs_[i].push_back({inc.link, it->second, l.latency});
    }
  }
}

std::int32_t OspfDomain::local_index(NodeId router) const {
  auto it = local_.find(router);
  return it == local_.end() ? -1 : it->second;
}

void OspfDomain::add_destination(const Network& net, NodeId dest) {
  (void)net;
  if (tables_.count(dest) > 0) return;
  const std::int32_t d = local_index(dest);
  MASSF_CHECK(d >= 0);

  Table t;
  t.next.assign(members_.size(), kInvalidLink);
  t.dist.assign(members_.size(), -1);

  // Dijkstra outward from the destination; because links are symmetric the
  // tree rooted at dest gives, for every router, the first link of its
  // shortest path *toward* dest. Ties are broken toward the lower link id
  // so tables are deterministic.
  using QItem = std::pair<std::int64_t, std::int32_t>;  // (dist, local idx)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  t.dist[static_cast<std::size_t>(d)] = 0;
  pq.push({0, d});
  while (!pq.empty()) {
    const auto [dist, v] = pq.top();
    pq.pop();
    if (dist != t.dist[static_cast<std::size_t>(v)]) continue;
    for (const Arc& a : arcs_[static_cast<std::size_t>(v)]) {
      if (!excluded_.empty() && excluded_.count(a.link) > 0) continue;
      const std::int64_t nd = dist + a.cost;
      auto& cur = t.dist[static_cast<std::size_t>(a.peer)];
      auto& nxt = t.next[static_cast<std::size_t>(a.peer)];
      if (cur < 0 || nd < cur || (nd == cur && a.link < nxt)) {
        cur = nd;
        nxt = a.link;
        pq.push({nd, a.peer});
      }
    }
  }
  if (!keep_distances_) {
    t.dist.clear();
    t.dist.shrink_to_fit();
  }
  tables_.emplace(dest, std::move(t));
}

void OspfDomain::set_link_excluded(LinkId link, bool excluded) {
  if (excluded) {
    excluded_.insert(link);
  } else {
    excluded_.erase(link);
  }
}

void OspfDomain::recompute(const Network& net) {
  std::vector<NodeId> dests;
  dests.reserve(tables_.size());
  for (const auto& [dest, table] : tables_) dests.push_back(dest);
  tables_.clear();
  for (const NodeId d : dests) add_destination(net, d);
}

LinkId OspfDomain::next_link(NodeId from, NodeId dest) const {
  auto it = tables_.find(dest);
  MASSF_CHECK(it != tables_.end());
  const std::int32_t f = local_index(from);
  MASSF_CHECK(f >= 0);
  return it->second.next[static_cast<std::size_t>(f)];
}

NodeId OspfDomain::next_hop(const Network& net, NodeId from,
                            NodeId dest) const {
  const LinkId l = next_link(from, dest);
  if (l == kInvalidLink) return kInvalidNode;
  const NetLink& link = net.links[static_cast<std::size_t>(l)];
  return link.a == from ? link.b : link.a;
}

std::int64_t OspfDomain::distance(NodeId from, NodeId dest) const {
  MASSF_CHECK(keep_distances_);
  auto it = tables_.find(dest);
  MASSF_CHECK(it != tables_.end());
  const std::int32_t f = local_index(from);
  MASSF_CHECK(f >= 0);
  return it->second.dist[static_cast<std::size_t>(f)];
}

}  // namespace massf
