// Static BGP4 policy-routing solver.
//
// Computes, for every (AS, destination-AS) pair, the best route under the
// paper's policy configuration (Section 5.1.1):
//   import:  local preference by next-hop AS relationship,
//            customer (120) > peer (110) > provider (100);
//   export:  an AS exports its local route and customer-learned routes to
//            everyone, but peer-/provider-learned routes only to its
//            customers (Gao-Rexford);
//   decision: highest local preference, then shortest AS path, then lowest
//            next-hop AS id (deterministic tiebreak).
// Routes are iterated to a fixed point, which Gao-Rexford policies
// guarantee exists; AS-path loop detection mirrors BGP's own rule. The
// resulting paths are valley-free, and reachability may be a strict subset
// of connectivity — the property that distinguishes multi-AS networks from
// flat OSPF in the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topology/network.hpp"

namespace massf {

struct BgpRoute {
  AsId next_hop_as = -1;  ///< -1: no route (or self)
  std::int16_t path_len = 0;
  std::int16_t local_pref = 0;
  AsRel learned_from = AsRel::kPeer;  ///< relationship of the announcing AS
};

/// One BGP adjacency as seen from an AS: the neighbor and what it is to us.
struct AsNeighbor {
  AsId as;
  AsRel rel;
};

/// Deduplicated, sorted per-AS neighbor lists (multiple physical links per
/// AS pair collapse into one session). Shared by the static solver and the
/// dynamic protocol.
std::vector<std::vector<AsNeighbor>> build_as_neighbor_lists(
    std::int32_t num_as, std::span<const AsAdjacency> adjacency);

/// The relationship seen from the other side.
AsRel invert_rel(AsRel rel);

/// Gao-Rexford export rule: a route may be announced to a neighbor of
/// relationship `to_rel` iff it is our own prefix or customer-learned —
/// unless the neighbor is our customer, who receives everything.
bool bgp_exportable(bool is_local, AsRel learned_from, AsRel to_rel);

class BgpSolver {
 public:
  BgpSolver(std::int32_t num_as, std::span<const AsAdjacency> adjacency);

  /// Runs the path-vector computation for all destinations.
  void solve();

  /// Best route at `from` toward `dest`; next_hop_as is -1 when from==dest
  /// or no policy-compliant route exists.
  const BgpRoute& route(AsId from, AsId dest) const;

  bool reachable(AsId from, AsId dest) const;

  /// Reconstructs the AS path [from, ..., dest]; empty when unreachable.
  std::vector<AsId> as_path(AsId from, AsId dest) const;

  /// True when the AS path from->dest follows the valley-free pattern:
  /// some customer->provider steps, at most one peer step, then some
  /// provider->customer steps. Vacuously true when unreachable.
  bool path_is_valley_free(AsId from, AsId dest) const;

  std::int32_t num_as() const { return num_as_; }

  /// Relationship of `neighbor` from `from`'s point of view; requires
  /// adjacency.
  AsRel relationship(AsId from, AsId neighbor) const;

  /// Number of solver iterations used for the last solve() (diagnostic).
  std::int32_t iterations() const { return iterations_; }

 private:
  using Neighbor = AsNeighbor;

  const BgpRoute& route_ref(AsId from, AsId dest) const {
    return routes_[static_cast<std::size_t>(from) *
                       static_cast<std::size_t>(num_as_) +
                   static_cast<std::size_t>(dest)];
  }
  BgpRoute& route_ref(AsId from, AsId dest) {
    return routes_[static_cast<std::size_t>(from) *
                       static_cast<std::size_t>(num_as_) +
                   static_cast<std::size_t>(dest)];
  }

  const std::vector<AsId>& path_ref(AsId from, AsId dest) const {
    return paths_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(num_as_) +
                  static_cast<std::size_t>(dest)];
  }
  std::vector<AsId>& path_ref(AsId from, AsId dest) {
    return paths_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(num_as_) +
                  static_cast<std::size_t>(dest)];
  }

  std::int32_t num_as_;
  std::vector<std::vector<Neighbor>> neighbors_;
  std::vector<BgpRoute> routes_;
  /// Full AS path (excluding the owner, ending at dest) per route; this is
  /// what a real BGP RIB stores and what loop rejection inspects.
  std::vector<std::vector<AsId>> paths_;
  std::int32_t iterations_ = 0;
};

/// Local-preference values used by the import policy.
std::int16_t local_pref_for(AsRel learned_from);

}  // namespace massf
