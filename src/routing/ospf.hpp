// OSPF-style intra-domain routing: shortest paths by cumulative link
// latency, computed as one reverse shortest-path tree per *destination*
// router. Computing trees per destination (rather than per source) keeps
// large networks feasible: only routers that actually terminate or egress
// traffic need tables.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/network.hpp"

namespace massf {

/// Shortest-path routing over a set of member routers of one routing domain
/// (a whole flat network, or the routers of one AS using only intra-AS
/// links).
class OspfDomain {
 public:
  /// `members` are the global router ids of the domain. Only links with
  /// both endpoints in `members` (and not marked inter_as unless
  /// `use_inter_as_links`) are considered. With `keep_distances` false the
  /// per-destination distance arrays are discarded after the SPT is built
  /// (they cost 8 bytes x routers x destinations — prohibitive for a
  /// 20,000-router flat domain with thousands of destinations); distance()
  /// is then unavailable.
  OspfDomain(const Network& net, std::span<const NodeId> members,
             bool use_inter_as_links, bool keep_distances = true);

  /// Computes the reverse shortest-path tree toward `dest` (a member) and
  /// stores the per-router next hop. Safe to call for the same dest twice.
  void add_destination(const Network& net, NodeId dest);

  bool has_destination(NodeId dest) const {
    return tables_.count(dest) > 0;
  }

  /// Next link from `from` (a member router) toward `dest` (a registered
  /// destination). Returns kInvalidLink when from == dest or unreachable.
  LinkId next_link(NodeId from, NodeId dest) const;

  /// Next router on the path (the peer across next_link).
  NodeId next_hop(const Network& net, NodeId from, NodeId dest) const;

  /// Administratively excludes (or restores) a link; takes effect at the
  /// next recompute(). Models the SPF view after an LSA withdrawal.
  void set_link_excluded(LinkId link, bool excluded);

  /// Recomputes every registered destination's tree under the current
  /// exclusions.
  void recompute(const Network& net);

  /// Latency distance (ns) from `from` to registered `dest`; -1 if
  /// unreachable. Requires keep_distances.
  std::int64_t distance(NodeId from, NodeId dest) const;

  std::size_t num_destinations() const { return tables_.size(); }

 private:
  struct Table {
    std::vector<LinkId> next;        // per local index
    std::vector<std::int64_t> dist;  // ns, -1 unreachable; empty when
                                     // distances are not kept
  };

  std::int32_t local_index(NodeId router) const;

  std::vector<NodeId> members_;
  std::unordered_map<NodeId, std::int32_t> local_;
  // Local adjacency restricted to the domain: (link, peer local idx, cost).
  struct Arc {
    LinkId link;
    std::int32_t peer;
    std::int64_t cost;
  };
  std::vector<std::vector<Arc>> arcs_;
  std::unordered_map<NodeId, Table> tables_;
  std::unordered_set<LinkId> excluded_;
  bool keep_distances_ = true;
};

}  // namespace massf
