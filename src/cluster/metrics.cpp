#include "cluster/metrics.hpp"

#include "util/stats.hpp"

namespace massf {

SimulationMetrics compute_metrics(const RunStats& stats,
                                  const ClusterModel& cluster) {
  SimulationMetrics m;
  m.simulation_time_s = stats.modeled_wall_s;
  m.total_events = stats.total_events;
  m.num_windows = stats.num_windows;
  const std::vector<double> rates = stats.event_rates();
  m.load_imbalance = load_imbalance(rates);
  m.parallel_efficiency = parallel_efficiency(
      static_cast<double>(stats.total_events),
      cluster.max_event_rate_per_node(), stats.events_per_lp.size(),
      stats.modeled_wall_s);
  m.sync_fraction = stats.modeled_wall_s > 0
                        ? stats.modeled_sync_s / stats.modeled_wall_s
                        : 0;
  return m;
}

}  // namespace massf
