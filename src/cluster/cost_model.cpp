#include "cluster/cost_model.hpp"

#include "util/check.hpp"

namespace massf {

double ClusterModel::sync_cost_s(std::int32_t n) const {
  MASSF_CHECK(n >= 1);
  // Linear TeraGrid calibration; see the header comment.
  return 50e-6 + 5.3e-6 * static_cast<double>(n);
}

SimTime ClusterModel::sync_cost_time(std::int32_t n) const {
  return from_seconds(sync_cost_s(n));
}

}  // namespace massf
