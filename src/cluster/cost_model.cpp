#include "cluster/cost_model.hpp"

#include "util/check.hpp"

namespace massf {

double ClusterModel::sync_cost_s(std::int32_t n) const {
  MASSF_CHECK(n >= 1);
  // Linear TeraGrid calibration; see the header comment.
  return 50e-6 + 5.3e-6 * static_cast<double>(n);
}

SimTime ClusterModel::sync_cost_time(std::int32_t n) const {
  return from_seconds(sync_cost_s(n));
}

double ClusterModel::migration_cost_s(std::uint64_t bytes) const {
  MASSF_CHECK(migrate_bandwidth_bps > 0);
  return migrate_base_s +
         static_cast<double>(bytes) * 8.0 / migrate_bandwidth_bps;
}

}  // namespace massf
