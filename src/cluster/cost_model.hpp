// The simulated-cluster cost model.
//
// This is the documented substitution (DESIGN.md Section 1) for the paper's
// TeraGrid Itanium-2/Myrinet cluster: instead of measuring a real machine,
// the engine charges each logical process a fixed per-event cost and the
// whole machine a per-window synchronization cost.
//
// Calibration sources (paper Section 3.4.1 and Figure 5):
//   * global synchronization of ~100 engine nodes costs ~0.58 ms;
//   * Figure 5 shows the cost rising roughly linearly over 6..112 nodes
//     toward ~0.8-0.9 ms.
// A linear fit C(N) = 50us + 5.3us * N reproduces both (C(100) = 580us,
// C(112) = 644us) and is what all experiments use.
//
// The per-event cost (default 5 microseconds, i.e. ~200k events/s per
// node) matches packet-level DES throughput on Itanium-2-class hardware
// and is the MaximalEventRateOnEachNode used by the paper's sequential-
// time approximation in the parallel-efficiency metric.
#pragma once

#include <cstdint>

#include "util/sim_time.hpp"

namespace massf {

struct ClusterModel {
  std::int32_t num_engine_nodes = 90;  ///< paper default
  double cost_per_event_s = 5e-6;
  /// LP-migration cost model (online rebalancing, DESIGN.md section 5f):
  /// rehoming state between engine nodes costs a fixed per-move setup —
  /// roughly one round of the global synchronization machinery — plus the
  /// serialized bytes over the interconnect. Defaults model the same
  /// Myrinet-class fabric as the sync fit (~1 Gb/s effective).
  double migrate_base_s = 100e-6;        ///< per migration batch
  double migrate_bandwidth_bps = 1e9;    ///< serialized-state transfer rate

  /// Global synchronization cost for n engine nodes (seconds).
  double sync_cost_s(std::int32_t n) const;
  double sync_cost_s() const { return sync_cost_s(num_engine_nodes); }

  /// The same quantity as a simulation-time duration, used when deriving
  /// the minimum admissible MLL threshold for the hierarchical partitioner.
  SimTime sync_cost_time(std::int32_t n) const;
  SimTime sync_cost_time() const { return sync_cost_time(num_engine_nodes); }

  /// events/second one node can sustain (1 / cost_per_event).
  double max_event_rate_per_node() const { return 1.0 / cost_per_event_s; }

  /// Modeled wall-clock charged for one migration batch moving `bytes` of
  /// serialized LP state. The base cost applies per batch even when no
  /// events were pending — callers invoke this only when a batch moved.
  double migration_cost_s(std::uint64_t bytes) const;
};

}  // namespace massf
