// The paper's evaluation metrics (Section 4.1), computed from an engine
// run and the cluster model.
#pragma once

#include "cluster/cost_model.hpp"
#include "pdes/engine.hpp"

namespace massf {

struct SimulationMetrics {
  double simulation_time_s = 0;   ///< T: modeled parallel wall clock
  double load_imbalance = 0;      ///< normalized stddev of event rates
  double parallel_efficiency = 0; ///< PE(N, L)
  double sync_fraction = 0;       ///< share of T spent synchronizing
  std::uint64_t total_events = 0;
  std::uint64_t num_windows = 0;
};

/// Derives the metrics from a finished run. PE uses the paper's
/// approximation Tseq = TotalEventNumber / MaximalEventRateOnEachNode.
SimulationMetrics compute_metrics(const RunStats& stats,
                                  const ClusterModel& cluster);

}  // namespace massf
