#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace massf {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ == 0) return 0;
  return m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double load_imbalance(std::span<const double> rates) {
  Accumulator acc;
  for (double r : rates) acc.add(r);
  if (acc.count() == 0 || acc.mean() == 0) return 0;
  return acc.stddev() / acc.mean();
}

double avg_over_max(std::span<const double> loads) {
  Accumulator acc;
  for (double l : loads) acc.add(l);
  if (acc.count() == 0 || acc.max() == 0) return 1.0;
  return acc.mean() / acc.max();
}

double parallel_efficiency(double total_events,
                           double max_event_rate_per_node, std::size_t n_nodes,
                           double t_parallel_s) {
  MASSF_CHECK(n_nodes > 0);
  if (max_event_rate_per_node <= 0 || t_parallel_s <= 0) return 0;
  const double t_seq = total_events / max_event_rate_per_node;
  return t_seq / (static_cast<double>(n_nodes) * t_parallel_s);
}

TimeSeries::TimeSeries(double bin_width) : bin_width_(bin_width) {
  MASSF_CHECK(bin_width > 0);
}

void TimeSeries::add(double t, double value) {
  MASSF_CHECK(t >= 0);
  const auto idx = static_cast<std::size_t>(t / bin_width_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0.0);
  bins_[idx] += value;
}

std::string format_series(const TimeSeries& series, const std::string& label) {
  std::ostringstream os;
  os << "# " << label << " (bin width " << series.bin_width() << ")\n";
  for (std::size_t i = 0; i < series.num_bins(); ++i) {
    os << i * series.bin_width() << "\t" << series.bin(i) << "\n";
  }
  return os.str();
}

}  // namespace massf
