// Lightweight runtime assertion macros used throughout the library.
//
// MASSF_CHECK is always on (it guards invariants whose violation would make
// simulation results silently wrong); MASSF_DCHECK compiles out in NDEBUG
// builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace massf::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  // Include the failing expression text and flush before terminating:
  // std::abort() does not flush stdio buffers, and a CI log that ends with
  // a bare SIGABRT is useless. stdout is flushed too so interleaved
  // progress output lands before the failure line.
  std::fflush(stdout);
  std::fprintf(stderr, "MASSF_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace massf::detail

#define MASSF_CHECK(expr)                                      \
  do {                                                         \
    if (!(expr)) {                                             \
      ::massf::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define MASSF_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define MASSF_DCHECK(expr) MASSF_CHECK(expr)
#endif
