#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace massf {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::seed_fingerprint() const {
  return s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
}

Rng Rng::fork(std::uint64_t key) const {
  // splitmix-style mix of the key with the state fingerprint.
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng((z ^ (z >> 31)) ^ seed_fingerprint());
}

Rng Rng::fork(std::string_view label) const {
  // FNV-1a over the label, mixed with the current state fingerprint. The
  // fingerprint depends only on construction seed plus values consumed so
  // far; forking immediately after construction is the stable pattern.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Rng(h ^ seed_fingerprint());
}

std::uint64_t Rng::uniform(std::uint64_t n) {
  MASSF_DCHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MASSF_DCHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  MASSF_DCHECK(mean > 0);
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::pareto(double alpha, double xm) {
  MASSF_DCHECK(alpha > 0 && xm > 0);
  double u = uniform01();
  if (u <= 0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  MASSF_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    MASSF_DCHECK(w >= 0);
    total += w;
  }
  MASSF_CHECK(total > 0);
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  MASSF_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace massf
