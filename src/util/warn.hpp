// Recoverable configuration/environment complaints, surfaced instead of
// silently papered over (ISSUE: run_threaded used to fall back without a
// trace when hardware_concurrency() == 0; shard worker counts are clamped
// to the LP count the same way).
//
// A warning is an EngineError that did not need to be fatal: same
// category vocabulary (util/error.hpp), but the run continues under the
// adjusted configuration. Warnings go to stderr once at emit time and
// into a process-wide log that tests (and the scenario runner) can
// inspect with snapshot()/clear(). The log is bounded: after kMaxKept
// entries only the counter advances, so a warning in a per-window path
// cannot grow memory without bound.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace massf {

struct EngineWarning {
  ErrorCategory category = ErrorCategory::kConfig;
  std::string message;
};

class WarningLog {
 public:
  static constexpr std::size_t kMaxKept = 64;

  static WarningLog& instance();

  /// Records the warning and prints one `massf: warning (<category>): ...`
  /// line to stderr. Thread-safe.
  void emit(ErrorCategory category, std::string message);

  /// Everything emitted since the last clear() (at most kMaxKept entries).
  std::vector<EngineWarning> snapshot() const;
  /// Total emits since the last clear(), including dropped ones.
  std::size_t count() const;
  void clear();

 private:
  WarningLog() = default;
};

/// Convenience: WarningLog::instance().emit(...).
void warn(ErrorCategory category, std::string message);

/// The hardware_concurrency()==0 fallback, surfaced: when the host's
/// concurrency is unreportable the spin budgets collapse to zero and every
/// barrier/channel gate parks on atomic waits (pdes/barrier.hpp). Emits a
/// config-category warning once per process and returns true on the call
/// that emitted it; later calls (or hc > 0) return false.
bool warn_unknown_host_concurrency(unsigned hardware_concurrency);

}  // namespace massf
