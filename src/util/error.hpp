// Structured engine errors.
//
// The engine used to fail every contract violation the same way: print and
// std::abort(). That is the right call for invariant corruption (a broken
// heap is not recoverable), but most of what actually goes wrong in a run
// is *configuration*: a channel declared with too little lookahead, a DML
// attribute of the wrong type, an event injected inside the open window.
// Those are recoverable at the harness layer — a supervisor (src/guard) can
// catch them, log a diagnostic, and retry under a safer configuration.
//
// EngineError carries a category, the throw site (file:line), and a
// message. The category is the recoverability contract:
//
//   kConfig         bad options / DML / injected work   -> fix input, retry
//   kTopology       ChannelGraph vs engine disagreement -> fall back to the
//                                                          dense/barrier path
//   kProtocolStall  sync protocol made no progress      -> restore + degrade
//   kIo             checkpoint/file read/write failed   -> retry or re-path
//   kInternal       API misuse / invariant adjacent     -> not recoverable
//
// MASSF_CHECK (util/check.hpp) remains abort-based and is reserved for true
// invariants; everything a caller could plausibly have caused throws.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace massf {

enum class ErrorCategory {
  kConfig,
  kTopology,
  kProtocolStall,
  kIo,
  kInternal,
};

inline const char* error_category_name(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kConfig: return "config";
    case ErrorCategory::kTopology: return "topology";
    case ErrorCategory::kProtocolStall: return "protocol-stall";
    case ErrorCategory::kIo: return "io";
    case ErrorCategory::kInternal: return "internal";
  }
  return "unknown";
}

class EngineError : public std::runtime_error {
 public:
  EngineError(ErrorCategory category, const char* file, int line,
              std::string_view message)
      : std::runtime_error(format(category, file, line, message)),
        category_(category),
        file_(file),
        line_(line) {}

  ErrorCategory category() const { return category_; }
  const char* file() const { return file_; }
  int line() const { return line_; }

 private:
  static std::string format(ErrorCategory category, const char* file,
                            int line, std::string_view message) {
    std::string s = "massf: ";
    s += error_category_name(category);
    s += " error at ";
    s += file;
    s += ':';
    s += std::to_string(line);
    s += ": ";
    s.append(message.data(), message.size());
    return s;
  }

  ErrorCategory category_;
  const char* file_;
  int line_;
};

}  // namespace massf

/// Throws massf::EngineError with the call site baked in. `msg` may be any
/// expression convertible to std::string_view (std::string temporaries ok).
#define MASSF_THROW(category, msg) \
  throw ::massf::EngineError((category), __FILE__, __LINE__, (msg))

/// Contract check that throws instead of aborting. Use for conditions the
/// caller could have caused (bad options, topology mismatch); keep
/// MASSF_CHECK for invariants that indicate corruption.
#define MASSF_ENFORCE(expr, category, msg) \
  do {                                     \
    if (!(expr)) MASSF_THROW(category, msg); \
  } while (0)
