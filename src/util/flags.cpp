#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace massf {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool full_scale_requested() {
  const char* env = std::getenv("MASSF_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

}  // namespace massf
