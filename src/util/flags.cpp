#include "util/flags.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "util/error.hpp"

namespace massf {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool full_scale_requested() {
  const char* env = std::getenv("MASSF_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

namespace {

const char* type_name(FlagSpec::Type t) {
  switch (t) {
    case FlagSpec::kBool:
      return "bool";
    case FlagSpec::kInt:
      return "int";
    case FlagSpec::kDouble:
      return "float";
    case FlagSpec::kString:
      return "string";
  }
  return "?";
}

bool parse_int(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool parse_bool(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

FlagTable::FlagTable(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

FlagTable& FlagTable::add_bool(std::string name, bool def, std::string help) {
  specs_.push_back({std::move(name), FlagSpec::kBool,
                    def ? "true" : "false", std::move(help), {}});
  return *this;
}

FlagTable& FlagTable::add_int(
    std::string name, std::int64_t def, std::string help,
    std::function<std::string(std::int64_t)> validate) {
  FlagSpec spec{std::move(name), FlagSpec::kInt, std::to_string(def),
                std::move(help), {}};
  if (validate) {
    spec.validate = [v = std::move(validate)](const std::string& text) {
      std::int64_t x = 0;
      parse_int(text, &x);  // type-checked before validators run
      return v(x);
    };
  }
  specs_.push_back(std::move(spec));
  return *this;
}

FlagTable& FlagTable::add_double(std::string name, double def,
                                 std::string help,
                                 std::function<std::string(double)> validate) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", def);
  FlagSpec spec{std::move(name), FlagSpec::kDouble, buf, std::move(help), {}};
  if (validate) {
    spec.validate = [v = std::move(validate)](const std::string& text) {
      double x = 0;
      parse_double(text, &x);
      return v(x);
    };
  }
  specs_.push_back(std::move(spec));
  return *this;
}

FlagTable& FlagTable::add_string(
    std::string name, std::string def, std::string help,
    std::function<std::string(const std::string&)> validate) {
  specs_.push_back({std::move(name), FlagSpec::kString, std::move(def),
                    std::move(help), std::move(validate)});
  return *this;
}

const FlagSpec* FlagTable::find(const std::string& name) const {
  for (const FlagSpec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool FlagTable::parse(int argc, const char* const* argv, std::string* error) {
  const auto fail = [&](int arg_no, const std::string& shown,
                        const std::string& what) {
    // Same idiom as the fault-schedule parser's "line N: what", keyed by
    // argv position instead of file line.
    if (error != nullptr) {
      *error = "arg " + std::to_string(arg_no) + " (" + shown + "): " + what;
    }
    return false;
  };

  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    const int arg_no = i;
    const std::string shown(arg);
    if (!arg.starts_with("--")) {
      return fail(arg_no, shown, "expected a --flag");
    }
    arg.remove_prefix(2);
    if (arg == "help") {
      help_requested_ = true;
      continue;
    }
    std::string name;
    std::string value;
    bool have_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      have_value = true;
    } else {
      name = std::string(arg);
    }
    const FlagSpec* spec = find(name);
    if (spec == nullptr) {
      return fail(arg_no, shown, "unknown flag (see --help)");
    }
    // --name value form: consume the next argv entry, except for booleans,
    // which are presence-style (--flag) unless given --flag=....
    if (!have_value && spec->type != FlagSpec::kBool && i + 1 < argc &&
        argv[i + 1][0] != '-') {
      value = argv[++i];
      have_value = true;
    }
    if (!have_value) {
      if (spec->type != FlagSpec::kBool) {
        return fail(arg_no, shown,
                    std::string("expects a ") + type_name(spec->type) +
                        " value");
      }
      value = "true";
    }
    const std::string shown_kv = "--" + name + "=" + value;
    switch (spec->type) {
      case FlagSpec::kBool: {
        bool b = false;
        if (!parse_bool(value, &b)) {
          return fail(arg_no, shown_kv, "expects true or false");
        }
        break;
      }
      case FlagSpec::kInt: {
        std::int64_t x = 0;
        if (!parse_int(value, &x)) {
          return fail(arg_no, shown_kv, "expects an integer");
        }
        break;
      }
      case FlagSpec::kDouble: {
        double x = 0;
        if (!parse_double(value, &x)) {
          return fail(arg_no, shown_kv, "expects a number");
        }
        break;
      }
      case FlagSpec::kString:
        break;
    }
    if (spec->validate) {
      const std::string what = spec->validate(value);
      if (!what.empty()) return fail(arg_no, shown_kv, what);
    }
    values_[name] = value;
  }
  return true;
}

void FlagTable::parse_or_exit(int argc, const char* const* argv) {
  std::string error;
  if (!parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s: %s\n", program_.c_str(), error.c_str());
    std::exit(2);
  }
  if (help_requested_) {
    std::fputs(help_text().c_str(), stdout);
    std::exit(0);
  }
}

std::string FlagTable::help_text() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  if (!description_.empty()) out += description_ + "\n";
  out += "\nflags:\n";
  std::size_t width = 4;  // --help
  for (const FlagSpec& s : specs_) width = std::max(width, s.name.size());
  for (const FlagSpec& s : specs_) {
    char line[512];
    std::snprintf(line, sizeof line, "  --%-*s  %-7s default=%-10s %s\n",
                  static_cast<int>(width), s.name.c_str(),
                  type_name(s.type), s.default_text.c_str(), s.help.c_str());
    out += line;
  }
  char line[512];
  std::snprintf(line, sizeof line, "  --%-*s  %-7s %-18s %s\n",
                static_cast<int>(width), "help", "bool", "",
                "print this screen and exit");
  out += line;
  return out;
}

const std::string& FlagTable::value_or_default(const std::string& name,
                                               FlagSpec::Type type) const {
  const FlagSpec* spec = find(name);
  if (spec == nullptr) {
    MASSF_THROW(ErrorCategory::kInternal,
                "flag lookup on undeclared flag --" + name);
  }
  if (spec->type != type) {
    MASSF_THROW(ErrorCategory::kInternal,
                "flag --" + name + " accessed as " + type_name(type) +
                    " but declared " + type_name(spec->type));
  }
  const auto it = values_.find(name);
  return it == values_.end() ? spec->default_text : it->second;
}

bool FlagTable::get_bool(const std::string& name) const {
  bool b = false;
  parse_bool(value_or_default(name, FlagSpec::kBool), &b);
  return b;
}

std::int64_t FlagTable::get_int(const std::string& name) const {
  std::int64_t x = 0;
  parse_int(value_or_default(name, FlagSpec::kInt), &x);
  return x;
}

double FlagTable::get_double(const std::string& name) const {
  double x = 0;
  parse_double(value_or_default(name, FlagSpec::kDouble), &x);
  return x;
}

std::string FlagTable::get_string(const std::string& name) const {
  return value_or_default(name, FlagSpec::kString);
}

bool FlagTable::set(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace massf
