// Command-line flag parsing for the example and bench binaries.
//
// Two layers:
//  * Flags — the legacy ad-hoc parser (--name=value lookups with inline
//    defaults). Still used by the bench binaries.
//  * FlagTable — a declarative flag table: each flag is registered once
//    with its name, type, default, help text, and optional validator, and
//    the table generates the parser and the --help screen from that single
//    declaration. Errors carry the argv position in the fault parser's
//    "line N: what" idiom ("arg N (--flag=value): what") and exit 2.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace massf {

class Flags {
 public:
  /// Parses argv; aborts with a usage message on malformed input.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& default_value) const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

/// True when the environment asks for paper-scale experiments
/// (MASSF_FULL=1); benches default to reduced shape-preserving scales.
bool full_scale_requested();

/// One declared flag: everything the generated parser and --help screen
/// need, in one row of the table.
struct FlagSpec {
  enum Type { kBool, kInt, kDouble, kString };
  std::string name;
  Type type = kString;
  std::string default_text;  ///< textual default, echoed by --help
  std::string help;
  /// Returns an error description ("must be >= 1.0") or "" when valid.
  /// Runs on explicitly provided values only — defaults are trusted.
  std::function<std::string(const std::string&)> validate;
};

class FlagTable {
 public:
  FlagTable(std::string program, std::string description);

  /// Registration; one call per flag, in the order --help should list them.
  /// Validators receive the typed value the user supplied.
  FlagTable& add_bool(std::string name, bool def, std::string help);
  FlagTable& add_int(std::string name, std::int64_t def, std::string help,
                     std::function<std::string(std::int64_t)> validate = {});
  FlagTable& add_double(std::string name, double def, std::string help,
                        std::function<std::string(double)> validate = {});
  FlagTable& add_string(std::string name, std::string def, std::string help,
                        std::function<std::string(const std::string&)>
                            validate = {});

  /// Parses argv against the table. Returns false with `*error` set to
  /// "arg N (--flag=value): what" on an unknown flag, a value of the wrong
  /// type, or a validator rejection. `--help` sets help_requested().
  bool parse(int argc, const char* const* argv, std::string* error);

  /// parse() + error handling for main(): prints the error (exit 2) or the
  /// generated help screen (exit 0) and never returns in those cases.
  void parse_or_exit(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }
  /// The declared flags, in registration order — the single source of
  /// truth tests cross-check against other declarative surfaces (e.g. the
  /// scenario-file schema must cover every run-control flag).
  const std::vector<FlagSpec>& specs() const { return specs_; }
  /// The generated --help screen: usage line, description, one row per
  /// declared flag with its type, default, and help text.
  std::string help_text() const;

  /// Typed lookups (the declared default when the flag wasn't provided).
  /// Aborts on a name that was never declared — a typo in the binary, not
  /// in the user's command line.
  bool get_bool(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  /// True when the user explicitly provided the flag.
  bool set(const std::string& name) const;

 private:
  const FlagSpec* find(const std::string& name) const;
  const std::string& value_or_default(const std::string& name,
                                      FlagSpec::Type type) const;

  std::string program_;
  std::string description_;
  std::vector<FlagSpec> specs_;
  std::map<std::string, std::string> values_;  ///< explicitly set only
  bool help_requested_ = false;
};

}  // namespace massf
