// Tiny command-line flag parser for the example and bench binaries.
// Supports --name=value, --name value, and boolean --name. Unknown flags are
// an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace massf {

class Flags {
 public:
  /// Parses argv; aborts with a usage message on malformed input.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& default_value) const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

/// True when the environment asks for paper-scale experiments
/// (MASSF_FULL=1); benches default to reduced shape-preserving scales.
bool full_scale_requested();

}  // namespace massf
