// Statistics helpers shared by the metrics code and the experiment
// harnesses: running accumulators, load-imbalance / parallel-efficiency
// formulas from the paper (Section 4.1), and a small time-series recorder
// used for the Figure 3 style load-variation traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace massf {

/// Single-pass mean/variance/min/max accumulator (Welford).
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Load imbalance as defined in the paper: the standard deviation of the
/// per-engine-node event rates {k}, normalized (coefficient of variation,
/// stddev/mean). Zero means perfectly balanced. Returns 0 for empty input or
/// zero mean.
double load_imbalance(std::span<const double> rates);

/// avg/max balance factor (the Ec term of the HPROF partition evaluator and
/// the denominator structure of parallel efficiency). 1.0 is perfect.
double avg_over_max(std::span<const double> loads);

/// Parallel efficiency PE(N, L) = Tseq / (N * T) with
/// Tseq approximated by total_events / max_event_rate_per_node
/// (paper Section 4.1). `t_parallel_s` is the parallel runtime in seconds
/// and `max_event_rate_per_node` in events/second.
double parallel_efficiency(double total_events,
                           double max_event_rate_per_node, std::size_t n_nodes,
                           double t_parallel_s);

/// Fixed-bin time series: values are accumulated into bins of `bin_width`
/// on the time axis; used to record per-engine load over the lifetime of a
/// simulation (Figure 3).
class TimeSeries {
 public:
  explicit TimeSeries(double bin_width);

  void add(double t, double value);

  double bin_width() const { return bin_width_; }
  std::size_t num_bins() const { return bins_.size(); }
  /// Sum of values recorded in bin i.
  double bin(std::size_t i) const { return bins_[i]; }
  const std::vector<double>& bins() const { return bins_; }

  /// Replaces the recorded bins wholesale (checkpoint restore). Rebuilding
  /// via add() would re-derive bin indices from float division; restoring
  /// the stored sums directly is the only bit-exact path.
  void load_bins(std::vector<double> bins) { bins_ = std::move(bins); }

 private:
  double bin_width_;
  std::vector<double> bins_;
};

/// Renders `series` as a compact ASCII table (one row per bin); used by the
/// figure harnesses so their output is self-describing.
std::string format_series(const TimeSeries& series, const std::string& label);

}  // namespace massf
