#include "util/warn.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace massf {
namespace {

std::mutex g_mu;
std::vector<EngineWarning> g_warnings;
std::size_t g_count = 0;

}  // namespace

WarningLog& WarningLog::instance() {
  static WarningLog log;
  return log;
}

void WarningLog::emit(ErrorCategory category, std::string message) {
  std::fprintf(stderr, "massf: warning (%s): %s\n",
               error_category_name(category), message.c_str());
  std::lock_guard<std::mutex> lk(g_mu);
  ++g_count;
  if (g_warnings.size() < kMaxKept) {
    g_warnings.push_back(EngineWarning{category, std::move(message)});
  }
}

std::vector<EngineWarning> WarningLog::snapshot() const {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_warnings;
}

std::size_t WarningLog::count() const {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_count;
}

void WarningLog::clear() {
  std::lock_guard<std::mutex> lk(g_mu);
  g_warnings.clear();
  g_count = 0;
}

void warn(ErrorCategory category, std::string message) {
  WarningLog::instance().emit(category, std::move(message));
}

bool warn_unknown_host_concurrency(unsigned hardware_concurrency) {
  if (hardware_concurrency != 0) return false;
  static std::atomic<bool> warned{false};
  if (warned.exchange(true, std::memory_order_relaxed)) return false;
  warn(ErrorCategory::kConfig,
       "hardware_concurrency() == 0: host parallelism is unreportable, "
       "spin budgets are disabled and every sync gate falls back to "
       "blocking waits (pdes/barrier.hpp)");
  return true;
}

}  // namespace massf
