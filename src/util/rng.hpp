// Deterministic random number generation.
//
// Every stochastic component of the simulator (topology generation, traffic
// arrival processes, partitioner tie-breaking) draws from an Rng derived
// from a single root seed through a stable stream-splitting scheme, so a
// whole experiment is reproducible from one integer.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace massf {

/// xoshiro256** generator. Small, fast, and high quality; satisfies
/// UniformRandomBitGenerator so it composes with <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  std::uint64_t operator()();

  /// Derives an independent child stream identified by a label. The same
  /// (parent seed, label) pair always yields the same stream, regardless of
  /// how many values the parent has produced.
  Rng fork(std::string_view label) const;

  /// Numeric-key variant (e.g. per-entity or per-flow streams).
  Rng fork(std::uint64_t key) const;

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Bounded Pareto with shape alpha and scale xm (minimum value).
  double pareto(double alpha, double xm);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with a positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Raw generator state, for checkpoint/restore: set_state() with a value
  /// previously returned by state() resumes the stream at exactly the same
  /// position.
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];

  std::uint64_t seed_fingerprint() const;
};

/// Zipf(1..n, exponent s) sampler with precomputed CDF; used for server
/// popularity in the HTTP background workload.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [0, n).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace massf
