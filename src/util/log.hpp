// Minimal leveled logger. Experiment harnesses print their figures to
// stdout; diagnostics go to stderr through this logger so the two never mix.
#pragma once

#include <sstream>
#include <string>

namespace massf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded. Defaults to kInfo and
/// can be set from MASSF_LOG env (debug|info|warn|error).
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace massf

#define MASSF_LOG(level)                                     \
  if (::massf::LogLevel::level < ::massf::log_level()) {     \
  } else                                                     \
    ::massf::detail::LogLine(::massf::LogLevel::level)
