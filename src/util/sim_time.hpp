// Fixed-point simulation time.
//
// All simulation timestamps are integral nanosecond ticks. Floating point
// time is a classic source of non-determinism in PDES engines (event order
// can depend on accumulated rounding); integral ticks make event ordering
// exact and the sequential executor bit-deterministic.
#pragma once

#include <cstdint>
#include <limits>

namespace massf {

/// Simulation time in nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

inline constexpr SimTime nanoseconds(std::int64_t v) { return v; }
inline constexpr SimTime microseconds(std::int64_t v) { return v * 1'000; }
inline constexpr SimTime milliseconds(std::int64_t v) { return v * 1'000'000; }
inline constexpr SimTime seconds(std::int64_t v) { return v * 1'000'000'000; }

/// Converts a duration in (fractional) seconds to ticks, rounding to nearest.
inline constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

inline constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) * 1e-9;
}

inline constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) * 1e-6;
}

inline constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t) * 1e-3;
}

}  // namespace massf
