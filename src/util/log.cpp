#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace massf {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("MASSF_LOG");
  if (!env) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{initial_level()};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[massf %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace detail
}  // namespace massf
