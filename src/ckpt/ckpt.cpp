#include "ckpt/ckpt.hpp"

#include <cstdio>

namespace massf::ckpt {
namespace {

constexpr char kMagic[8] = {'M', 'A', 'S', 'S', 'F', 'C', 'K', 'P'};

void append_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void set_error(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
}

}  // namespace

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

Writer& Checkpoint::add_section(std::string name) {
  sections_.push_back(Section{std::move(name), Writer{}});
  return sections_.back().writer;
}

bool Checkpoint::has_section(std::string_view name) const {
  for (const Section& s : sections_)
    if (s.name == name) return true;
  return false;
}

std::optional<Reader> Checkpoint::section(std::string_view name) const {
  for (const Section& s : sections_)
    if (s.name == name)
      return Reader(s.writer.buffer().data(), s.writer.size());
  return std::nullopt;
}

const std::vector<std::string> Checkpoint::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const Section& s : sections_) names.push_back(s.name);
  return names;
}

std::vector<std::uint8_t> Checkpoint::serialize() const {
  // Payload: per section [u32 name_len][name][u64 body_len][body].
  std::vector<std::uint8_t> payload;
  for (const Section& s : sections_) {
    append_u32(payload, static_cast<std::uint32_t>(s.name.size()));
    payload.insert(payload.end(), s.name.begin(), s.name.end());
    append_u64(payload, s.writer.size());
    const auto& body = s.writer.buffer();
    payload.insert(payload.end(), body.begin(), body.end());
  }

  // Header: magic, version, section count, payload length, payload checksum.
  std::vector<std::uint8_t> out;
  out.reserve(8 + 4 + 4 + 8 + 8 + payload.size());
  out.insert(out.end(), kMagic, kMagic + 8);
  append_u32(out, kFormatVersion);
  append_u32(out, static_cast<std::uint32_t>(sections_.size()));
  append_u64(out, payload.size());
  append_u64(out, fnv1a(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Checkpoint> Checkpoint::parse(const std::uint8_t* data,
                                            std::size_t size,
                                            std::string* error) {
  constexpr std::size_t kHeader = 8 + 4 + 4 + 8 + 8;
  if (size < kHeader) {
    set_error(error, "checkpoint truncated before header");
    return std::nullopt;
  }
  if (std::memcmp(data, kMagic, 8) != 0) {
    set_error(error, "bad magic (not a massf checkpoint)");
    return std::nullopt;
  }
  Reader hdr(data + 8, kHeader - 8);
  const std::uint32_t version = hdr.u32();
  const std::uint32_t count = hdr.u32();
  const std::uint64_t payload_len = hdr.u64();
  const std::uint64_t checksum = hdr.u64();
  if (version != kFormatVersion) {
    set_error(error, "unsupported checkpoint version " + std::to_string(version));
    return std::nullopt;
  }
  if (payload_len != size - kHeader) {
    set_error(error, "payload length mismatch (truncated or trailing bytes)");
    return std::nullopt;
  }
  const std::uint8_t* payload = data + kHeader;
  if (fnv1a(payload, payload_len) != checksum) {
    set_error(error, "payload checksum mismatch (corrupted checkpoint)");
    return std::nullopt;
  }

  Checkpoint ckpt;
  Reader r(payload, payload_len);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str();
    const std::uint64_t body_len = r.u64();
    if (!r.ok() || body_len > r.remaining()) {
      set_error(error, "malformed section table at entry " + std::to_string(i));
      return std::nullopt;
    }
    Writer& w = ckpt.add_section(name);
    w.bytes(payload + (payload_len - r.remaining()), body_len);
    r.skip(body_len);
  }
  if (!r.done()) {
    set_error(error, "trailing bytes after last section");
    return std::nullopt;
  }
  return ckpt;
}

bool Checkpoint::write_file(const std::string& path, std::string* error) const {
  return write_bytes(path, serialize(), error);
}

bool Checkpoint::write_bytes(const std::string& path,
                             const std::vector<std::uint8_t>& bytes,
                             std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    set_error(error, "cannot open " + path + " for writing");
    return false;
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = (std::fclose(f) == 0) && written == bytes.size();
  if (!ok) set_error(error, "short write to " + path);
  return ok;
}

std::optional<Checkpoint> Checkpoint::read_file(const std::string& path,
                                                std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    set_error(error, "cannot open " + path);
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
    bytes.insert(bytes.end(), chunk, chunk + n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    set_error(error, "read error on " + path);
    return std::nullopt;
  }
  return parse(bytes.data(), bytes.size(), error);
}

void Participants::add(std::string name, SaveFn save, LoadFn load) {
  entries_.push_back(Entry{std::move(name), std::move(save), std::move(load)});
}

void Participants::save(Checkpoint& ckpt) const {
  for (const Entry& e : entries_) e.save(ckpt.add_section(e.name));
}

bool Participants::restore(const Checkpoint& ckpt, std::string* error) const {
  for (const Entry& e : entries_) {
    std::optional<Reader> r = ckpt.section(e.name);
    if (!r) {
      set_error(error, "missing section '" + e.name + "'");
      return false;
    }
    if (!e.load(*r)) {
      set_error(error, "section '" + e.name + "' rejected (state shape mismatch)");
      return false;
    }
    if (!r->done()) {
      set_error(error, "section '" + e.name + "' malformed (size mismatch)");
      return false;
    }
  }
  return true;
}

}  // namespace massf::ckpt
