// Deterministic checkpoint/restore container (format `massf.ckpt.v1`).
//
// A checkpoint snapshots the full simulation at a synchronization-window
// boundary — the only instant at which every logical process is quiescent,
// all outboxes are empty, and shared state (routing tables, fault cursors)
// is between mutations. The container is a flat list of named binary
// sections, one per participant (the PDES engine, NetSim, the traffic
// components, routing, fault cursors, the window probe), preceded by a
// fixed header carrying a version tag and an FNV-1a checksum of the whole
// payload, so a torn or corrupted file is rejected before any state is
// touched.
//
// Encoding rules: all integers are little-endian fixed width; doubles are
// bit-cast to std::uint64_t (restore must be bit-identical, so no decimal
// round-trips); containers are length-prefixed. Writers append, readers
// bounds-check every access and latch a failure flag instead of reading
// past the end — a malformed section yields load failure, never UB.
//
// The subsystem deliberately has no knowledge of the components it
// serializes: components implement save(Writer&)/load(Reader&) pairs and a
// driver (Scenario, the chaos harness, a test) lists them in a
// Participants registry keyed by section name. Restoring into a freshly
// constructed stack overwrites exactly the state that can diverge from
// construction, which is what makes a resumed run bit-identical to the
// uninterrupted one (DESIGN.md section 5e).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace massf::ckpt {

inline constexpr std::uint32_t kFormatVersion = 1;

/// FNV-1a over a byte range (the header checksum).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size);

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Bit-exact double encoding (no decimal round trip).
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const std::uint8_t* data, std::size_t size) {
    buf_.insert(buf_.end(), data, data + size);
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked view over a section's bytes. A read past the end latches
/// `ok() == false` and returns zero values; callers check once at the end.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }
  std::uint32_t u32() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ensure(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool skip(std::size_t n) {
    if (!ensure(n)) return false;
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  /// True when the section was consumed exactly (no trailing bytes) and no
  /// read ever ran past the end — the per-section load postcondition.
  bool done() const { return ok_ && pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  bool ensure(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// The container: named sections under a checksummed header.
class Checkpoint {
 public:
  /// Starts a new section; the returned writer stays valid until the next
  /// add_section/serialize call. Section names must be unique.
  Writer& add_section(std::string name);

  bool has_section(std::string_view name) const;
  /// Reader over a section's bytes; nullopt when absent.
  std::optional<Reader> section(std::string_view name) const;

  const std::vector<std::string> section_names() const;

  /// Serializes header + sections (format massf.ckpt.v1).
  std::vector<std::uint8_t> serialize() const;

  /// Parses a serialized container, verifying magic, version, and payload
  /// checksum. On failure returns nullopt and sets `error`.
  static std::optional<Checkpoint> parse(const std::uint8_t* data,
                                         std::size_t size,
                                         std::string* error = nullptr);

  bool write_file(const std::string& path, std::string* error = nullptr) const;
  static std::optional<Checkpoint> read_file(const std::string& path,
                                             std::string* error = nullptr);

  /// Writes an already-serialized image (lets callers that need the byte
  /// count — e.g. for the ckpt.bytes metric — serialize exactly once).
  static bool write_bytes(const std::string& path,
                          const std::vector<std::uint8_t>& bytes,
                          std::string* error = nullptr);

 private:
  struct Section {
    std::string name;
    Writer writer;
  };
  std::vector<Section> sections_;
};

/// An ordered list of named save/load pairs — the driver-side inventory of
/// everything a checkpoint must capture. Restore requires every registered
/// section to be present and to parse cleanly.
class Participants {
 public:
  using SaveFn = std::function<void(Writer&)>;
  using LoadFn = std::function<bool(Reader&)>;

  /// `load` returns false on a semantic mismatch (e.g. LP count changed);
  /// format-level failures are caught via Reader::done() afterwards.
  void add(std::string name, SaveFn save, LoadFn load);

  void save(Checkpoint& ckpt) const;

  /// Restores every participant from `ckpt`; stops at the first failure and
  /// reports the offending section in `error`.
  bool restore(const Checkpoint& ckpt, std::string* error = nullptr) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    SaveFn save;
    LoadFn load;
  };
  std::vector<Entry> entries_;
};

// ---- vector helpers (fixed-width element encodings) ------------------------

template <typename T>
void write_u64_vec(Writer& w, const std::vector<T>& v) {
  w.u64(v.size());
  for (const T& x : v) w.u64(static_cast<std::uint64_t>(x));
}

template <typename T>
bool read_u64_vec(Reader& r, std::vector<T>& v) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ULL << 32)) return false;
  v.resize(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<T>(r.u64());
  return r.ok();
}

inline void write_f64_vec(Writer& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (const double x : v) w.f64(x);
}

inline bool read_f64_vec(Reader& r, std::vector<double>& v) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ULL << 32)) return false;
  v.resize(static_cast<std::size_t>(n));
  for (auto& x : v) x = r.f64();
  return r.ok();
}

inline void write_char_vec(Writer& w, const std::vector<char>& v) {
  w.u64(v.size());
  for (const char x : v) w.u8(static_cast<std::uint8_t>(x));
}

inline bool read_char_vec(Reader& r, std::vector<char>& v) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ULL << 32)) return false;
  v.resize(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<char>(r.u8());
  return r.ok();
}

}  // namespace massf::ckpt
