// The paper's Section 4 experiment in miniature: a large flat (single-AS,
// OSPF-routed) network with HTTP background traffic and a foreground Grid
// application, evaluated under all six mapping approaches. Prints the four
// paper metrics per mapping.
//
//   ./single_as_study [--routers=N] [--engines=N] [--seconds=S]
//                     [--app=scalapack|gridnpb] [--seed=S]
#include <cstdio>
#include <string>

#include "sim/report.hpp"
#include "sim/scenario.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  const massf::Flags flags(argc, argv);

  massf::ScenarioOptions opts;
  opts.num_routers =
      static_cast<std::int32_t>(flags.get_int("routers", 1000));
  opts.num_hosts = opts.num_routers / 2;
  opts.num_clients = opts.num_hosts / 3;
  opts.num_servers = opts.num_hosts / 10;
  opts.num_engines = static_cast<std::int32_t>(flags.get_int("engines", 16));
  opts.end_time = massf::from_seconds(flags.get_double("seconds", 6.0));
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opts.http.think_time_mean_s = 0.5;
  opts.app = flags.get_string("app", "scalapack") == "gridnpb"
                 ? massf::AppKind::kGridNpb
                 : massf::AppKind::kScaLapack;
  opts.num_app_hosts = 18;

  std::printf("single-AS study: %d routers, %d hosts, %d engines, app=%s\n",
              opts.num_routers, opts.num_hosts, opts.num_engines,
              massf::app_kind_name(opts.app));
  massf::Scenario scenario(opts);

  std::printf("%-6s %10s %10s %10s %10s %10s\n", "map", "T(sec)", "MLL(ms)",
              "imbal", "PE", "events");
  for (const massf::MappingKind kind :
       {massf::MappingKind::kTop, massf::MappingKind::kTop2,
        massf::MappingKind::kPlace, massf::MappingKind::kProf,
        massf::MappingKind::kProf2, massf::MappingKind::kHTop,
        massf::MappingKind::kHProf}) {
    const massf::ExperimentResult r = scenario.run(kind);
    std::printf("%-6s %10.3f %10.3f %10.3f %10.3f %10llu\n",
                massf::mapping_kind_name(kind), r.metrics.simulation_time_s,
                massf::to_milliseconds(r.mapping.achieved_mll),
                r.metrics.load_imbalance, r.metrics.parallel_efficiency,
                static_cast<unsigned long long>(r.metrics.total_events));
  }
  return 0;
}
