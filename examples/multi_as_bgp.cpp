// Multi-AS / BGP demonstration: generates an Internet-like topology with
// the maBrite procedure (AS classification, provider/customer/peer
// relationships, automatic import/export policies), solves BGP, and prints
// the routing structure the policies induce — then runs a short simulation
// over it.
//
//   ./multi_as_bgp [--as=N] [--routers-per-as=N] [--seed=S]
#include <cstdio>
#include <map>

#include "routing/bgp.hpp"
#include "sim/report.hpp"
#include "sim/scenario.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace massf;
  const Flags flags(argc, argv);

  ScenarioOptions opts;
  opts.multi_as = true;
  opts.num_as = static_cast<std::int32_t>(flags.get_int("as", 20));
  opts.num_routers = opts.num_as * static_cast<std::int32_t>(
                                       flags.get_int("routers-per-as", 50));
  opts.num_hosts = opts.num_routers / 2;
  opts.num_clients = opts.num_hosts / 4;
  opts.num_servers = opts.num_hosts / 10;
  opts.num_engines = 12;
  opts.end_time = seconds(4);
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  opts.http.think_time_mean_s = 0.5;

  Scenario scenario(opts);
  const Network& net = scenario.network();

  // AS classification summary (paper Section 5.1.2 step 2).
  int counts[3] = {0, 0, 0};
  for (const AsInfo& info : net.as_info) {
    ++counts[static_cast<int>(info.cls)];
  }
  std::printf("AS classification: %d Core, %d Regional ISP, %d Stub\n",
              counts[0], counts[1], counts[2]);

  // Relationship summary.
  int rels[3] = {0, 0, 0};
  for (const AsAdjacency& adj : net.as_adjacency) {
    ++rels[static_cast<int>(adj.rel_ab)];
  }
  std::printf("AS adjacencies: %zu total (%d provider-customer, %d peer)\n",
              net.as_adjacency.size(), rels[0] + rels[1], rels[2]);

  // BGP results: reachability and path-length histogram.
  const BgpSolver* bgp = scenario.forwarding().bgp();
  std::map<int, int> path_lens;
  int reachable = 0, valley_free = 0, pairs = 0;
  for (AsId a = 0; a < net.num_as(); ++a) {
    for (AsId b = 0; b < net.num_as(); ++b) {
      if (a == b) continue;
      ++pairs;
      if (!bgp->reachable(a, b)) continue;
      ++reachable;
      valley_free += bgp->path_is_valley_free(a, b);
      ++path_lens[bgp->route(a, b).path_len];
    }
  }
  std::printf("BGP: %d/%d AS pairs reachable, %d/%d paths valley-free\n",
              reachable, pairs, valley_free, reachable);
  std::printf("AS-path length histogram:\n");
  for (const auto& [len, count] : path_lens) {
    std::printf("  %d hops: %d\n", len, count);
  }

  // An example policy path.
  const std::vector<AsId> path = bgp->as_path(net.num_as() - 1, 0);
  std::printf("example AS path %d -> 0:", net.num_as() - 1);
  for (AsId a : path) std::printf(" %d", a);
  std::printf("\n");

  // Short simulation under HPROF.
  const ExperimentResult r = scenario.run(MappingKind::kHProf);
  std::printf("%s\n", summarize(r).c_str());
  return 0;
}
