// BGP Beacon experiment (the validation study proposed in the paper's
// future work, Section 7): one AS periodically withdraws and re-announces
// its prefix while the full BGP4 protocol runs inside the packet
// simulation; observation points across the AS hierarchy record when each
// change reaches them — the simulated analog of watching a real beacon
// (e.g. the PSG/RIPE beacons) from public route collectors.
//
//   ./bgp_beacon [--as=N] [--period-ms=P] [--toggles=N] [--seed=S]
#include <cstdio>

#include "net/netsim.hpp"
#include "routing/bgp_dynamic.hpp"
#include "routing/forwarding.hpp"
#include "topology/mabrite.hpp"
#include "traffic/manager.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace massf;
  const Flags flags(argc, argv);

  MaBriteOptions mo;
  mo.num_as = static_cast<std::int32_t>(flags.get_int("as", 20));
  mo.routers_per_as = 10;
  mo.num_hosts = 20;
  mo.seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  Network net = generate_multi_as(mo);
  const std::vector<NodeId> speakers_hosts = add_bgp_speaker_hosts(net);

  std::vector<NodeId> dests;
  for (NodeId h : speakers_hosts) {
    dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
  }
  const ForwardingPlane fp = ForwardingPlane::build_multi_as(net, dests);

  EngineOptions eo;
  eo.lookahead = milliseconds(5);
  eo.end_time = seconds(240);
  Engine engine(eo);
  const std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
  NetSim sim(net, fp, map, engine, NetSimOptions{});
  TrafficManager manager(sim);
  auto speakers_ptr = std::make_unique<BgpSpeakers>(net, speakers_hosts,
                                                    BgpDynamicOptions{});
  BgpSpeakers& speakers = *speakers_ptr;
  manager.add(TrafficKind::kBgp, std::move(speakers_ptr));

  const AsId beacon = mo.num_as - 1;
  const SimTime period =
      milliseconds(flags.get_int("period-ms", 20000));
  const auto toggles =
      static_cast<std::int32_t>(flags.get_int("toggles", 4));
  speakers.schedule_beacon(engine, sim, beacon, seconds(10), period, toggles);

  manager.start(engine, sim);
  engine.run();

  std::printf("beacon AS %d: %d toggles every %.1f s starting at t=10 s\n",
              beacon, toggles, to_seconds(period));
  std::printf("protocol traffic: %llu updates in %llu batches;"
              " last table change at t=%.3f s\n",
              static_cast<unsigned long long>(speakers.updates_sent()),
              static_cast<unsigned long long>(speakers.batches_sent()),
              to_seconds(speakers.last_change()));

  std::printf("\nobservation points (when the last beacon event arrived):\n");
  std::printf("%4s %10s %18s %12s\n", "AS", "class", "last_heard(s)",
              "route_now");
  for (AsId a = 0; a < net.num_as(); ++a) {
    if (a == beacon) continue;
    const AsClass cls = net.as_info[static_cast<std::size_t>(a)].cls;
    const char* cls_name = cls == AsClass::kCore
                               ? "core"
                               : (cls == AsClass::kRegional ? "regional"
                                                            : "stub");
    const BgpRoute r = speakers.best_route(a, beacon);
    std::printf("%4d %10s %18.4f %12s\n", a, cls_name,
                to_seconds(speakers.last_change_for(a, beacon)),
                r.next_hop_as >= 0 ? "up" : "withdrawn");
  }
  return 0;
}
