// Observability demo: probe path latencies with echo pings while a
// background HTTP workload runs, then report the most utilized links —
// the simulated analog of ping + SNMP counters on a real network.
//
//   ./network_probe [--routers=N] [--seconds=S]
#include <algorithm>
#include <cstdio>
#include <memory>

#include "net/netsim.hpp"
#include "routing/forwarding.hpp"
#include "topology/brite.hpp"
#include "traffic/cbr.hpp"
#include "traffic/http.hpp"
#include "traffic/manager.hpp"
#include "traffic/ping.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace massf;
  const Flags flags(argc, argv);

  BriteOptions bo;
  bo.num_routers = static_cast<std::int32_t>(flags.get_int("routers", 400));
  bo.num_hosts = 120;
  bo.seed = 23;
  const Network net = generate_flat(bo);
  std::vector<NodeId> hosts, dests;
  for (NodeId h = net.num_routers; h < static_cast<NodeId>(net.nodes.size());
       ++h) {
    hosts.push_back(h);
    dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
  }
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);

  EngineOptions eo;
  eo.lookahead = milliseconds(1);
  eo.end_time = from_seconds(flags.get_double("seconds", 10.0));
  Engine engine(eo);
  const std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
  NetSimOptions no;
  no.collect_link_stats = true;
  NetSim sim(net, fp, map, engine, no);
  TrafficManager manager(sim);

  // Background load.
  HttpOptions ho;
  ho.think_time_mean_s = 0.3;
  std::vector<NodeId> clients(hosts.begin(), hosts.begin() + 80);
  std::vector<NodeId> servers(hosts.begin() + 80, hosts.end());
  manager.add(TrafficKind::kHttp,
              std::make_unique<HttpWorkload>(clients, servers, ho));

  // Halfway through, CBR cross-traffic oversubscribes the target host's
  // access link: the later pings show queueing delay (and possibly loss).
  CbrOptions co;
  co.rate_bps = 4e7;  // 3 x 40 Mbps into a 100 Mbps access link
  co.packet_bytes = 1200;
  co.start_at = from_seconds(to_seconds(eo.end_time) / 2);
  std::vector<CbrWorkload::Stream> streams{{hosts[1], hosts[100]},
                                           {hosts[2], hosts[100]},
                                           {hosts[3], hosts[100]}};
  manager.add(TrafficKind::kCbr,
              std::make_unique<CbrWorkload>(streams, co));

  // Probes: the same pair pinged periodically to watch queueing delay.
  auto probe_ptr = std::make_unique<PingProbe>();
  PingProbe& probe = *probe_ptr;
  manager.add(TrafficKind::kPing, std::move(probe_ptr));
  for (int i = 0; i < 8; ++i) {
    probe.ping(engine, sim, hosts[0], hosts[100],
               milliseconds(200) + seconds(i));
  }

  manager.start(engine, sim);
  engine.run();

  std::printf("ping %d -> %d over %.0f s of background HTTP load:\n",
              hosts[0], hosts[100], to_seconds(eo.end_time));
  for (std::size_t i = 0; i < probe.results().size(); ++i) {
    const auto& r = probe.results()[i];
    if (r.rtt >= 0) {
      std::printf("  t=%5.1fs rtt=%.3f ms\n", to_seconds(r.sent_at),
                  to_milliseconds(r.rtt));
    } else {
      std::printf("  t=%5.1fs lost\n", to_seconds(r.sent_at));
    }
  }

  // Top-5 most utilized directed interfaces.
  struct Util {
    LinkId link;
    int dir;
    double util;
  };
  std::vector<Util> utils;
  for (LinkId l = 0; l < static_cast<LinkId>(net.links.size()); ++l) {
    for (int d = 0; d < 2; ++d) {
      utils.push_back(
          {l, d, sim.link_model().link_utilization(l, d, eo.end_time)});
    }
  }
  std::sort(utils.begin(), utils.end(),
            [](const Util& a, const Util& b) { return a.util > b.util; });
  std::printf("busiest interfaces (mean utilization over the run):\n");
  for (int i = 0; i < 5 && i < static_cast<int>(utils.size()); ++i) {
    const NetLink& l = net.links[static_cast<std::size_t>(utils[i].link)];
    std::printf("  link %d (%d->%d, %.0f Mbps): %.1f%%\n", utils[i].link,
                utils[i].dir == 0 ? l.a : l.b, utils[i].dir == 0 ? l.b : l.a,
                l.bandwidth_bps / 1e6, 100 * utils[i].util);
  }
  return 0;
}
