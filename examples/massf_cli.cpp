// The experiment driver: runs a complete load-balance study from a DML
// configuration file.
//
//   ./massf_cli --template            # print a config template and exit
//   ./massf_cli --config=exp.dml [--mapping=HPROF,TOP2]
//   ./massf_cli --help                # the full flag table
//
// Every flag is declared once in the FlagTable below (name, type, default,
// help, validator); the parser and the --help screen are generated from
// that single declaration. Validation errors carry the argv position
// ("arg N (--flag=value): what") and exit 2.
//
// Checkpoint/restore (format massf.ckpt.v1, DESIGN.md section 5e):
//   --ckpt-every=N --ckpt-path=f.ckpt [--ckpt-stop]   # snapshot every N
//                                                     # windows (optionally
//                                                     # stop at the first)
//   --restore=f.ckpt                                  # resume from snapshot
// Both require exactly one --mapping: a checkpoint captures one run, and a
// restored run must rebuild the identical stack before loading it.
//
// Fault injection: --faults=schedule.txt compiles a fault schedule (the
// line-based format of fault/fault.hpp) into the run.
//
// Online rebalancing (DESIGN.md section 5f): --rebalance enables the LP
// migration controller; --rebalance-threshold / --rebalance-every /
// --rebalance-sustain / --rebalance-max-moves tune it.
//
// Supervised runs (DESIGN.md section 5h): --guard arms a liveness watchdog
// over every measured run; on a no-progress deadline it dumps a stall
// diagnostic (--guard-dump) and, under --guard-policy=recover, cancels the
// run and retries down the degradation ladder — restoring the latest
// checkpoint when --ckpt-every/--ckpt-path are armed.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fault/injector.hpp"
#include "guard/guarded_run.hpp"
#include "obs/metrics.hpp"
#include "sim/report.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_config.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"

namespace {

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace massf;

  FlagTable flags("massf_cli",
                  "Runs a load-balance study from a DML configuration.");
  flags.add_bool("template", false,
                 "print a DML config template and exit");
  flags.add_string("config", "", "DML experiment configuration file");
  flags.add_string("mapping", "",
                   "comma-separated mapping kinds (default: HPROF,PROF2,"
                   "HTOP,TOP2)");
  flags.add_int("ckpt-every", 0,
                "checkpoint every N sync windows (0 = off)",
                [](std::int64_t v) {
                  return v >= 0 ? "" : "must be >= 0";
                });
  flags.add_string("ckpt-path", "", "checkpoint file to write");
  flags.add_bool("ckpt-stop", false, "stop after the first checkpoint");
  flags.add_string("restore", "", "checkpoint file to resume from");
  flags.add_string("faults", "",
                   "fault schedule file (link flaps, crashes, loss bursts)");
  flags.add_bool("rebalance", false,
                 "enable online LP rebalancing at window boundaries");
  flags.add_double("rebalance-threshold", 1.25,
                   "trigger when max/avg engine load exceeds this",
                   [](double v) {
                     return v >= 1.0 ? "" : "must be >= 1.0";
                   });
  flags.add_int("rebalance-every", 64,
                "check imbalance every N sync windows",
                [](std::int64_t v) {
                  return v >= 1 ? "" : "must be >= 1";
                });
  flags.add_int("rebalance-sustain", 2,
                "consecutive over-threshold checks before migrating",
                [](std::int64_t v) {
                  return v >= 1 ? "" : "must be >= 1";
                });
  flags.add_int("rebalance-max-moves", 8,
                "max routers migrated per trigger",
                [](std::int64_t v) {
                  return v >= 1 ? "" : "must be >= 1";
                });
  flags.add_bool("guard", guard::default_guard_options().enabled,
                 "arm the liveness watchdog over every run (MASSF_GUARD=1 "
                 "flips this default)");
  flags.add_double("guard-deadline",
                   guard::default_guard_options().stall_deadline_s,
                   "seconds without progress before declaring a stall",
                   [](double v) { return v > 0 ? "" : "must be > 0"; });
  flags.add_string("guard-dump", "guard_stall.json",
                   "stall diagnostic JSON file (empty = stderr only)");
  flags.add_string("guard-policy", "recover",
                   "on stall: 'recover' (cancel + retry ladder) or 'abort'",
                   [](const std::string& v) {
                     return v == "recover" || v == "abort"
                                ? ""
                                : "must be 'recover' or 'abort'";
                   });
  flags.add_int("guard-retries", 1,
                "same-configuration retries before degrading",
                [](std::int64_t v) {
                  return v >= 0 ? "" : "must be >= 0";
                });
  flags.parse_or_exit(argc, argv);

  if (flags.get_bool("template")) {
    ScenarioOptions defaults;
    defaults.app = AppKind::kScaLapack;
    std::fputs(write_dml(scenario_options_to_dml(defaults)).c_str(), stdout);
    return 0;
  }

  ScenarioOptions opts;
  if (flags.set("config")) {
    std::ifstream in(flags.get_string("config"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n",
                   flags.get_string("config").c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    DmlParseError perr;
    const auto root = parse_dml(buf.str(), &perr);
    if (!root) {
      std::fprintf(stderr, "config parse error at line %d: %s\n", perr.line,
                   perr.message.c_str());
      return 1;
    }
    std::string error;
    const auto parsed = scenario_options_from_dml(*root, &error);
    if (!parsed) {
      std::fprintf(stderr, "bad config: %s\n", error.c_str());
      return 1;
    }
    opts = *parsed;
  } else {
    std::fprintf(stderr,
                 "no --config given; using built-in defaults "
                 "(print one with --template)\n");
    opts.num_routers = 800;
    opts.num_hosts = 400;
    opts.num_clients = 120;
    opts.num_servers = 30;
    opts.num_engines = 12;
    opts.end_time = seconds(5);
    opts.app = AppKind::kScaLapack;
  }

  std::vector<MappingKind> kinds;
  if (flags.set("mapping")) {
    std::stringstream ss(flags.get_string("mapping"));
    std::string name;
    while (std::getline(ss, name, ',')) {
      const auto k = mapping_kind_from_name(name);
      if (!k) {
        std::fprintf(stderr, "unknown mapping '%s'\n", name.c_str());
        return 1;
      }
      kinds.push_back(*k);
    }
  } else {
    kinds = {MappingKind::kHProf, MappingKind::kProf2, MappingKind::kHTop,
             MappingKind::kTop2};
  }

  CkptOptions ckpt;
  ckpt.every_windows = static_cast<std::uint64_t>(flags.get_int("ckpt-every"));
  ckpt.path = flags.get_string("ckpt-path");
  ckpt.stop_after = flags.get_bool("ckpt-stop");
  ckpt.restore_path = flags.get_string("restore");
  if (ckpt.every_windows > 0 && ckpt.path.empty()) {
    std::fprintf(stderr, "--ckpt-every requires --ckpt-path\n");
    return 1;
  }
  if ((ckpt.every_windows > 0 || !ckpt.restore_path.empty()) &&
      kinds.size() != 1) {
    std::fprintf(stderr,
                 "checkpoint/restore requires exactly one --mapping "
                 "(a snapshot captures a single run)\n");
    return 1;
  }
  opts.ckpt = ckpt;

  const bool guarded = flags.get_bool("guard");
  opts.guard.enabled = guarded;
  opts.guard.stall_deadline_s = flags.get_double("guard-deadline");
  opts.guard.dump_path = flags.get_string("guard-dump");
  opts.guard.on_stall = flags.get_string("guard-policy") == "abort"
                            ? guard::OnStall::kAbort
                            : guard::OnStall::kCancel;

  opts.rebalance.enabled = flags.get_bool("rebalance");
  opts.rebalance.threshold = flags.get_double("rebalance-threshold");
  opts.rebalance.every_windows =
      static_cast<std::uint64_t>(flags.get_int("rebalance-every"));
  opts.rebalance.sustain =
      static_cast<std::int32_t>(flags.get_int("rebalance-sustain"));
  opts.rebalance.max_moves =
      static_cast<std::int32_t>(flags.get_int("rebalance-max-moves"));

  FaultSchedule faults;
  if (flags.set("faults")) {
    std::ifstream in(flags.get_string("faults"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n",
                   flags.get_string("faults").c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    const auto parsed = parse_fault_schedule(buf.str(), &error);
    if (!parsed) {
      std::fprintf(stderr, "fault schedule error: %s\n", error.c_str());
      return 1;
    }
    faults = *parsed;
  }

  std::printf("experiment: %s, %d routers, %d hosts, %d engines, app=%s, "
              "%.1f virtual seconds\n",
              opts.multi_as ? "multi-AS" : "single-AS", opts.num_routers,
              opts.num_hosts, opts.num_engines, app_kind_name(opts.app),
              to_seconds(opts.end_time));
  Scenario scenario(opts);

  // The injector lives a layer above the Scenario (fault -> sim), so it is
  // attached through the pre-run callback, which hands us the engine and
  // NetSim of the measured run right before it executes.
  std::unique_ptr<FaultInjector> injector;
  if (!faults.events().empty()) {
    injector = std::make_unique<FaultInjector>(scenario.network(),
                                               scenario.forwarding_mut());
    FaultSchedule* sched = &faults;
    FaultInjector* inj = injector.get();
    scenario.set_pre_run([inj, sched](Engine& engine, NetSim& sim) {
      inj->arm(engine, sim, *sched);
    });
  }

  // Recovery metrics (guard.* schema): the GuardedRun wrapper and the
  // watchdog both record into this registry.
  obs::Registry guard_registry;

  std::printf("%-7s %10s %9s %9s %8s %12s\n", "mapping", "T(sec)", "MLL(ms)",
              "imbal", "PE", "events");
  for (const MappingKind kind : kinds) {
    ExperimentResult r;
    if (guarded && opts.guard.on_stall == guard::OnStall::kCancel) {
      // Supervised execution: each attempt re-runs the scenario under the
      // plan's configuration, resuming from the newest checkpoint once one
      // exists. Recovery replays bit-identical state, so a recovered run
      // reports the same results as an uninterrupted one.
      bool have_result = false;
      guard::GuardedRun::Options gro;
      gro.max_retries =
          static_cast<int>(flags.get_int("guard-retries"));
      guard::GuardedRun runner(gro, &guard_registry);
      const auto report = runner.run(
          opts.sync, opts.executor_threads,
          [&](const guard::AttemptPlan& plan) -> guard::AttemptOutcome {
            scenario.set_sync(plan.sync);
            scenario.set_executor_threads(plan.threads);
            CkptOptions attempt_ckpt = ckpt;
            if (plan.restore && !attempt_ckpt.path.empty() &&
                file_exists(attempt_ckpt.path)) {
              attempt_ckpt.restore_path = attempt_ckpt.path;
            }
            scenario.set_ckpt(attempt_ckpt);
            try {
              r = scenario.run(kind);
            } catch (const EngineError& e) {
              if (e.category() == ErrorCategory::kInternal) throw;
              return {guard::AttemptStatus::kFailed, e.what()};
            }
            if (scenario.last_run_cancelled()) {
              return {guard::AttemptStatus::kStalled,
                      "watchdog cancelled the run"};
            }
            have_result = true;
            return {guard::AttemptStatus::kCompleted, ""};
          });
      if (!have_result) {
        std::fprintf(stderr, "guarded run failed permanently: %s\n",
                     report.last_error.c_str());
        return 1;
      }
      if (report.attempts > 1) {
        std::printf(
            "        guard: recovered after %d attempts "
            "(stalls=%llu errors=%llu rung=%d)\n",
            report.attempts,
            static_cast<unsigned long long>(report.stalls),
            static_cast<unsigned long long>(report.errors),
            report.degraded_rung);
      }
    } else {
      r = scenario.run(kind);
    }
    std::printf("%-7s %10.3f %9.3f %9.3f %8.3f %12llu\n",
                mapping_kind_name(kind), r.metrics.simulation_time_s,
                to_milliseconds(r.mapping.achieved_mll),
                r.metrics.load_imbalance, r.metrics.parallel_efficiency,
                static_cast<unsigned long long>(r.metrics.total_events));
    if (injector != nullptr) {
      std::printf("        faults injected: %llu\n",
                  static_cast<unsigned long long>(
                      injector->faults_injected()));
    }
  }
  return 0;
}
