// The experiment driver: runs a complete load-balance study from a
// declarative scenario file.
//
//   ./massf_cli --template            # print a scenario template and exit
//   ./massf_cli --config=exp.dml [--mapping=HPROF,TOP2]
//   ./massf_cli --help                # the full flag table
//
// The scenario file (sim/scenario_config.hpp) describes the whole
// experiment — topology scale, traffic mix, fault schedule, rebalance /
// checkpoint / guard policy, mapping run list. Every run-control flag
// below maps onto a scenario atom (the shared declaration lives in
// add_run_control_flags); flags the user explicitly passes override the
// file. Validation errors carry the argv position ("arg N
// (--flag=value): what") and exit 2.
//
// Checkpoint/restore (format massf.ckpt.v1, DESIGN.md section 5e):
//   --ckpt-every=N --ckpt-path=f.ckpt [--ckpt-stop]   # snapshot every N
//   --restore=f.ckpt                                  # resume from snapshot
// Both require exactly one mapping: a checkpoint captures one run, and a
// restored run must rebuild the identical stack before loading it.
//
// Fault injection: embed a faults [ ] block in the scenario, or pass
// --faults=schedule.txt (the line-based format of fault/fault.hpp).
//
// Online rebalancing (DESIGN.md section 5f): --rebalance enables the LP
// migration controller; --rebalance-threshold / --rebalance-every /
// --rebalance-sustain / --rebalance-max-moves tune it.
//
// Supervised runs (DESIGN.md section 5h): --guard arms a liveness watchdog
// over every measured run; on a no-progress deadline it dumps a stall
// diagnostic (--guard-dump) and, under --guard-policy=recover, cancels the
// run and retries down the degradation ladder — restoring the latest
// checkpoint when --ckpt-every/--ckpt-path are armed.
#include <cstdio>
#include <fstream>
#include <memory>

#include "fault/injector.hpp"
#include "guard/guarded_run.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_config.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"

namespace {

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace massf;

  FlagTable flags("massf_cli",
                  "Runs a load-balance study from a scenario file.");
  flags.add_bool("template", false,
                 "print a scenario file template and exit");
  flags.add_string("config", "", "scenario DML file");
  add_run_control_flags(flags);
  flags.parse_or_exit(argc, argv);

  if (flags.get_bool("template")) {
    ScenarioSpec defaults;
    defaults.name = "template";
    defaults.options.app = AppKind::kScaLapack;
    std::fputs(write_dml(scenario_spec_to_dml(defaults)).c_str(), stdout);
    return 0;
  }

  ScenarioSpec spec;
  if (flags.set("config")) {
    std::string error;
    const auto parsed = load_scenario_file(flags.get_string("config"), &error);
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", flags.get_string("config").c_str(),
                   error.c_str());
      return 1;
    }
    spec = *parsed;
  } else {
    std::fprintf(stderr,
                 "no --config given; using built-in defaults "
                 "(print one with --template)\n");
    spec.options.num_routers = 800;
    spec.options.num_hosts = 400;
    spec.options.num_clients = 120;
    spec.options.num_servers = 30;
    spec.options.num_engines = 12;
    spec.options.end_time = seconds(5);
    spec.options.app = AppKind::kScaLapack;
    // The historical CLI default study: the four headline mappings.
    spec.mappings = {MappingKind::kHProf, MappingKind::kProf2,
                     MappingKind::kHTop, MappingKind::kTop2};
  }

  std::string error;
  if (!apply_run_control_flags(flags, &spec, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  ScenarioOptions& opts = spec.options;
  if ((opts.ckpt.every_windows > 0 || !opts.ckpt.restore_path.empty()) &&
      spec.mappings.size() != 1) {
    std::fprintf(stderr,
                 "checkpoint/restore requires exactly one mapping "
                 "(a snapshot captures a single run)\n");
    return 1;
  }

  std::printf("experiment: %s, %d routers, %d hosts, %d engines, app=%s, "
              "%.1f virtual seconds\n",
              opts.multi_as ? "multi-AS" : "single-AS", opts.num_routers,
              opts.num_hosts, opts.num_engines, app_kind_name(opts.app),
              to_seconds(opts.end_time));
  Scenario scenario(opts);

  // The injector lives a layer above the Scenario (fault -> sim), so it is
  // attached through the pre-run callback, which hands us the engine and
  // NetSim of the measured run right before it executes.
  std::unique_ptr<FaultInjector> injector;
  if (!spec.faults.empty()) {
    injector = std::make_unique<FaultInjector>(scenario.network(),
                                               scenario.forwarding_mut());
    const FaultSchedule* sched = &spec.faults;
    FaultInjector* inj = injector.get();
    scenario.set_pre_run([inj, sched](Engine& engine, NetSim& sim) {
      inj->arm(engine, sim, *sched);
    });
  }

  // Recovery metrics (guard.* schema): the GuardedRun wrapper and the
  // watchdog both record into this registry.
  obs::Registry guard_registry;

  std::printf("%-7s %10s %9s %9s %8s %12s\n", "mapping", "T(sec)", "MLL(ms)",
              "imbal", "PE", "events");
  for (const MappingKind kind : spec.mappings) {
    ExperimentResult r;
    if (opts.guard.enabled &&
        opts.guard.on_stall == guard::OnStall::kCancel) {
      // Supervised execution: each attempt re-runs the scenario under the
      // plan's configuration, resuming from the newest checkpoint once one
      // exists. Recovery replays bit-identical state, so a recovered run
      // reports the same results as an uninterrupted one.
      bool have_result = false;
      guard::GuardedRun::Options gro;
      gro.max_retries = spec.guard_retries;
      guard::GuardedRun runner(gro, &guard_registry);
      const auto report = runner.run(
          opts.sync, opts.executor_threads,
          [&](const guard::AttemptPlan& plan) -> guard::AttemptOutcome {
            scenario.set_sync(plan.sync);
            scenario.set_executor_threads(plan.threads);
            CkptOptions attempt_ckpt = opts.ckpt;
            if (plan.restore && !attempt_ckpt.path.empty() &&
                file_exists(attempt_ckpt.path)) {
              attempt_ckpt.restore_path = attempt_ckpt.path;
            }
            scenario.set_ckpt(attempt_ckpt);
            try {
              r = scenario.run(kind);
            } catch (const EngineError& e) {
              if (e.category() == ErrorCategory::kInternal) throw;
              return {guard::AttemptStatus::kFailed, e.what()};
            }
            if (scenario.last_run_cancelled()) {
              return {guard::AttemptStatus::kStalled,
                      "watchdog cancelled the run"};
            }
            have_result = true;
            return {guard::AttemptStatus::kCompleted, ""};
          });
      if (!have_result) {
        std::fprintf(stderr, "guarded run failed permanently: %s\n",
                     report.last_error.c_str());
        return 1;
      }
      if (report.attempts > 1) {
        std::printf(
            "        guard: recovered after %d attempts "
            "(stalls=%llu errors=%llu rung=%d)\n",
            report.attempts,
            static_cast<unsigned long long>(report.stalls),
            static_cast<unsigned long long>(report.errors),
            report.degraded_rung);
      }
    } else {
      r = scenario.run(kind);
    }
    std::printf("%-7s %10.3f %9.3f %9.3f %8.3f %12llu\n",
                mapping_kind_name(kind), r.metrics.simulation_time_s,
                to_milliseconds(r.mapping.achieved_mll),
                r.metrics.load_imbalance, r.metrics.parallel_efficiency,
                static_cast<unsigned long long>(r.metrics.total_events));
    if (injector != nullptr) {
      std::printf("        faults injected: %llu\n",
                  static_cast<unsigned long long>(
                      injector->faults_injected()));
    }
  }
  return 0;
}
