// The experiment driver: runs a complete load-balance study from a DML
// configuration file.
//
//   ./massf_cli --template            # print a config template and exit
//   ./massf_cli --config=exp.dml [--mapping=HPROF,TOP2] [--all-metrics]
//
// With no --mapping, runs the paper's main four (HPROF, PROF2, HTOP, TOP2).
//
// Checkpoint/restore (format massf.ckpt.v1, DESIGN.md section 5e):
//   --ckpt-every=N --ckpt-path=f.ckpt [--ckpt-stop]   # snapshot every N
//                                                     # windows (optionally
//                                                     # stop at the first)
//   --restore=f.ckpt                                  # resume from snapshot
// Both require exactly one --mapping: a checkpoint captures one run, and a
// restored run must rebuild the identical stack before loading it.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/report.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_config.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace massf;
  const Flags flags(argc, argv);

  if (flags.get_bool("template", false)) {
    ScenarioOptions defaults;
    defaults.app = AppKind::kScaLapack;
    std::fputs(write_dml(scenario_options_to_dml(defaults)).c_str(), stdout);
    return 0;
  }

  ScenarioOptions opts;
  if (flags.has("config")) {
    std::ifstream in(flags.get_string("config", ""));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n",
                   flags.get_string("config", "").c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    DmlParseError perr;
    const auto root = parse_dml(buf.str(), &perr);
    if (!root) {
      std::fprintf(stderr, "config parse error at line %d: %s\n", perr.line,
                   perr.message.c_str());
      return 1;
    }
    std::string error;
    const auto parsed = scenario_options_from_dml(*root, &error);
    if (!parsed) {
      std::fprintf(stderr, "bad config: %s\n", error.c_str());
      return 1;
    }
    opts = *parsed;
  } else {
    std::fprintf(stderr,
                 "no --config given; using built-in defaults "
                 "(print one with --template)\n");
    opts.num_routers = 800;
    opts.num_hosts = 400;
    opts.num_clients = 120;
    opts.num_servers = 30;
    opts.num_engines = 12;
    opts.end_time = seconds(5);
    opts.app = AppKind::kScaLapack;
  }

  std::vector<MappingKind> kinds;
  if (flags.has("mapping")) {
    std::stringstream ss(flags.get_string("mapping", ""));
    std::string name;
    while (std::getline(ss, name, ',')) {
      const auto k = mapping_kind_from_name(name);
      if (!k) {
        std::fprintf(stderr, "unknown mapping '%s'\n", name.c_str());
        return 1;
      }
      kinds.push_back(*k);
    }
  } else {
    kinds = {MappingKind::kHProf, MappingKind::kProf2, MappingKind::kHTop,
             MappingKind::kTop2};
  }

  CkptOptions ckpt;
  ckpt.every_windows =
      static_cast<std::uint64_t>(flags.get_int("ckpt-every", 0));
  ckpt.path = flags.get_string("ckpt-path", "");
  ckpt.stop_after = flags.get_bool("ckpt-stop", false);
  ckpt.restore_path = flags.get_string("restore", "");
  if (ckpt.every_windows > 0 && ckpt.path.empty()) {
    std::fprintf(stderr, "--ckpt-every requires --ckpt-path\n");
    return 1;
  }
  if ((ckpt.every_windows > 0 || !ckpt.restore_path.empty()) &&
      kinds.size() != 1) {
    std::fprintf(stderr,
                 "checkpoint/restore requires exactly one --mapping "
                 "(a snapshot captures a single run)\n");
    return 1;
  }
  opts.ckpt = ckpt;

  std::printf("experiment: %s, %d routers, %d hosts, %d engines, app=%s, "
              "%.1f virtual seconds\n",
              opts.multi_as ? "multi-AS" : "single-AS", opts.num_routers,
              opts.num_hosts, opts.num_engines, app_kind_name(opts.app),
              to_seconds(opts.end_time));
  Scenario scenario(opts);
  std::printf("%-7s %10s %9s %9s %8s %12s\n", "mapping", "T(sec)", "MLL(ms)",
              "imbal", "PE", "events");
  for (const MappingKind kind : kinds) {
    const ExperimentResult r = scenario.run(kind);
    std::printf("%-7s %10.3f %9.3f %9.3f %8.3f %12llu\n",
                mapping_kind_name(kind), r.metrics.simulation_time_s,
                to_milliseconds(r.mapping.achieved_mll),
                r.metrics.load_imbalance, r.metrics.parallel_efficiency,
                static_cast<unsigned long long>(r.metrics.total_events));
  }
  return 0;
}
