// The hierarchical partitioning algorithm on its own: builds a network,
// prepares the partitioner input graph, and walks the Tmll sweep printing
// every candidate's contracted size, achieved MLL, and evaluator terms —
// then reports the chosen partition. A compact view of how HPROF trades
// parallelism (many clusters) against decoupling (large MLL).
//
//   ./hierarchical_partition_demo [--routers=N] [--engines=N]
#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>

#include "graph/union_find.hpp"
#include "lb/graph_prep.hpp"
#include "lb/hierarchical.hpp"
#include "partition/partition.hpp"
#include "topology/brite.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace massf;
  const Flags flags(argc, argv);

  BriteOptions bo;
  bo.num_routers = static_cast<std::int32_t>(flags.get_int("routers", 2000));
  bo.num_hosts = 100;
  bo.seed = 3;
  const Network net = generate_flat(bo);

  MappingOptions mo;
  mo.num_engines = static_cast<std::int32_t>(flags.get_int("engines", 32));
  mo.cluster.num_engine_nodes = mo.num_engines;

  std::vector<std::int64_t> lats;
  const Graph g = prepare_graph(net, MappingKind::kTop, nullptr, mo, &lats);
  const SimTime sync = mo.cluster.sync_cost_time(mo.num_engines);
  std::printf("graph: %d vertices, %d edges; %d engines, sync=%.3f ms\n",
              g.num_vertices(), g.num_edges(), mo.num_engines,
              to_milliseconds(sync));

  std::printf("%8s %9s %8s %7s %7s %7s\n", "Tmll(ms)", "clusters",
              "MLL(ms)", "Es", "Ec", "E");
  std::vector<EdgeId> order(static_cast<std::size_t>(g.num_edges()));
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return lats[static_cast<std::size_t>(a)] <
           lats[static_cast<std::size_t>(b)];
  });
  UnionFind uf(g.num_vertices());
  std::size_t cursor = 0;
  for (SimTime tmll = (sync / mo.tmll_step + 1) * mo.tmll_step;
       tmll <= milliseconds(8); tmll += mo.tmll_step) {
    while (cursor < order.size() &&
           lats[static_cast<std::size_t>(order[cursor])] < tmll) {
      uf.unite(g.edge_u(order[cursor]), g.edge_v(order[cursor]));
      ++cursor;
    }
    if (uf.num_sets() < mo.num_engines) break;
    const auto cluster = uf.compress();
    std::vector<EdgeId> origin;
    const Graph dumped = contract(g, cluster, uf.num_sets(), lats, &origin);
    std::vector<std::int64_t> dlat(origin.size());
    for (std::size_t i = 0; i < origin.size(); ++i) {
      dlat[i] = lats[static_cast<std::size_t>(origin[i])];
    }
    PartitionOptions popt;
    popt.num_parts = mo.num_engines;
    const PartitionResult pr = partition_graph(dumped, popt);
    SimTime mll = min_cut_edge_aux(dumped, pr.part, dlat);
    if (mll == std::numeric_limits<std::int64_t>::max()) mll = tmll;
    const PartitionScore s = score_partition(mll, sync, pr.part_weights);
    std::printf("%8.2f %9d %8.3f %7.3f %7.3f %7.3f\n",
                to_milliseconds(tmll), dumped.num_vertices(),
                to_milliseconds(mll), s.es, s.ec, s.e);
  }

  const auto best = hierarchical_partition(g, lats, mo);
  if (best) {
    std::printf("\nchosen: Tmll=%.2f ms, achieved MLL=%.3f ms, E=%.3f"
                " (%d candidates)\n",
                to_milliseconds(best->tmll),
                to_milliseconds(best->achieved_mll), best->score.e,
                best->candidates_tried);
  } else {
    std::printf("\nno admissible threshold; flat partition required\n");
  }
  return 0;
}
