// Quickstart: generate a small flat network, compare two load-balance
// mappings (TOP2 vs HPROF), and print the paper's four metrics for each.
//
//   ./quickstart [--routers=N] [--engines=N] [--seconds=S] [--seed=S]
#include <cstdio>

#include "sim/report.hpp"
#include "sim/scenario.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  const massf::Flags flags(argc, argv);

  massf::ScenarioOptions opts;
  opts.num_routers =
      static_cast<std::int32_t>(flags.get_int("routers", 500));
  opts.num_hosts = opts.num_routers / 2;
  opts.num_clients = opts.num_hosts / 4;
  opts.num_servers = opts.num_hosts / 10;
  opts.num_engines =
      static_cast<std::int32_t>(flags.get_int("engines", 8));
  opts.end_time = massf::from_seconds(flags.get_double("seconds", 5.0));
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  opts.app = massf::AppKind::kScaLapack;
  opts.num_app_hosts = 16;

  std::printf("building %d-router network, %d hosts, %d engines...\n",
              opts.num_routers, opts.num_hosts, opts.num_engines);
  massf::Scenario scenario(opts);

  for (const massf::MappingKind kind :
       {massf::MappingKind::kTop2, massf::MappingKind::kHProf}) {
    const massf::ExperimentResult r = scenario.run(kind);
    std::printf("%s\n", massf::summarize(r).c_str());
    std::printf(
        "    forwarded=%llu delivered=%llu drops(queue)=%llu "
        "retransmits=%llu flows=%llu/%llu\n",
        static_cast<unsigned long long>(r.counters.forwarded),
        static_cast<unsigned long long>(r.counters.delivered),
        static_cast<unsigned long long>(r.counters.dropped_queue),
        static_cast<unsigned long long>(r.counters.retransmits),
        static_cast<unsigned long long>(r.counters.flows_completed),
        static_cast<unsigned long long>(r.counters.flows_started));
  }
  return 0;
}
