// Multi-process executor launcher (DESIGN.md section 5j).
//
// Runs the pinned calibration ring (the bench_pdes / campaign-golden
// workload) across N worker processes and checks the executor-equality
// contract: the sharded run must reproduce the sequential golden checksum
// bit-identically. Two launch modes:
//
//   --mode=fork   (default) fork one worker per shard over an anonymous
//                 shared mapping; supervision rides the guard subsystem —
//                 watchdog per worker, structured EngineError propagation
//                 from the control page, degradation ladder down to the
//                 single-process reference executor (disable with
//                 --fallback=0).
//   --mode=exec   the campaign-runner idiom: the launcher re-invokes
//                 itself per shard with `--shard-worker=K --shard-shm=P`
//                 appended, workers attach the file-backed segment by
//                 path. On failure the launcher falls back to a
//                 single-process run (unless --fallback=0).
//
// With --ckpt-dir/--ckpt-every the workers write per-shard checkpoints
// (shard-<k>.ckpt) every that many windows; the fallback rung restores
// from the set (ShardDriver::restore_from_shards). The --kill-* flags
// inject a worker SIGKILL for supervision/recovery drills; pair them with
// --ring-dump to capture the control page + ring cursors on failure.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "campaign/golden.hpp"
#include "ckpt/ckpt.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "shard/supervisor.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"

namespace {

using namespace massf;

struct RingSpec {
  std::int64_t lps = 32;
  std::int64_t chain = 64;
  std::int64_t hops = 2000;
};

constexpr std::int32_t kEvHop = 1;
constexpr std::int32_t kEvLocal = 2;

class RingLp final : public LogicalProcess {
 public:
  RingLp(LpId next, std::int64_t chain) : next_(next), chain_(chain) {}

  void handle(Engine& engine, const Event& ev) override {
    checksum =
        checksum * 1099511628211ULL + static_cast<std::uint64_t>(ev.time);
    if (ev.type == kEvHop) {
      if (ev.a > 0) {
        engine.schedule(next_, ev.time + engine.options().lookahead, kEvHop,
                        ev.a - 1);
      }
      if (chain_ > 0) {
        engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                        kEvLocal, static_cast<std::uint64_t>(chain_ - 1));
      }
    } else if (ev.a > 0) {
      engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                      kEvLocal, ev.a - 1);
    }
  }

  // The fold is LP state: without it a checkpoint-restored run resumes
  // the trace correctly but loses the prefix already folded in.
  void save(ckpt::Writer& w) const override { w.u64(checksum); }
  bool load(ckpt::Reader& r) override {
    checksum = r.u64();
    return r.ok();
  }

  std::uint64_t checksum = 0;

 private:
  LpId next_;
  std::int64_t chain_;
};

shard::ShardWorkload build_ring(const RingSpec& spec) {
  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = seconds(3600);
  auto engine = std::make_unique<Engine>(o);
  auto lps = std::make_shared<std::vector<RingLp*>>();
  for (std::int64_t i = 0; i < spec.lps; ++i) {
    auto lp = std::make_unique<RingLp>(
        static_cast<LpId>((i + 1) % spec.lps), spec.chain);
    lps->push_back(lp.get());
    engine->add_lp(std::move(lp));
  }
  for (std::int64_t i = 0; i < spec.lps; ++i) {
    engine->schedule(static_cast<LpId>(i), 0, kEvHop,
                     static_cast<std::uint64_t>(spec.hops));
  }
  shard::ShardWorkload w;
  w.engine = std::move(engine);
  w.lp_checksum = [lps](LpId i) {
    return (*lps)[static_cast<std::size_t>(i)]->checksum;
  };
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  FlagTable flags("massf_shard",
                  "Runs the calibration ring across worker processes and "
                  "checks sharded == sequential bit-equality.");
  flags.add_int("shards", 2, "worker processes");
  flags.add_string("mode", "fork", "fork | exec (self-exec workers)");
  flags.add_int("lps", 32, "ring LPs");
  flags.add_int("chain", 64, "same-window self-chain length per hop");
  flags.add_int("hops", 2000, "cross-LP hops seeded per LP");
  flags.add_int("ring-bytes", 1 << 16, "per-directed-pair ring capacity");
  flags.add_double("stall-deadline", 30.0,
                   "seconds without progress before the run is killed");
  flags.add_string("ckpt-dir", "", "per-shard checkpoint directory (\"\" = off)");
  flags.add_int("ckpt-every", 0, "checkpoint every N windows (0 = off)");
  flags.add_string("ring-dump", "",
                   "write control page + ring cursors here on failure");
  flags.add_bool("fallback", true,
                 "degrade to the single-process executor on failure");
  flags.add_int("retries", 1, "same-configuration retries before degrading");
  flags.add_bool("expect-golden", true,
                 "fail unless the checksum matches the pinned golden value "
                 "(only meaningful at the default workload shape)");
  flags.add_string("out", "", "write run metrics JSON here (\"\" = stderr only)");
  flags.add_int("kill-shard", -1, "chaos: worker to SIGKILL (-1 = off)");
  flags.add_int("kill-after-windows", 0, "chaos: SIGKILL after N windows");
  flags.add_bool("kill-in-send", false,
                 "chaos: SIGKILL one frame into a cross-shard batch");
  flags.add_int("shard-worker", -1, "internal: exec-mode worker index");
  flags.add_string("shard-shm", "", "internal: exec-mode segment path");
  flags.parse_or_exit(argc, argv);

  RingSpec spec;
  spec.lps = flags.get_int("lps");
  spec.chain = flags.get_int("chain");
  spec.hops = flags.get_int("hops");

  shard::ShardOptions opts;
  opts.shards = static_cast<std::int32_t>(flags.get_int("shards"));
  opts.ring_bytes = static_cast<std::uint64_t>(flags.get_int("ring-bytes"));
  opts.stall_deadline_s = flags.get_double("stall-deadline");
  opts.ckpt_dir = flags.get_string("ckpt-dir");
  opts.ckpt_every = static_cast<std::uint64_t>(flags.get_int("ckpt-every"));
  opts.ring_dump_path = flags.get_string("ring-dump");
  opts.fallback = flags.get_bool("fallback");
  opts.max_retries = static_cast<int>(flags.get_int("retries"));
  opts.kill_shard = static_cast<std::int32_t>(flags.get_int("kill-shard"));
  opts.kill_after_windows =
      static_cast<std::uint64_t>(flags.get_int("kill-after-windows"));
  opts.kill_in_send = flags.get_bool("kill-in-send");

  const auto workload = [&spec] { return build_ring(spec); };

  // Exec-mode worker role: attach the segment and run our shard.
  const auto worker = static_cast<std::int32_t>(flags.get_int("shard-worker"));
  if (worker >= 0) {
    return shard::exec_worker_main(flags.get_string("shard-shm"), worker,
                                   opts, workload);
  }

  const std::string mode = flags.get_string("mode");
  obs::Registry registry;
  shard::ShardResult result;
  try {
    if (mode == "fork") {
      result = shard::run_sharded(opts, workload, &registry);
    } else if (mode == "exec") {
      // The worker command re-invokes this binary with the flags that
      // shape the workload and the worker-side options; run_sharded_exec
      // appends --shard-worker=K --shard-shm=PATH per shard.
      std::string cmd = std::string(argv[0]);
      cmd += " --lps=" + std::to_string(spec.lps);
      cmd += " --chain=" + std::to_string(spec.chain);
      cmd += " --hops=" + std::to_string(spec.hops);
      if (!opts.ckpt_dir.empty()) cmd += " --ckpt-dir=" + opts.ckpt_dir;
      if (opts.ckpt_every > 0) {
        cmd += " --ckpt-every=" + std::to_string(opts.ckpt_every);
      }
      if (opts.kill_shard >= 0) {
        cmd += " --kill-shard=" + std::to_string(opts.kill_shard);
        cmd += " --kill-after-windows=" +
               std::to_string(opts.kill_after_windows);
        if (opts.kill_in_send) cmd += " --kill-in-send=1";
      }
      try {
        result = shard::run_sharded_exec(opts, cmd, workload, &registry);
      } catch (const EngineError& e) {
        if (!opts.fallback) throw;
        std::fprintf(stderr,
                     "massf_shard: exec-mode run failed (%s); degrading to "
                     "the single-process executor\n",
                     e.what());
        shard::ShardOptions single = opts;
        single.shards = 1;
        result = shard::run_sharded(single, workload, &registry);
        result.degraded_rung = 1;
      }
    } else {
      std::fprintf(stderr, "massf_shard: --mode must be fork or exec\n");
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "massf_shard: run failed: %s\n", e.what());
    return 1;
  }

  std::fprintf(stderr,
               "massf_shard: %s shards=%d events=%llu windows=%llu "
               "checksum=%llu attempts=%d rung=%d%s\n",
               mode.c_str(), result.shards,
               static_cast<unsigned long long>(result.stats.total_events),
               static_cast<unsigned long long>(result.stats.num_windows),
               static_cast<unsigned long long>(result.checksum),
               result.attempts, result.degraded_rung,
               result.recovered ? " (recovered from shard checkpoints)" : "");

  const std::string out = flags.get_string("out");
  if (!out.empty() && !obs::write_file(out, obs::to_json(registry))) {
    std::fprintf(stderr, "massf_shard: failed to write %s\n", out.c_str());
    return 1;
  }

  if (flags.get_bool("expect-golden")) {
    if (result.checksum != kGoldenRingChecksum ||
        result.stats.total_events != kGoldenRingEvents ||
        result.stats.num_windows != kGoldenRingWindows) {
      std::fprintf(stderr,
                   "massf_shard: GOLDEN MISMATCH: checksum %llu (want %llu) "
                   "events %llu (want %llu) windows %llu (want %llu)\n",
                   static_cast<unsigned long long>(result.checksum),
                   static_cast<unsigned long long>(kGoldenRingChecksum),
                   static_cast<unsigned long long>(result.stats.total_events),
                   static_cast<unsigned long long>(kGoldenRingEvents),
                   static_cast<unsigned long long>(result.stats.num_windows),
                   static_cast<unsigned long long>(kGoldenRingWindows));
      return 1;
    }
    std::fprintf(stderr, "massf_shard: golden checksum OK (%llu)\n",
                 static_cast<unsigned long long>(kGoldenRingChecksum));
  }
  return 0;
}
