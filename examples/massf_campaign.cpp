// The campaign runner: expands a campaign file (base scenario x sweep
// axes) and executes every run across parallel workers.
//
//   ./massf_campaign --campaign=nightly.dml --out=out/ [--workers=4]
//   ./massf_campaign --campaign=nightly.dml --dry-run     # just the list
//
// Runs execute in worker subprocesses by default (each re-invokes this
// binary with --worker-run=K, so one crashing run cannot take down the
// campaign); --in-process switches to worker threads inside this
// process. Either way — and at any worker count — the per-run metrics
// and the roll-up are bit-identical apart from the "timing" section,
// because every run is a pure function of its resolved spec.
//
// Artifacts under --out:
//   campaign.json            massf.campaign.v1 roll-up (report.hpp)
//   runs/<NNN>-<id>/         per-run metrics.json, metrics.canonical.json,
//                            result.kv, log.txt (subprocess mode)
//
// Exit status: 0 when every run completed, 1 when any failed (the failed
// list is in the roll-up and the table), 2 on usage/parse errors.
#include <unistd.h>

#include <cstdio>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "obs/export.hpp"
#include "util/flags.hpp"

namespace {

// The binary to re-invoke for worker subprocesses. /proc/self/exe is
// exact on Linux; argv[0] is the fallback (fine when launched by path).
std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace massf;

  FlagTable flags("massf_campaign",
                  "Expands a campaign (base scenario x sweep axes) and "
                  "executes every run.");
  flags.add_string("campaign", "", "campaign DML file (required)");
  flags.add_string("out", "",
                   "output directory: campaign.json roll-up + per-run "
                   "metrics (required unless --dry-run)");
  flags.add_int("workers", 0,
                "parallel workers (0 = the campaign file's setting)",
                [](std::int64_t v) {
                  return v >= 0 ? "" : "must be >= 0";
                });
  flags.add_bool("dry-run", false,
                 "print the expanded run list and exit");
  flags.add_bool("in-process", false,
                 "execute runs on worker threads instead of subprocesses");
  flags.add_int("worker-run", -1,
                "internal: execute one expanded run by index and exit");
  flags.parse_or_exit(argc, argv);

  if (!flags.set("campaign")) {
    std::fprintf(stderr, "missing --campaign=<file>\n");
    return 2;
  }
  const std::string campaign_path = flags.get_string("campaign");
  std::string error;
  const auto spec = load_campaign_file(campaign_path, &error);
  if (!spec) {
    std::fprintf(stderr, "%s: %s\n", campaign_path.c_str(), error.c_str());
    return 2;
  }

  const std::int64_t worker_run = flags.get_int("worker-run");
  if (worker_run >= 0) {
    if (worker_run >= static_cast<std::int64_t>(spec->runs.size())) {
      std::fprintf(stderr, "--worker-run=%lld out of range (%zu runs)\n",
                   static_cast<long long>(worker_run), spec->runs.size());
      return 2;
    }
    const std::size_t i = static_cast<std::size_t>(worker_run);
    const std::string out = flags.get_string("out");
    const std::string run_dir =
        out.empty() ? std::string()
                    : out + "/runs/" + run_dir_name(i, spec->runs[i]);
    const RunRecord rec = execute_run(spec->runs[i], run_dir);
    if (!rec.ok) {
      std::fprintf(stderr, "run %s failed: %s\n", rec.id.c_str(),
                   rec.error.c_str());
    }
    return rec.ok ? 0 : 3;
  }

  if (flags.get_bool("dry-run")) {
    std::printf("campaign %s: %zu runs\n",
                spec->name.empty() ? "(unnamed)" : spec->name.c_str(),
                spec->runs.size());
    for (std::size_t i = 0; i < spec->runs.size(); ++i) {
      std::printf("  %s  %s\n", run_dir_name(i, spec->runs[i]).c_str(),
                  spec->runs[i].id.c_str());
    }
    return 0;
  }

  if (!flags.set("out")) {
    std::fprintf(stderr, "missing --out=<dir> (or --dry-run)\n");
    return 2;
  }

  CampaignExecOptions eo;
  eo.out_dir = flags.get_string("out");
  eo.workers = flags.get_int("workers") > 0
                   ? static_cast<std::int32_t>(flags.get_int("workers"))
                   : spec->workers;
  if (!flags.get_bool("in-process")) {
    eo.self_exe = self_exe_path(argv[0]);
    eo.campaign_path = campaign_path;
  }

  const CampaignOutcome outcome = run_campaign(*spec, eo);
  obs::write_file(eo.out_dir + "/campaign.json",
                  campaign_to_json(*spec, outcome));
  std::fputs(campaign_table(*spec, outcome).c_str(), stdout);

  for (const RunRecord& r : outcome.runs) {
    if (!r.ok) return 1;
  }
  return 0;
}
