// Failure-injection story: a backbone link carrying live TCP traffic goes
// down mid-run. The data plane drops packets immediately; OSPF reconverges
// a convergence-delay later and traffic reroutes; when the link returns,
// routing falls back to the primary path. Prints a goodput time line so
// the dip and recovery are visible.
//
//   ./link_failure [--routers=N] [--fail-at=S] [--restore-at=S]
//                  [--convergence-ms=M]
#include <cstdio>
#include <memory>

#include "sim/failover.hpp"
#include "topology/brite.hpp"
#include "traffic/http.hpp"
#include "traffic/manager.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace massf;
  const Flags flags(argc, argv);

  BriteOptions bo;
  bo.num_routers = static_cast<std::int32_t>(flags.get_int("routers", 300));
  bo.num_hosts = 100;
  bo.seed = 29;
  const Network net = generate_flat(bo);
  std::vector<NodeId> hosts, dests;
  for (NodeId h = net.num_routers; h < static_cast<NodeId>(net.nodes.size());
       ++h) {
    hosts.push_back(h);
    dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
  }
  ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);

  EngineOptions eo;
  eo.lookahead = milliseconds(1);
  eo.end_time = seconds(12);
  Engine engine(eo);
  const std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
  NetSim sim(net, fp, map, engine, NetSimOptions{});
  TrafficManager manager(sim);

  HttpOptions ho;
  ho.think_time_mean_s = 0.2;
  std::vector<NodeId> clients(hosts.begin(), hosts.begin() + 70);
  std::vector<NodeId> servers(hosts.begin() + 70, hosts.end());
  manager.add(TrafficKind::kHttp,
              std::make_unique<HttpWorkload>(clients, servers, ho));

  // Completion time line (goodput proxy): wrap the manager's dispatch so
  // completions are both counted here and delivered to the workload.
  TimeSeries completions(0.5);
  TrafficManager* mgr = &manager;
  sim.set_flow_complete([&completions, mgr](Engine& e, NetSim& s, FlowId f,
                                            NodeId src, NodeId dst,
                                            std::uint32_t tag, bool failed) {
    if (auto* c = mgr->component(tag_kind(tag))) {
      if (failed) {
        c->on_flow_failed(e, s, f, src, dst, tag);
        return;
      }
      c->on_flow_complete(e, s, f, src, dst, tag);
    }
    completions.add(to_seconds(e.now()), 1.0);
  });

  // Pick a busy-looking backbone link: the first router-router link
  // adjacent to the highest-degree router.
  LinkId victim = kInvalidLink;
  NodeId hub = 0;
  for (NodeId r = 1; r < net.num_routers; ++r) {
    if (net.incident(r).size() > net.incident(hub).size()) hub = r;
  }
  for (const auto& inc : net.incident(hub)) {
    if (net.is_router(inc.peer)) {
      victim = inc.link;
      break;
    }
  }

  FailoverController ctl(
      fp, milliseconds(flags.get_int("convergence-ms", 200)));
  ctl.attach(engine);
  const double fail_at = flags.get_double("fail-at", 4.0);
  const double restore_at = flags.get_double("restore-at", 8.0);
  ctl.fail_link(engine, sim, victim, from_seconds(fail_at));
  ctl.restore_link(engine, sim, victim, from_seconds(restore_at));

  manager.start(engine, sim);
  engine.run();

  std::printf("backbone link %d (at hub router %d, degree %zu) failed at "
              "t=%.1fs, restored at t=%.1fs; %d reconvergences\n",
              victim, hub, net.incident(hub).size(), fail_at, restore_at,
              ctl.reconvergences());
  const auto c = sim.totals();
  std::printf("totals: %llu flows completed, %llu link-down drops, "
              "%llu retransmits, %llu abandoned\n",
              static_cast<unsigned long long>(c.flows_completed),
              static_cast<unsigned long long>(c.dropped_link_down),
              static_cast<unsigned long long>(c.retransmits),
              static_cast<unsigned long long>(c.flows_failed));
  std::printf("flow completions per 0.5 s:\n");
  for (std::size_t b = 0; b < completions.num_bins(); ++b) {
    std::printf("  t=%4.1fs %4.0f %s\n", b * 0.5, completions.bin(b),
                std::string(static_cast<std::size_t>(
                                std::min(completions.bin(b) / 3.0, 70.0)),
                            '#')
                    .c_str());
  }
  return 0;
}
