// Online simulation: a live application exchanges messages over the
// simulated network while the simulation is running — the MaSSF
// WrapSocket/Agent code path. An application thread ping-pongs a message
// between two hosts through VSockets; the engine paces virtual time
// against wall clock with a slowdown factor.
//
//   ./online_app [--rounds=N] [--bytes=N] [--slowdown=F]
#include <cstdio>
#include <thread>

#include "net/netsim.hpp"
#include "online/agent.hpp"
#include "online/vsocket.hpp"
#include "routing/forwarding.hpp"
#include "topology/brite.hpp"
#include "traffic/manager.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace massf;
  const Flags flags(argc, argv);
  const int rounds = static_cast<int>(flags.get_int("rounds", 5));
  const auto bytes =
      static_cast<std::uint32_t>(flags.get_int("bytes", 100000));

  // A modest network with two endpoint hosts.
  BriteOptions bo;
  bo.num_routers = 200;
  bo.num_hosts = 8;
  bo.seed = 17;
  const Network net = generate_flat(bo);
  std::vector<NodeId> dests;
  for (NodeId h = net.num_routers; h < static_cast<NodeId>(net.nodes.size());
       ++h) {
    dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
  }
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);

  EngineOptions eo;
  eo.lookahead = milliseconds(1);
  eo.end_time = seconds(600);
  Engine engine(eo);
  const std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
  NetSim sim(net, fp, map, engine, NetSimOptions{});
  TrafficManager manager(sim);

  AgentOptions ao;
  ao.slowdown = flags.get_double("slowdown", 0);
  auto agent_ptr = std::make_unique<Agent>(ao);
  Agent& agent = *agent_ptr;
  manager.add(TrafficKind::kOnline, std::move(agent_ptr));
  agent.attach(engine);
  manager.start(engine, sim);

  // Heartbeat so windows keep opening while the app thinks.
  sim.set_app_timer([](Engine& e, NetSim& s, NodeId host, std::uint64_t b,
                       std::uint64_t c) {
    s.schedule_app_timer(e, host, e.now() + milliseconds(5), b, c);
  });
  const NodeId ping_host = net.num_routers;
  const NodeId pong_host = net.num_routers + 1;
  sim.schedule_app_timer(engine, ping_host, milliseconds(1), 0, 0);

  // The "live application": runs on its own thread, like a wrapped
  // process would.
  std::thread app([&] {
    VSocket ping(agent, ping_host);
    VSocket pong(agent, pong_host);
    for (int r = 0; r < rounds; ++r) {
      ping.send(pong_host, bytes);
      auto d1 = pong.receive(30.0);
      if (!d1) {
        std::fprintf(stderr, "timeout waiting for ping %d\n", r);
        break;
      }
      pong.send(ping_host, bytes);
      auto d2 = ping.receive(30.0);
      if (!d2) {
        std::fprintf(stderr, "timeout waiting for pong %d\n", r);
        break;
      }
      std::printf("round %d: round-trip completed at virtual t=%.3f ms\n", r,
                  to_milliseconds(d2->virtual_time));
    }
    engine.request_stop();
  });

  engine.run();
  app.join();
  const auto c = sim.totals();
  std::printf("done: %llu live flows completed, %llu packets forwarded\n",
              static_cast<unsigned long long>(c.flows_completed),
              static_cast<unsigned long long>(c.forwarded));
  return 0;
}
