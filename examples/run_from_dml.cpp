// Configuration-file workflow: generate a topology, write it to a DML
// file (the SSFNet-style simulator input format), reload it, and run a
// simulation over the reloaded network — demonstrating that everything an
// experiment needs is expressible in the configuration format. Pass
// --dml=FILE to run over your own (hand-written or edited) network.
//
//   ./run_from_dml [--dml=FILE] [--routers=N] [--seconds=S]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "dml/network_dml.hpp"
#include "net/netsim.hpp"
#include "routing/forwarding.hpp"
#include "topology/brite.hpp"
#include "traffic/http.hpp"
#include "traffic/manager.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace massf;
  const Flags flags(argc, argv);

  std::string text;
  if (flags.has("dml")) {
    std::ifstream in(flags.get_string("dml", ""));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n",
                   flags.get_string("dml", "").c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
    std::printf("loaded network description from %s\n",
                flags.get_string("dml", "").c_str());
  } else {
    BriteOptions bo;
    bo.num_routers =
        static_cast<std::int32_t>(flags.get_int("routers", 200));
    bo.num_hosts = 60;
    bo.seed = 11;
    const Network generated = generate_flat(bo);
    text = network_to_dml_text(generated);
    const std::string path = "/tmp/massf_network.dml";
    std::ofstream(path) << text;
    std::printf("generated %d-router network, wrote %zu bytes of DML to %s\n",
                generated.num_routers, text.size(), path.c_str());
  }

  std::string error;
  auto net = network_from_dml_text(text, &error);
  if (!net) {
    std::fprintf(stderr, "bad network description: %s\n", error.c_str());
    return 1;
  }
  std::printf("reloaded: %d routers, %d hosts, %zu links, %d AS(es)\n",
              net->num_routers, net->num_hosts(), net->links.size(),
              net->num_as());

  // Simple HTTP workload over the reloaded network on a single engine node.
  std::vector<NodeId> hosts, dests;
  for (NodeId h = net->num_routers;
       h < static_cast<NodeId>(net->nodes.size()); ++h) {
    hosts.push_back(h);
    dests.push_back(net->nodes[static_cast<std::size_t>(h)].attach_router);
  }
  if (hosts.size() < 4) {
    std::fprintf(stderr, "need at least 4 hosts to run the demo workload\n");
    return 1;
  }
  const ForwardingPlane fp = ForwardingPlane::build_flat(*net, dests);

  EngineOptions eo;
  eo.lookahead = milliseconds(1);
  eo.end_time = from_seconds(flags.get_double("seconds", 10.0));
  Engine engine(eo);
  const std::vector<LpId> map(static_cast<std::size_t>(net->num_routers), 0);
  NetSim sim(*net, fp, map, engine, NetSimOptions{});
  TrafficManager manager(sim);

  HttpOptions ho;
  ho.think_time_mean_s = 0.5;
  const std::size_t nc = hosts.size() * 3 / 4;
  std::vector<NodeId> clients(hosts.begin(), hosts.begin() + nc);
  std::vector<NodeId> servers(hosts.begin() + nc, hosts.end());
  manager.add(TrafficKind::kHttp,
              std::make_unique<HttpWorkload>(clients, servers, ho));
  manager.start(engine, sim);
  engine.run();

  const auto c = sim.totals();
  std::printf("simulated %.1f virtual seconds: %llu flows completed, "
              "%llu packets forwarded, %llu drops\n",
              to_seconds(eo.end_time),
              static_cast<unsigned long long>(c.flows_completed),
              static_cast<unsigned long long>(c.forwarded),
              static_cast<unsigned long long>(c.dropped_queue));
  return 0;
}
