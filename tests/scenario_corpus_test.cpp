// The scenario corpus: every file under scenarios/ must parse, round-trip
// through the canonical serializer, and actually run (at a shrunken
// scale). New scenario files are picked up automatically — drop a .dml in
// scenarios/ and it is under test; campaign files under
// scenarios/campaigns/ are parsed and expanded the same way.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/runner.hpp"
#include "dml/dml.hpp"
#include "sim/scenario_config.hpp"

#ifndef MASSF_SCENARIO_DIR
#error "MASSF_SCENARIO_DIR must point at the repo's scenarios/ directory"
#endif

namespace massf {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> discover(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".dml") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Scales a corpus scenario down to smoke-test size: same shape (app kind,
// sync mode, rebalance/ckpt/guard/fault wiring all preserved), a few
// hundred milliseconds of virtual time.
ScenarioSpec shrink(ScenarioSpec spec, const std::string& tmp) {
  spec.options.num_routers = 60;
  spec.options.num_hosts = 40;
  spec.options.num_as = std::min(spec.options.num_as, 4);
  spec.options.num_clients = 10;
  spec.options.num_servers = 4;
  spec.options.num_bg_sources = std::min(spec.options.num_bg_sources, 8);
  // GridNPB's mixed workload partitions its hosts three ways and insists
  // on >= 9; 12 keeps every app kind happy while staying tiny.
  spec.options.num_app_hosts = std::min(spec.options.num_app_hosts, 12);
  spec.options.num_engines = 4;
  spec.options.end_time = from_seconds(0.4);
  spec.options.profile_end_time = from_seconds(0.2);
  spec.options.executor_threads =
      std::min(spec.options.executor_threads, std::int32_t{2});
  if (!spec.options.ckpt.path.empty()) {
    spec.options.ckpt.path = tmp + "/corpus-smoke.ckpt";
    spec.options.ckpt.every_windows =
        std::min<std::uint64_t>(spec.options.ckpt.every_windows, 5);
  }
  spec.options.ckpt.restore_path.clear();
  if (!spec.options.guard.dump_path.empty()) {
    spec.options.guard.dump_path = tmp + "/corpus-guard.json";
  }
  if (spec.mappings.size() > 1) spec.mappings.resize(1);
  return spec;
}

TEST(ScenarioCorpus, HasAtLeastSixScenarios) {
  EXPECT_GE(discover(MASSF_SCENARIO_DIR).size(), 6u);
}

TEST(ScenarioCorpus, EveryScenarioParsesAndRoundTrips) {
  for (const std::string& path : discover(MASSF_SCENARIO_DIR)) {
    std::string error;
    const auto spec = load_scenario_file(path, &error);
    ASSERT_TRUE(spec.has_value()) << path << ": " << error;

    // Canonical-form fixed point: serialize, re-parse, re-serialize,
    // compare text. (The serializer inlines fault-file includes as event
    // atoms, so the round trip is closed even for chaos scenarios.)
    const std::string text1 = write_dml(scenario_spec_to_dml(*spec));
    const auto reparsed = parse_scenario(text1, &error);
    ASSERT_TRUE(reparsed.has_value()) << path << ": " << error;
    const std::string text2 = write_dml(scenario_spec_to_dml(*reparsed));
    EXPECT_EQ(text1, text2) << path;
  }
}

TEST(ScenarioCorpus, EveryScenarioSmokeRuns) {
  const std::string tmp = ::testing::TempDir();
  for (const std::string& path : discover(MASSF_SCENARIO_DIR)) {
    std::string error;
    const auto spec = load_scenario_file(path, &error);
    ASSERT_TRUE(spec.has_value()) << path << ": " << error;

    CampaignRun run;
    run.id = fs::path(path).stem().string();
    run.spec = shrink(*spec, tmp);
    const RunRecord rec = execute_run(run, "");
    EXPECT_TRUE(rec.ok) << path << ": " << rec.error;
    EXPECT_GT(rec.windows, 0u) << path;
  }
}

TEST(ScenarioCorpus, EveryCampaignParsesAndExpands) {
  const std::string dir = std::string(MASSF_SCENARIO_DIR) + "/campaigns";
  ASSERT_TRUE(fs::is_directory(dir));
  const auto files = discover(dir);
  EXPECT_GE(files.size(), 2u);
  for (const std::string& path : files) {
    std::string error;
    const auto spec = load_campaign_file(path, &error);
    ASSERT_TRUE(spec.has_value()) << path << ": " << error;
    EXPECT_FALSE(spec->runs.empty()) << path;
    // Ids are unique — a duplicated sweep point would silently collapse
    // run directories.
    std::vector<std::string> ids;
    for (const auto& run : spec->runs) ids.push_back(run.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
        << path;
  }
}

}  // namespace
}  // namespace massf
