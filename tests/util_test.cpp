#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"

namespace massf {
namespace {

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1'000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(from_seconds(1.5), seconds(1) + milliseconds(500));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(microseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_microseconds(nanoseconds(2500)), 2.5);
}

TEST(SimTime, FromSecondsRounds) {
  EXPECT_EQ(from_seconds(1e-9), 1);
  EXPECT_EQ(from_seconds(0.49e-9), 0);
  EXPECT_EQ(from_seconds(0.51e-9), 1);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsStableAndIndependent) {
  Rng root(7);
  Rng a = root.fork("alpha");
  Rng a2 = Rng(7).fork("alpha");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), a2());

  Rng b = root.fork("beta");
  Rng c = root.fork(std::uint64_t{42});
  int same_ab = 0, same_ac = 0;
  Rng a3 = root.fork("alpha");
  for (int i = 0; i < 64; ++i) {
    const auto va = a3(), vb = b(), vc = c();
    same_ab += va == vb;
    same_ac += va == vc;
  }
  EXPECT_LT(same_ab, 2);
  EXPECT_LT(same_ac, 2);
}

TEST(Rng, NumericForkStable) {
  Rng a = Rng(9).fork(std::uint64_t{5});
  Rng b = Rng(9).fork(std::uint64_t{5});
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(5));
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(2);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= v == -3;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo && hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(4);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ParetoMinimum) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(8);
  std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.25);
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng(9);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, SingleElement) {
  Rng rng(10);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Accumulator, MatchesNaiveMoments) {
  Accumulator acc;
  const std::vector<double> xs{1, 2, 3, 4, 100, -7};
  double sum = 0;
  for (double x : xs) {
    acc.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_NEAR(acc.mean(), mean, 1e-9);
  EXPECT_NEAR(acc.variance(), var, 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), -7);
  EXPECT_DOUBLE_EQ(acc.max(), 100);
  EXPECT_EQ(acc.count(), xs.size());
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0);
}

TEST(LoadImbalance, PerfectBalanceIsZero) {
  const std::vector<double> rates{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(load_imbalance(rates), 0.0);
}

TEST(LoadImbalance, IsCoefficientOfVariation) {
  const std::vector<double> rates{1, 3};  // mean 2, stddev 1
  EXPECT_NEAR(load_imbalance(rates), 0.5, 1e-12);
}

TEST(LoadImbalance, EmptyAndZeroMeanSafe) {
  EXPECT_DOUBLE_EQ(load_imbalance({}), 0.0);
  const std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(load_imbalance(zeros), 0.0);
}

TEST(AvgOverMax, Bounds) {
  const std::vector<double> l1{4, 4, 4};
  EXPECT_DOUBLE_EQ(avg_over_max(l1), 1.0);
  const std::vector<double> l2{0, 0, 9};
  EXPECT_NEAR(avg_over_max(l2), 1.0 / 3, 1e-12);
}

TEST(ParallelEfficiency, MatchesDefinition) {
  // Tseq = 1e6 events / 2e5 per s = 5 s; PE = 5 / (4 * 2) = 0.625.
  EXPECT_NEAR(parallel_efficiency(1e6, 2e5, 4, 2.0), 0.625, 1e-12);
}

TEST(ParallelEfficiency, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(parallel_efficiency(100, 0, 4, 2.0), 0);
  EXPECT_DOUBLE_EQ(parallel_efficiency(100, 10, 4, 0), 0);
}

TEST(TimeSeries, BinsAccumulate) {
  TimeSeries ts(1.0);
  ts.add(0.2, 1);
  ts.add(0.9, 2);
  ts.add(2.5, 5);
  ASSERT_EQ(ts.num_bins(), 3u);
  EXPECT_DOUBLE_EQ(ts.bin(0), 3);
  EXPECT_DOUBLE_EQ(ts.bin(1), 0);
  EXPECT_DOUBLE_EQ(ts.bin(2), 5);
}

TEST(TimeSeries, FormatContainsLabel) {
  TimeSeries ts(0.5);
  ts.add(0.1, 2);
  const std::string out = format_series(ts, "events");
  EXPECT_NE(out.find("events"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Flags, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "hello", "--gamma"};
  Flags f(5, argv);
  EXPECT_EQ(f.get_int("alpha", 0), 3);
  EXPECT_EQ(f.get_string("beta", ""), "hello");
  EXPECT_TRUE(f.get_bool("gamma", false));
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0), 3.0);
  EXPECT_TRUE(f.has("alpha"));
  EXPECT_FALSE(f.has("missing"));
}

}  // namespace
}  // namespace massf
