#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "pdes/engine.hpp"
#include "util/error.hpp"

namespace massf {
namespace {

// Records the events it handles; optionally re-schedules follow-ups.
class RecordingLp final : public LogicalProcess {
 public:
  struct Record {
    SimTime time;
    std::int32_t type;
    std::uint64_t a;
  };

  void handle(Engine& engine, const Event& ev) override {
    records.push_back({ev.time, ev.type, ev.a});
    if (relay_to >= 0 && ev.type == 1) {
      // Forward across LPs with the channel latency.
      engine.schedule(relay_to, ev.time + channel_latency, 2, ev.a + 1);
    }
    if (self_chain > 0 && ev.type == 3) {
      --self_chain;
      engine.schedule(engine.current_lp(), ev.time + local_delay, 3, ev.a);
    }
  }

  std::vector<Record> records;
  LpId relay_to = -1;
  SimTime channel_latency = milliseconds(1);
  int self_chain = 0;
  SimTime local_delay = microseconds(50);
};

EngineOptions base_options() {
  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.cost_per_event_s = 1e-6;
  o.sync_cost_s = 1e-4;
  o.end_time = seconds(1);
  return o;
}

TEST(Engine, ProcessesInTimestampOrder) {
  Engine engine(base_options());
  auto lp = std::make_unique<RecordingLp>();
  RecordingLp* p = lp.get();
  engine.add_lp(std::move(lp));
  engine.schedule(0, milliseconds(5), 7);
  engine.schedule(0, milliseconds(2), 7);
  engine.schedule(0, milliseconds(9), 7);
  engine.schedule(0, milliseconds(2), 7);  // tie: insertion order
  engine.run();
  ASSERT_EQ(p->records.size(), 4u);
  EXPECT_EQ(p->records[0].time, milliseconds(2));
  EXPECT_EQ(p->records[1].time, milliseconds(2));
  EXPECT_EQ(p->records[2].time, milliseconds(5));
  EXPECT_EQ(p->records[3].time, milliseconds(9));
}

TEST(Engine, EndTimeExcludesLaterEvents) {
  EngineOptions o = base_options();
  o.end_time = milliseconds(10);
  Engine engine(o);
  auto lp = std::make_unique<RecordingLp>();
  RecordingLp* p = lp.get();
  engine.add_lp(std::move(lp));
  engine.schedule(0, milliseconds(5), 1);
  engine.schedule(0, milliseconds(10), 1);  // exactly at horizon: excluded
  engine.schedule(0, milliseconds(20), 1);
  const RunStats stats = engine.run();
  EXPECT_EQ(p->records.size(), 1u);
  EXPECT_EQ(stats.total_events, 1u);
  EXPECT_EQ(stats.end_vtime, milliseconds(10));
}

TEST(Engine, CrossLpEventsDelivered) {
  Engine engine(base_options());
  auto lp0 = std::make_unique<RecordingLp>();
  auto lp1 = std::make_unique<RecordingLp>();
  RecordingLp* p0 = lp0.get();
  RecordingLp* p1 = lp1.get();
  p0->relay_to = 1;
  engine.add_lp(std::move(lp0));
  engine.add_lp(std::move(lp1));
  engine.schedule(0, milliseconds(1), 1, 100);
  engine.run();
  ASSERT_EQ(p1->records.size(), 1u);
  EXPECT_EQ(p1->records[0].time, milliseconds(2));
  EXPECT_EQ(p1->records[0].a, 101u);
  EXPECT_EQ(p0->records.size(), 1u);
}

TEST(Engine, SelfChainWithinWindow) {
  Engine engine(base_options());
  auto lp = std::make_unique<RecordingLp>();
  RecordingLp* p = lp.get();
  p->self_chain = 10;
  engine.add_lp(std::move(lp));
  engine.schedule(0, milliseconds(1), 3);
  const RunStats stats = engine.run();
  EXPECT_EQ(p->records.size(), 11u);
  // 10 x 50us chain fits in one 1 ms window plus the initial one.
  EXPECT_LE(stats.num_windows, 2u);
}

TEST(Engine, StatsAccounting) {
  EngineOptions o = base_options();
  o.cost_per_event_s = 2e-6;
  o.sync_cost_s = 5e-4;
  Engine engine(o);
  engine.add_lp(std::make_unique<RecordingLp>());
  engine.add_lp(std::make_unique<RecordingLp>());
  // 3 events on LP0, 1 on LP1, all in one window.
  engine.schedule(0, milliseconds(1), 7);
  engine.schedule(0, milliseconds(1), 7);
  engine.schedule(0, milliseconds(1), 7);
  engine.schedule(1, milliseconds(1), 7);
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.total_events, 4u);
  EXPECT_EQ(stats.events_per_lp[0], 3u);
  EXPECT_EQ(stats.events_per_lp[1], 1u);
  EXPECT_EQ(stats.num_windows, 1u);
  // Window wall = max(3 * 2us, 1 * 2us) + 0.5ms.
  EXPECT_NEAR(stats.modeled_wall_s, 3 * 2e-6 + 5e-4, 1e-12);
  EXPECT_NEAR(stats.modeled_sync_s, 5e-4, 1e-12);
  EXPECT_NEAR(stats.busy_s[0], 6e-6, 1e-12);
}

TEST(Engine, EventRates) {
  RunStats stats;
  stats.events_per_lp = {100, 50};
  stats.modeled_wall_s = 2.0;
  const auto rates = stats.event_rates();
  EXPECT_DOUBLE_EQ(rates[0], 50);
  EXPECT_DOUBLE_EQ(rates[1], 25);
}

TEST(Engine, EventRatesZeroWallClock) {
  // modeled_wall_s == 0 (a zero-event run) must yield all-zero rates, not
  // a division by zero.
  RunStats stats;
  stats.events_per_lp = {3, 1};
  stats.modeled_wall_s = 0.0;
  const auto rates = stats.event_rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 0);
  EXPECT_DOUBLE_EQ(rates[1], 0);
}

TEST(Engine, EmptyRunBothExecutors) {
  // A run with no events at all: no windows open, the horizon is reported,
  // and every derived statistic is finite under both executors.
  for (const bool threaded : {false, true}) {
    Engine engine(base_options());
    engine.add_lp(std::make_unique<RecordingLp>());
    engine.add_lp(std::make_unique<RecordingLp>());
    const RunStats stats = threaded ? engine.run_threaded(2) : engine.run();
    EXPECT_EQ(stats.total_events, 0u);
    EXPECT_EQ(stats.num_windows, 0u);
    EXPECT_EQ(stats.end_vtime, base_options().end_time);
    EXPECT_DOUBLE_EQ(stats.modeled_wall_s, 0.0);
    const auto rates = stats.event_rates();
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0], 0);
    EXPECT_DOUBLE_EQ(rates[1], 0);
  }
}

TEST(Engine, LoadBinsRecorded) {
  EngineOptions o = base_options();
  o.load_bin = milliseconds(100);
  Engine engine(o);
  auto lp = std::make_unique<RecordingLp>();
  engine.add_lp(std::move(lp));
  engine.schedule(0, milliseconds(50), 7);
  engine.schedule(0, milliseconds(250), 7);
  const RunStats stats = engine.run();
  ASSERT_EQ(stats.lp_load.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.lp_load[0].bin(0), 1);
  EXPECT_DOUBLE_EQ(stats.lp_load[0].bin(2), 1);
}

TEST(Engine, BarrierHookInjectsLiveEvents) {
  Engine engine(base_options());
  auto lp = std::make_unique<RecordingLp>();
  RecordingLp* p = lp.get();
  engine.add_lp(std::move(lp));
  engine.schedule(0, milliseconds(1), 7);
  bool injected = false;
  engine.hooks().barrier.push_back([&](Engine& eng, SimTime window_start) {
    if (!injected) {
      injected = true;
      eng.schedule(0, window_start + eng.options().lookahead, 9, 42);
    }
  });
  engine.run();
  ASSERT_EQ(p->records.size(), 2u);
  EXPECT_EQ(p->records[1].type, 9);
}

TEST(Engine, MultipleBarrierHooksRunInOrder) {
  Engine engine(base_options());
  auto lp = std::make_unique<RecordingLp>();
  engine.add_lp(std::move(lp));
  engine.schedule(0, milliseconds(1), 7);
  std::vector<int> order;
  engine.hooks().barrier.push_back([&](Engine&, SimTime) { order.push_back(1); });
  engine.hooks().barrier.push_back([&](Engine&, SimTime) { order.push_back(2); });
  engine.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Engine, RequestStopEndsRun) {
  Engine engine(base_options());
  auto lp = std::make_unique<RecordingLp>();
  RecordingLp* p = lp.get();
  p->self_chain = 1000000;
  p->local_delay = milliseconds(2);  // one event per window
  engine.add_lp(std::move(lp));
  engine.schedule(0, milliseconds(1), 3);
  int windows = 0;
  engine.hooks().barrier.push_back([&](Engine& eng, SimTime) {
    if (++windows == 5) eng.request_stop();
  });
  engine.run();
  EXPECT_LT(p->records.size(), 10u);
}

TEST(Engine, LargerLookaheadFewerWindowsSameEvents) {
  // The core MLL-parallelism relationship: widening the window cannot
  // change what is simulated, only how often the engine synchronizes.
  const auto run_with = [](SimTime lookahead) {
    EngineOptions o;
    o.lookahead = lookahead;
    o.end_time = seconds(10);
    Engine engine(o);
    auto lp = std::make_unique<RecordingLp>();
    lp->self_chain = 2000;
    lp->local_delay = milliseconds(1);
    engine.add_lp(std::move(lp));
    engine.schedule(0, milliseconds(1), 3);
    const RunStats stats = engine.run();
    return std::make_pair(stats.total_events, stats.num_windows);
  };
  const auto narrow = run_with(milliseconds(1));
  const auto wide = run_with(milliseconds(8));
  EXPECT_EQ(narrow.first, wide.first);
  EXPECT_GT(narrow.second, 3 * wide.second);
}

TEST(Engine, SyncCostScalesWithWindows) {
  const auto sync_of = [](SimTime lookahead) {
    EngineOptions o;
    o.lookahead = lookahead;
    o.sync_cost_s = 1e-4;
    o.end_time = seconds(5);
    Engine engine(o);
    auto lp = std::make_unique<RecordingLp>();
    lp->self_chain = 1000;
    lp->local_delay = milliseconds(1);
    engine.add_lp(std::move(lp));
    engine.schedule(0, milliseconds(1), 3);
    return engine.run().modeled_sync_s;
  };
  EXPECT_GT(sync_of(milliseconds(1)), 2 * sync_of(milliseconds(8)));
}

TEST(EngineError_, CrossLpViolationThrows) {
  Engine engine(base_options());
  auto lp = std::make_unique<RecordingLp>();
  lp->relay_to = 1;
  lp->channel_latency = microseconds(10);  // < lookahead: illegal
  engine.add_lp(std::move(lp));
  engine.add_lp(std::make_unique<RecordingLp>());
  engine.schedule(0, milliseconds(1), 1);
  try {
    engine.run();
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kTopology);
    EXPECT_NE(std::string(e.what()).find("lookahead"), std::string::npos);
  }
}

// ---- conservative contract, both executors ------------------------------

// Engine::schedule must reject a cross-LP send that lands inside the open
// window and accept one at exactly the window end — under both executors,
// and also from a barrier hook. The dynamic-claiming executor must enforce
// the identical contract: the violation is a modeling error (the
// partition's MLL was computed wrong), not a scheduling artifact.

void run_cross_lp_violation(bool threaded) {
  Engine engine(base_options());
  auto lp = std::make_unique<RecordingLp>();
  lp->relay_to = 1;
  lp->channel_latency = microseconds(10);  // < lookahead: illegal
  engine.add_lp(std::move(lp));
  engine.add_lp(std::make_unique<RecordingLp>());
  engine.schedule(0, milliseconds(1), 1);
  if (threaded) {
    engine.run_threaded(2);
  } else {
    engine.run();
  }
}

TEST(EngineError_, CrossLpViolationThrowsThreaded) {
  // The violation fires in a handler on a worker thread; the executor
  // captures it, drains the protocol, and rethrows on the calling thread.
  EXPECT_THROW(run_cross_lp_violation(true), EngineError);
}

TEST(Engine, CrossLpAtExactWindowEndAccepted) {
  // channel latency == lookahead puts the arrival at exactly the end of
  // the window the send was made in — the legal limit of the contract.
  for (const bool threaded : {false, true}) {
    Engine engine(base_options());
    auto lp0 = std::make_unique<RecordingLp>();
    auto lp1 = std::make_unique<RecordingLp>();
    RecordingLp* p1 = lp1.get();
    lp0->relay_to = 1;
    lp0->channel_latency = base_options().lookahead;
    engine.add_lp(std::move(lp0));
    engine.add_lp(std::move(lp1));
    // The event executes at the window floor, so floor + lookahead is
    // exactly window_end.
    engine.schedule(0, milliseconds(5), 1, 7);
    if (threaded) {
      engine.run_threaded(2);
    } else {
      engine.run();
    }
    ASSERT_EQ(p1->records.size(), 1u) << (threaded ? "threaded" : "sequential");
    EXPECT_EQ(p1->records[0].time, milliseconds(6));
    EXPECT_EQ(p1->records[0].a, 8u);
  }
}

void run_hook_injection_at(SimTime offset_from_window_end, bool threaded) {
  EngineOptions o = base_options();
  Engine engine(o);
  auto lp = std::make_unique<RecordingLp>();
  lp->self_chain = 10;
  lp->local_delay = milliseconds(2);
  engine.add_lp(std::move(lp));
  engine.schedule(0, milliseconds(1), 3);
  bool injected = false;
  engine.hooks().barrier.push_back([&](Engine& eng, SimTime floor) {
    if (!injected) {
      injected = true;
      eng.schedule(0, floor + eng.options().lookahead + offset_from_window_end,
                   9);
    }
  });
  if (threaded) {
    engine.run_threaded(2);
  } else {
    engine.run();
  }
}

TEST(Engine, HookInjectionAtWindowEndAccepted) {
  for (const bool threaded : {false, true}) {
    run_hook_injection_at(0, threaded);  // exactly window end: legal
  }
}

TEST(EngineError_, HookInjectionInsideWindowThrows) {
  // Sequential: the hook throw propagates straight out of run().
  // Threaded: the coordinator records it at the boundary and rethrows
  // after the workers drain — same observable contract.
  EXPECT_THROW(run_hook_injection_at(-1, false), EngineError);
  EXPECT_THROW(run_hook_injection_at(-1, true), EngineError);
}

// ---- threaded executor -------------------------------------------------

struct PingPongLp final : public LogicalProcess {
  void handle(Engine& engine, const Event& ev) override {
    ++count;
    checksum = checksum * 31 + static_cast<std::uint64_t>(ev.time);
    if (ev.a > 0) {
      engine.schedule(peer, ev.time + milliseconds(1), 1, ev.a - 1);
    }
  }
  LpId peer = 0;
  std::uint64_t count = 0;
  std::uint64_t checksum = 0;
};

TEST(ThreadedEngine, MatchesSequentialResults) {
  const auto build_and_run = [](bool threaded) {
    EngineOptions o;
    o.lookahead = milliseconds(1);
    o.end_time = seconds(2);
    o.cost_per_event_s = 1e-6;
    o.sync_cost_s = 1e-5;
    Engine engine(o);
    std::vector<PingPongLp*> lps;
    for (int i = 0; i < 4; ++i) {
      auto lp = std::make_unique<PingPongLp>();
      lps.push_back(lp.get());
      engine.add_lp(std::move(lp));
    }
    for (int i = 0; i < 4; ++i) lps[static_cast<std::size_t>(i)]->peer = (i + 1) % 4;
    engine.schedule(0, milliseconds(1), 1, 500);
    engine.schedule(2, milliseconds(1), 1, 300);
    const RunStats stats = threaded ? engine.run_threaded(3) : engine.run();
    std::vector<std::uint64_t> sums;
    for (auto* lp : lps) {
      sums.push_back(lp->count);
      sums.push_back(lp->checksum);
    }
    sums.push_back(stats.total_events);
    sums.push_back(stats.num_windows);
    return sums;
  };
  EXPECT_EQ(build_and_run(false), build_and_run(true));
}

TEST(ThreadedEngine, BitIdenticalStatsWithHooksAndStop) {
  // Regression: barrier-hook scheduling plus a mid-run request_stop() must
  // produce the same RunStats under both executors, field for field.
  const auto build_and_run = [](bool threaded) {
    EngineOptions o;
    o.lookahead = milliseconds(1);
    o.end_time = seconds(2);
    o.cost_per_event_s = 1e-6;
    o.sync_cost_s = 1e-5;
    Engine engine(o);
    std::vector<PingPongLp*> lps;
    for (int i = 0; i < 4; ++i) {
      auto lp = std::make_unique<PingPongLp>();
      lps.push_back(lp.get());
      engine.add_lp(std::move(lp));
    }
    for (int i = 0; i < 4; ++i) {
      lps[static_cast<std::size_t>(i)]->peer = (i + 1) % 4;
    }
    engine.schedule(0, milliseconds(1), 1, 2000);
    int windows = 0;
    engine.hooks().barrier.push_back([&](Engine& eng, SimTime floor) {
      // Inject from the hook every 8th window, stop after 100.
      if (++windows % 8 == 0) {
        eng.schedule(1, floor + eng.options().lookahead, 1, 3);
      }
      if (windows == 100) eng.request_stop();
    });
    return threaded ? engine.run_threaded(3) : engine.run();
  };
  const RunStats seq = build_and_run(false);
  const RunStats thr = build_and_run(true);
  EXPECT_EQ(seq.total_events, thr.total_events);
  EXPECT_EQ(seq.num_windows, thr.num_windows);
  EXPECT_EQ(seq.end_vtime, thr.end_vtime);
  EXPECT_EQ(seq.events_per_lp, thr.events_per_lp);
  EXPECT_EQ(seq.busy_s, thr.busy_s);
  EXPECT_EQ(seq.modeled_wall_s, thr.modeled_wall_s);
  EXPECT_EQ(seq.modeled_sync_s, thr.modeled_sync_s);
  EXPECT_EQ(seq.cross_lp_events, thr.cross_lp_events);
  EXPECT_EQ(seq.merge_batches, thr.merge_batches);
  EXPECT_GT(seq.cross_lp_events, 0u);  // the workload really crosses LPs
  EXPECT_EQ(seq.num_windows, 100u);  // the stop took effect, not the horizon
}

TEST(ThreadedEngine, HooksSeeWindowFloorViaNow) {
  // Regression: under run_threaded() hooks run on the coordinator thread,
  // which never executes LP handlers; engine.now() there must still report
  // the window floor (it used to read a never-set thread-local and return 0).
  const auto floors_seen = [](bool threaded) {
    EngineOptions o;
    o.lookahead = milliseconds(1);
    o.end_time = milliseconds(20);
    Engine engine(o);
    auto lp = std::make_unique<RecordingLp>();
    lp->self_chain = 30;
    lp->local_delay = milliseconds(1);
    engine.add_lp(std::move(lp));
    engine.schedule(0, milliseconds(1), 3);
    std::vector<std::pair<SimTime, SimTime>> seen;
    engine.hooks().barrier.push_back([&](Engine& eng, SimTime floor) {
      seen.emplace_back(floor, eng.now());
    });
    if (threaded) {
      engine.run_threaded(2);
    } else {
      engine.run();
    }
    return seen;
  };
  for (const bool threaded : {false, true}) {
    const auto seen = floors_seen(threaded);
    ASSERT_GT(seen.size(), 3u);
    for (const auto& [floor, now] : seen) {
      EXPECT_EQ(now, floor) << (threaded ? "threaded" : "sequential");
    }
  }
}

TEST(ThreadedEngine, ConcurrentEnginesKeepHandlerContext) {
  // Two engines running at once (one threaded, one sequential, on separate
  // host threads) must each report their own event time and LP id inside
  // handlers — the handler context is per engine, not per thread.
  class CheckingLp final : public LogicalProcess {
   public:
    explicit CheckingLp(std::atomic<int>* mismatches)
        : mismatches_(mismatches) {}
    void handle(Engine& engine, const Event& ev) override {
      if (engine.now() != ev.time || engine.current_lp() != ev.lp) {
        mismatches_->fetch_add(1, std::memory_order_relaxed);
      }
      if (ev.a > 0) {
        engine.schedule(ev.lp == 0 ? 1 : 0, ev.time + milliseconds(1), 1,
                        ev.a - 1);
      }
    }

   private:
    std::atomic<int>* mismatches_;
  };

  std::atomic<int> mismatches{0};
  const auto make_engine = [&] {
    EngineOptions o;
    o.lookahead = milliseconds(1);
    o.end_time = seconds(2);
    auto engine = std::make_unique<Engine>(o);
    engine->add_lp(std::make_unique<CheckingLp>(&mismatches));
    engine->add_lp(std::make_unique<CheckingLp>(&mismatches));
    engine->schedule(0, milliseconds(1), 1, 800);
    return engine;
  };
  auto a = make_engine();
  auto b = make_engine();
  std::thread ta([&] { a->run_threaded(2); });
  std::thread tb([&] { b->run(); });
  ta.join();
  tb.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadedEngine, NestedEngineDoesNotClobberOuterContext) {
  // A handler that drives a whole inner simulation must still observe the
  // outer engine's time/LP afterwards.
  class NestingLp final : public LogicalProcess {
   public:
    explicit NestingLp(std::atomic<int>* mismatches)
        : mismatches_(mismatches) {}
    void handle(Engine& engine, const Event& ev) override {
      EngineOptions inner_opts;
      inner_opts.lookahead = milliseconds(1);
      inner_opts.end_time = milliseconds(50);
      Engine inner(inner_opts);
      auto lp = std::make_unique<RecordingLp>();
      lp->self_chain = 5;
      lp->local_delay = milliseconds(2);
      inner.add_lp(std::move(lp));
      inner.schedule(0, milliseconds(1), 3);
      inner.run();
      if (engine.now() != ev.time || engine.current_lp() != ev.lp) {
        mismatches_->fetch_add(1, std::memory_order_relaxed);
      }
      if (ev.a > 0) {
        engine.schedule(ev.lp, ev.time + milliseconds(1), 1, ev.a - 1);
      }
    }

   private:
    std::atomic<int>* mismatches_;
  };

  std::atomic<int> mismatches{0};
  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = seconds(1);
  Engine engine(o);
  engine.add_lp(std::make_unique<NestingLp>(&mismatches));
  engine.add_lp(std::make_unique<NestingLp>(&mismatches));
  engine.schedule(0, milliseconds(1), 1, 20);
  engine.schedule(1, milliseconds(1), 1, 20);
  engine.run_threaded(2);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadedEngine, ProbeCountsMatchRunStats) {
  // The window probe's aggregate view must agree with the engine's own
  // accounting under both executors.
  for (const bool threaded : {false, true}) {
    EngineOptions o;
    o.lookahead = milliseconds(1);
    o.end_time = seconds(1);
    Engine engine(o);
    std::vector<PingPongLp*> lps;
    for (int i = 0; i < 2; ++i) {
      auto lp = std::make_unique<PingPongLp>();
      lps.push_back(lp.get());
      engine.add_lp(std::move(lp));
    }
    lps[0]->peer = 1;
    lps[1]->peer = 0;
    engine.schedule(0, milliseconds(1), 1, 200);
    obs::WindowProbe probe;
    obs::Registry registry;
    engine.set_probe(&probe);
    engine.set_registry(&registry);
    const RunStats stats = threaded ? engine.run_threaded(2) : engine.run();
    EXPECT_EQ(probe.summary().windows, stats.num_windows);
    EXPECT_EQ(probe.summary().events, stats.total_events);
    ASSERT_EQ(probe.num_lps(), 2u);
    EXPECT_EQ(probe.lp_events()[0], stats.events_per_lp[0]);
    EXPECT_EQ(probe.lp_events()[1], stats.events_per_lp[1]);
    EXPECT_EQ(registry.counter("pdes.events").value(), stats.total_events);
    EXPECT_EQ(registry.counter("pdes.windows").value(), stats.num_windows);
  }
}

TEST(ThreadedEngine, SingleThreadDegenerate) {
  EngineOptions o = base_options();
  Engine engine(o);
  auto lp = std::make_unique<RecordingLp>();
  RecordingLp* p = lp.get();
  engine.add_lp(std::move(lp));
  engine.schedule(0, milliseconds(1), 7);
  const RunStats stats = engine.run_threaded(1);
  EXPECT_EQ(stats.total_events, 1u);
  EXPECT_EQ(p->records.size(), 1u);
}

}  // namespace
}  // namespace massf
